(* Fault tolerance: what an unreliable interconnect costs, and how well
   the retry-inflated LoPC model predicts it.

   The paper's machine model assumes a perfectly reliable network. In the
   NOW setting LoPC also claims, messages are dropped, duplicated and
   delayed, and the runtime recovers with timeout + retransmission. This
   example injects those faults into the simulator, predicts the faulty
   cycle time with [Lopc.Fault_model], and shows the graceful-degradation
   side: solvers diagnosing saturation instead of returning garbage.

   Run with:  dune exec examples/fault_tolerance.exe *)

module D = Lopc_dist.Distribution
module Fault = Lopc_activemsg.Fault
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Pattern = Lopc_workloads.Pattern
module Fixed_point = Lopc_numerics.Fixed_point

let nodes = 16
let w = 1000.
let st = 40.
let so = 200.
let timeout = 20_000.
let cycles = 30_000

let params = Lopc.Params.create ~c2:1. ~p:nodes ~st ~so ()

let spec fault =
  Pattern.to_spec ?fault ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential so)
    ~wire:(D.Constant st) Pattern.All_to_all

let model_config fault =
  Lopc.Fault_model.config ~drop:fault.Fault.drop ~duplicate:fault.Fault.duplicate
    ~delay_epsilon:fault.Fault.delay_epsilon
    ~spike_mean:(D.mean fault.Fault.delay_spike)
    ~backoff:(fun n -> Fault.timeout_multiplier fault ~try_:n)
    ~max_tries:fault.Fault.max_tries ~timeout:fault.Fault.timeout ()

let () =
  (* Baseline: the reliable machine of §5. *)
  let base = Lopc.All_to_all.solve params ~w in
  let base_sim = Machine.run ~spec:(spec None) ~cycles () in
  Printf.printf "reliable network:          model R = %7.1f   sim R = %7.1f\n"
    base.Lopc.All_to_all.r
    (Metrics.mean_response base_sim.Machine.metrics);

  (* Inject 2%% per-traversal loss, 5%% duplication and occasional delay
     spikes, recovered by exponential backoff capped at 8x. *)
  let fault =
    Fault.create ~drop:0.02 ~duplicate:0.05 ~delay_epsilon:0.05
      ~delay_spike:(D.Exponential (10. *. st))
      ~backoff:(Fault.Exponential { factor = 2.; cap = 8. })
      ~max_tries:10 ~timeout ()
  in
  let predicted = Lopc.Fault_model.solve (model_config fault) params ~w in
  let sim = Machine.run ~spec:(spec (Some fault)) ~cycles () in
  let metrics = sim.Machine.metrics in
  let measured = Metrics.mean_response metrics in
  Printf.printf "2%% loss + 5%% duplication: model R = %7.1f   sim R = %7.1f   (%+.1f%%)\n\n"
    predicted.Lopc.Fault_model.r measured
    (100. *. (predicted.Lopc.Fault_model.r -. measured) /. measured);

  Printf.printf "what the fault layer did (%d answered cycles):\n" metrics.Metrics.cycles;
  Printf.printf "  retransmits            %8d\n" metrics.Metrics.retransmits;
  Printf.printf "  duplicate deliveries   %8d\n" metrics.Metrics.duplicate_deliveries;
  Printf.printf "  dropped copies         %8d\n" metrics.Metrics.dropped_messages;
  Printf.printf "  stale replies          %8d\n" metrics.Metrics.stale_replies;
  Printf.printf "  abandoned cycles       %8d\n" metrics.Metrics.failed_cycles;
  Printf.printf "  tries per cycle        %8.3f   (model %.3f)\n"
    (Metrics.mean_tries metrics) predicted.Lopc.Fault_model.tries;
  Printf.printf "  goodput / offered load %8.3f\n\n"
    (Metrics.goodput metrics /. Metrics.offered_load metrics);

  (* Graceful degradation: drive the retry inflation until the request
     handlers cannot keep up. The solver reports saturation instead of
     silently iterating to garbage. *)
  Printf.printf "pushing loss towards saturation (W = 0, heavy handlers):\n";
  let hot = Lopc.Params.create ~c2:1. ~p:nodes ~st ~so:2_000. () in
  List.iter
    (fun drop ->
      let c = Lopc.Fault_model.config ~drop ~max_tries:20 ~timeout:1e6 () in
      match Lopc.Fault_model.solve_status c hot ~w:0. with
      | Some s, status ->
        Printf.printf "  drop %4.0f%%  R = %9.1f   %s\n" (100. *. drop)
          s.Lopc.Fault_model.r
          (Fixed_point.status_to_string status)
      | None, status ->
        Printf.printf "  drop %4.0f%%  %s\n" (100. *. drop)
          (Fixed_point.status_to_string status))
    [ 0.; 0.2; 0.4; 0.6; 0.8 ]
