(* Irregular communication: a hotspot study with the general model.

   Hash tables, indirect array accesses and coherence home nodes all skew
   traffic toward particular nodes (paper §1). The Appendix-A model
   handles arbitrary visit matrices; this example sweeps the skew of a
   hotspot pattern and shows where the hot node saturates — with the
   simulator confirming the prediction.

   Run with:  dune exec examples/hotspot_analysis.exe *)

module G = Lopc.General
module Pattern = Lopc_workloads.Pattern
module D = Lopc_dist.Distribution
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let () =
  let p = 32 and w = 1000. and so = 200. and st = 40. in
  let params = Lopc.Params.create ~c2:1. ~p ~st ~so () in
  Printf.printf "hotspot all-to-all on P=%d, W=%.0f, So=%.0f, St=%.0f\n\n" p w so st;
  Printf.printf "%10s  %12s  %12s  %8s  %14s  %12s\n" "fraction" "model X" "sim X" "err %"
    "hot node Qq" "hot node Uq";
  List.iter
    (fun fraction ->
      let pat = Pattern.Hotspot { hot = 0; fraction } in
      let sol = G.solve (Pattern.to_general params ~w pat) in
      let spec =
        Pattern.to_spec ~nodes:p ~work:(D.Exponential w) ~handler:(D.Exponential so)
          ~wire:(D.Constant st) pat
      in
      let sim =
        Metrics.throughput (Machine.run ~spec ~cycles:25_000 ()).Machine.metrics
      in
      let hot = sol.G.node_solutions.(0) in
      Printf.printf "%10.2f  %12.6f  %12.6f  %+7.2f%%  %14.3f  %12.3f\n" fraction
        sol.G.system_throughput sim
        (100. *. (sol.G.system_throughput -. sim) /. sim)
        hot.G.qq hot.G.uq)
    [ 0.; 0.1; 0.2; 0.3; 0.5; 0.7 ];
  Printf.printf
    "\nAs the skew grows, the hot node's request queue explodes and system\n\
     throughput collapses toward the hot node's service bound 1/So — the\n\
     kind of irregular-pattern effect LogP cannot express at all.\n"
