(* Interrupts or polling? (paper §3)

   LogP was parameterized for the CM-5, where message notification is by
   polling; LoPC assumes interrupt-driven active messages. The two
   mechanisms trade the same contention differently:

   - interrupts steal processor time from the compute thread (the BKT
     term of Eq 5.7) but serve handlers immediately;
   - polling leaves the thread undisturbed but makes every incoming
     request wait out the residual work quantum of a busy destination.

   With the three-way execution model (interrupt / polling / protocol
   processor) both sides of the trade are quantified, and the crossover
   located. Run with:  dune exec examples/polling_vs_interrupts.exe *)

module A = Lopc.All_to_all
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let simulate ~polling ~w =
  let spec =
    Spec.all_to_all ~polling ~nodes:32 ~work:(D.Exponential w)
      ~handler:(D.Exponential 200.) ~wire:(D.Constant 40.) ()
  in
  Metrics.mean_response (Machine.run ~spec ~cycles:25_000 ()).Machine.metrics

let () =
  let params = Lopc.Params.create ~c2:1. ~p:32 ~st:40. ~so:200. () in
  Printf.printf "all-to-all on P=32, So=200, St=40, exponential handlers\n\n";
  Printf.printf "%6s  %12s  %10s  %12s  %10s  %10s\n" "W" "interrupt R" "(sim)"
    "polling R" "(sim)" "winner";
  List.iter
    (fun w ->
      let ri = (A.solve params ~w).A.r in
      let rp = (A.solve ~execution:A.Polling params ~w).A.r in
      Printf.printf "%6.0f  %12.1f  %10.1f  %12.1f  %10.1f  %10s\n" w ri
        (simulate ~polling:false ~w) rp (simulate ~polling:true ~w)
        (if rp < ri then "polling" else "interrupt"))
    [ 0.; 50.; 100.; 200.; 400.; 800.; 1600.; 3200. ];
  (* Locate the model's crossover point. *)
  let crossover =
    Lopc_numerics.Roots.bisect ~tol:0.5
      ~f:(fun w ->
        (A.solve ~execution:A.Polling params ~w).A.r -. (A.solve params ~w).A.r)
      1. 3200.
  in
  Printf.printf
    "\nmodel crossover at W ~ %.0f cycles: finer-grain codes prefer polling\n\
     (nothing to preempt, handlers already saturate the processor), while\n\
     coarser-grain codes need interrupts so requests are not stuck behind\n\
     long work quanta. A protocol processor (shared memory) dominates both:\n\
     R = %.1f at W=%.0f vs interrupt %.1f and polling %.1f.\n"
    crossover
    (A.solve ~execution:A.Protocol_processor params ~w:crossover).A.r
    crossover
    (A.solve params ~w:crossover).A.r
    (A.solve ~execution:A.Polling params ~w:crossover).A.r
