examples/hotspot_analysis.ml: Array List Lopc Lopc_activemsg Lopc_dist Lopc_workloads Printf
