examples/polling_vs_interrupts.mli:
