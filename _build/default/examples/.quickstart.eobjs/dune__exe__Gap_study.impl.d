examples/gap_study.ml: List Lopc Lopc_activemsg Lopc_dist Printf
