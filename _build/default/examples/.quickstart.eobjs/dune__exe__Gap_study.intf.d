examples/gap_study.mli:
