examples/quickstart.mli:
