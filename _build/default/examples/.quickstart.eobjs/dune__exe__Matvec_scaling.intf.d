examples/matvec_scaling.mli:
