examples/cm5_staggering.ml: List Lopc Lopc_activemsg Lopc_dist Printf
