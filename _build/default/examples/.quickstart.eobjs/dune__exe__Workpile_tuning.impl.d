examples/workpile_tuning.ml: List Lopc Lopc_activemsg Lopc_dist Lopc_workloads Printf
