examples/nonblocking_window.ml: Float List Lopc Lopc_activemsg Lopc_dist Printf
