examples/shared_memory.ml: List Lopc Lopc_activemsg Lopc_dist Lopc_workloads Printf
