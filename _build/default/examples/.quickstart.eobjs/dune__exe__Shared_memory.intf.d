examples/shared_memory.mli:
