examples/cm5_staggering.mli:
