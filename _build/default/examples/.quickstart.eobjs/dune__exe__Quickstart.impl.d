examples/quickstart.ml: Float Lopc Lopc_activemsg Lopc_dist Lopc_workloads Printf
