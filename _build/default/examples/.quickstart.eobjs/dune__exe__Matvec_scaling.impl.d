examples/matvec_scaling.ml: List Lopc Lopc_workloads Printf
