examples/polling_vs_interrupts.ml: List Lopc Lopc_activemsg Lopc_dist Lopc_numerics Printf
