examples/nonblocking_window.mli:
