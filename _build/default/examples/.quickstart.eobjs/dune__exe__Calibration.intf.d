examples/calibration.mli:
