examples/workpile_tuning.mli:
