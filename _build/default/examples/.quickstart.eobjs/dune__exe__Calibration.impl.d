examples/calibration.ml: List Lopc Lopc_activemsg Lopc_dist Printf
