(* Quickstart: the complete LoPC workflow on the paper's running example.

   1. Characterize an algorithm (the §3 matrix-vector multiply) as the
      pair (n, W): requests per node and work between requests.
   2. Characterize the machine as (P, St, So, C²) — the same numbers a
      LogP analysis uses.
   3. Ask LoPC for the predicted run time, including contention, and
      compare with the contention-free LogP estimate and the simulator.

   Run with:  dune exec examples/quickstart.exe *)

module Matvec = Lopc_workloads.Matvec
module Pattern = Lopc_workloads.Pattern
module D = Lopc_dist.Distribution
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let () =
  (* An Alewife-like machine: 32 nodes, 40-cycle network, 200-cycle
     handlers with near-constant service time. *)
  let machine = Lopc.Params.create ~c2:0. ~p:32 ~st:40. ~so:200. () in

  (* A 512x512 matrix-vector multiply, 4 cycles per multiply-add. *)
  let workload = Matvec.create ~matrix_dim:512 ~p:32 ~madd_cost:4. in
  let alg = Matvec.characterize workload in
  Printf.printf "matrix-vector multiply, N=512 on P=32:\n";
  Printf.printf "  requests per node n = %d\n" alg.Lopc.Params.n;
  Printf.printf "  work per request  W = %.1f cycles\n\n" alg.Lopc.Params.w;

  (* Analytical predictions. *)
  let lopc = Matvec.lopc_runtime machine workload in
  let logp = Matvec.logp_runtime machine workload in
  Printf.printf "predicted run time:\n";
  Printf.printf "  LoPC (with contention) = %.0f cycles\n" lopc;
  Printf.printf "  LogP (naive)           = %.0f cycles  (%.1f%% below LoPC)\n\n" logp
    (100. *. (lopc -. logp) /. lopc);

  (* Validate against the event-driven simulator: the matvec put pattern
     is homogeneous all-to-all traffic with the same (n, W). *)
  let spec =
    Pattern.to_spec ~nodes:32
      ~work:(D.Constant alg.Lopc.Params.w)
      ~handler:(D.Constant 200.) ~wire:(D.Constant 40.) Pattern.All_to_all
  in
  let result = Machine.run ~spec ~cycles:30_000 () in
  let sim_cycle = Metrics.mean_response result.Machine.metrics in
  let sim_total = Float.of_int alg.Lopc.Params.n *. sim_cycle in
  Printf.printf "simulated run time       = %.0f cycles\n" sim_total;
  Printf.printf "  LoPC error             = %+.1f%%\n" (100. *. (lopc -. sim_total) /. sim_total);
  Printf.printf "  LogP error             = %+.1f%%\n" (100. *. (logp -. sim_total) /. sim_total);

  (* The paper's rule of thumb: contention costs about one extra handler
     per request (Eq 5.12). *)
  let s = Lopc.All_to_all.solve machine ~w:alg.Lopc.Params.w in
  Printf.printf "\nrule of thumb check: contention = %.1f cycles ~ %.2f handlers\n"
    s.Lopc.All_to_all.contention
    (s.Lopc.All_to_all.contention /. 200.)
