(* Why regular patterns degrade (paper §1, after Brewer & Kuszmaul).

   On the CM-5, all-to-all patterns were carefully scheduled so message
   arrivals interleave and nobody queues. Brewer and Kuszmaul observed
   that small timing variances quickly randomize such patterns. This
   example reproduces the phenomenon on the simulator: a perfectly
   synchronized permutation pattern is contention free with constant
   service times, but a tiny variance in the work draws makes its
   response time drift to the fully random pattern's — which is what the
   LoPC model predicts.

   Run with:  dune exec examples/cm5_staggering.exe *)

module A = Lopc.All_to_all
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let simulate ?barrier ~staggered ~work () =
  let base =
    Spec.all_to_all ~staggered ~nodes:32 ~work ~handler:(D.Constant 200.)
      ~wire:(D.Constant 40.) ()
  in
  let spec = { base with Spec.barrier } in
  Metrics.mean_response (Machine.run ~spec ~cycles:25_000 ()).Machine.metrics

let () =
  let w = 1000. in
  let params = Lopc.Params.create ~c2:0. ~p:32 ~st:40. ~so:200. () in
  let lopc = (A.solve params ~w).A.r in
  let lower = A.lower_bound params ~w in
  Printf.printf "all-to-all on P=32, W=1000, So=200, St=40 (constant handlers)\n\n";
  Printf.printf "contention-free cost (perfect schedule): %.0f cycles\n" lower;
  Printf.printf "LoPC prediction (random arrivals):       %.1f cycles\n\n" lopc;
  Printf.printf "%28s  %12s\n" "pattern" "simulated R";
  let show name r = Printf.printf "%34s  %12.1f\n" name r in
  (* Perfectly synchronized permutation: no contention at all. *)
  show "staggered, W variance 0" (simulate ~staggered:true ~work:(D.Constant w) ());
  (* A 1% standard deviation in the work is enough to desynchronize. *)
  List.iter
    (fun pct ->
      let spread = w *. pct in
      let work = D.Uniform (w -. spread, w +. spread) in
      show
        (Printf.sprintf "staggered, +-%.0f%% work jitter" (100. *. pct))
        (simulate ~staggered:true ~work ()))
    [ 0.01; 0.05; 0.20 ];
  show "random destinations" (simulate ~staggered:false ~work:(D.Constant w) ());
  (* The CM-5 remedy: resynchronize with cheap barriers (paper section 1). *)
  let jittery = D.Uniform (w -. (0.05 *. w), w +. (0.05 *. w)) in
  show "+-5% jitter, barrier every cycle"
    (simulate ~barrier:{ Spec.interval = 1; cost = 10. } ~staggered:true ~work:jittery ());
  show "+-5% jitter, barrier every 8"
    (simulate ~barrier:{ Spec.interval = 8; cost = 10. } ~staggered:true ~work:jittery ());
  Printf.printf
    "\nWith zero variance the carefully scheduled pattern achieves the\n\
     contention-free bound, but a percent of jitter already pushes it to\n\
     the random-pattern cost — the LoPC prediction. Per-cycle barriers\n\
     claw back most of the contention (the CM-5 trick), but as the paper\n\
     notes, few machines make barriers cheap enough to use this way.\n"
