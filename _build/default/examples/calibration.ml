(* Calibrating the model from measurements.

   §3 derives St and So from the hardware manual. On an unfamiliar
   machine you would instead run an all-to-all micro-benchmark at a few
   work grains, measure the cycle times, and fit the model to them. This
   example plays both roles: the simulator stands in for the unfamiliar
   machine (true parameters hidden inside), and Lopc.Calibrate recovers
   them — pinning St to a ping-pong measurement, as one would in
   practice, to break the St/So degeneracy.

   Run with:  dune exec examples/calibration.exe *)

module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Cal = Lopc.Calibrate

let () =
  let p = 32 in
  (* The "unknown" machine. *)
  let true_st = 40. and true_so = 200. in
  Printf.printf "measuring an all-to-all micro-benchmark on the 'unknown' machine...\n\n";
  let observations =
    List.map
      (fun w ->
        let spec =
          Spec.all_to_all ~nodes:p ~work:(D.Exponential w)
            ~handler:(D.Exponential true_so) ~wire:(D.Constant true_st) ()
        in
        let r =
          Metrics.mean_response (Machine.run ~spec ~cycles:40_000 ()).Machine.metrics
        in
        Printf.printf "  W = %5.0f -> measured R = %8.1f\n" w r;
        (w, r))
      [ 25.; 100.; 400.; 1600.; 6400. ]
  in
  (* A ping-pong benchmark would give the wire latency directly. *)
  Printf.printf "\nping-pong says St = %.0f; fitting So...\n\n" true_st;
  let fit = Cal.fit ~fixed_st:true_st ~p ~observations () in
  Printf.printf "fitted: So = %.1f (true %.0f), rms residual %.1f cycles (%.2f%%)\n\n"
    fit.Cal.params.Lopc.Params.so true_so fit.Cal.residual
    (100. *. fit.Cal.relative_residual);
  Printf.printf "%10s %12s %12s\n" "W" "measured" "fitted model";
  List.iter
    (fun (w, measured, fitted) ->
      Printf.printf "%10.0f %12.1f %12.1f\n" w measured fitted)
    (Cal.predictions fit ~observations);
  (* The calibrated model now extrapolates. *)
  let extrapolated = (Lopc.All_to_all.solve fit.Cal.params ~w:12_800.).Lopc.All_to_all.r in
  let spec =
    Spec.all_to_all ~nodes:p ~work:(D.Exponential 12_800.)
      ~handler:(D.Exponential true_so) ~wire:(D.Constant true_st) ()
  in
  let check =
    Metrics.mean_response (Machine.run ~spec ~cycles:20_000 ()).Machine.metrics
  in
  Printf.printf
    "\nextrapolation to W = 12800: model %.0f vs fresh measurement %.0f (%+.1f%%)\n"
    extrapolated check
    (100. *. (extrapolated -. check) /. check)
