(* Work-pile tuning (paper §6): how many nodes should serve?

   A work-pile algorithm partitions the machine into servers that hand
   out chunks and clients that process them. Too few servers bottleneck;
   too many waste nodes that could be working. LoPC's closed form
   (Eq 6.8) answers directly; this example confirms it against both the
   full model curve and the simulator.

   Run with:  dune exec examples/workpile_tuning.exe *)

module CS = Lopc.Client_server
module Pattern = Lopc_workloads.Pattern
module D = Lopc_dist.Distribution
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let () =
  let params = Lopc.Params.create ~c2:1. ~p:32 ~st:40. ~so:131. () in
  let w = 1000. in
  Printf.printf "work-pile on P=32, So=131, St=40, W=%.0f (exponential handlers)\n\n" w;

  (* The closed form. *)
  let optimal = CS.optimal_servers params ~w in
  Printf.printf "Eq 6.8 optimal allocation: %d servers (real-valued %.2f)\n"
    optimal (CS.optimal_servers_real params ~w);
  Printf.printf "at the optimum each server should hold ~1 request: Qs = %.3f\n\n"
    (CS.throughput params ~w ~servers:optimal).CS.server_queue;

  (* Model curve vs simulation on a few partitions around the optimum. *)
  Printf.printf "%8s  %12s  %12s  %8s\n" "servers" "model X" "sim X" "err %";
  List.iter
    (fun servers ->
      let model = (CS.throughput params ~w ~servers).CS.throughput in
      let spec =
        Pattern.to_spec ~nodes:32 ~work:(D.Exponential w) ~handler:(D.Exponential 131.)
          ~wire:(D.Constant 40.)
          (Pattern.Client_server { servers })
      in
      let sim =
        Metrics.throughput (Machine.run ~spec ~cycles:30_000 ()).Machine.metrics
      in
      Printf.printf "%8d  %12.6f  %12.6f  %+7.2f%%%s\n" servers model sim
        (100. *. (model -. sim) /. sim)
        (if servers = optimal then "   <- Eq 6.8 optimum" else ""))
    [ 1; 2; 3; 4; 5; 6; 8; 12; 16; 24 ];

  Printf.printf
    "\nThe throughput peak sits where Eq 6.8 puts it; to the left the servers\n\
     saturate (server-bound), to the right there are too few clients\n\
     (client-bound), matching Fig 6-2.\n"
