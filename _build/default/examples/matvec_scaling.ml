(* Scaling study: how contention changes the picture as a matrix-vector
   multiply is spread over more processors.

   As P grows (fixed N), the work between requests W = N/(P-1)·madd
   shrinks, so communication gets finer-grained and contention grows as a
   share of the total. LogP misses this entirely; LoPC quantifies it.

   Run with:  dune exec examples/matvec_scaling.exe *)

module Matvec = Lopc_workloads.Matvec
module A = Lopc.All_to_all

let () =
  let n = 2048 and madd_cost = 4. in
  Printf.printf "matrix-vector multiply, N=%d, 4-cycle MADD, St=40, So=200, C2=0\n\n" n;
  Printf.printf "%4s  %10s  %12s  %12s  %10s  %12s\n" "P" "W" "LoPC total" "LogP total"
    "gap %" "contention %";
  List.iter
    (fun p ->
      let machine = Lopc.Params.create ~c2:0. ~p ~st:40. ~so:200. () in
      let workload = Matvec.create ~matrix_dim:n ~p ~madd_cost in
      let lopc = Matvec.lopc_runtime machine workload in
      let logp = Matvec.logp_runtime machine workload in
      let w = Matvec.work_between_requests workload in
      let frac = A.contention_fraction machine ~w in
      Printf.printf "%4d  %10.1f  %12.0f  %12.0f  %10.1f  %12.1f\n" p w lopc logp
        (100. *. (lopc -. logp) /. logp)
        (100. *. frac))
    [ 2; 4; 8; 16; 32; 64; 128 ];
  Printf.printf
    "\nAs P grows the per-request work shrinks and contention's share of the\n\
     cycle rises: exactly the fine-grain regime where a contention-free\n\
     LogP analysis goes wrong (paper section 1).\n"
