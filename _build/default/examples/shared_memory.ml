(* Shared memory vs message passing (paper §5.1 and §7).

   A shared-memory machine can be seen as a message-passing system whose
   requests are served by a dedicated protocol processor at each node:
   handlers still queue against each other, but they no longer interrupt
   the compute thread, so Rw = W. This example quantifies how much the
   interrupt-driven design costs across grain sizes — the
   architectural-tradeoff study the paper's conclusion proposes.

   Run with:  dune exec examples/shared_memory.exe *)

module A = Lopc.All_to_all
module Pattern = Lopc_workloads.Pattern
module D = Lopc_dist.Distribution
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let simulate ~protocol_processor ~w =
  let spec =
    Pattern.to_spec ~protocol_processor ~nodes:32 ~work:(D.Exponential w)
      ~handler:(D.Constant 200.) ~wire:(D.Constant 40.) Pattern.All_to_all
  in
  Metrics.mean_response (Machine.run ~spec ~cycles:25_000 ()).Machine.metrics

let () =
  let params = Lopc.Params.create ~c2:0. ~p:32 ~st:40. ~so:200. () in
  Printf.printf "all-to-all on P=32, So=200, St=40, C2=0\n\n";
  Printf.printf "%6s  %14s  %14s  %14s  %14s  %9s\n" "W" "interrupt R" "(sim)"
    "protocol R" "(sim)" "penalty";
  List.iter
    (fun w ->
      let mp = (A.solve params ~w).A.r in
      let pp = (A.solve ~execution:A.Protocol_processor params ~w).A.r in
      let sim_mp = simulate ~protocol_processor:false ~w in
      let sim_pp = simulate ~protocol_processor:true ~w in
      Printf.printf "%6.0f  %14.1f  %14.1f  %14.1f  %14.1f  %8.1f%%\n" w mp sim_mp pp
        sim_pp
        (100. *. (mp -. pp) /. pp))
    [ 2.; 32.; 128.; 512.; 2048. ];
  Printf.printf
    "\nThe protocol processor removes the thread-interference term of the\n\
     cycle (Rw = W); the remaining contention is handler-on-handler\n\
     queueing. The penalty of interrupt-driven handling is largest for\n\
     fine-grain communication and fades as W grows.\n"
