(* Was dropping g safe? (paper §3)

   LogP carries a gap parameter g — the minimum spacing between messages
   through a node's network interface. LoPC drops it, arguing that modern
   machines balance NI bandwidth against the processor's message rate.
   This example tests the assumption by re-introducing g into both the
   model and the simulator and measuring the slowdown.

   Run with:  dune exec examples/gap_study.exe *)

module Gap = Lopc.Gap
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let () =
  let p = 32 and so = 200. and st = 40. and w = 1000. in
  let params = Lopc.Params.create ~c2:1. ~p ~st ~so () in
  Printf.printf "all-to-all on P=%d, W=%.0f, So=%.0f, St=%.0f\n\n" p w so st;
  Printf.printf "%6s  %10s  %10s  %10s  %12s\n" "g" "model R" "sim R" "penalty" "NI util";
  List.iter
    (fun gap ->
      let m = Gap.solve ~gap params ~w in
      let spec =
        Spec.all_to_all ~gap ~nodes:p ~work:(D.Exponential w)
          ~handler:(D.Exponential so) ~wire:(D.Constant st) ()
      in
      let sim =
        Metrics.mean_response (Machine.run ~spec ~cycles:25_000 ()).Machine.metrics
      in
      Printf.printf "%6.0f  %10.1f  %10.1f  %9.1f%%  %12.3f\n" gap m.Gap.r sim
        (100. *. m.Gap.penalty) m.Gap.ni_utilization)
    [ 0.; 2.; 10.; 25.; 50.; 100.; 200. ];
  Printf.printf "\nlargest g with < 5%% slowdown:\n";
  List.iter
    (fun w ->
      Printf.printf "  W = %5.0f: g <= %.1f cycles\n" w (Gap.tolerable_gap params ~w))
    [ 100.; 500.; 1000.; 4000. ];
  Printf.printf
    "\nA few cycles of NI occupancy — typical for the machines LoPC targets —\n\
     cost under 1%%, vindicating the paper's choice to drop g. CM-5-class\n\
     gaps of a hundred cycles, however, would have dominated: LogP needed g\n\
     for its machine, LoPC doesn't for its machines.\n"
