(* Non-blocking requests (paper §7 future work).

   Blocking requests idle the thread for the full round trip. Letting a
   thread keep several requests outstanding ("windowed" sends, in the
   style of Heidelberger & Trivedi's asynchronous-task models) overlaps
   communication with computation — but the gain saturates quickly,
   because every cycle still consumes W + 2·So of the node's processor no
   matter how deep the window. This example sweeps the window depth in
   both the extended model and the simulator.

   Run with:  dune exec examples/nonblocking_window.exe *)

module W = Lopc.Windowed
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics

let () =
  let p = 32 and wk = 1000. and so = 200. and st = 40. in
  let params = Lopc.Params.create ~c2:1. ~p ~st ~so () in
  let saturation = W.saturation_rate params ~w:wk in
  Printf.printf "windowed all-to-all on P=%d, W=%.0f, So=%.0f, St=%.0f\n\n" p wk so st;
  Printf.printf "processor ceiling: 1/(W + 2 So) = %.6f completions/cycle/node\n\n"
    saturation;
  Printf.printf "%7s  %13s  %13s  %9s  %10s\n" "window" "model X/node" "sim X/node"
    "speedup" "proc util";
  List.iter
    (fun window ->
      let model = W.solve ~window params ~w:wk in
      let spec =
        Spec.all_to_all ~window ~nodes:p ~work:(D.Exponential wk)
          ~handler:(D.Exponential so) ~wire:(D.Constant st) ()
      in
      let sim =
        Metrics.throughput (Machine.run ~spec ~cycles:40_000 ()).Machine.metrics
        /. Float.of_int p
      in
      Printf.printf "%7d  %13.6f  %13.6f  %8.2fx  %10.3f\n" window model.W.node_rate sim
        (model.W.node_rate /. (W.solve ~window:1 params ~w:wk).W.node_rate)
        model.W.processor_util)
    [ 1; 2; 3; 4; 6; 8 ];
  Printf.printf
    "\nTwo outstanding requests already capture most of the benefit; beyond\n\
     window 3 the node's processor — not the round trip — is the\n\
     bottleneck, so deeper windows buy almost nothing. The same analysis\n\
     explains why the paper models blocking requests first: the blocking\n\
     penalty is one round trip minus the overlap the window provides.\n"
