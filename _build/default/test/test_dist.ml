(* Tests for lopc_dist: exact moments, sampling agreement, of_mean_scv. *)

module D = Lopc_dist.Distribution
module Rng = Lopc_prng.Rng

let sample_moments dist n seed =
  let g = Rng.create seed in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let x = D.sample dist g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let nf = Float.of_int n in
  let mean = !sum /. nf in
  (mean, (!sumsq /. nf) -. (mean *. mean))

let check_sampling name dist =
  let n = 200_000 in
  let mean, var = sample_moments dist n 17 in
  let m = D.mean dist and v = D.variance dist in
  let mean_tol = 0.02 *. Float.max 1. m in
  if Float.abs (mean -. m) > mean_tol then
    Alcotest.failf "%s: sampled mean %g vs exact %g" name mean m;
  let var_tol = 0.08 *. Float.max 1. v in
  if Float.abs (var -. v) > var_tol then
    Alcotest.failf "%s: sampled variance %g vs exact %g" name var v

let test_constant () =
  let d = D.Constant 42. in
  Alcotest.(check (float 0.)) "mean" 42. (D.mean d);
  Alcotest.(check (float 0.)) "variance" 0. (D.variance d);
  Alcotest.(check (float 0.)) "scv" 0. (D.scv d);
  let g = Rng.create 1 in
  for _ = 1 to 10 do
    Alcotest.(check (float 0.)) "sample" 42. (D.sample d g)
  done

let test_exponential_moments () =
  let d = D.Exponential 100. in
  Alcotest.(check (float 1e-9)) "mean" 100. (D.mean d);
  Alcotest.(check (float 1e-9)) "scv" 1. (D.scv d);
  check_sampling "exponential" d

let test_uniform_moments () =
  let d = D.Uniform (10., 30.) in
  Alcotest.(check (float 1e-9)) "mean" 20. (D.mean d);
  Alcotest.(check (float 1e-9)) "variance" (400. /. 12.) (D.variance d);
  check_sampling "uniform" d

let test_erlang_moments () =
  let d = D.Erlang (4, 80.) in
  Alcotest.(check (float 1e-9)) "mean" 80. (D.mean d);
  Alcotest.(check (float 1e-9)) "scv = 1/k" 0.25 (D.scv d);
  check_sampling "erlang" d

let test_hyperexponential_moments () =
  let d = D.Hyperexponential (0.3, 10., 100.) in
  Alcotest.(check (float 1e-9)) "mean" 73. (D.mean d);
  Alcotest.(check bool) "scv >= 1" true (D.scv d >= 1.);
  check_sampling "hyperexponential" d

let test_shifted_exponential_moments () =
  let d = D.Shifted_exponential (50., 80.) in
  Alcotest.(check (float 1e-9)) "mean" 80. (D.mean d);
  Alcotest.(check (float 1e-9)) "variance" 900. (D.variance d);
  check_sampling "shifted exponential" d

let test_residual_mean () =
  (* Exponential: residual = mean; constant: residual = mean/2 (Eq 5.8). *)
  Alcotest.(check (float 1e-9)) "exp residual" 100. (D.residual_mean (D.Exponential 100.));
  Alcotest.(check (float 1e-9)) "const residual" 50. (D.residual_mean (D.Constant 100.))

let check_mean_scv ~mean ~scv =
  let d = D.of_mean_scv ~mean ~scv in
  Alcotest.(check (float 1e-6)) (Printf.sprintf "mean(%g,%g)" mean scv) mean (D.mean d);
  Alcotest.(check (float 1e-6)) (Printf.sprintf "scv(%g,%g)" mean scv) scv (D.scv d)

let test_of_mean_scv_exact () =
  List.iter
    (fun (mean, scv) -> check_mean_scv ~mean ~scv)
    [ (200., 0.); (200., 0.25); (200., 0.5); (200., 1.); (200., 2.); (131., 1.5); (1., 4.) ]

let test_of_mean_scv_shapes () =
  (match D.of_mean_scv ~mean:10. ~scv:0. with
  | D.Constant _ -> ()
  | d -> Alcotest.failf "expected Constant, got %s" (D.to_string d));
  (match D.of_mean_scv ~mean:10. ~scv:1. with
  | D.Exponential _ -> ()
  | d -> Alcotest.failf "expected Exponential, got %s" (D.to_string d));
  (match D.of_mean_scv ~mean:10. ~scv:0.5 with
  | D.Shifted_exponential _ -> ()
  | d -> Alcotest.failf "expected Shifted_exponential, got %s" (D.to_string d));
  match D.of_mean_scv ~mean:10. ~scv:3. with
  | D.Hyperexponential _ -> ()
  | d -> Alcotest.failf "expected Hyperexponential, got %s" (D.to_string d)

let test_of_mean_scv_invalid () =
  Alcotest.check_raises "negative mean"
    (Invalid_argument "Distribution.of_mean_scv: negative mean") (fun () ->
      ignore (D.of_mean_scv ~mean:(-1.) ~scv:1.));
  Alcotest.check_raises "negative scv"
    (Invalid_argument "Distribution.of_mean_scv: negative scv") (fun () ->
      ignore (D.of_mean_scv ~mean:1. ~scv:(-0.5)))

let test_validate () =
  (match D.validate (D.Uniform (5., 3.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted uniform bounds accepted");
  (match D.validate (D.Erlang (0, 10.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k=0 Erlang accepted");
  (match D.validate (D.Hyperexponential (1.5, 1., 1.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "p>1 hyperexponential accepted");
  match D.validate (D.Shifted_exponential (5., 3.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "offset>mean shifted exponential accepted"

let test_samples_nonnegative () =
  let g = Rng.create 13 in
  let dists =
    [
      D.Constant 0.;
      D.Exponential 5.;
      D.Uniform (0., 2.);
      D.Erlang (3, 9.);
      D.Hyperexponential (0.5, 1., 10.);
      D.Shifted_exponential (1., 2.);
    ]
  in
  List.iter
    (fun d ->
      for _ = 1 to 1000 do
        if D.sample d g < 0. then Alcotest.failf "%s sampled negative" (D.to_string d)
      done)
    dists

let test_zero_mean_edge () =
  let g = Rng.create 1 in
  Alcotest.(check (float 0.)) "Exp(0) samples 0" 0. (D.sample (D.Exponential 0.) g);
  Alcotest.(check (float 0.)) "Erlang mean 0" 0. (D.sample (D.Erlang (2, 0.)) g)

let test_empirical () =
  let d = D.Empirical [| 10.; 20.; 30. |] in
  Alcotest.(check (float 1e-9)) "mean" 20. (D.mean d);
  Alcotest.(check (float 1e-9)) "variance" (200. /. 3.) (D.variance d);
  let g = Rng.create 3 in
  for _ = 1 to 500 do
    let x = D.sample d g in
    if not (List.mem x [ 10.; 20.; 30. ]) then Alcotest.failf "unexpected sample %g" x
  done;
  check_sampling "empirical" d

let test_empirical_invalid () =
  (match D.validate (D.Empirical [||]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty empirical accepted");
  match D.validate (D.Empirical [| 1.; -2. |]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative empirical sample accepted"

let prop_of_mean_scv_roundtrip =
  QCheck.Test.make ~name:"of_mean_scv reproduces (mean, scv) exactly" ~count:500
    QCheck.(pair (float_range 0.001 10_000.) (float_range 0. 8.))
    (fun (mean, scv) ->
      let d = D.of_mean_scv ~mean ~scv in
      Float.abs (D.mean d -. mean) <= 1e-6 *. mean
      && Float.abs (D.scv d -. scv) <= 1e-6 *. Float.max 1. scv)

let prop_residual_consistent =
  QCheck.Test.make ~name:"residual_mean = (1+C2)/2 * mean" ~count:200
    QCheck.(pair (float_range 0.001 1000.) (float_range 0. 5.))
    (fun (mean, scv) ->
      let d = D.of_mean_scv ~mean ~scv in
      let expected = (1. +. D.scv d) /. 2. *. D.mean d in
      Float.abs (D.residual_mean d -. expected) <= 1e-9 *. Float.max 1. expected)

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "exponential moments" `Quick test_exponential_moments;
    Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
    Alcotest.test_case "erlang moments" `Quick test_erlang_moments;
    Alcotest.test_case "hyperexponential moments" `Quick test_hyperexponential_moments;
    Alcotest.test_case "shifted exponential moments" `Quick test_shifted_exponential_moments;
    Alcotest.test_case "residual mean (Eq 5.8)" `Quick test_residual_mean;
    Alcotest.test_case "of_mean_scv exact" `Quick test_of_mean_scv_exact;
    Alcotest.test_case "of_mean_scv shapes" `Quick test_of_mean_scv_shapes;
    Alcotest.test_case "of_mean_scv invalid" `Quick test_of_mean_scv_invalid;
    Alcotest.test_case "validate rejects bad parameters" `Quick test_validate;
    Alcotest.test_case "samples non-negative" `Quick test_samples_nonnegative;
    Alcotest.test_case "zero mean edge cases" `Quick test_zero_mean_edge;
    Alcotest.test_case "empirical distribution" `Quick test_empirical;
    Alcotest.test_case "empirical validation" `Quick test_empirical_invalid;
    QCheck_alcotest.to_alcotest prop_of_mean_scv_roundtrip;
    QCheck_alcotest.to_alcotest prop_residual_consistent;
  ]
