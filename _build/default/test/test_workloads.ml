(* Tests for lopc_workloads: matvec parameterization (§3) and the
   pattern lowerings. *)

module Matvec = Lopc_workloads.Matvec
module Pattern = Lopc_workloads.Pattern
module Sample_sort = Lopc_workloads.Sample_sort
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module G = Lopc.General

let feq tol = Alcotest.(check (float tol))

let test_matvec_counts () =
  (* N = 64, P = 8: each node owns 8 rows; m = 8·64 madds;
     n = 8·7 puts; W = 64/7 · madd. *)
  let mv = Matvec.create ~matrix_dim:64 ~p:8 ~madd_cost:4. in
  Alcotest.(check int) "messages" 56 (Matvec.messages_per_node mv);
  Alcotest.(check int) "madds" 512 (Matvec.madds_per_node mv);
  feq 1e-9 "W" (64. /. 7. *. 4.) (Matvec.work_between_requests mv)

let test_matvec_w_equals_m_over_n () =
  let mv = Matvec.create ~matrix_dim:96 ~p:16 ~madd_cost:2.5 in
  let m = Float.of_int (Matvec.madds_per_node mv) *. 2.5 in
  let n = Float.of_int (Matvec.messages_per_node mv) in
  feq 1e-9 "W = m/n (paper section 3)" (m /. n) (Matvec.work_between_requests mv)

let test_matvec_characterize () =
  let mv = Matvec.create ~matrix_dim:64 ~p:8 ~madd_cost:4. in
  let alg = Matvec.characterize mv in
  Alcotest.(check int) "n" 56 alg.Lopc.Params.n;
  feq 1e-9 "w" (Matvec.work_between_requests mv) alg.Lopc.Params.w

let test_matvec_validation () =
  List.iter
    (fun thunk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Matvec.create ~matrix_dim:65 ~p:8 ~madd_cost:1.);
      (fun () -> Matvec.create ~matrix_dim:64 ~p:1 ~madd_cost:1.);
      (fun () -> Matvec.create ~matrix_dim:64 ~p:8 ~madd_cost:0.);
    ]

let test_matvec_runtimes_ordered () =
  let mv = Matvec.create ~matrix_dim:256 ~p:16 ~madd_cost:4. in
  let params = Lopc.Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
  let lopc = Matvec.lopc_runtime params mv in
  let logp = Matvec.logp_runtime params mv in
  Alcotest.(check bool) "LoPC above LogP" true (lopc > logp);
  (* The gap is about one handler per message. *)
  let per_message = (lopc -. logp) /. Float.of_int (Matvec.messages_per_node mv) in
  Alcotest.(check bool) "gap ~ one handler" true (per_message > 100. && per_message < 300.)

let test_matvec_p_mismatch () =
  let mv = Matvec.create ~matrix_dim:64 ~p:8 ~madd_cost:1. in
  let params = Lopc.Params.create ~p:16 ~st:1. ~so:1. () in
  Alcotest.(check bool) "P mismatch rejected" true
    (try
       ignore (Matvec.lopc_runtime params mv);
       false
     with Invalid_argument _ -> true)

let visit_row_sum (net : G.t) c =
  Array.fold_left ( +. ) 0. net.G.nodes.(c).G.visits

let test_pattern_visit_rows_stochastic () =
  let params = Lopc.Params.create ~p:16 ~st:1. ~so:1. () in
  List.iter
    (fun (pat, hops) ->
      let net = Pattern.to_general params ~w:100. pat in
      Array.iteri
        (fun c spec ->
          match spec.G.work with
          | None -> ()
          | Some _ ->
            let sum = visit_row_sum net c in
            if Float.abs (sum -. hops) > 1e-9 then
              Alcotest.failf "%s: row %d sums to %g, expected %g"
                (Pattern.description pat) c sum hops)
        net.G.nodes)
    [
      (Pattern.All_to_all, 1.);
      (Pattern.All_to_all_staggered, 1.);
      (Pattern.Client_server { servers = 4 }, 1.);
      (Pattern.Hotspot { hot = 0; fraction = 0.3 }, 1.);
      (Pattern.Multi_hop { hops = 3 }, 3.);
    ]

let test_pattern_hotspot_row () =
  let params = Lopc.Params.create ~p:4 ~st:1. ~so:1. () in
  let net = Pattern.to_general params ~w:10. (Pattern.Hotspot { hot = 0; fraction = 0.4 }) in
  (* Thread 1: hot gets 0.4 + 0.6/3, others 0.6/3, self 0. *)
  let row = net.G.nodes.(1).G.visits in
  feq 1e-9 "hot node" (0.4 +. 0.2) row.(0);
  feq 1e-9 "self" 0. row.(1);
  feq 1e-9 "other" 0.2 row.(2)

let test_pattern_client_server_roles () =
  let params = Lopc.Params.create ~p:8 ~st:1. ~so:1. () in
  let net = Pattern.to_general params ~w:10. (Pattern.Client_server { servers = 3 }) in
  for c = 0 to 2 do
    Alcotest.(check bool) "server idle" true (net.G.nodes.(c).G.work = None)
  done;
  for c = 3 to 7 do
    Alcotest.(check bool) "client works" true (net.G.nodes.(c).G.work <> None)
  done

let test_pattern_spec_and_general_consistent () =
  (* Routes sampled from the spec must match the visit matrix given to the
     model, in the long run. *)
  let params = Lopc.Params.create ~p:8 ~st:1. ~so:1. () in
  let pat = Pattern.Hotspot { hot = 2; fraction = 0.25 } in
  let net = Pattern.to_general params ~w:100. pat in
  let spec =
    Pattern.to_spec ~nodes:8 ~work:(D.Constant 100.) ~handler:(D.Constant 1.)
      ~wire:(D.Constant 1.) pat
  in
  let origin = 5 in
  let thread =
    match spec.Spec.threads.(origin) with Some t -> t | None -> Alcotest.fail "thread"
  in
  let g = Lopc_prng.Rng.create 123 in
  let counts = Array.make 8 0 in
  let n = 40_000 in
  for _ = 1 to n do
    List.iter (fun d -> counts.(d) <- counts.(d) + 1) (thread.Spec.route g)
  done;
  Array.iteri
    (fun k c ->
      let observed = Float.of_int c /. Float.of_int n in
      let expected = net.G.nodes.(origin).G.visits.(k) in
      if Float.abs (observed -. expected) > 0.01 then
        Alcotest.failf "node %d: observed %g vs visit ratio %g" k observed expected)
    counts

let test_pattern_validation () =
  List.iter
    (fun pat ->
      match Pattern.validate ~nodes:8 pat with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" (Pattern.description pat))
    [
      Pattern.Client_server { servers = 0 };
      Pattern.Client_server { servers = 8 };
      Pattern.Hotspot { hot = 9; fraction = 0.5 };
      Pattern.Hotspot { hot = 0; fraction = 1.5 };
      Pattern.Multi_hop { hops = 0 };
    ]

let test_pattern_descriptions () =
  List.iter
    (fun pat -> Alcotest.(check bool) "nonempty" true (String.length (Pattern.description pat) > 0))
    [
      Pattern.All_to_all;
      Pattern.All_to_all_staggered;
      Pattern.Client_server { servers = 2 };
      Pattern.Hotspot { hot = 0; fraction = 0.1 };
      Pattern.Multi_hop { hops = 2 };
    ]

let prop_matvec_w_shrinks_with_p =
  QCheck.Test.make ~name:"matvec W decreases as P grows (fixed N)" ~count:50
    QCheck.(int_range 1 5)
    (fun k ->
      let p1 = 4 * k and p2 = 8 * k in
      let n = 8 * p1 * p2 in
      let w1 = Matvec.work_between_requests (Matvec.create ~matrix_dim:n ~p:p1 ~madd_cost:1.) in
      let w2 = Matvec.work_between_requests (Matvec.create ~matrix_dim:n ~p:p2 ~madd_cost:1.) in
      w2 < w1)

let test_sample_sort_counts () =
  let ss = Sample_sort.create ~keys:1024 ~p:8 ~key_cost:50. in
  Alcotest.(check int) "keys per node" 128 (Sample_sort.keys_per_node ss);
  feq 1e-9 "messages" (128. *. 7. /. 8.) (Sample_sort.messages_per_node ss);
  feq 1e-9 "W" (50. *. 8. /. 7.) (Sample_sort.work_between_requests ss)

let test_sample_sort_total_work_conserved () =
  (* n * W must equal the total per-node key processing cost. *)
  let ss = Sample_sort.create ~keys:4096 ~p:16 ~key_cost:30. in
  let total = Sample_sort.messages_per_node ss *. Sample_sort.work_between_requests ss in
  feq 1e-6 "n*W = keys/p * cost" (4096. /. 16. *. 30.) total

let test_sample_sort_runtimes () =
  let ss = Sample_sort.create ~keys:8192 ~p:16 ~key_cost:100. in
  let params = Lopc.Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
  let lopc = Sample_sort.lopc_runtime params ss in
  let logp = Sample_sort.logp_runtime params ss in
  Alcotest.(check bool) "LoPC above LogP" true (lopc > logp);
  (* Fine-grain puts: the contention penalty is substantial. *)
  Alcotest.(check bool) "penalty > 15%" true ((lopc -. logp) /. logp > 0.15)

let test_sample_sort_validation () =
  List.iter
    (fun thunk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Sample_sort.create ~keys:100 ~p:8 ~key_cost:1.);
      (fun () -> Sample_sort.create ~keys:128 ~p:1 ~key_cost:1.);
      (fun () -> Sample_sort.create ~keys:128 ~p:8 ~key_cost:0.);
    ]

let suite =
  [
    Alcotest.test_case "matvec counts" `Quick test_matvec_counts;
    Alcotest.test_case "matvec W = m/n" `Quick test_matvec_w_equals_m_over_n;
    Alcotest.test_case "matvec characterize" `Quick test_matvec_characterize;
    Alcotest.test_case "matvec validation" `Quick test_matvec_validation;
    Alcotest.test_case "matvec LoPC vs LogP" `Quick test_matvec_runtimes_ordered;
    Alcotest.test_case "matvec P mismatch" `Quick test_matvec_p_mismatch;
    Alcotest.test_case "pattern rows stochastic" `Quick test_pattern_visit_rows_stochastic;
    Alcotest.test_case "pattern hotspot row" `Quick test_pattern_hotspot_row;
    Alcotest.test_case "pattern client-server roles" `Quick test_pattern_client_server_roles;
    Alcotest.test_case "pattern spec/model consistency" `Slow test_pattern_spec_and_general_consistent;
    Alcotest.test_case "pattern validation" `Quick test_pattern_validation;
    Alcotest.test_case "pattern descriptions" `Quick test_pattern_descriptions;
    QCheck_alcotest.to_alcotest prop_matvec_w_shrinks_with_p;
    Alcotest.test_case "sample sort counts" `Quick test_sample_sort_counts;
    Alcotest.test_case "sample sort work conservation" `Quick test_sample_sort_total_work_conserved;
    Alcotest.test_case "sample sort runtimes" `Quick test_sample_sort_runtimes;
    Alcotest.test_case "sample sort validation" `Quick test_sample_sort_validation;
  ]
