(* Tests for lopc_mva: exact MVA ground truths, AMVA agreement, priority
   approximations, multi-class consistency. *)

module Station = Lopc_mva.Station
module Solution = Lopc_mva.Solution
module Exact = Lopc_mva.Exact_mva
module Amva = Lopc_mva.Amva
module Multiclass = Lopc_mva.Multiclass
module Priority = Lopc_mva.Priority

let feq tol = Alcotest.(check (float tol))

let test_exact_single_customer () =
  (* One customer never queues: X = 1 / (Z + sum of demands). *)
  let stations = [| Station.queueing ~demand:2. (); Station.queueing ~demand:3. () |] in
  let s = Exact.solve ~think_time:5. ~stations ~population:1 () in
  feq 1e-12 "throughput" 0.1 s.Solution.throughput;
  feq 1e-12 "R0" 2. s.Solution.residence.(0);
  feq 1e-12 "R1" 3. s.Solution.residence.(1)

let test_exact_machine_repairman () =
  (* Classic machine-repairman: N machines, think Z, one repair station
     with demand D. Closed-form for N=2, Z=1, D=1:
     n=1: R=1, X=1/2, Q=1/2.
     n=2: R=1·(1+1/2)=3/2, X=2/(1+3/2)=4/5, Q=6/5. *)
  let stations = [| Station.queueing ~demand:1. () |] in
  let s = Exact.solve ~think_time:1. ~stations ~population:2 () in
  feq 1e-12 "X" 0.8 s.Solution.throughput;
  feq 1e-12 "Q" 1.2 s.Solution.queue_length.(0);
  feq 1e-12 "U" 0.8 s.Solution.utilization.(0)

let test_exact_little_law () =
  let stations =
    [| Station.queueing ~demand:1. (); Station.delay ~demand:4.; Station.queueing ~demand:0.5 () |]
  in
  let s = Exact.solve ~think_time:2. ~stations ~population:7 () in
  (* Sum of queue lengths plus customers "in think" equals N. *)
  let in_think = s.Solution.throughput *. 2. in
  let total = in_think +. Array.fold_left ( +. ) 0. s.Solution.queue_length in
  feq 1e-9 "customers conserved" 7. total

let test_exact_delay_station_no_queueing () =
  let stations = [| Station.delay ~demand:3. |] in
  let s = Exact.solve ~stations ~population:10 () in
  feq 1e-12 "R = demand" 3. s.Solution.residence.(0);
  feq 1e-12 "X = N/D" (10. /. 3.) s.Solution.throughput

let test_exact_throughput_curve_monotone () =
  let stations = [| Station.queueing ~demand:1. (); Station.queueing ~demand:2. () |] in
  let xs = Exact.throughput_curve ~think_time:3. ~stations ~max_population:20 () in
  for i = 1 to 19 do
    if xs.(i) < xs.(i - 1) -. 1e-12 then Alcotest.fail "throughput decreased with N"
  done;
  (* Asymptote: bottleneck bound 1/Dmax = 0.5. *)
  Alcotest.(check bool) "below bottleneck bound" true (xs.(19) <= 0.5 +. 1e-9)

let test_exact_invalid () =
  Alcotest.(check bool) "negative population rejected" true
    (try
       ignore (Exact.solve ~stations:[| Station.queueing ~demand:1. () |] ~population:(-1) ());
       false
     with Invalid_argument _ -> true)

let amva_vs_exact approximation ~n ~expect_within =
  let stations = [| Station.queueing ~demand:1. (); Station.queueing ~demand:0.7 () |] in
  let exact = Exact.solve ~think_time:5. ~stations ~population:n () in
  let approx =
    Amva.solve ~approximation ~use_scv:false ~think_time:5. ~stations ~population:n ()
  in
  let err =
    Float.abs (approx.Solution.throughput -. exact.Solution.throughput)
    /. exact.Solution.throughput
  in
  if err > expect_within then
    Alcotest.failf "AMVA error %.4f exceeds %.4f (X exact %g vs approx %g)" err
      expect_within exact.Solution.throughput approx.Solution.throughput

(* Known accuracy envelopes: Schweitzer a few percent at moderate N; Bard
   somewhat worse (it counts the arriving customer) but shrinking with N. *)
let test_schweitzer_close_to_exact () = amva_vs_exact Amva.Schweitzer ~n:10 ~expect_within:0.06

let test_bard_close_to_exact_large_n () = amva_vs_exact Amva.Bard ~n:50 ~expect_within:0.03

let test_schweitzer_beats_bard () =
  let stations = [| Station.queueing ~demand:1. (); Station.queueing ~demand:0.7 () |] in
  let exact = Exact.solve ~think_time:5. ~stations ~population:10 () in
  let err approximation =
    let s = Amva.solve ~approximation ~use_scv:false ~think_time:5. ~stations ~population:10 () in
    Float.abs (s.Solution.throughput -. exact.Solution.throughput)
  in
  Alcotest.(check bool) "schweitzer at least as accurate" true
    (err Amva.Schweitzer <= err Amva.Bard +. 1e-12)

let test_bard_pessimistic () =
  (* Bard counts the arriving customer itself, so it over-predicts queue
     lengths => under-predicts throughput. *)
  let stations = [| Station.queueing ~demand:1. () |] in
  let exact = Exact.solve ~think_time:2. ~stations ~population:5 () in
  let bard = Amva.solve ~approximation:Amva.Bard ~use_scv:false ~think_time:2. ~stations ~population:5 () in
  Alcotest.(check bool) "bard underestimates X" true
    (bard.Solution.throughput <= exact.Solution.throughput +. 1e-9)

let test_amva_population_zero () =
  let stations = [| Station.queueing ~demand:1. () |] in
  let s = Amva.solve ~stations ~population:0 () in
  feq 0. "zero throughput" 0. s.Solution.throughput

let test_amva_scv_reduces_waiting () =
  (* Constant service (scv 0) queues less than exponential (scv 1). *)
  let solve scv =
    let stations = [| Station.queueing ~scv ~demand:1. () |] in
    (Amva.solve ~think_time:1. ~stations ~population:8 ()).Solution.throughput
  in
  Alcotest.(check bool) "X(scv=0) > X(scv=1)" true (solve 0. > solve 1.);
  Alcotest.(check bool) "X(scv=2) < X(scv=1)" true (solve 2. < solve 1.)

let test_priority_bkt () =
  feq 1e-12 "no handlers" 10. (Priority.bkt ~work:10. ~handler_service:2. ~handler_queue:0. ~handler_util:0.);
  (* Half the processor stolen doubles the effective time. *)
  feq 1e-12 "dilation" 20. (Priority.bkt ~work:10. ~handler_service:2. ~handler_queue:0. ~handler_util:0.5);
  (* Queued handler work is added before dilation. *)
  feq 1e-12 "queued work" 28. (Priority.bkt ~work:10. ~handler_service:2. ~handler_queue:2. ~handler_util:0.5)

let test_priority_bkt_dominates_shadow () =
  let bkt = Priority.bkt ~work:10. ~handler_service:2. ~handler_queue:1.5 ~handler_util:0.3 in
  let shadow = Priority.shadow_server ~work:10. ~handler_util:0.3 in
  Alcotest.(check bool) "bkt >= shadow" true (bkt >= shadow)

let test_priority_saturated () =
  Alcotest.(check bool) "util >= 1 rejected" true
    (try
       ignore (Priority.shadow_server ~work:1. ~handler_util:1.);
       false
     with Invalid_argument _ -> true)

let test_multiserver_reduces_to_single () =
  (* servers = 1 must change nothing. *)
  let demand = 1.3 in
  let solve servers =
    let stations = [| Station.queueing ~servers ~demand () |] in
    (Amva.solve ~think_time:4. ~stations ~population:10 ()).Solution.throughput
  in
  feq 1e-12 "c=1 unchanged" (solve 1)
    ((Amva.solve ~think_time:4.
        ~stations:[| Station.queueing ~demand () |]
        ~population:10 ())
       .Solution.throughput)

let test_multiserver_monotone () =
  let solve servers =
    let stations = [| Station.queueing ~servers ~demand:2. () |] in
    (Amva.solve ~think_time:2. ~stations ~population:20 ()).Solution.throughput
  in
  Alcotest.(check bool) "more servers, more throughput" true
    (solve 1 < solve 2 && solve 2 < solve 4)

let test_multiserver_delay_limit () =
  (* With many servers the station degenerates into a pure delay:
     X -> N / (Z + D). *)
  let stations = [| Station.queueing ~servers:64 ~demand:2. () |] in
  let s = Amva.solve ~think_time:2. ~stations ~population:8 () in
  Alcotest.(check bool) "close to delay limit" true
    (Float.abs (s.Solution.throughput -. (8. /. 4.)) /. 2. < 0.15)

let test_multiserver_rejected_by_exact () =
  let stations = [| Station.queueing ~servers:2 ~demand:1. () |] in
  Alcotest.(check bool) "exact solver refuses" true
    (try
       ignore (Exact.solve ~stations ~population:2 ());
       false
     with Invalid_argument _ -> true)

let test_multiclass_single_class_matches_amva () =
  let net =
    {
      Multiclass.think_times = [| 5. |];
      populations = [| 8 |];
      demands = [| [| 1.; 0.7 |] |];
      station_kinds = [| Station.Queueing; Station.Queueing |];
      station_scv = [| 1.; 1. |];
    }
  in
  let mc = Multiclass.solve net in
  let stations = [| Station.queueing ~demand:1. (); Station.queueing ~demand:0.7 () |] in
  let sc = Amva.solve ~think_time:5. ~stations ~population:8 () in
  feq 1e-6 "same throughput" sc.Solution.throughput mc.Multiclass.throughput.(0)

let test_multiclass_symmetric_classes () =
  (* Two identical classes must get identical throughput. *)
  let net =
    {
      Multiclass.think_times = [| 3.; 3. |];
      populations = [| 4; 4 |];
      demands = [| [| 1.; 0.5 |]; [| 1.; 0.5 |] |];
      station_kinds = [| Station.Queueing; Station.Queueing |];
      station_scv = [| 1.; 1. |];
    }
  in
  let s = Multiclass.solve net in
  feq 1e-9 "symmetry" s.Multiclass.throughput.(0) s.Multiclass.throughput.(1)

let test_multiclass_empty_class () =
  let net =
    {
      Multiclass.think_times = [| 3.; 3. |];
      populations = [| 4; 0 |];
      demands = [| [| 1. |]; [| 1. |] |];
      station_kinds = [| Station.Queueing |];
      station_scv = [| 1.; |];
    }
  in
  let s = Multiclass.solve net in
  feq 0. "empty class idle" 0. s.Multiclass.throughput.(1);
  Alcotest.(check bool) "other class runs" true (s.Multiclass.throughput.(0) > 0.)

let test_multiclass_validate () =
  let bad =
    {
      Multiclass.think_times = [| 1. |];
      populations = [| 1; 2 |];
      demands = [| [| 1. |] |];
      station_kinds = [| Station.Queueing |];
      station_scv = [| 1. |];
    }
  in
  match Multiclass.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shape mismatch accepted"

let test_solution_little_consistent () =
  let stations = [| Station.queueing ~demand:1. () |] in
  let s = Exact.solve ~stations ~population:4 () in
  Alcotest.(check bool) "little holds with Z=0" true
    (Solution.little_consistent ~population:4 s)

let prop_exact_mva_bounds =
  (* Throughput never exceeds min(N / (Z + sum D), 1 / Dmax). *)
  QCheck.Test.make ~name:"exact MVA respects asymptotic bounds" ~count:200
    QCheck.(
      quad (int_range 1 30) (float_range 0.1 10.) (float_range 0.1 10.) (float_range 0. 20.))
    (fun (n, d1, d2, z) ->
      let stations = [| Station.queueing ~demand:d1 (); Station.queueing ~demand:d2 () |] in
      let s = Exact.solve ~think_time:z ~stations ~population:n () in
      let x = s.Solution.throughput in
      x <= (Float.of_int n /. (z +. d1 +. d2)) +. 1e-9
      && x <= (1. /. Float.max d1 d2) +. 1e-9
      && x >= 0.)

let prop_bard_below_exact =
  QCheck.Test.make ~name:"Bard AMVA throughput <= exact" ~count:100
    QCheck.(triple (int_range 2 20) (float_range 0.1 5.) (float_range 0.5 10.))
    (fun (n, d, z) ->
      let stations = [| Station.queueing ~demand:d () |] in
      let exact = Exact.solve ~think_time:z ~stations ~population:n () in
      let bard = Amva.solve ~approximation:Amva.Bard ~use_scv:false ~think_time:z ~stations ~population:n () in
      bard.Solution.throughput <= exact.Solution.throughput +. 1e-6)

let suite =
  [
    Alcotest.test_case "exact: single customer" `Quick test_exact_single_customer;
    Alcotest.test_case "exact: machine repairman closed form" `Quick test_exact_machine_repairman;
    Alcotest.test_case "exact: Little's law" `Quick test_exact_little_law;
    Alcotest.test_case "exact: delay stations never queue" `Quick test_exact_delay_station_no_queueing;
    Alcotest.test_case "exact: throughput curve monotone" `Quick test_exact_throughput_curve_monotone;
    Alcotest.test_case "exact: invalid input" `Quick test_exact_invalid;
    Alcotest.test_case "schweitzer close to exact" `Quick test_schweitzer_close_to_exact;
    Alcotest.test_case "bard close to exact at large N" `Quick test_bard_close_to_exact_large_n;
    Alcotest.test_case "schweitzer beats bard" `Quick test_schweitzer_beats_bard;
    Alcotest.test_case "bard is pessimistic" `Quick test_bard_pessimistic;
    Alcotest.test_case "amva population zero" `Quick test_amva_population_zero;
    Alcotest.test_case "amva scv correction direction" `Quick test_amva_scv_reduces_waiting;
    Alcotest.test_case "priority BKT formula" `Quick test_priority_bkt;
    Alcotest.test_case "priority BKT dominates shadow server" `Quick test_priority_bkt_dominates_shadow;
    Alcotest.test_case "priority saturation rejected" `Quick test_priority_saturated;
    Alcotest.test_case "multiserver: c=1 unchanged" `Quick test_multiserver_reduces_to_single;
    Alcotest.test_case "multiserver: monotone in c" `Quick test_multiserver_monotone;
    Alcotest.test_case "multiserver: delay limit" `Quick test_multiserver_delay_limit;
    Alcotest.test_case "multiserver: exact solver refuses" `Quick test_multiserver_rejected_by_exact;
    Alcotest.test_case "multiclass reduces to single class" `Quick test_multiclass_single_class_matches_amva;
    Alcotest.test_case "multiclass symmetric classes" `Quick test_multiclass_symmetric_classes;
    Alcotest.test_case "multiclass empty class" `Quick test_multiclass_empty_class;
    Alcotest.test_case "multiclass validation" `Quick test_multiclass_validate;
    Alcotest.test_case "solution little consistency" `Quick test_solution_little_consistent;
    QCheck_alcotest.to_alcotest prop_exact_mva_bounds;
    QCheck_alcotest.to_alcotest prop_bard_below_exact;
  ]
