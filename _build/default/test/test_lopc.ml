(* Tests for the LoPC core model: parameters, LogP baseline, all-to-all
   solutions and bounds, client-server optimum, the general model. *)

module Params = Lopc.Params
module Logp = Lopc.Logp
module A = Lopc.All_to_all
module CS = Lopc.Client_server
module G = Lopc.General
module Polynomial = Lopc_numerics.Polynomial

let feq tol = Alcotest.(check (float tol))

let params ?(c2 = 0.) ?(p = 32) ?(st = 40.) ?(so = 200.) () = Params.create ~c2 ~p ~st ~so ()

(* --- parameters --------------------------------------------------------- *)

let test_params_validation () =
  List.iter
    (fun thunk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> Params.create ~p:0 ~st:1. ~so:1. ());
      (fun () -> Params.create ~p:2 ~st:(-1.) ~so:1. ());
      (fun () -> Params.create ~p:2 ~st:1. ~so:0. ());
      (fun () -> Params.create ~c2:(-0.5) ~p:2 ~st:1. ~so:1. ());
    ]

let test_params_of_logp () =
  let t = Params.of_logp ~l:10. ~o:5. ~p:16 in
  feq 0. "St = L" 10. t.Params.st;
  feq 0. "So = o" 5. t.Params.so;
  feq 0. "C2 default exponential" 1. t.Params.c2;
  Alcotest.(check int) "P" 16 t.Params.p

let test_algorithm_validation () =
  Alcotest.(check bool) "negative n rejected" true
    (try
       ignore (Params.algorithm ~n:(-1) ~w:1.);
       false
     with Invalid_argument _ -> true)

let test_table31_rows () =
  Alcotest.(check int) "five parameter rows" 5 (List.length Params.logp_correspondence)

(* --- LogP baseline ------------------------------------------------------- *)

let test_logp_cycle () =
  feq 0. "W + 2St + 2So" 1480. (Logp.cycle_time (params ()) ~w:1000.)

let test_logp_total () =
  let alg = Params.algorithm ~n:100 ~w:1000. in
  feq 0. "n cycles" 148_000. (Logp.total_runtime (params ()) alg)

let test_logp_workpile_bounds () =
  let p = params ~so:131. () in
  feq 1e-9 "server bound" (8. /. 131.) (Logp.server_bound p ~servers:8);
  feq 1e-9 "client bound" (24. /. (1000. +. 80. +. 262.)) (Logp.client_bound p ~w:1000. ~clients:24);
  let b = Logp.workpile_bound p ~w:1000. ~servers:8 ~clients:24 in
  Alcotest.(check bool) "min of the two" true
    (b <= Logp.server_bound p ~servers:8 && b <= Logp.client_bound p ~w:1000. ~clients:24)

(* --- all-to-all ---------------------------------------------------------- *)

let test_all_to_all_bounds_hold () =
  let p = params () in
  List.iter
    (fun w ->
      let s = A.solve p ~w in
      let lb = A.lower_bound p ~w and ub = A.upper_bound p ~w in
      if not (s.A.r > lb && s.A.r < ub) then
        Alcotest.failf "W=%g: R=%g outside (%g, %g)" w s.A.r lb ub)
    [ 0.; 2.; 10.; 100.; 500.; 1000.; 2048.; 10_000. ]

let test_rule_of_thumb_346 () =
  (* Eq 5.12: the C2=0 constant is 3.46. *)
  let k = A.rule_of_thumb_constant ~c2:0. in
  Alcotest.(check bool) "k in [3.4, 3.47]" true (k > 3.4 && k < 3.47)

let test_rule_of_thumb_grows_with_c2 () =
  let k0 = A.rule_of_thumb_constant ~c2:0. in
  let k1 = A.rule_of_thumb_constant ~c2:1. in
  let k2 = A.rule_of_thumb_constant ~c2:2. in
  Alcotest.(check bool) "monotone in C2" true (k0 < k1 && k1 < k2)

let test_contention_about_one_handler () =
  (* §5.3: "to a first approximation the cost of contention is equal to
     the cost of processing an extra message". *)
  let p = params () in
  List.iter
    (fun w ->
      let s = A.solve p ~w in
      let ratio = s.A.contention /. p.Params.so in
      if not (ratio > 0.5 && ratio < 1.5) then
        Alcotest.failf "W=%g: contention %g not ~ one handler (%g)" w s.A.contention
          p.Params.so)
    [ 100.; 500.; 1000.; 2048. ]

let test_solution_methods_agree () =
  let p = params ~c2:1. () in
  List.iter
    (fun w ->
      let b = (A.solve ~solve_method:A.Brent_on_residual p ~w).A.r in
      let i = (A.solve ~solve_method:A.Damped_iteration p ~w).A.r in
      let q = (A.solve ~solve_method:A.Polynomial_roots p ~w).A.r in
      feq 1e-4 "brent vs iteration" b i;
      feq 1e-4 "brent vs polynomial" b q)
    [ 0.; 100.; 1000. ]

let test_solution_is_fixed_point () =
  let p = params ~c2:0.5 () in
  let s = A.solve p ~w:750. in
  feq 1e-6 "F(R) = R" s.A.r (A.fixed_point_map p ~w:750. s.A.r)

let test_solution_internal_consistency () =
  let p = params ~c2:1. () in
  let s = A.solve p ~w:1000. in
  feq 1e-9 "R decomposes" s.A.r (s.A.rw +. (2. *. p.Params.st) +. s.A.rq +. s.A.ry);
  feq 1e-9 "Uq = So/R" (p.Params.so /. s.A.r) s.A.uq;
  feq 1e-9 "Qq = Rq/R (Little)" (s.A.rq /. s.A.r) s.A.qq;
  feq 1e-9 "Qy = Ry/R (Little)" (s.A.ry /. s.A.r) s.A.qy;
  feq 1e-9 "X = P/R" (32. /. s.A.r) s.A.throughput

let test_c2_gap_about_6_percent () =
  (* §5.2: difference between C2=0 and C2=1 predictions is about 6%
     (at W=1000 with the figure's handler range). *)
  let r0 = (A.solve (params ~c2:0. ~so:512. ()) ~w:1000.).A.r in
  let r1 = (A.solve (params ~c2:1. ~so:512. ()) ~w:1000.).A.r in
  let gap = (r1 -. r0) /. r0 in
  Alcotest.(check bool) "gap in (2%, 10%)" true (gap > 0.02 && gap < 0.10)

let test_protocol_processor_faster () =
  let p = params ~c2:1. () in
  let mp = A.solve p ~w:1000. in
  let pp = A.solve ~execution:A.Protocol_processor p ~w:1000. in
  Alcotest.(check bool) "PP removes thread interference" true (pp.A.r < mp.A.r);
  feq 1e-9 "PP Rw = W" 1000. pp.A.rw

let test_quartic_degree () =
  (* §5.3: the cleared system is a polynomial of low degree with the cycle
     time among its roots. *)
  let p = params ~c2:0. () in
  let poly = A.quartic p ~w:1000. in
  Alcotest.(check bool) "degree between 3 and 5" true
    (Polynomial.degree poly >= 3 && Polynomial.degree poly <= 5);
  let r = (A.solve p ~w:1000.).A.r in
  let scale = Polynomial.eval poly (1.5 *. r) in
  Alcotest.(check bool) "solution is a root" true
    (Float.abs (Polynomial.eval poly r) < 1e-6 *. Float.abs scale)

let test_contention_fraction_monotone_decreasing_in_w () =
  let p = params () in
  let f w = A.contention_fraction p ~w in
  Alcotest.(check bool) "more work, less contention share" true
    (f 10. > f 100. && f 100. > f 1000. && f 1000. > f 10_000.)

let test_total_runtime () =
  let p = params ~c2:1. () in
  let alg = Params.algorithm ~n:50 ~w:1000. in
  feq 1e-6 "n R" (50. *. (A.solve p ~w:1000.).A.r) (A.total_runtime p alg)

let test_logp_underestimates_lopc () =
  let p = params ~c2:1. () in
  List.iter
    (fun w ->
      Alcotest.(check bool) "LogP < LoPC" true
        (Logp.cycle_time p ~w < (A.solve p ~w).A.r))
    [ 0.; 100.; 1000. ]

let prop_bounds_hold_everywhere =
  QCheck.Test.make ~name:"Eq 5.12 bounds hold across parameter space" ~count:300
    QCheck.(
      quad (int_range 2 512) (float_range 0. 500.) (float_range 1. 2000.)
        (float_range 0. 4000.))
    (fun (p, st, so, w) ->
      let params = Params.create ~c2:0. ~p ~st ~so () in
      let s = A.solve params ~w in
      let lb = w +. (2. *. st) +. (2. *. so) in
      let ub = w +. (2. *. st) +. (3.47 *. so) in
      s.A.r >= lb -. 1e-6 && s.A.r <= ub +. 1e-6)

let prop_r_increases_with_w =
  QCheck.Test.make ~name:"cycle time monotone in W" ~count:100
    QCheck.(pair (float_range 0. 2000.) (float_range 0.1 500.))
    (fun (w, dw) ->
      let p = params ~c2:1. () in
      (A.solve p ~w:(w +. dw)).A.r > (A.solve p ~w).A.r)

let prop_methods_agree =
  QCheck.Test.make ~name:"all three solvers agree" ~count:100
    QCheck.(
      quad (int_range 2 128) (float_range 0. 200.) (float_range 10. 1000.)
        (float_range 0. 3000.))
    (fun (p, st, so, w) ->
      let params = Params.create ~c2:0. ~p ~st ~so () in
      let b = (A.solve ~solve_method:A.Brent_on_residual params ~w).A.r in
      let q = (A.solve ~solve_method:A.Polynomial_roots params ~w).A.r in
      Float.abs (b -. q) < 1e-3 *. b)

(* --- client-server ------------------------------------------------------- *)

let cs_params = Params.create ~c2:1. ~p:32 ~st:40. ~so:131. ()

let test_cs_rs_closed_form () =
  (* C2 = 1: Rs = 2 So. *)
  feq 1e-9 "Rs = 2So" 262. (CS.server_residence_at_optimum cs_params);
  (* C2 = 0: Rs = So (1 + sqrt(1/2)). *)
  let p0 = Params.create ~c2:0. ~p:32 ~st:40. ~so:131. () in
  feq 1e-9 "Rs C2=0" (131. *. (1. +. sqrt 0.5)) (CS.server_residence_at_optimum p0)

let test_cs_optimum_matches_curve_argmax () =
  List.iter
    (fun w ->
      let curve = CS.throughput_curve cs_params ~w in
      let best = ref 0 in
      Array.iteri
        (fun i (s : CS.solution) ->
          if s.CS.throughput > curve.(!best).CS.throughput then best := i)
        curve;
      let argmax = curve.(!best).CS.servers in
      let predicted = CS.optimal_servers cs_params ~w in
      if abs (argmax - predicted) > 1 then
        Alcotest.failf "W=%g: curve argmax %d vs Eq 6.8 %d" w argmax predicted)
    [ 200.; 500.; 1000.; 2000.; 4000. ]

let test_cs_queue_is_one_at_optimum () =
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "Qs ~ 1 at optimum (W=%g)" w)
        true
        (CS.optimum_queue_is_one cs_params ~w))
    [ 500.; 1000.; 2000. ]

let test_cs_below_logp_bounds () =
  (* The model's throughput must respect the optimistic LogP bounds. *)
  Array.iter
    (fun (s : CS.solution) ->
      let bound =
        Logp.workpile_bound cs_params ~w:1000. ~servers:s.CS.servers ~clients:s.CS.clients
      in
      if s.CS.throughput > bound +. 1e-9 then
        Alcotest.failf "Ps=%d: X=%g exceeds LogP bound %g" s.CS.servers s.CS.throughput
          bound)
    (CS.throughput_curve cs_params ~w:1000.)

let test_cs_invalid () =
  Alcotest.(check bool) "servers out of range" true
    (try
       ignore (CS.throughput cs_params ~w:10. ~servers:32);
       false
     with Invalid_argument _ -> true)

let test_cs_utilization_below_one () =
  Array.iter
    (fun (s : CS.solution) ->
      if s.CS.server_util >= 1. then
        Alcotest.failf "Ps=%d: utilization %g >= 1" s.CS.servers s.CS.server_util)
    (CS.throughput_curve cs_params ~w:200.)

let prop_cs_optimum_interior =
  QCheck.Test.make ~name:"Eq 6.8 optimum lies strictly inside (0, P)" ~count:200
    QCheck.(
      quad (int_range 4 256) (float_range 0. 200.) (float_range 10. 500.)
        (float_range 0. 5000.))
    (fun (p, st, so, w) ->
      let params = Params.create ~c2:1. ~p ~st ~so () in
      let ps = CS.optimal_servers_real params ~w in
      ps > 0. && ps < Float.of_int p)

(* --- execution modes ------------------------------------------------------ *)

let test_polling_rw_is_w () =
  let p = params ~c2:1. () in
  let s = A.solve ~execution:A.Polling p ~w:500. in
  feq 1e-9 "Rw = W" 500. s.A.rw

let test_polling_crossover () =
  (* Polling beats interrupts at fine grain and loses at coarse grain. *)
  let p = params ~c2:1. () in
  let diff w =
    (A.solve ~execution:A.Polling p ~w).A.r -. (A.solve p ~w).A.r
  in
  Alcotest.(check bool) "polling wins at W=0" true (diff 0. < 0.);
  Alcotest.(check bool) "interrupts win at W=2000" true (diff 2000. > 0.)

let test_pp_dominates_both () =
  let p = params ~c2:1. () in
  List.iter
    (fun w ->
      let pp = (A.solve ~execution:A.Protocol_processor p ~w).A.r in
      Alcotest.(check bool) "pp <= interrupt" true (pp <= (A.solve p ~w).A.r +. 1e-9);
      Alcotest.(check bool) "pp <= polling" true
        (pp <= (A.solve ~execution:A.Polling p ~w).A.r +. 1e-9))
    [ 0.; 200.; 1000.; 4000. ]

let test_polling_work_scv_matters () =
  (* Higher work variability lengthens the residual quantum handlers wait
     for, so the polling cycle grows with work_scv. *)
  let p = params ~c2:1. () in
  let r scv = (A.solve ~execution:A.Polling ~work_scv:scv p ~w:1000.).A.r in
  Alcotest.(check bool) "monotone in work scv" true (r 0. < r 1. && r 1. < r 2.)

let test_work_scv_validation () =
  let p = params () in
  Alcotest.(check bool) "negative work_scv rejected" true
    (try
       ignore (A.solve ~work_scv:(-1.) p ~w:1.);
       false
     with Invalid_argument _ -> true)

(* --- calibration ------------------------------------------------------------ *)

module Cal = Lopc.Calibrate

let synthetic_observations ~p ~st ~so ws =
  let params = Params.create ~c2:1. ~p ~st ~so () in
  List.map (fun w -> (w, (A.solve params ~w).A.r)) ws

let test_calibrate_recovers_curve () =
  (* On noiseless model-generated data the unconstrained fit reproduces
     the curve essentially exactly. *)
  let observations = synthetic_observations ~p:32 ~st:40. ~so:200. [ 50.; 400.; 3200. ] in
  let f = Cal.fit ~p:32 ~observations () in
  Alcotest.(check bool) "tiny residual" true (f.Cal.relative_residual < 1e-4);
  List.iter
    (fun (_, measured, fitted) ->
      Alcotest.(check bool) "pointwise" true
        (Float.abs (fitted -. measured) /. measured < 1e-3))
    (Cal.predictions f ~observations)

let test_calibrate_pinned_st_identifies_so () =
  let observations =
    synthetic_observations ~p:32 ~st:40. ~so:200. [ 20.; 100.; 500.; 2500. ]
  in
  let f = Cal.fit ~fixed_st:40. ~p:32 ~observations () in
  feq 1. "So recovered" 200. f.Cal.params.Params.so;
  feq 0. "St pinned" 40. f.Cal.params.Params.st

let test_calibrate_validation () =
  Alcotest.(check bool) "one observation rejected" true
    (try
       ignore (Cal.fit ~p:4 ~observations:[ (1., 10.) ] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative time rejected" true
    (try
       ignore (Cal.fit ~p:4 ~observations:[ (1., 10.); (2., -1.) ] ());
       false
     with Invalid_argument _ -> true)

(* --- scaling guidance ------------------------------------------------------ *)

module Sc = Lopc.Scaling

let test_efficiency_bounds () =
  let p = params ~c2:1. () in
  List.iter
    (fun w ->
      let e = Sc.efficiency p ~w in
      Alcotest.(check bool) "in [0,1)" true (e >= 0. && e < 1.))
    [ 0.; 10.; 1000.; 100_000. ]

let test_efficiency_monotone () =
  let p = params ~c2:1. () in
  Alcotest.(check bool) "coarser grain, better efficiency" true
    (Sc.efficiency p ~w:100. < Sc.efficiency p ~w:1000.
    && Sc.efficiency p ~w:1000. < Sc.efficiency p ~w:10_000.)

let test_min_work_inverts_efficiency () =
  let p = params ~c2:1. () in
  List.iter
    (fun target ->
      let w = Sc.min_work_for_efficiency p ~target in
      feq 1e-4 "efficiency at threshold" target (Sc.efficiency p ~w))
    [ 0.25; 0.5; 0.8; 0.95 ]

let test_speedup_sublinear () =
  (* Strong scaling: speedup grows with P but sublinearly once grains get
     fine. *)
  let mk p = Params.create ~c2:1. ~p ~st:40. ~so:200. () in
  let total_work = 1.0e7 and requests = 100 in
  let s8 = Sc.speedup (mk 8) ~total_work ~requests in
  let s64 = Sc.speedup (mk 64) ~total_work ~requests in
  Alcotest.(check bool) "more P, more speedup" true (s64 > s8);
  Alcotest.(check bool) "below linear" true (s64 < 64.);
  Alcotest.(check bool) "s8 below 8" true (s8 < 8.)

let test_speedup_curve_shape () =
  let curve =
    Sc.speedup_curve ~p_values:[ 2; 8; 32; 128 ] ~st:40. ~so:200. ~total_work:1.0e6
      ~requests_per_node:50 ()
  in
  Alcotest.(check int) "four points" 4 (List.length curve);
  List.iter
    (fun (p, s) -> Alcotest.(check bool) "positive, sublinear" true (s > 0. && s <= Float.of_int p))
    curve

(* --- gap extension --------------------------------------------------------- *)

module Gp = Lopc.Gap

let test_gap_zero_recovers_base () =
  let p = params ~c2:1. () in
  let s = Gp.solve ~gap:0. p ~w:1000. in
  feq 1e-9 "same as base model" (A.solve p ~w:1000.).A.r s.Gp.r;
  feq 0. "penalty 0" 0. s.Gp.penalty

let test_gap_monotone () =
  let p = params ~c2:1. () in
  let r g = (Gp.solve ~gap:g p ~w:1000.).Gp.r in
  Alcotest.(check bool) "cycle grows with g" true (r 0. < r 10. && r 10. < r 100. && r 100. < r 400.)

let test_gap_lower_bound_respected () =
  let p = params ~c2:1. () in
  List.iter
    (fun g ->
      let s = Gp.solve ~gap:g p ~w:500. in
      Alcotest.(check bool) "above NI-aware contention-free cost" true
        (s.Gp.r >= Gp.lower_bound ~gap:g p ~w:500.))
    [ 0.; 20.; 100.; 300. ]

let test_tolerable_gap () =
  let p = params ~c2:1. () in
  let g = Gp.tolerable_gap p ~w:1000. in
  Alcotest.(check bool) "positive" true (g > 0.);
  (* At the threshold the penalty is exactly the target. *)
  let s = Gp.solve ~gap:g p ~w:1000. in
  Alcotest.(check bool) "penalty ~ 5%" true (Float.abs (s.Gp.penalty -. 0.05) < 1e-3);
  (* A small gap really is irrelevant — the paper's claim. *)
  Alcotest.(check bool) "g = 2 cycles is harmless" true
    ((Gp.solve ~gap:2. p ~w:1000.).Gp.penalty < 0.01)

let test_gap_validation () =
  let p = params () in
  Alcotest.(check bool) "negative gap rejected" true
    (try
       ignore (Gp.solve ~gap:(-1.) p ~w:1.);
       false
     with Invalid_argument _ -> true)

(* --- windowed (non-blocking) extension ----------------------------------- *)

module W = Lopc.Windowed

let test_windowed_one_matches_blocking () =
  let p = params ~c2:1. () in
  List.iter
    (fun w ->
      let blocking = (A.solve p ~w).A.r in
      let windowed = (W.solve ~window:1 p ~w).W.r in
      feq (1e-6 *. blocking) "same R" blocking windowed)
    [ 0.; 100.; 1000. ]

let test_windowed_monotone_rate () =
  let p = params ~c2:1. () in
  let rate k = (W.solve ~window:k p ~w:1000.).W.node_rate in
  let rec check k = if k > 8 then () else begin
    Alcotest.(check bool) "nondecreasing" true (rate k >= rate (k - 1) -. 1e-12);
    check (k + 1)
  end in
  check 2

let test_windowed_respects_saturation () =
  let p = params ~c2:1. () in
  let ceiling = W.saturation_rate p ~w:1000. in
  List.iter
    (fun k ->
      let s = W.solve ~window:k p ~w:1000. in
      Alcotest.(check bool) "below ceiling" true (s.W.node_rate <= ceiling +. 1e-12);
      Alcotest.(check bool) "util <= 1" true (s.W.processor_util <= 1. +. 1e-9))
    [ 1; 2; 4; 8; 16 ]

let test_windowed_speedup_curve () =
  let p = params ~c2:1. () in
  let curve = W.speedup_curve ~max_window:6 p ~w:1000. in
  Alcotest.(check int) "six points" 6 (Array.length curve);
  let _, s1 = curve.(0) in
  feq 1e-12 "speedup(1) = 1" 1. s1;
  Array.iter (fun (_, s) -> Alcotest.(check bool) "speedup >= 1" true (s >= 1. -. 1e-12)) curve

let test_windowed_validation () =
  let p = params () in
  Alcotest.(check bool) "window 0 rejected" true
    (try
       ignore (W.solve ~window:0 p ~w:1.);
       false
     with Invalid_argument _ -> true)

let prop_windowed_bounded =
  QCheck.Test.make ~name:"windowed rate in (0, saturation], util <= 1" ~count:150
    QCheck.(
      quad (int_range 1 12) (float_range 0. 200.) (float_range 10. 800.)
        (float_range 1. 4000.))
    (fun (window, st, so, w) ->
      let p = Params.create ~c2:1. ~p:16 ~st ~so () in
      let s = W.solve ~window p ~w in
      s.W.node_rate > 0.
      && s.W.node_rate <= W.saturation_rate p ~w +. 1e-12
      && s.W.processor_util <= 1. +. 1e-9)

let test_cs_threaded_servers () =
  (* Extra server threads help exactly where servers are the bottleneck. *)
  let x threads servers =
    (CS.throughput ~threads_per_server:threads cs_params ~w:1000. ~servers).CS.throughput
  in
  Alcotest.(check bool) "helps at Ps=1" true (x 2 1 > x 1 1 *. 1.2);
  (* Where clients are the bottleneck the gain is negligible. *)
  Alcotest.(check bool) "irrelevant at Ps=16" true (x 2 16 < x 1 16 *. 1.02);
  Alcotest.(check bool) "monotone" true (x 4 2 >= x 2 2 && x 2 2 >= x 1 2)

(* --- general (Appendix A) ------------------------------------------------ *)

let test_general_reduces_to_all_to_all () =
  let p = params ~c2:0. () in
  let direct = A.solve p ~w:1000. in
  let g = G.solve (G.homogeneous_all_to_all p ~w:1000.) in
  feq 1e-6 "same cycle time" direct.A.r g.G.cycle_times.(0);
  feq 1e-6 "same throughput" direct.A.throughput g.G.system_throughput;
  feq 1e-6 "same Qq" direct.A.qq g.G.node_solutions.(0).G.qq

let test_general_reduces_to_client_server () =
  let cs = CS.throughput cs_params ~w:1000. ~servers:5 in
  let g = G.solve (G.client_server cs_params ~w:1000. ~servers:5) in
  feq 1e-5 "same throughput" cs.CS.throughput g.G.system_throughput

let test_general_multi_hop_slower () =
  let p = params ~c2:1. () in
  let mk hops =
    {
      G.params = p;
      protocol_processor = false;
      nodes =
        Array.init 32 (fun c ->
            {
              G.work = Some 1000.;
              visits =
                Array.init 32 (fun k ->
                    if k = c then 0. else Float.of_int hops /. 31.);
            });
    }
  in
  let r1 = (G.solve (mk 1)).G.cycle_times.(0) in
  let r2 = (G.solve (mk 2)).G.cycle_times.(0) in
  let r3 = (G.solve (mk 3)).G.cycle_times.(0) in
  Alcotest.(check bool) "hops increase cycle time" true (r1 < r2 && r2 < r3);
  (* Each extra hop adds at least St + So. *)
  Alcotest.(check bool) "at least contention-free increment" true
    (r2 -. r1 >= p.Params.st +. p.Params.so)

let test_general_asymmetric_work () =
  (* Node 0 does double work: its cycle must be the longest. *)
  let p = params ~c2:1. ~p:8 () in
  let v = 1. /. 7. in
  let net =
    {
      G.params = p;
      protocol_processor = false;
      nodes =
        Array.init 8 (fun c ->
            {
              G.work = Some (if c = 0 then 2000. else 1000.);
              visits = Array.init 8 (fun k -> if k = c then 0. else v);
            });
    }
  in
  let s = G.solve net in
  for c = 1 to 7 do
    Alcotest.(check bool) "node 0 slowest" true (s.G.cycle_times.(0) > s.G.cycle_times.(c))
  done

let test_general_hotspot_contended () =
  (* The hot node must show the largest request queue. *)
  let p = params ~c2:1. ~p:8 () in
  let net = Lopc_workloads.Pattern.to_general p ~w:500. (Lopc_workloads.Pattern.Hotspot { hot = 0; fraction = 0.5 }) in
  let s = G.solve net in
  for k = 1 to 7 do
    Alcotest.(check bool) "hot node has longest queue" true
      (s.G.node_solutions.(0).G.qq > s.G.node_solutions.(k).G.qq)
  done

let test_general_validation () =
  let p = params ~p:2 () in
  let bad =
    { G.params = p; protocol_processor = false;
      nodes = [| { G.work = None; visits = [| 0.; 0. |] };
                 { G.work = None; visits = [| 0.; 0. |] } |] }
  in
  (match G.validate bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "threadless network accepted");
  let mismatched =
    { G.params = p; protocol_processor = false;
      nodes = [| { G.work = Some 1.; visits = [| 0.; 1.; 0. |] };
                 { G.work = None; visits = [| 0.; 0. |] } |] }
  in
  match G.validate mismatched with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged visit matrix accepted"

let test_general_servers_have_nan_cycles () =
  let s = G.solve (G.client_server cs_params ~w:1000. ~servers:3) in
  Alcotest.(check bool) "server cycle time undefined" true (Float.is_nan s.G.cycle_times.(0));
  feq 0. "server throughput zero" 0. s.G.throughputs.(0)

let prop_general_homogeneous_matches =
  QCheck.Test.make ~name:"Appendix A reduces to section 5 on homogeneous input" ~count:60
    QCheck.(
      quad (int_range 2 64) (float_range 0. 100.) (float_range 10. 500.)
        (float_range 0. 2000.))
    (fun (p, st, so, w) ->
      let params = Params.create ~c2:1. ~p ~st ~so () in
      let direct = (A.solve params ~w).A.r in
      let general = (G.solve (G.homogeneous_all_to_all params ~w)).G.cycle_times.(0) in
      Float.abs (direct -. general) < 1e-4 *. direct)

let suite =
  [
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "params from LogP" `Quick test_params_of_logp;
    Alcotest.test_case "algorithm validation" `Quick test_algorithm_validation;
    Alcotest.test_case "table 3.1 rows" `Quick test_table31_rows;
    Alcotest.test_case "logp cycle time" `Quick test_logp_cycle;
    Alcotest.test_case "logp total runtime" `Quick test_logp_total;
    Alcotest.test_case "logp workpile bounds" `Quick test_logp_workpile_bounds;
    Alcotest.test_case "all-to-all: Eq 5.12 bounds" `Quick test_all_to_all_bounds_hold;
    Alcotest.test_case "all-to-all: 3.46 constant" `Quick test_rule_of_thumb_346;
    Alcotest.test_case "all-to-all: constant grows with C2" `Quick test_rule_of_thumb_grows_with_c2;
    Alcotest.test_case "all-to-all: contention ~ one handler" `Quick test_contention_about_one_handler;
    Alcotest.test_case "all-to-all: methods agree" `Quick test_solution_methods_agree;
    Alcotest.test_case "all-to-all: solution is a fixed point" `Quick test_solution_is_fixed_point;
    Alcotest.test_case "all-to-all: internal identities" `Quick test_solution_internal_consistency;
    Alcotest.test_case "all-to-all: C2 gap ~6%" `Quick test_c2_gap_about_6_percent;
    Alcotest.test_case "all-to-all: protocol processor" `Quick test_protocol_processor_faster;
    Alcotest.test_case "all-to-all: quartic of section 5.3" `Quick test_quartic_degree;
    Alcotest.test_case "all-to-all: contention fraction vs W" `Quick test_contention_fraction_monotone_decreasing_in_w;
    Alcotest.test_case "all-to-all: total runtime" `Quick test_total_runtime;
    Alcotest.test_case "all-to-all: dominates LogP" `Quick test_logp_underestimates_lopc;
    QCheck_alcotest.to_alcotest prop_bounds_hold_everywhere;
    QCheck_alcotest.to_alcotest prop_r_increases_with_w;
    QCheck_alcotest.to_alcotest prop_methods_agree;
    Alcotest.test_case "client-server: Rs closed form" `Quick test_cs_rs_closed_form;
    Alcotest.test_case "client-server: Eq 6.8 matches argmax" `Quick test_cs_optimum_matches_curve_argmax;
    Alcotest.test_case "client-server: Qs = 1 at optimum" `Quick test_cs_queue_is_one_at_optimum;
    Alcotest.test_case "client-server: below LogP bounds" `Quick test_cs_below_logp_bounds;
    Alcotest.test_case "client-server: invalid input" `Quick test_cs_invalid;
    Alcotest.test_case "client-server: stable utilization" `Quick test_cs_utilization_below_one;
    QCheck_alcotest.to_alcotest prop_cs_optimum_interior;
    Alcotest.test_case "polling: Rw = W" `Quick test_polling_rw_is_w;
    Alcotest.test_case "polling: crossover vs interrupts" `Quick test_polling_crossover;
    Alcotest.test_case "protocol processor dominates" `Quick test_pp_dominates_both;
    Alcotest.test_case "polling: work variability" `Quick test_polling_work_scv_matters;
    Alcotest.test_case "work_scv validation" `Quick test_work_scv_validation;
    Alcotest.test_case "calibrate: recovers curve" `Quick test_calibrate_recovers_curve;
    Alcotest.test_case "calibrate: pinned St identifies So" `Quick test_calibrate_pinned_st_identifies_so;
    Alcotest.test_case "calibrate: validation" `Quick test_calibrate_validation;
    Alcotest.test_case "scaling: efficiency bounds" `Quick test_efficiency_bounds;
    Alcotest.test_case "scaling: efficiency monotone" `Quick test_efficiency_monotone;
    Alcotest.test_case "scaling: min work inverts" `Quick test_min_work_inverts_efficiency;
    Alcotest.test_case "scaling: strong scaling sublinear" `Quick test_speedup_sublinear;
    Alcotest.test_case "scaling: speedup curve" `Quick test_speedup_curve_shape;
    Alcotest.test_case "gap: zero recovers base" `Quick test_gap_zero_recovers_base;
    Alcotest.test_case "gap: monotone" `Quick test_gap_monotone;
    Alcotest.test_case "gap: lower bound" `Quick test_gap_lower_bound_respected;
    Alcotest.test_case "gap: tolerable threshold" `Quick test_tolerable_gap;
    Alcotest.test_case "gap: validation" `Quick test_gap_validation;
    Alcotest.test_case "windowed: window 1 = blocking" `Quick test_windowed_one_matches_blocking;
    Alcotest.test_case "windowed: rate monotone in window" `Quick test_windowed_monotone_rate;
    Alcotest.test_case "windowed: respects saturation" `Quick test_windowed_respects_saturation;
    Alcotest.test_case "windowed: speedup curve" `Quick test_windowed_speedup_curve;
    Alcotest.test_case "windowed: validation" `Quick test_windowed_validation;
    QCheck_alcotest.to_alcotest prop_windowed_bounded;
    Alcotest.test_case "client-server: threaded servers" `Quick test_cs_threaded_servers;
    Alcotest.test_case "general: reduces to all-to-all" `Quick test_general_reduces_to_all_to_all;
    Alcotest.test_case "general: reduces to client-server" `Quick test_general_reduces_to_client_server;
    Alcotest.test_case "general: multi-hop ordering" `Quick test_general_multi_hop_slower;
    Alcotest.test_case "general: asymmetric work" `Quick test_general_asymmetric_work;
    Alcotest.test_case "general: hotspot contention" `Quick test_general_hotspot_contended;
    Alcotest.test_case "general: validation" `Quick test_general_validation;
    Alcotest.test_case "general: pure servers" `Quick test_general_servers_have_nan_cycles;
    QCheck_alcotest.to_alcotest prop_general_homogeneous_matches;
  ]
