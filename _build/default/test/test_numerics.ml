(* Tests for lopc_numerics: roots, fixed points, polynomials, linear. *)

module Roots = Lopc_numerics.Roots
module Fixed_point = Lopc_numerics.Fixed_point
module Polynomial = Lopc_numerics.Polynomial
module Linear = Lopc_numerics.Linear
module Minimize = Lopc_numerics.Minimize

let feq tol = Alcotest.(check (float tol))

let test_bisect_sqrt2 () =
  let r = Roots.bisect ~f:(fun x -> (x *. x) -. 2.) 0. 2. in
  feq 1e-8 "sqrt 2" (sqrt 2.) r

let test_bisect_no_bracket () =
  Alcotest.check_raises "no bracket" Roots.No_bracket (fun () ->
      ignore (Roots.bisect ~f:(fun x -> (x *. x) +. 1.) (-1.) 1.))

let test_brent_cos () =
  let r = Roots.brent ~f:cos 1. 2. in
  feq 1e-10 "pi/2" (2. *. atan 1.) r

let test_brent_endpoint_root () =
  feq 0. "root at lo" 3. (Roots.brent ~f:(fun x -> x -. 3.) 3. 10.)

let test_brent_steep () =
  (* A function with very different scales on each side. *)
  let f x = exp x -. 1e6 in
  let r = Roots.brent ~f 0. 30. in
  feq 1e-6 "log 1e6" (log 1e6) r

let test_newton_cube_root () =
  let r = Roots.newton ~f:(fun x -> (x *. x *. x) -. 27.) ~df:(fun x -> 3. *. x *. x) 5. in
  feq 1e-9 "cbrt 27" 3. r

let test_newton_zero_derivative () =
  Alcotest.check_raises "flat" (Roots.Not_converged "Newton: zero derivative") (fun () ->
      ignore (Roots.newton ~f:(fun _ -> 1.) ~df:(fun _ -> 0.) 0.))

let test_expand_bracket () =
  let f x = x -. 1000. in
  let lo, hi = Roots.expand_bracket_upward ~f 0. in
  Alcotest.(check bool) "brackets" true (f lo *. f hi <= 0.)

let test_fixed_point_scalar () =
  (* x = cos x has the Dottie number as fixed point. *)
  let r = Fixed_point.solve_scalar ~f:cos 1. in
  feq 1e-8 "dottie" 0.7390851332151607 r

let test_fixed_point_damped () =
  (* x = 2.8·x·(1−x) oscillates without damping near the fixed point for
     plain iteration? It converges; use a map needing damping: x = 4 − x
     has fixed point 2 but plain iteration oscillates forever. *)
  let r = Fixed_point.solve_scalar ~damping:0.5 ~f:(fun x -> 4. -. x) 0. in
  feq 1e-8 "fixed point 2" 2. r

let test_fixed_point_aitken () =
  let r = Fixed_point.solve_scalar_aitken ~f:cos 1. in
  feq 1e-8 "dottie via aitken" 0.7390851332151607 r

let test_fixed_point_vector () =
  (* Rotation-like contraction toward (1, 2). *)
  let f v = [| 1. +. (0.5 *. (v.(1) -. 2.)); 2. +. (0.25 *. (v.(0) -. 1.)) |] in
  let { Fixed_point.value; _ } = Fixed_point.solve_vector ~f [| 0.; 0. |] in
  feq 1e-6 "x" 1. value.(0);
  feq 1e-6 "y" 2. value.(1)

let test_fixed_point_diverged () =
  Alcotest.(check bool) "diverges" true
    (try
       ignore (Fixed_point.solve_scalar ~max_iter:50 ~f:(fun x -> (2. *. x) +. 1.) 1.);
       false
     with Fixed_point.Diverged _ -> true)

let test_poly_eval () =
  let p = Polynomial.of_coeffs [| 1.; -2.; 1. |] in
  (* (x-1)^2 *)
  feq 0. "at 1" 0. (Polynomial.eval p 1.);
  feq 0. "at 3" 4. (Polynomial.eval p 3.);
  Alcotest.(check int) "degree" 2 (Polynomial.degree p)

let test_poly_trim () =
  let p = Polynomial.of_coeffs [| 1.; 2.; 0.; 0. |] in
  Alcotest.(check int) "trimmed degree" 1 (Polynomial.degree p)

let test_poly_derivative () =
  let p = Polynomial.of_coeffs [| 5.; 3.; 2. |] in
  let d = Polynomial.derivative p in
  Alcotest.(check (array (float 0.))) "derivative" [| 3.; 4. |] (Polynomial.coeffs d)

let test_poly_arith () =
  let a = Polynomial.of_coeffs [| 1.; 1. |] in
  let b = Polynomial.of_coeffs [| -1.; 1. |] in
  Alcotest.(check (array (float 0.))) "(x+1)(x-1)" [| -1.; 0.; 1. |]
    (Polynomial.coeffs (Polynomial.mul a b));
  Alcotest.(check (array (float 0.))) "sum" [| 0.; 2. |]
    (Polynomial.coeffs (Polynomial.add a b));
  Alcotest.(check (array (float 0.))) "scale" [| 2.; 2. |]
    (Polynomial.coeffs (Polynomial.scale 2. a))

let check_roots expected actual =
  Alcotest.(check int) "root count" (Array.length expected) (Array.length actual);
  Array.iteri (fun i e -> feq 1e-6 (Printf.sprintf "root %d" i) e actual.(i)) expected

let test_quadratic_roots () =
  check_roots [| 2.; 3. |] (Polynomial.real_roots (Polynomial.of_roots [| 3.; 2. |]))

let test_quadratic_no_real_roots () =
  Alcotest.(check int) "no roots" 0
    (Array.length (Polynomial.real_roots (Polynomial.of_coeffs [| 1.; 0.; 1. |])))

let test_cubic_three_roots () =
  check_roots [| -2.; 1.; 5. |]
    (Polynomial.real_roots (Polynomial.of_roots [| 1.; 5.; -2. |]))

let test_cubic_one_root () =
  (* x³ − 1 = 0 has one real root. *)
  check_roots [| 1. |] (Polynomial.real_roots (Polynomial.of_coeffs [| -1.; 0.; 0.; 1. |]))

let test_quartic_four_roots () =
  check_roots [| -3.; -1.; 2.; 4. |]
    (Polynomial.real_roots (Polynomial.of_roots [| 2.; -1.; 4.; -3. |]))

let test_quartic_biquadratic () =
  (* x⁴ − 5x² + 4 = (x²−1)(x²−4). *)
  check_roots [| -2.; -1.; 1.; 2. |]
    (Polynomial.real_roots (Polynomial.of_coeffs [| 4.; 0.; -5.; 0.; 1. |]))

let test_quartic_no_real_roots () =
  Alcotest.(check int) "no roots" 0
    (Array.length (Polynomial.real_roots (Polynomial.of_coeffs [| 1.; 0.; 0.; 0.; 1. |])))

let test_quintic_subdivision () =
  check_roots [| -2.; -1.; 0.5; 1.5; 3.; 6. |]
    (Polynomial.real_roots (Polynomial.of_roots [| -2.; -1.; 0.5; 1.5; 3.; 6. |]))

let prop_of_roots_recovered =
  QCheck.Test.make ~name:"real_roots recovers well-separated roots (deg <= 4)" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 4) (int_range (-40) 40))
    (fun ints ->
      (* Build distinct, well-separated integer roots. *)
      let distinct = List.sort_uniq compare ints in
      let roots = Array.of_list (List.map Float.of_int distinct) in
      let found = Polynomial.real_roots (Polynomial.of_roots roots) in
      Array.length found = Array.length roots
      && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-5) roots found)

let prop_roots_are_roots =
  QCheck.Test.make ~name:"claimed roots evaluate to ~0" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 5) (float_range (-10.) 10.))
    (fun coeffs ->
      let p = Polynomial.of_coeffs (Array.of_list coeffs) in
      if Polynomial.degree p = 0 then true
      else begin
        let scale =
          Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 1.
            (Polynomial.coeffs p)
        in
        Array.for_all
          (fun r ->
            let v = Polynomial.eval p r in
            Float.abs v <= 1e-4 *. scale *. Float.max 1. (Float.abs r ** Float.of_int (Polynomial.degree p)))
          (Polynomial.real_roots p)
      end)

let test_golden_section_parabola () =
  let m = Minimize.golden_section ~f:(fun x -> ((x -. 3.) ** 2.) +. 1.) (-10.) 10. in
  feq 1e-6 "parabola minimum" 3. m

let test_golden_section_asymmetric () =
  let m = Minimize.golden_section ~f:(fun x -> Float.abs (x -. 0.1)) 0. 100. in
  feq 1e-5 "absolute value kink" 0.1 m

let test_nelder_mead_sphere () =
  let { Minimize.minimizer; value; _ } =
    Minimize.nelder_mead
      ~f:(fun v -> ((v.(0) -. 1.) ** 2.) +. ((v.(1) +. 2.) ** 2.))
      [| 5.; 5. |]
  in
  feq 1e-4 "x" 1. minimizer.(0);
  feq 1e-4 "y" (-2.) minimizer.(1);
  feq 1e-6 "value" 0. value

let test_nelder_mead_rosenbrock () =
  let rosenbrock v =
    ((1. -. v.(0)) ** 2.) +. (100. *. ((v.(1) -. (v.(0) *. v.(0))) ** 2.))
  in
  let { Minimize.minimizer; _ } =
    Minimize.nelder_mead ~max_iter:20_000 ~f:rosenbrock [| -1.2; 1. |]
  in
  feq 1e-3 "rosenbrock x" 1. minimizer.(0);
  feq 1e-3 "rosenbrock y" 1. minimizer.(1)

let test_nelder_mead_1d () =
  let { Minimize.minimizer; _ } =
    Minimize.nelder_mead ~f:(fun v -> Float.abs (v.(0) -. 7.)) [| 0. |]
  in
  feq 1e-4 "1-d" 7. minimizer.(0)

let test_nelder_mead_empty () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Minimize.nelder_mead ~f:(fun _ -> 0.) [||]);
       false
     with Invalid_argument _ -> true)

let test_linear_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linear.solve a [| 5.; 10. |] in
  feq 1e-9 "x0" 1. x.(0);
  feq 1e-9 "x1" 3. x.(1)

let test_linear_solve_pivoting () =
  (* Zero on the diagonal forces a pivot. *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linear.solve a [| 2.; 7. |] in
  feq 1e-12 "x0" 7. x.(0);
  feq 1e-12 "x1" 2. x.(1)

let test_linear_singular () =
  Alcotest.check_raises "singular" Linear.Singular (fun () ->
      ignore (Linear.solve [| [| 1.; 2. |]; [| 2.; 4. |] |] [| 1.; 2. |]))

let test_mat_vec () =
  let y = Linear.mat_vec [| [| 1.; 2. |]; [| 3.; 4. |] |] [| 1.; 1. |] in
  Alcotest.(check (array (float 1e-12))) "product" [| 3.; 7. |] y

let test_stationary_distribution () =
  (* Two-state chain: stay 0.9/leave 0.1 vs stay 0.8/leave 0.2:
     pi = (2/3, 1/3). *)
  let p = [| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |] in
  let pi = Linear.stationary_distribution p in
  feq 1e-8 "pi0" (2. /. 3.) pi.(0);
  feq 1e-8 "pi1" (1. /. 3.) pi.(1)

let test_stationary_invalid () =
  Alcotest.(check bool) "row sum check" true
    (try
       ignore (Linear.stationary_distribution [| [| 0.5; 0.2 |]; [| 0.5; 0.5 |] |]);
       false
     with Invalid_argument _ -> true)

let prop_linear_roundtrip =
  QCheck.Test.make ~name:"solve(a, a*x) = x for diagonally dominant a" ~count:200
    QCheck.(list_of_size (Gen.return 9) (float_range (-1.) 1.))
    (fun entries ->
      let e = Array.of_list entries in
      let n = 3 in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                let v = e.((i * n) + j) in
                if i = j then v +. 4. else v))
      in
      let x = [| 1.; -2.; 0.5 |] in
      let b = Linear.mat_vec a x in
      let x' = Linear.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) x x')

let suite =
  [
    Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
    Alcotest.test_case "bisect requires bracket" `Quick test_bisect_no_bracket;
    Alcotest.test_case "brent cos" `Quick test_brent_cos;
    Alcotest.test_case "brent endpoint root" `Quick test_brent_endpoint_root;
    Alcotest.test_case "brent steep function" `Quick test_brent_steep;
    Alcotest.test_case "newton cube root" `Quick test_newton_cube_root;
    Alcotest.test_case "newton zero derivative" `Quick test_newton_zero_derivative;
    Alcotest.test_case "expand bracket upward" `Quick test_expand_bracket;
    Alcotest.test_case "fixed point scalar" `Quick test_fixed_point_scalar;
    Alcotest.test_case "fixed point damped oscillation" `Quick test_fixed_point_damped;
    Alcotest.test_case "fixed point aitken" `Quick test_fixed_point_aitken;
    Alcotest.test_case "fixed point vector" `Quick test_fixed_point_vector;
    Alcotest.test_case "fixed point divergence detected" `Quick test_fixed_point_diverged;
    Alcotest.test_case "polynomial eval" `Quick test_poly_eval;
    Alcotest.test_case "polynomial trim" `Quick test_poly_trim;
    Alcotest.test_case "polynomial derivative" `Quick test_poly_derivative;
    Alcotest.test_case "polynomial arithmetic" `Quick test_poly_arith;
    Alcotest.test_case "quadratic roots" `Quick test_quadratic_roots;
    Alcotest.test_case "quadratic without real roots" `Quick test_quadratic_no_real_roots;
    Alcotest.test_case "cubic three roots" `Quick test_cubic_three_roots;
    Alcotest.test_case "cubic one root" `Quick test_cubic_one_root;
    Alcotest.test_case "quartic four roots" `Quick test_quartic_four_roots;
    Alcotest.test_case "quartic biquadratic" `Quick test_quartic_biquadratic;
    Alcotest.test_case "quartic without real roots" `Quick test_quartic_no_real_roots;
    Alcotest.test_case "quintic via subdivision" `Quick test_quintic_subdivision;
    QCheck_alcotest.to_alcotest prop_of_roots_recovered;
    QCheck_alcotest.to_alcotest prop_roots_are_roots;
    Alcotest.test_case "golden section parabola" `Quick test_golden_section_parabola;
    Alcotest.test_case "golden section kink" `Quick test_golden_section_asymmetric;
    Alcotest.test_case "nelder-mead sphere" `Quick test_nelder_mead_sphere;
    Alcotest.test_case "nelder-mead rosenbrock" `Quick test_nelder_mead_rosenbrock;
    Alcotest.test_case "nelder-mead 1-d" `Quick test_nelder_mead_1d;
    Alcotest.test_case "nelder-mead empty input" `Quick test_nelder_mead_empty;
    Alcotest.test_case "linear solve" `Quick test_linear_solve;
    Alcotest.test_case "linear solve with pivoting" `Quick test_linear_solve_pivoting;
    Alcotest.test_case "linear singular detection" `Quick test_linear_singular;
    Alcotest.test_case "mat_vec" `Quick test_mat_vec;
    Alcotest.test_case "stationary distribution" `Quick test_stationary_distribution;
    Alcotest.test_case "stationary rejects bad matrix" `Quick test_stationary_invalid;
    QCheck_alcotest.to_alcotest prop_linear_roundtrip;
  ]
