test/test_mva.ml: Alcotest Array Float Lopc_mva QCheck QCheck_alcotest
