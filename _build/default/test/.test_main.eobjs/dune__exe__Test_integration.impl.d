test/test_integration.ml: Alcotest Float List Lopc Lopc_activemsg Lopc_dist Lopc_stats Lopc_workloads
