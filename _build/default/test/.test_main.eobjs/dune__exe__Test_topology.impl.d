test/test_topology.ml: Alcotest Float List Lopc Lopc_activemsg Lopc_dist Lopc_topology
