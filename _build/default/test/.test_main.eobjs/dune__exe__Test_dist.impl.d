test/test_dist.ml: Alcotest Float List Lopc_dist Lopc_prng Printf QCheck QCheck_alcotest
