test/test_activemsg.ml: Alcotest Array Float Format List Lopc_activemsg Lopc_dist Lopc_prng Lopc_stats Printf QCheck QCheck_alcotest String
