test/test_eventsim.ml: Alcotest Array Float List Lopc_eventsim Lopc_prng QCheck QCheck_alcotest
