test/test_markov.ml: Alcotest Float List Lopc Lopc_activemsg Lopc_dist Lopc_markov Printf
