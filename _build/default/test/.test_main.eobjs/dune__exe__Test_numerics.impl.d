test/test_numerics.ml: Alcotest Array Float Gen List Lopc_numerics Printf QCheck QCheck_alcotest
