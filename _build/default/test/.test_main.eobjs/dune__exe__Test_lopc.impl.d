test/test_lopc.ml: Alcotest Array Float List Lopc Lopc_numerics Lopc_workloads Printf QCheck QCheck_alcotest
