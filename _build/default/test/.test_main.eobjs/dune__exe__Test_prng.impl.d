test/test_prng.ml: Alcotest Array Float Fun Lopc_prng QCheck QCheck_alcotest
