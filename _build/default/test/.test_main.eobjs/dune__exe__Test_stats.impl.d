test/test_stats.ml: Alcotest Array Float Gen List Lopc_prng Lopc_stats QCheck QCheck_alcotest
