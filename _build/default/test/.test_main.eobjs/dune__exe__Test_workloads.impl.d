test/test_workloads.ml: Alcotest Array Float List Lopc Lopc_activemsg Lopc_dist Lopc_prng Lopc_workloads QCheck QCheck_alcotest String
