lib/markov/ctmc.mli:
