lib/markov/ctmc.ml: Array Float Hashtbl List Queue
