lib/markov/exact_machine.mli:
