lib/markov/exact_machine.ml: Ctmc Float List Printf
