(** Fixed-point iteration for scalar and vector maps.

    The AMVA equation systems in this library are all of the form
    [x = F x] with [F] a contraction (or close to one) near the solution.
    These solvers iterate [F] with optional under-relaxation (damping),
    which is how MVA systems are conventionally solved. *)

type outcome = {
  value : float array;  (** The (approximate) fixed point. *)
  iterations : int;     (** Iterations actually performed. *)
  residual : float;     (** Max-norm of [F x − x] at the final iterate. *)
}

exception Diverged of string
(** Raised when the iteration produces non-finite values or exhausts its
    budget without meeting the tolerance. *)

val solve_scalar :
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  float ->
  float
(** [solve_scalar ~f x0] iterates [x <- (1−d)·x + d·f x] from [x0] until
    [|f x − x| <= tol ·. max 1. |x|]. [damping] [d] defaults to [1.]
    (plain iteration), [tol] to [1e-10], [max_iter] to [10_000].
    @raise Diverged if convergence fails. *)

val solve_vector :
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  f:(float array -> float array) ->
  float array ->
  outcome
(** Vector counterpart of {!solve_scalar} with the max norm. [f] must
    return an array of the same length as its input.
    @raise Diverged if convergence fails or lengths mismatch. *)

val solve_scalar_aitken :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float
(** [solve_scalar_aitken ~f x0] accelerates plain iteration with Aitken's
    Δ² extrapolation (Steffensen's method) — typically converging in a
    handful of steps on the smooth LoPC maps.
    @raise Diverged if convergence fails. *)
