(** Scalar root finding.

    Solving the LoPC all-to-all model amounts to finding the fixed point of
    a decreasing map [F] — equivalently a root of [fun r -> F r -. r] —
    which §5.3 notes is a quartic. These solvers do that robustly without
    assuming polynomial structure. *)

exception No_bracket
(** Raised when a bracketing interval does not actually bracket a sign
    change. *)

exception Not_converged of string
(** Raised when an iteration budget is exhausted before reaching the
    requested tolerance. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [\[lo, hi\]] by bisection.
    [tol] (default [1e-9]) bounds the final interval width.
    @raise No_bracket if [f lo] and [f hi] have the same strict sign. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [brent ~f lo hi] finds a root with Brent's method — inverse quadratic
    interpolation and secant steps guarded by bisection; superlinear on
    smooth functions, never worse than bisection.
    @raise No_bracket if the interval does not bracket a sign change. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** [newton ~f ~df x0] runs Newton–Raphson from [x0].
    @raise Not_converged on a vanishing derivative or exhausted budget. *)

val expand_bracket_upward :
  ?growth:float -> ?max_expansions:int -> f:(float -> float) -> float -> float * float
(** [expand_bracket_upward ~f lo] finds [hi > lo] with [f lo] and [f hi] of
    opposite sign by geometric expansion — used to bracket the LoPC fixed
    point above its contention-free lower bound.
    @raise No_bracket if no sign change is found within the expansion
    budget. *)
