(** Derivative-free minimization.

    Used for calibration tasks — fitting LoPC's architectural parameters
    to measured run times — where the objective is smooth but its
    gradient is inconvenient (it involves the model's fixed point). *)

val golden_section :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [golden_section ~f lo hi] minimizes a unimodal [f] on [\[lo, hi\]] by
    golden-section search, returning the minimizer. [tol] (default
    [1e-9]) bounds the final interval width relative to the interval.
    @raise Invalid_argument if [lo > hi]. *)

type outcome = {
  minimizer : float array;  (** Best point found. *)
  value : float;            (** Objective there. *)
  iterations : int;
}

val nelder_mead :
  ?tol:float ->
  ?max_iter:int ->
  ?initial_step:float ->
  f:(float array -> float) ->
  float array ->
  outcome
(** [nelder_mead ~f x0] minimizes [f] from the starting point [x0] with
    the Nelder–Mead simplex method (reflection / expansion / contraction
    / shrink with the standard coefficients). Convergence is declared
    when the simplex's value spread falls below [tol] (default [1e-10])
    relative to the best value. [initial_step] (default [0.1 ·. max 1
    |x0_i|] per coordinate) sizes the starting simplex.
    @raise Invalid_argument on an empty starting point. *)
