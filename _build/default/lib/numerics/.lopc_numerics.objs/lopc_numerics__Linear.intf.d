lib/numerics/linear.mli:
