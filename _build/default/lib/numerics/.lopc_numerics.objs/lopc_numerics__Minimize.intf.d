lib/numerics/minimize.mli:
