lib/numerics/polynomial.mli: Format
