lib/numerics/polynomial.ml: Array Float Format List Roots Stdlib
