lib/numerics/roots.mli:
