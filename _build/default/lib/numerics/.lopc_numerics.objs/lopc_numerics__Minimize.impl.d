lib/numerics/minimize.ml: Array Float
