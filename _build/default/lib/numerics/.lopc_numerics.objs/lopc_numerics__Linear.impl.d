lib/numerics/linear.ml: Array Float
