(** Real polynomials with closed-form low-degree root solvers.

    §5.3 of the paper observes that the homogeneous all-to-all LoPC system
    reduces to a quartic in the cycle time [R]. This module provides the
    closed-form quadratic/cubic/quartic solvers (with Newton polishing) so
    the model can be solved either symbolically or via the generic
    iterations in {!Fixed_point}. *)

type t
(** A polynomial with real coefficients. *)

val of_coeffs : float array -> t
(** [of_coeffs [|c0; c1; ...; cn|]] represents [c0 + c1·x + ... + cn·xⁿ].
    Trailing (high-order) zero coefficients are trimmed.
    @raise Invalid_argument on an empty array or non-finite
    coefficients. *)

val coeffs : t -> float array
(** Coefficient array, lowest order first; the leading coefficient is
    non-zero except for the zero polynomial [\[|0.|\]]. *)

val degree : t -> int
(** Degree; the zero polynomial has degree 0 by convention here. *)

val eval : t -> float -> float
(** Horner evaluation. *)

val derivative : t -> t
(** Formal derivative. *)

val add : t -> t -> t
(** Polynomial sum. *)

val mul : t -> t -> t
(** Polynomial product. *)

val scale : float -> t -> t
(** Multiply every coefficient. *)

val of_roots : float array -> t
(** Monic polynomial with exactly the given real roots. *)

val real_roots : t -> float array
(** All real roots (with multiplicity collapsed to distinct values),
    sorted ascending. Closed forms are used through degree 4; higher
    degrees fall back to recursive interval subdivision between the roots
    of the derivative. Roots are Newton-polished.
    @raise Invalid_argument on the zero polynomial (every point is a
    root). *)

val pp : Format.formatter -> t -> unit
(** Render e.g. ["3 x^2 - 1 x + 2"]. *)
