(** Small dense linear algebra.

    The multi-class general LoPC model (Appendix A) occasionally needs a
    direct solve of a small linear system (e.g. balancing visit ratios
    from a routing matrix). Gaussian elimination with partial pivoting is
    ample at these sizes (P ≤ a few hundred). *)

exception Singular
(** Raised when the system matrix is (numerically) singular. *)

val solve : float array array -> float array -> float array
(** [solve a b] returns [x] with [a ·. x = b]. [a] is row-major and left
    unmodified. @raise Invalid_argument on dimension mismatch.
    @raise Singular when no unique solution exists. *)

val mat_vec : float array array -> float array -> float array
(** [mat_vec a x] is the matrix–vector product.
    @raise Invalid_argument on dimension mismatch. *)

val stationary_distribution : ?tol:float -> float array array -> float array
(** [stationary_distribution p] returns the stationary row vector [π] of
    the irreducible row-stochastic matrix [p] ([π ·. p = π], [Σπ = 1]) by
    power iteration. Used to turn a message routing matrix into per-node
    visit fractions. @raise Invalid_argument if [p] is not square, has a
    negative entry, or a row does not sum to 1 within [tol]-ish slack. *)
