(** Unified random-number interface used throughout the library.

    Wraps {!Xoshiro256} (seeded via {!Splitmix64}) behind the sampling
    primitives the simulator and distribution library need. Every stream is
    deterministic in its seed, and {!split} produces statistically
    independent, non-overlapping child streams, so whole experiments are
    reproducible from a single integer seed. *)

type t
(** A mutable random stream. *)

val create : int -> t
(** [create seed] returns a fresh stream determined entirely by [seed]. *)

val split : t -> t
(** [split t] returns a new stream independent of the future output of
    [t]. Internally the child takes a copy of [t]'s state jumped ahead by
    2^128 steps and [t] itself is jumped once more, so parent and child
    never overlap. *)

val split_n : t -> int -> t array
(** [split_n t n] returns [n] pairwise-independent streams.
    @raise Invalid_argument if [n < 0]. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform on [\[lo, hi)].
    @raise Invalid_argument if [lo > hi] or either bound is not finite. *)

val int_below : t -> int -> int
(** [int_below t bound] is uniform on [\[0, bound)], free of modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform on [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].
    @raise Invalid_argument if [p] is outside [\[0, 1\]]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from the exponential distribution with the
    given mean (not rate). @raise Invalid_argument if [mean <= 0]. *)

val gaussian : t -> float
(** [gaussian t] is a standard normal deviate (Marsaglia polar method). *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a uniform Fisher–Yates shuffle to [a]. *)

val choose : t -> 'a array -> 'a
(** [choose t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted t weights] returns index [i] with probability
    proportional to [weights.(i)]. Weights must be non-negative and sum to
    a positive value. @raise Invalid_argument otherwise. *)
