type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* Finalization mix of Stafford's "Mix13" variant, as used in the reference
   SplitMix64 implementation. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let next_float t =
  (* Use the top 53 bits: floats in [0,1) with full mantissa resolution. *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let next_below t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_below: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem raw bound64 in
    (* Reject the final partial block of the range of [raw]. *)
    if Int64.sub (Int64.add raw (Int64.sub bound64 1L)) v < 0L then draw ()
    else Int64.to_int v
  in
  draw ()
