(** xoshiro256++ pseudo-random number generator.

    The workhorse generator of this library (Blackman & Vigna, 2019):
    256 bits of state, period 2^256 − 1, excellent statistical quality and
    a cheap [jump] function that advances the state by 2^128 steps, which
    we use to derive provably non-overlapping parallel streams. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] initialises the 256-bit state from [seed] by running a
    {!Splitmix64} generator, as recommended by the xoshiro authors. *)

val of_state : int64 * int64 * int64 * int64 -> t
(** [of_state (s0, s1, s2, s3)] builds a generator from an explicit state.
    @raise Invalid_argument if all four words are zero (the one forbidden
    state). *)

val copy : t -> t
(** [copy t] is an independent generator with the same future sequence. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_float : t -> float
(** [next_float t] is a float uniformly distributed in [\[0, 1)]. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps of [next] in O(1) word operations.
    Calling [jump] on successive copies yields non-overlapping streams of
    length 2^128 each. *)
