lib/prng/rng.mli:
