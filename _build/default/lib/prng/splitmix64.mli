(** SplitMix64 pseudo-random number generator.

    A small, fast, well-mixed 64-bit generator (Steele, Lea & Flood, 2014).
    Its primary roles in this library are (a) seeding larger-state
    generators such as {!Xoshiro256} from a single 64-bit seed and (b)
    deterministic stream splitting: each [next] output is a function of a
    simple additive counter, so independent child seeds can be produced
    cheaply.

    The generator is deterministic: the same seed always yields the same
    sequence on every platform. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialised with [seed]. Any
    seed value is acceptable, including [0L]. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    sequence as [t]. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_float : t -> float
(** [next_float t] is a float uniformly distributed in [\[0, 1)], using the
    top 53 bits of {!next}. *)

val next_below : t -> int -> int
(** [next_below t bound] is an integer uniformly distributed in
    [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)
