(** Testing the contention-free-interconnect assumption (§2).

    LoPC models the network as a pure delay [St]. This module replaces it
    with a 2-D torus whose unidirectional links are contended resources
    (occupancy [link_time] per message, [per_hop] propagation), so the
    assumption can be checked quantitatively: when is link queueing small
    enough that a single [St] number suffices?

    For homogeneous all-to-all traffic on a [rows × cols] torus with
    dimension-order routing, each node injects two messages per cycle
    (its request and one reply on its peers' behalf) which cross
    [mean_distance] links on average; by symmetry each of the [4·P]
    links carries rate [X ·. mean_distance / 2] and behaves as an FCFS
    queue with constant service [link_time]. Each crossing then costs

    [per_hop + link_time·(1 − U/2)/(1 − U)]   with [U] the link
    utilization — the same Bard/M-D-1 form as the NI model of {!Gap} —
    and the cycle-time fixed point replaces [2·St] by [2·mean_distance]
    such crossings.

    The matching simulator behaviour is enabled by the [topology] field
    of {!Lopc_activemsg.Spec.t}. *)

module Topology = Lopc_topology.Topology

type solution = {
  r : float;                (** Cycle time over the contended torus. *)
  r_contention_free : float;
      (** Cycle time if the torus were contention free with the same
          mean path length ([St = mean_distance·(per_hop + link_time)]). *)
  link_utilization : float; (** Utilization of each link. *)
  crossing_residence : float;
      (** Mean time per link crossing (wait + occupancy + hop). *)
  mean_distance : float;    (** Average hops per message. *)
  penalty : float;          (** [r / r_contention_free − 1]: the error of
                                the paper's assumption. *)
}

val solve : Params.t -> topology:Topology.t -> w:float -> solution
(** [solve params ~topology ~w] solves the torus-extended all-to-all
    model. [params.st] is ignored (the topology defines the network);
    [params.p] must equal the torus size.
    @raise Invalid_argument on mismatched sizes or invalid [w]. *)

val tolerable_link_time :
  ?penalty:float -> Params.t -> topology:Topology.t -> w:float -> float
(** The largest [link_time] whose modeled slowdown over the contention
    free network stays below [penalty] (default 5%), holding [per_hop]
    fixed. @raise Invalid_argument if [penalty <= 0.]. *)
