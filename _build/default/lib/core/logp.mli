(** The contention-free LogP baseline.

    A "naive application of LogP" (paper §5.3) prices a blocking
    compute/request cycle at exactly

    [R = W + 2·St + 2·So]

    — work, two network traversals, one request handler, one reply
    handler — with no queueing or preemption anywhere. The paper shows
    this underestimates run time by up to 37%, with an absolute error of
    about one handler time that does not shrink as [W] grows. This module
    implements that baseline and the LogP-style asymptotic throughput
    bounds for the client-server work-pile (§6, the dotted lines of
    Fig 6-2). *)

val cycle_time : Params.t -> w:float -> float
(** [cycle_time params ~w] is [w + 2·St + 2·So].
    @raise Invalid_argument if [w < 0.]. *)

val total_runtime : Params.t -> Params.algorithm -> float
(** [total_runtime params alg] is [n ·. cycle_time]. *)

val server_bound : Params.t -> servers:int -> float
(** Work-pile throughput can never exceed [Ps / So] — every chunk
    requires one request handler at some server.
    @raise Invalid_argument if [servers < 1]. *)

val client_bound : Params.t -> w:float -> clients:int -> float
(** Work-pile throughput can never exceed [Pc / (W + 2·St + 2·So)] —
    every client needs a full contention-free cycle per chunk.
    @raise Invalid_argument if [clients < 1] or [w < 0.]. *)

val workpile_bound : Params.t -> w:float -> servers:int -> clients:int -> float
(** Minimum of {!server_bound} and {!client_bound}. *)
