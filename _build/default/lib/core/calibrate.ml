module Minimize = Lopc_numerics.Minimize

type fit = { params : Params.t; residual : float; relative_residual : float }

let check_observations observations =
  if List.length observations < 2 then
    invalid_arg "Calibrate: need at least two observations";
  List.iter
    (fun (w, r) ->
      if w < 0. || not (Float.is_finite w) then invalid_arg "Calibrate: negative work";
      if r <= 0. || not (Float.is_finite r) then
        invalid_arg "Calibrate: measured cycle times must be positive")
    observations

let model_r ~c2 ~p ~st ~so ~w =
  let params = Params.create ~c2 ~p ~st ~so () in
  (All_to_all.solve params ~w).All_to_all.r

let fit ?(c2 = 1.) ?(initial = (10., 100.)) ?fixed_st ~p ~observations () =
  check_observations observations;
  if p < 2 then invalid_arg "Calibrate: need at least two processors";
  let sse ~st ~so =
    List.fold_left
      (fun acc (w, measured) ->
        let predicted = model_r ~c2 ~p ~st ~so ~w in
        acc +. ((predicted -. measured) ** 2.))
      0. observations
  in
  let st0, so0 = initial in
  if st0 <= 0. || so0 <= 0. then invalid_arg "Calibrate: initial guesses must be positive";
  let st, so, value =
    match fixed_st with
    | Some st ->
      if st < 0. || not (Float.is_finite st) then
        invalid_arg "Calibrate: fixed_st must be finite and >= 0";
      (* One-dimensional search over log So. *)
      let f lso = sse ~st ~so:(exp lso) in
      let lso = Minimize.golden_section ~f (log 1e-3) (log 1e7) in
      let so = exp lso in
      (st, so, sse ~st ~so)
    | None ->
      (* Optimize in log space so both parameters stay positive. *)
      let objective v =
        let st = exp v.(0) and so = exp v.(1) in
        if so > 1e9 || st > 1e9 then 1e30 else sse ~st ~so
      in
      let { Minimize.minimizer; value; _ } =
        Minimize.nelder_mead ~tol:1e-14 ~initial_step:0.5 ~f:objective
          [| log st0; log so0 |]
      in
      (exp minimizer.(0), exp minimizer.(1), value)
  in
  let n = Float.of_int (List.length observations) in
  let rms_observed =
    sqrt (List.fold_left (fun acc (_, r) -> acc +. (r *. r)) 0. observations /. n)
  in
  let residual = sqrt (value /. n) in
  {
    params = Params.create ~c2 ~p ~st ~so ();
    residual;
    relative_residual = residual /. rms_observed;
  }

let predictions f ~observations =
  List.map
    (fun (w, measured) ->
      ( w,
        measured,
        (All_to_all.solve f.params ~w).All_to_all.r ))
    observations
