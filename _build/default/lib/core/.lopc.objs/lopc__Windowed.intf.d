lib/core/windowed.mli: Params
