lib/core/scaling.ml: All_to_all Float List Lopc_numerics Params
