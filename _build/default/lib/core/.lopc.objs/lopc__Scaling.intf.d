lib/core/scaling.mli: Params
