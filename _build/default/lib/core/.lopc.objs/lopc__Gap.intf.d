lib/core/gap.mli: Params
