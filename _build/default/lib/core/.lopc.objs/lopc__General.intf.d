lib/core/general.mli: Params
