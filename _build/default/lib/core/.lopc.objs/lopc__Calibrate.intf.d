lib/core/calibrate.mli: Params
