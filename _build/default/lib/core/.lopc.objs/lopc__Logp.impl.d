lib/core/logp.ml: Float Params
