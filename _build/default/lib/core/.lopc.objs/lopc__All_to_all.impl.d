lib/core/all_to_all.ml: Array Float List Lopc_numerics Params
