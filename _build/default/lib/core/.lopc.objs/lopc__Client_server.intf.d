lib/core/client_server.mli: Params
