lib/core/windowed.ml: Array Float Lopc_numerics Params
