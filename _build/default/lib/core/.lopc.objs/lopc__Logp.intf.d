lib/core/logp.mli: Params
