lib/core/all_to_all.mli: Lopc_numerics Params
