lib/core/calibrate.ml: All_to_all Array Float List Lopc_numerics Params
