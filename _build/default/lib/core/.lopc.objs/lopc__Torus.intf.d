lib/core/torus.mli: Lopc_topology Params
