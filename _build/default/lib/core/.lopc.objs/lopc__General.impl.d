lib/core/general.ml: Array Float Format Lopc_numerics Params Printf
