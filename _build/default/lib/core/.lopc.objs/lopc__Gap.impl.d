lib/core/gap.ml: All_to_all Float Lopc_numerics Params
