lib/core/client_server.ml: Array Float Lopc_mva Params
