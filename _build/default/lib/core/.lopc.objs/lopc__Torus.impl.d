lib/core/torus.ml: All_to_all Float Lopc_numerics Lopc_topology Params
