let check_w w =
  if w < 0. || not (Float.is_finite w) then invalid_arg "Logp: invalid work value"

let cycle_time (params : Params.t) ~w =
  check_w w;
  w +. (2. *. params.st) +. (2. *. params.so)

let total_runtime params (alg : Params.algorithm) =
  Float.of_int alg.n *. cycle_time params ~w:alg.w

let server_bound (params : Params.t) ~servers =
  if servers < 1 then invalid_arg "Logp.server_bound: need at least one server";
  Float.of_int servers /. params.so

let client_bound params ~w ~clients =
  if clients < 1 then invalid_arg "Logp.client_bound: need at least one client";
  Float.of_int clients /. cycle_time params ~w

let workpile_bound params ~w ~servers ~clients =
  Float.min (server_bound params ~servers) (client_bound params ~w ~clients)
