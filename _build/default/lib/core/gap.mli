(** Testing the paper's "g is irrelevant" assumption (§3).

    LogP includes a gap parameter [g] — the minimum spacing between
    consecutive messages through a node's network interface — which LoPC
    drops on the argument that modern NIs have bandwidth balanced with the
    processor's message rate. This module puts that claim on a
    quantitative footing: it extends the homogeneous all-to-all model with
    two FIFO NI stations per node (send and receive side, constant service
    [g]) and measures how the cycle time departs from the [g = 0] model.

    Per compute/request cycle each node's send NI passes two messages (its
    own request plus one reply on behalf of its peers) and likewise the
    receive NI, so each NI is an FCFS station with arrival rate [2/R] and
    constant service [g]; Bard's approximation gives the per-passage
    residence [g·(1 − g/R) / (1 − 2g/R)], and the cycle pays four
    passages:

    [R = Rw + 2·St + Rq + Ry + 4·R_ni].

    The matching simulator behaviour is enabled by the [gap] field of
    {!Lopc_activemsg.Spec.t}. *)

type solution = {
  gap : float;
  r : float;              (** Cycle time with the NI model. *)
  r_without_gap : float;  (** The ordinary LoPC cycle time ([g = 0]). *)
  ni_residence : float;   (** Residence per NI passage (wait + [g]). *)
  ni_utilization : float; (** Utilization of each NI, [2·g/R]. *)
  penalty : float;        (** Relative slowdown, [r / r_without_gap − 1]. *)
}

val solve : ?gap:float -> Params.t -> w:float -> solution
(** [solve ~gap params ~w] solves the gap-extended model. [gap] defaults
    to [0.] (recovering {!All_to_all.solve} exactly).
    @raise Invalid_argument if [gap < 0.] or [w < 0.]. *)

val lower_bound : gap:float -> Params.t -> w:float -> float
(** Contention-free cycle with NIs: [W + 2·St + 4·g + 2·So]. *)

val tolerable_gap : ?penalty:float -> Params.t -> w:float -> float
(** [tolerable_gap params ~w] is the largest [g] whose modeled slowdown
    stays below [penalty] (default [0.05], i.e. 5%) — a concrete answer
    to "when is LoPC's no-gap assumption safe?". Grows with [W] and
    [So]: the busier the processor, the more NI spacing it can hide.
    @raise Invalid_argument if [penalty <= 0.]. *)
