(** LoPC for client-server work-pile algorithms (paper §6).

    A machine of [P] nodes is split into [Ps] servers and [Pc = P − Ps]
    clients. Each client repeatedly processes a chunk of work ([W] cycles)
    and requests the next chunk from a uniformly chosen server; servers
    run no compute thread of their own. The model answers two questions:

    - the full throughput curve [X(Ps)] (Fig 6-2), from a Bard-style AMVA
      on the closed network of [Pc] customers cycling through a think
      stage [W + 2·St + So] and one of [Ps] identical queueing servers;
    - the optimal allocation (Eq 6.8): at maximum throughput the mean
      number of requests at each server is exactly 1, which collapses the
      model to closed form:
      [Rs = So·(1 + sqrt((C²+1)/2))],
      [R = W + 2·St + Rs + So],
      [Ps* = P·Rs / (R + Rs)].

    The client side is contention free — a client receives only its own
    reply and its thread is blocked when the reply arrives — so only the
    servers queue. *)

type solution = {
  servers : int;        (** [Ps] of this evaluation. *)
  clients : int;        (** [Pc = P − Ps]. *)
  throughput : float;   (** Chunks completed per cycle, [X]. *)
  cycle_time : float;   (** Mean client cycle [R]. *)
  server_residence : float;  (** [Rs]: queueing + service at a server. *)
  server_queue : float; (** Mean requests at one server, [Qs]. *)
  server_util : float;  (** Server utilization [Us]. *)
}

val throughput : ?threads_per_server:int -> Params.t -> w:float -> servers:int -> solution
(** [throughput params ~w ~servers] evaluates the model at one partition.
    [threads_per_server] (default [1]) models server nodes able to run
    that many handlers concurrently (e.g. multiple protocol threads) via
    the multi-server station approximation — an extension beyond the
    paper's single-threaded servers.
    @raise Invalid_argument unless [0 < servers < P], [w >= 0.] and
    [threads_per_server >= 1]. *)

val throughput_curve : ?threads_per_server:int -> Params.t -> w:float -> solution array
(** All partitions [Ps = 1 .. P−1] (the x-axis of Fig 6-2). *)

val server_residence_at_optimum : Params.t -> float
(** [Rs = So·(1 + sqrt((C²+1)/2))] (Eq 6.6) — e.g. [2·So] when
    [C² = 1]. *)

val optimal_servers_real : Params.t -> w:float -> float
(** Eq 6.8 before rounding: [P·Rs / (R + Rs)]. *)

val optimal_servers : Params.t -> w:float -> int
(** The integer partition maximizing model throughput: the better of the
    floor and ceiling of {!optimal_servers_real} (clamped to
    [\[1, P−1\]]). *)

val optimum_queue_is_one : Params.t -> w:float -> bool
(** Sanity check of the §6 argument: at {!optimal_servers} the modeled
    mean queue per server is within ±0.5 of 1. Exposed for tests. *)
