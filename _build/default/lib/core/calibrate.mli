(** Fitting LoPC's architectural parameters to measurements.

    §3 derives [St] and [So] from hardware documentation; in practice one
    often has the opposite: measured cycle times of a micro-benchmark at
    several work grains and no precise handler cost. This module inverts
    the model — given observations [(W_i, R_i)] from homogeneous
    all-to-all runs it finds the [(St, So)] whose LoPC predictions fit
    best in the least-squares sense, using Nelder–Mead on a
    log-parameterized objective (which keeps both parameters positive).

    {b Identifiability.} [St] and [So] are nearly degenerate in the
    cycle time — to first order only [2·St + 2·So] and the contention
    term (driven by [So]) are visible, so the unconstrained fit recovers
    the {e curve} far better than the individual parameters. When the
    wire latency is known (a ping-pong micro-benchmark measures it
    directly), pass [fixed_st] to pin it and the handler cost becomes
    well identified. *)

type fit = {
  params : Params.t;        (** Fitted parameter set. *)
  residual : float;         (** Root-mean-square error of the fit, in
                                cycles. *)
  relative_residual : float; (** RMS error relative to the RMS observed
                                 cycle time. *)
}

val fit :
  ?c2:float ->
  ?initial:float * float ->
  ?fixed_st:float ->
  p:int ->
  observations:(float * float) list ->
  unit ->
  fit
(** [fit ~p ~observations ()] estimates [(St, So)] from
    [(work, measured cycle time)] pairs. [c2] (default [1.]) is the
    assumed handler variability; [initial] (default [(10., 100.)]) seeds
    the search; [fixed_st] pins the wire latency and fits only [So] (see
    the identifiability note above).
    @raise Invalid_argument with fewer than two observations, a
    non-positive measured time, or negative work. *)

val predictions : fit -> observations:(float * float) list -> (float * float * float) list
(** [predictions f ~observations] is [(w, measured, fitted)] for each
    observation — convenient for printing the fit quality. *)
