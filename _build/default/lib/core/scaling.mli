(** Grain-size and scaling guidance derived from the LoPC model.

    The model answers design questions beyond predicting one run time:
    how fine-grained may an algorithm's communication become before
    contention eats its parallel efficiency, and how far does a fixed
    problem scale? These helpers package those answers (all for the
    homogeneous all-to-all pattern of §5). *)

val efficiency : Params.t -> w:float -> float
(** Fraction of the cycle spent on useful work, [W / R] — the parallel
    efficiency ceiling imposed by communication and contention.
    @raise Invalid_argument if [w < 0.]. *)

val min_work_for_efficiency : Params.t -> target:float -> float
(** [min_work_for_efficiency params ~target] is the smallest [W] whose
    {!efficiency} reaches [target] ∈ (0, 1) — i.e. how coarse the grain
    must be on this machine. Monotonicity of [W/R(W)] makes this a
    one-dimensional root find.
    @raise Invalid_argument if [target] is outside [(0, 1)]. *)

val speedup : Params.t -> total_work:float -> requests:int -> float
(** Fixed-size (strong) scaling: a job of [total_work] cycles split into
    [requests] communication rounds per node runs at
    [T(1)/T(P) = total_work / (n ·. R(W))] with [W = total_work/(P·n)]
    per-node work between requests. @raise Invalid_argument if
    [total_work <= 0.] or [requests < 1]. *)

val speedup_curve :
  p_values:int list -> st:float -> so:float -> ?c2:float -> total_work:float ->
  requests_per_node:int -> unit -> (int * float) list
(** [speedup_curve ~p_values ~st ~so ~total_work ~requests_per_node ()]
    evaluates {!speedup} across machine sizes (same [St], [So], [C²]),
    e.g. to locate where adding processors stops paying. *)
