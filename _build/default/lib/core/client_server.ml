module Amva = Lopc_mva.Amva
module Station = Lopc_mva.Station
module Solution = Lopc_mva.Solution

type solution = {
  servers : int;
  clients : int;
  throughput : float;
  cycle_time : float;
  server_residence : float;
  server_queue : float;
  server_util : float;
}

let check (params : Params.t) ~w ~servers =
  (match Params.validate params with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Client_server: " ^ reason));
  if w < 0. || not (Float.is_finite w) then invalid_arg "Client_server: invalid work value";
  if servers <= 0 || servers >= params.p then
    invalid_arg "Client_server: need 0 < servers < P"

(* Closed network: Pc customers; think stage W + 2·St + So (work, both wire
   trips and the contention-free reply handler at the client); Ps identical
   FCFS servers visited uniformly, so per-cycle demand So/Ps each. *)
let throughput ?(threads_per_server = 1) (params : Params.t) ~w ~servers =
  check params ~w ~servers;
  if threads_per_server < 1 then
    invalid_arg "Client_server: threads_per_server must be at least 1";
  let clients = params.p - servers in
  let think = w +. (2. *. params.st) +. params.so in
  let stations =
    Array.init servers (fun _ ->
        Station.queueing ~scv:params.c2 ~servers:threads_per_server
          ~demand:(params.so /. Float.of_int servers) ())
  in
  let sol = Amva.solve ~approximation:Amva.Bard ~think_time:think ~stations ~population:clients () in
  let x = sol.Solution.throughput in
  (* Per-visit numbers at one server: residence R_k is per cycle; each
     cycle makes one visit spread uniformly over the Ps stations. *)
  let server_residence = sol.Solution.residence.(0) *. Float.of_int servers in
  {
    servers;
    clients;
    throughput = x;
    cycle_time = sol.Solution.cycle_time;
    server_queue = sol.Solution.queue_length.(0);
    server_util = sol.Solution.utilization.(0);
    server_residence;
  }

let throughput_curve ?threads_per_server params ~w =
  Array.init (params.Params.p - 1) (fun i ->
      throughput ?threads_per_server params ~w ~servers:(i + 1))

let server_residence_at_optimum (params : Params.t) =
  params.so *. (1. +. sqrt ((params.c2 +. 1.) /. 2.))

let optimal_servers_real (params : Params.t) ~w =
  check params ~w ~servers:1;
  let rs = server_residence_at_optimum params in
  let r = w +. (2. *. params.st) +. rs +. params.so in
  Float.of_int params.p *. rs /. (r +. rs)

let optimal_servers params ~w =
  let real = optimal_servers_real params ~w in
  let clamp v = max 1 (min (params.Params.p - 1) v) in
  let lo = clamp (int_of_float (Float.floor real)) in
  let hi = clamp (int_of_float (Float.ceil real)) in
  if lo = hi then lo
  else begin
    let xl = (throughput params ~w ~servers:lo).throughput in
    let xh = (throughput params ~w ~servers:hi).throughput in
    if xl >= xh then lo else hi
  end

let optimum_queue_is_one params ~w =
  let best = optimal_servers params ~w in
  let sol = throughput params ~w ~servers:best in
  Float.abs (sol.server_queue -. 1.) <= 0.5
