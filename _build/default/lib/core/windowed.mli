(** LoPC extended to non-blocking (windowed) requests — the §7 future
    work, in the spirit of Heidelberger & Trivedi's models of parallel
    programs with asynchronous tasks (the paper's reference [11]).

    Each thread may keep up to [window] requests outstanding: after
    issuing a request it continues with the next work quantum and only
    blocks when the window is full. [window = 1] is exactly the blocking
    model of §5 (and this module then agrees with {!All_to_all} to solver
    tolerance — see the tests).

    The model treats each node as [window] circulating "slots". A slot's
    cycle is: a work quantum [W] on the home thread (queueing behind the
    node's other slots, with handler preemption inflating each quantum by
    the BKT term), the two wire hops, a request handler at a random peer
    and the reply handler at home, both inflated by Bard queueing exactly
    as in §5. With per-node slot-completion rate [X]:

    {v
    u  = So·X                      (request = reply handler utilization)
    Qq, Qy                         (§5 closed forms evaluated at u)
    Rq = Qq / X     Ry = Qy / X    (Little)
    Sw = (W + So·Qq) / (1 − u)               (window 1: replies never
                                              preempt a blocked thread)
    Sw = (W + So·(Qq+Qy)) / (1 − 2u)         (window ≥ 2: both handler
                                              classes preempt)
    Rw = Sw / (1 − (window−1)/window · X·Sw)
                                   (Schweitzer queueing among own slots —
                                    zero for window 1)
    R  = Rw + 2·St + Rq + Ry       and X = window / R.
    v}

    The fixed point in [X] is bracketed by [0] and the node saturation
    rate and solved by bisection. Validated against the simulator's
    windowed mode within ~10% across window ∈ 1..8 (see
    [test_integration.ml]). *)

type solution = {
  window : int;
  r : float;            (** Latency of one slot cycle (work start →
                            reply completion). *)
  rw : float;           (** Residence at the home thread incl. queueing
                            behind the node's other slots. *)
  rq : float;           (** Request-handler residence at the server. *)
  ry : float;           (** Reply-handler residence at home. *)
  uq : float;           (** Handler utilization [So·X]. *)
  qq : float;           (** Request handlers present at a node. *)
  node_rate : float;    (** Slot completions per cycle per node,
                            [X = window / R]. *)
  throughput : float;   (** System rate, [P ·. X]. *)
  processor_util : float;  (** [X ·. (W + 2·So)]: fraction of the node's
                               processor consumed per unit time. *)
}

val solve : ?window:int -> Params.t -> w:float -> solution
(** [solve params ~w] solves the windowed homogeneous all-to-all model.
    [window] defaults to [1].
    @raise Invalid_argument if [window < 1] or [w < 0.]. *)

val speedup_curve : ?max_window:int -> Params.t -> w:float -> (int * float) array
(** [(k, X_k / X_1)] for [k = 1..max_window] (default 8): the throughput
    gain from overlapping communication with computation. Saturates at
    the processor bound [1 / (W + 2·So)] over the blocking rate. *)

val saturation_rate : Params.t -> w:float -> float
(** The per-node rate ceiling [1 / (W + 2·So)]: each cycle consumes a full
    work quantum plus one request and one reply handler of the node's
    processor, no matter how large the window. *)
