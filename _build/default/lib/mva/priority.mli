(** Preempt-resume priority approximations.

    In the LoPC machine model message handlers run at high priority and
    preempt the compute thread (preempt-resume). The thread's residence
    time [Rw] is therefore inflated both by handlers already queued when
    it resumes and by handlers arriving while it runs. The paper (§5.1)
    uses the BKT approximation (Bryant, Krzesinski & Teunissen 1983 /
    Chandy-Lakshmi family, refs [4,5,9]):

    [Rw = (W + S_h·Q_h) / (1 − U_h)]

    where [W] is the thread's own service requirement, [Q_h] and [U_h] the
    steady-state queue length and utilization of the high-priority class,
    and [S_h] its mean service time. The simpler shadow-server
    approximation drops the queued-work term and only dilates by
    [1/(1 − U_h)]; it is provided for the ablation benchmarks. *)

val bkt :
  work:float -> handler_service:float -> handler_queue:float -> handler_util:float -> float
(** [bkt ~work ~handler_service ~handler_queue ~handler_util] is the BKT
    preempt-resume residence time shown above.
    @raise Invalid_argument if [handler_util >= 1.], or any argument is
    negative or non-finite. *)

val shadow_server : work:float -> handler_util:float -> float
(** [shadow_server ~work ~handler_util] is [work / (1 − handler_util)].
    @raise Invalid_argument under the same conditions as {!bkt}. *)
