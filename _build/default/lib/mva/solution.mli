(** Common result type for MVA solvers. *)

type t = {
  throughput : float;            (** System throughput [X]. *)
  cycle_time : float;            (** Mean cycle time [N / X]. *)
  residence : float array;       (** Per-station residence time [R_k]. *)
  queue_length : float array;    (** Per-station mean customers [Q_k]. *)
  utilization : float array;     (** Per-station utilization [U_k = X·D_k]. *)
}

val little_consistent : ?tol:float -> population:int -> t -> bool
(** [little_consistent ~population s] checks [Σ Q_k ≈ population] (Little's
    law over the whole network), the basic sanity invariant of any MVA
    solution. [tol] is relative (default [1e-6]). *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering. *)
