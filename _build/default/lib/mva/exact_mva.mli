(** Exact Mean Value Analysis for single-class closed product-form
    networks (Reiser & Lavenberg 1980, the paper's reference [18]).

    The exact recursion over population [n = 1..N]:
    - [R_k(n) = D_k ·. (1 + Q_k(n−1))] at queueing stations,
      [R_k(n) = D_k] at delay stations (Arrival Theorem);
    - [X(n) = n / (Z + Σ_k R_k(n))];
    - [Q_k(n) = X(n) ·. R_k(n)] (Little).

    Exact MVA is the ground truth the approximate solvers (and Bard's
    approximation used by LoPC) are tested against. It assumes exponential
    service at single-server FCFS stations, so the [scv] field is ignored
    and multi-server stations are rejected ([Invalid_argument]). *)

val solve :
  ?think_time:float -> stations:Station.t array -> population:int -> unit -> Solution.t
(** [solve ~think_time ~stations ~population ()] runs the exact recursion.
    [think_time] [Z] defaults to [0.].
    @raise Invalid_argument if [population < 0], [think_time < 0.], or
    [stations] is empty and [think_time = 0.] with positive population
    (cycle time would be zero). *)

val throughput_curve :
  ?think_time:float -> stations:Station.t array -> max_population:int -> unit -> float array
(** [throughput_curve ~stations ~max_population] is
    [X(1), ..., X(max_population)] from a single pass of the recursion —
    cheaper than repeated {!solve} calls. *)
