(** Approximate MVA for multi-class closed networks.

    Each customer class [c] has its own population [N_c], think time
    [Z_c] and per-station demands [D_ck]; stations are shared. This is the
    machinery behind the general LoPC model of Appendix A, where every
    thread (or group of identical threads) is a class and every node's
    processor is a station.

    The Bard variant approximates the queue seen by an arriving class-[c]
    customer at station [k] by the full steady-state queue [Σ_j Q_jk]; the
    Schweitzer variant removes the arriving customer's own expected
    contribution, [Σ_j Q_jk − Q_ck / N_c]. *)

type network = {
  think_times : float array;        (** [Z_c] per class. *)
  populations : int array;          (** [N_c] per class. *)
  demands : float array array;      (** [demands.(c).(k) = D_ck >= 0.]. *)
  station_kinds : Station.kind array;  (** Kind of each station [k]. *)
  station_scv : float array;        (** Service-time [C²] per station. *)
}

type solution = {
  throughput : float array;         (** [X_c] per class. *)
  cycle_time : float array;         (** [N_c / X_c] per class. *)
  residence : float array array;    (** [R_ck]. *)
  queue_length : float array array; (** [Q_ck]. *)
  utilization : float array;        (** [U_k = Σ_c X_c·D_ck]. *)
}

val validate : network -> (network, string) result
(** Shape and sign checks on all fields. *)

val solve :
  ?approximation:Amva.approximation ->
  ?use_scv:bool ->
  ?tol:float ->
  ?max_iter:int ->
  network ->
  solution
(** [solve network] iterates the multi-class AMVA equations to a fixed
    point. Defaults: [approximation = Bard], [use_scv = true].
    @raise Invalid_argument when {!validate} fails.
    @raise Lopc_numerics.Fixed_point.Diverged on convergence failure. *)
