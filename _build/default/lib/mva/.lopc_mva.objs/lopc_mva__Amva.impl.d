lib/mva/amva.ml: Array Float Lopc_numerics Solution Station
