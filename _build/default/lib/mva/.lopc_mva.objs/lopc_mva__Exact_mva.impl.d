lib/mva/exact_mva.ml: Array Float Solution Station
