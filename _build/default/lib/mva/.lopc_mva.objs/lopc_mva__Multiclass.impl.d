lib/mva/multiclass.ml: Amva Array Float Format Lopc_numerics Printf Station
