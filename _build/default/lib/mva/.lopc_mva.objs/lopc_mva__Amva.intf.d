lib/mva/amva.mli: Solution Station
