lib/mva/multiclass.mli: Amva Station
