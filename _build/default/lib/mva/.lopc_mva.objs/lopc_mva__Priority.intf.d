lib/mva/priority.mli:
