lib/mva/station.ml: Float Format Printf
