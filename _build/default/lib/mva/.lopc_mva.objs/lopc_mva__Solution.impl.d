lib/mva/solution.ml: Array Float Format
