lib/mva/station.mli: Format
