lib/mva/solution.mli: Format
