lib/mva/priority.ml: Float
