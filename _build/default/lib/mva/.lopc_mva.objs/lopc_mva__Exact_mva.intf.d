lib/mva/exact_mva.mli: Solution Station
