type t = {
  throughput : float;
  cycle_time : float;
  residence : float array;
  queue_length : float array;
  utilization : float array;
}

let little_consistent ?(tol = 1e-6) ~population t =
  let total = Array.fold_left ( +. ) 0. t.queue_length in
  let n = Float.of_int population in
  Float.abs (total -. n) <= tol *. Float.max 1. n

let pp ppf t =
  Format.fprintf ppf "@[<v>X = %g, cycle = %g@," t.throughput t.cycle_time;
  Array.iteri
    (fun k r ->
      Format.fprintf ppf "  station %d: R=%g Q=%g U=%g@," k r t.queue_length.(k)
        t.utilization.(k))
    t.residence;
  Format.fprintf ppf "@]"
