lib/repro/table.ml: Array Buffer Float Format List Printf Stdlib String
