lib/repro/table.mli: Format
