lib/repro/experiments.mli: Table
