lib/repro/experiments.ml: Array Float List Lopc Lopc_activemsg Lopc_dist Lopc_markov Lopc_mva Lopc_stats Lopc_topology Lopc_workloads Printf Table
