(** Numerically stable streaming moments (Welford's algorithm).

    Accumulates count, mean, variance, min and max of a stream of
    observations in O(1) space without catastrophic cancellation. Used by
    the simulator for per-cycle response-time statistics. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** An empty accumulator. *)

val copy : t -> t
(** Independent copy of the current state. *)

val add : t -> float -> unit
(** [add t x] folds the observation [x] into [t]. Non-finite observations
    raise [Invalid_argument] — they always indicate an instrumentation
    bug. *)

val count : t -> int
(** Number of observations so far. *)

val mean : t -> float
(** Sample mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (divisor n−1); [0.] with fewer than two
    observations. *)

val population_variance : t -> float
(** Variance with divisor n; [0.] when empty. *)

val stddev : t -> float
(** [sqrt (variance t)]. *)

val scv : t -> float
(** Squared coefficient of variation, [population_variance / mean²];
    [0.] when the mean is zero or the accumulator empty. *)

val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val total : t -> float
(** Sum of all observations ([mean ×. count]). *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having folded both
    streams (Chan et al. parallel combination). *)

val confidence_interval : t -> float
(** Half-width of the ~95% confidence interval on the mean assuming
    approximate normality ([1.96 · stddev / sqrt count]); [nan] with fewer
    than two observations. *)
