(** Streaming quantile estimation with the P² algorithm
    (Jain & Chlamtac, 1985).

    Estimates a single quantile of a stream in O(1) space by maintaining
    five markers whose heights are adjusted with piecewise-parabolic
    interpolation. Used to watch tail response times (e.g. the 95th
    percentile cycle time) during long simulations without storing the
    sample. *)

type t
(** Mutable estimator for one quantile. *)

val create : q:float -> t
(** [create ~q] estimates the [q]-th quantile, [0. < q < 1.].
    @raise Invalid_argument otherwise. *)

val add : t -> float -> unit
(** Fold one observation. @raise Invalid_argument on non-finite input. *)

val count : t -> int
(** Observations folded so far. *)

val estimate : t -> float
(** Current quantile estimate. Exact while fewer than five observations
    have been seen (computed from the sorted sample); [nan] when empty. *)
