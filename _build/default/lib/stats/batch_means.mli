(** Batch-means confidence intervals for steady-state simulation output.

    Successive per-cycle observations from a simulation are autocorrelated,
    so the naive Welford confidence interval is too tight. The batch-means
    method groups the stream into consecutive batches, treats batch means
    as (approximately) independent, and derives the interval from their
    spread — the standard approach for the steady-state means LoPC is
    validated against. *)

type t
(** Mutable accumulator. *)

val create : batch_size:int -> t
(** [create ~batch_size] groups every [batch_size] consecutive
    observations into one batch. @raise Invalid_argument if
    [batch_size <= 0]. *)

val add : t -> float -> unit
(** Fold one observation. *)

val count : t -> int
(** Total observations folded (including any incomplete final batch). *)

val completed_batches : t -> int
(** Number of full batches so far. *)

val mean : t -> float
(** Grand mean over completed batches; [nan] when none are complete. *)

val half_width : t -> float
(** Half-width of the ~95% confidence interval on the mean computed from
    batch means (normal critical value 1.96); [nan] with fewer than two
    complete batches. *)

val relative_half_width : t -> float
(** [half_width / |mean|]; [nan] when undefined. *)
