type t = {
  mutable start_time : float;
  mutable last_time : float;
  mutable value : float;
  mutable area : float;
}

let create ?(start_time = 0.) ?(value = 0.) () =
  { start_time; last_time = start_time; value; area = 0. }

let advance t now =
  if now < t.last_time then invalid_arg "Time_average: time went backwards";
  t.area <- t.area +. (t.value *. (now -. t.last_time));
  t.last_time <- now

let update t ~now v =
  advance t now;
  t.value <- v

let value t = t.value

let integral t ~now =
  if now < t.last_time then invalid_arg "Time_average.integral: time went backwards";
  t.area +. (t.value *. (now -. t.last_time))

let average t ~now =
  let elapsed = now -. t.start_time in
  if elapsed <= 0. then Float.nan else integral t ~now /. elapsed

let reset t ~now =
  advance t now;
  t.start_time <- now;
  t.area <- 0.
