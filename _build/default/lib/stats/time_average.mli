(** Time-weighted averages of piecewise-constant signals.

    The simulator tracks quantities such as queue length and processor
    utilization that change value at event instants and are constant in
    between. [Time_average] integrates such a signal so that
    [average t] is [∫ signal dt / elapsed time] — exactly the quantity
    Little's law and the MVA equations speak about. *)

type t
(** Mutable accumulator. *)

val create : ?start_time:float -> ?value:float -> unit -> t
(** [create ~start_time ~value ()] begins integrating a signal that holds
    [value] (default [0.]) from [start_time] (default [0.]). *)

val update : t -> now:float -> float -> unit
(** [update t ~now v] records that the signal changed to [v] at time [now].
    Time must be non-decreasing across calls.
    @raise Invalid_argument if [now] precedes the previous update. *)

val value : t -> float
(** Current signal value. *)

val average : t -> now:float -> float
(** Time average of the signal over [\[start_time, now\]]; [nan] when no
    time has elapsed. *)

val integral : t -> now:float -> float
(** [∫ signal dt] over [\[start_time, now\]]. *)

val reset : t -> now:float -> unit
(** [reset t ~now] discards history and restarts integration at [now] with
    the current signal value — used to drop simulator warm-up. *)
