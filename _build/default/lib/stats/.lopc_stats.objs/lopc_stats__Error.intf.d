lib/stats/error.mli: Format
