lib/stats/error.ml: Array Float Format
