lib/stats/welford.mli:
