lib/stats/sample.mli:
