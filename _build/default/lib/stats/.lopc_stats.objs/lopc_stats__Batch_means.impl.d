lib/stats/batch_means.ml: Float Welford
