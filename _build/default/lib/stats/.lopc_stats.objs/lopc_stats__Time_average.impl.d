lib/stats/time_average.ml: Float
