lib/stats/time_average.mli:
