(** Fixed-width bucket histograms.

    Used to inspect simulated service-time and response-time distributions
    (e.g. to confirm the simulator's handler-time [C²] matches the
    distribution the model was given). Values below the range go to an
    underflow bucket, values at or above the top go to an overflow
    bucket. *)

type t
(** Mutable histogram. *)

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal buckets.
    @raise Invalid_argument if [lo >= hi] or [bins <= 0]. *)

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
(** Total observations, including under/overflow. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the population of bucket [i] (0-based).
    @raise Invalid_argument if [i] is out of range. *)

val underflow : t -> int
(** Observations below [lo]. *)

val overflow : t -> int
(** Observations at or above [hi]. *)

val bin_bounds : t -> int -> float * float
(** [bin_bounds t i] is the half-open interval covered by bucket [i]. *)

val bins : t -> int
(** Number of buckets. *)

val fraction_below : t -> float -> float
(** [fraction_below t x] estimates the CDF at [x] from bucket populations
    (buckets straddling [x] contribute pro-rata); [nan] when empty. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** ASCII rendering with bars scaled to [width] characters (default 40). *)
