(** Error metrics for model-versus-measurement validation.

    The paper's accuracy claims are phrased as signed relative errors
    ("LoPC overestimates total runtime by 6% in the worst case", "the
    contention-free model under predicts total run time by 37%"). These
    helpers compute exactly those quantities for single points and sweeps. *)

val relative : predicted:float -> measured:float -> float
(** Signed relative error [(predicted − measured) / measured]. Positive
    means the model is pessimistic (over-predicts).
    @raise Invalid_argument if [measured = 0.]. *)

val percent : predicted:float -> measured:float -> float
(** [100 ×. relative]. *)

val absolute : predicted:float -> measured:float -> float
(** [predicted − measured]. *)

type summary = {
  max_abs_percent : float;  (** Largest magnitude of signed percent error. *)
  mean_abs_percent : float; (** Mean of |percent error| (MAPE). *)
  worst_index : int;        (** Index attaining [max_abs_percent]. *)
  bias_percent : float;     (** Mean signed percent error. *)
}
(** Aggregate error over a parameter sweep. *)

val summarize : predicted:float array -> measured:float array -> summary
(** [summarize ~predicted ~measured] pairs up the two series.
    @raise Invalid_argument if lengths differ, the arrays are empty, or a
    measured value is zero. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render e.g. ["max |err| 5.8% (at index 0), MAPE 2.1%, bias +1.9%"]. *)
