type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  {
    lo;
    hi;
    width = (hi -. lo) /. Float.of_int bins;
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = Stdlib.min (Array.length t.counts - 1) (int_of_float ((x -. t.lo) /. t.width)) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total

let bins t = Array.length t.counts

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_count: index";
  t.counts.(i)

let underflow t = t.under

let overflow t = t.over

let bin_bounds t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_bounds: index";
  let lo = t.lo +. (Float.of_int i *. t.width) in
  (lo, lo +. t.width)

let fraction_below t x =
  if t.total = 0 then Float.nan
  else begin
    let below = ref (Float.of_int t.under) in
    if x >= t.hi then below := !below +. Float.of_int (t.total - t.under);
    if x > t.lo && x < t.hi then
      Array.iteri
        (fun i c ->
          let blo, bhi = bin_bounds t i in
          if bhi <= x then below := !below +. Float.of_int c
          else if blo < x then
            below := !below +. (Float.of_int c *. (x -. blo) /. t.width))
        t.counts;
    !below /. Float.of_int t.total
  end

let pp ?(width = 40) ppf t =
  let max_count = Array.fold_left Stdlib.max 1 t.counts in
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar = String.make (c * width / max_count) '#' in
      Format.fprintf ppf "[%10.2f, %10.2f) %8d %s@," lo hi c bar)
    t.counts;
  if t.under > 0 then Format.fprintf ppf "underflow %d@," t.under;
  if t.over > 0 then Format.fprintf ppf "overflow %d@," t.over;
  Format.fprintf ppf "@]"
