lib/eventsim/event_heap.mli:
