lib/eventsim/engine.mli:
