lib/eventsim/event_heap.ml: Array Float
