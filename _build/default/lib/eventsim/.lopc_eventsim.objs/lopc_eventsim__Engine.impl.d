lib/eventsim/engine.ml: Event_heap Float
