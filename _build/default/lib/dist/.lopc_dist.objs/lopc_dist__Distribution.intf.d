lib/dist/distribution.mli: Format Lopc_prng
