lib/dist/distribution.ml: Array Float Format Lopc_prng
