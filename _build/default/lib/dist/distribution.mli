(** Non-negative service-time distributions.

    The LoPC model characterizes a service time by its mean and its squared
    coefficient of variation [C² = Var/mean²] (paper §3, §5.2). This module
    provides distributions with exactly known mean and [C²] so that the
    event-driven simulator can be driven by the same two numbers the
    analytical model consumes.

    All distributions here are supported on [\[0, ∞)] and have finite first
    and second moments. *)

type t =
  | Constant of float
      (** [Constant c]: always [c]. [C² = 0]. Models the paper's "short
          instruction streams with low variability" handlers. *)
  | Exponential of float
      (** [Exponential mean]: [C² = 1]. The default LoPC assumption. *)
  | Uniform of float * float
      (** [Uniform (lo, hi)]: uniform on [\[lo, hi\]], [0 <= lo <= hi]. *)
  | Erlang of int * float
      (** [Erlang (k, mean)]: sum of [k] iid exponentials with total mean
          [mean]. [C² = 1/k]. *)
  | Hyperexponential of float * float * float
      (** [Hyperexponential (p, mean1, mean2)]: with probability [p] draw
          from [Exponential mean1], else from [Exponential mean2].
          [C² >= 1]. *)
  | Shifted_exponential of float * float
      (** [Shifted_exponential (offset, mean)]: [offset] plus an
          exponential such that the total mean is [mean]
          ([offset <= mean]). Covers any [C²] in [(0, 1\]]. *)
  | Empirical of float array
      (** [Empirical samples]: resample uniformly from measured values
          (e.g. handler timings captured on real hardware). All samples
          must be finite and non-negative; the array must be
          non-empty. *)

val mean : t -> float
(** Exact mean. *)

val variance : t -> float
(** Exact variance. *)

val scv : t -> float
(** Squared coefficient of variation, [variance /. mean²]; [0.] when the
    mean is [0.]. *)

val sample : t -> Lopc_prng.Rng.t -> float
(** [sample t rng] draws one value. The result is always [>= 0.]. *)

val residual_mean : t -> float
(** Mean residual life observed by a random arrival while a service of this
    distribution is in progress: [(1 + C²)/2 · mean] (paper Eq 5.8). *)

val of_mean_scv : mean:float -> scv:float -> t
(** [of_mean_scv ~mean ~scv] builds a distribution with exactly the given
    mean and squared coefficient of variation:
    - [scv = 0.] → {!Constant};
    - [0 < scv < 1] → {!Shifted_exponential};
    - [scv = 1.] → {!Exponential};
    - [scv > 1.] → balanced-means two-phase {!Hyperexponential}.
    @raise Invalid_argument if [mean < 0.] or [scv < 0.]. *)

val validate : t -> (t, string) result
(** [validate t] is [Ok t] when the parameters satisfy the invariants
    documented on each constructor, and [Error reason] otherwise. Sampling
    an invalid distribution raises [Invalid_argument]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. ["Exp(mean=200)"]. *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)
