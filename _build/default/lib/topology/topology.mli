(** 2-D torus interconnect geometry.

    The paper's §2 assumes a contention-free interconnect. To test that
    simplification the simulator can optionally route messages over a
    2-D torus with dimension-order (X-then-Y) minimal routing, where
    every unidirectional link is a serially-reusable resource occupied
    for [link_time] per message and each hop adds [per_hop] propagation.

    Nodes are laid out row-major on a [rows × cols] grid with wrap-around
    in both dimensions. This module is pure geometry — link contention
    lives in {!Machine}. *)

type direction = X_plus | X_minus | Y_plus | Y_minus

type t = {
  rows : int;
  cols : int;
  per_hop : float;   (** Propagation per hop (router + wire pipeline). *)
  link_time : float; (** Link occupancy per message — the contended
                         resource. [0.] makes links contention free. *)
}

val create : ?rows:int -> nodes:int -> per_hop:float -> link_time:float -> unit -> t
(** [create ~nodes ~per_hop ~link_time ()] builds a torus for [nodes]
    processors. [rows] defaults to the largest divisor of [nodes] not
    exceeding its square root (the most nearly square torus).
    @raise Invalid_argument if [nodes < 2], [rows] does not divide
    [nodes], or a time parameter is negative. *)

val coords : t -> int -> int * int
(** [coords t node] is the [(row, col)] of [node].
    @raise Invalid_argument if [node] is out of range. *)

val node_of : t -> row:int -> col:int -> int
(** Inverse of {!coords} (coordinates taken modulo the torus size). *)

val distance : t -> src:int -> dst:int -> int
(** Minimal hop count between two nodes. *)

val route : t -> src:int -> dst:int -> (int * direction) list
(** The links crossed by a message under X-then-Y dimension-order minimal
    routing, each identified by the node it leaves and the outgoing
    direction. Empty for [src = dst]. Ties on even rings break toward the
    positive direction. *)

val mean_distance : t -> float
(** Average {!distance} to a destination chosen uniformly among the other
    [rows·cols − 1] nodes (the homogeneous all-to-all traffic of §5). *)

val mean_offsets : t -> float * float
(** [(mean |dx|, mean |dy|)] under the same uniform destination choice;
    they sum to {!mean_distance}. *)

val direction_index : direction -> int
(** Stable index in [0..3] for per-link bookkeeping arrays. *)

val pp : Format.formatter -> t -> unit
(** Render e.g. ["torus 4x8 (per_hop=2, link=5)"]. *)
