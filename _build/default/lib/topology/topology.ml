type direction = X_plus | X_minus | Y_plus | Y_minus

type t = { rows : int; cols : int; per_hop : float; link_time : float }

let default_rows nodes =
  let rec search d best = if d * d > nodes then best else search (d + 1) (if nodes mod d = 0 then d else best) in
  search 1 1

let create ?rows ~nodes ~per_hop ~link_time () =
  if nodes < 2 then invalid_arg "Topology.create: need at least two nodes";
  if per_hop < 0. || not (Float.is_finite per_hop) then
    invalid_arg "Topology.create: invalid per-hop time";
  if link_time < 0. || not (Float.is_finite link_time) then
    invalid_arg "Topology.create: invalid link time";
  let rows = match rows with Some r -> r | None -> default_rows nodes in
  if rows < 1 || nodes mod rows <> 0 then
    invalid_arg "Topology.create: rows must divide the node count";
  { rows; cols = nodes / rows; per_hop; link_time }

let coords t node =
  if node < 0 || node >= t.rows * t.cols then invalid_arg "Topology.coords: node out of range";
  (node / t.cols, node mod t.cols)

let node_of t ~row ~col =
  let wrap v m = ((v mod m) + m) mod m in
  (wrap row t.rows * t.cols) + wrap col t.cols

(* Minimal signed offset on a ring of size m; ties (even m, offset m/2)
   break toward the positive direction. *)
let ring_delta ~size a b =
  let raw = ((b - a) mod size + size) mod size in
  if raw * 2 <= size then raw else raw - size

let distance t ~src ~dst =
  let r1, c1 = coords t src and r2, c2 = coords t dst in
  abs (ring_delta ~size:t.cols c1 c2) + abs (ring_delta ~size:t.rows r1 r2)

let route t ~src ~dst =
  let r1, c1 = coords t src and r2, c2 = coords t dst in
  let dx = ring_delta ~size:t.cols c1 c2 in
  let dy = ring_delta ~size:t.rows r1 r2 in
  let links = ref [] in
  (* X dimension first. *)
  let col = ref c1 in
  for _ = 1 to abs dx do
    let here = node_of t ~row:r1 ~col:!col in
    if dx > 0 then begin
      links := (here, X_plus) :: !links;
      incr col
    end
    else begin
      links := (here, X_minus) :: !links;
      decr col
    end
  done;
  (* Then Y. *)
  let row = ref r1 in
  for _ = 1 to abs dy do
    let here = node_of t ~row:!row ~col:c2 in
    if dy > 0 then begin
      links := (here, Y_plus) :: !links;
      incr row
    end
    else begin
      links := (here, Y_minus) :: !links;
      decr row
    end
  done;
  List.rev !links

let mean_offsets t =
  let nodes = t.rows * t.cols in
  let dx_total = ref 0 and dy_total = ref 0 in
  for dst = 1 to nodes - 1 do
    let r1, c1 = coords t 0 and r2, c2 = coords t dst in
    dx_total := !dx_total + abs (ring_delta ~size:t.cols c1 c2);
    dy_total := !dy_total + abs (ring_delta ~size:t.rows r1 r2)
  done;
  let denom = Float.of_int (nodes - 1) in
  (Float.of_int !dx_total /. denom, Float.of_int !dy_total /. denom)

let mean_distance t =
  let nodes = t.rows * t.cols in
  let total = ref 0 in
  for dst = 1 to nodes - 1 do
    total := !total + distance t ~src:0 ~dst
  done;
  Float.of_int !total /. Float.of_int (nodes - 1)

let direction_index = function X_plus -> 0 | X_minus -> 1 | Y_plus -> 2 | Y_minus -> 3

let pp ppf t =
  Format.fprintf ppf "torus %dx%d (per_hop=%g, link=%g)" t.rows t.cols t.per_hop
    t.link_time
