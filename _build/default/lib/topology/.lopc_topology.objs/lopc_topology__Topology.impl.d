lib/topology/topology.ml: Float Format List
