lib/workloads/sample_sort.ml: Float Lopc Printf
