lib/workloads/matvec.ml: Float Lopc Printf
