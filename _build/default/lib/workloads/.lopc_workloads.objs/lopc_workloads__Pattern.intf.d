lib/workloads/pattern.mli: Lopc Lopc_activemsg Lopc_dist
