lib/workloads/matvec.mli: Lopc
