lib/workloads/pattern.ml: Array Float Format Lopc Lopc_activemsg Lopc_dist Printf
