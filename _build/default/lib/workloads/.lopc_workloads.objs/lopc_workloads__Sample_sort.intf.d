lib/workloads/sample_sort.mli: Lopc
