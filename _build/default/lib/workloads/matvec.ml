type t = { matrix_dim : int; p : int; madd_cost : float }

let create ~matrix_dim ~p ~madd_cost =
  if p < 2 then invalid_arg "Matvec: need at least two processors";
  if matrix_dim <= 0 || matrix_dim mod p <> 0 then
    invalid_arg "Matvec: matrix dimension must be a positive multiple of P";
  if madd_cost <= 0. || not (Float.is_finite madd_cost) then
    invalid_arg "Matvec: multiply-add cost must be positive";
  { matrix_dim; p; madd_cost }

let rows_per_node t = t.matrix_dim / t.p

let messages_per_node t = rows_per_node t * (t.p - 1)

let madds_per_node t = rows_per_node t * t.matrix_dim

let work_between_requests t =
  Float.of_int t.matrix_dim /. Float.of_int (t.p - 1) *. t.madd_cost

let characterize t =
  Lopc.Params.algorithm ~n:(messages_per_node t) ~w:(work_between_requests t)

let check_p (params : Lopc.Params.t) t =
  if params.p <> t.p then
    invalid_arg
      (Printf.sprintf "Matvec: parameter set has P=%d but workload has P=%d" params.p t.p)

let lopc_runtime params t =
  check_p params t;
  Lopc.All_to_all.total_runtime params (characterize t)

let logp_runtime params t =
  check_p params t;
  Lopc.Logp.total_runtime params (characterize t)
