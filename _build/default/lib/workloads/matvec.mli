(** The matrix-vector multiply of paper §3.

    An [N × N] matrix [A] is cyclically distributed over [P] processors
    (row [i] on processor [i mod P]); the input vector [x] is replicated.
    Each processor computes the [N/P] dot products for its rows; every
    result element [y_i] is then sent to each of the other [P − 1]
    processors with a blocking [put] (value + address; the remote handler
    stores and acknowledges).

    Per node this is [m = (N/P)·N] multiply-adds and
    [n = (N/P)·(P−1)] puts, so the LoPC work parameter is
    [W = m/n ·. madd = N/(P−1) ·. madd]. *)

type t = {
  matrix_dim : int;  (** [N]; must be a positive multiple of [p]. *)
  p : int;           (** Processor count. *)
  madd_cost : float; (** Cycles per multiply-add. *)
}

val create : matrix_dim:int -> p:int -> madd_cost:float -> t
(** @raise Invalid_argument if [p < 2], [matrix_dim] is not a positive
    multiple of [p], or [madd_cost <= 0.]. *)

val messages_per_node : t -> int
(** [n = (N/P)·(P−1)]. *)

val madds_per_node : t -> int
(** [m = (N/P)·N]. *)

val work_between_requests : t -> float
(** [W = N/(P−1) ·. madd_cost]. *)

val characterize : t -> Lopc.Params.algorithm
(** The [(n, W)] pair consumed by the LoPC and LogP analyses. *)

val lopc_runtime : Lopc.Params.t -> t -> float
(** Predicted total run time under LoPC (all-to-all contention model).
    @raise Invalid_argument if the parameter [P] differs from [t.p]. *)

val logp_runtime : Lopc.Params.t -> t -> float
(** Contention-free LogP prediction for comparison. *)
