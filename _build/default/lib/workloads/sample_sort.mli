(** Key-distribution phase of a parallel sort (after Dusseau's LogP sorting
    study, the paper's reference [8] and §1 motivation).

    [keys] keys are spread evenly over [p] nodes. Each node scans its
    local keys, determines every key's destination bucket (uniformly
    random for random input) and sends it there with a blocking put —
    irregular, homogeneous all-to-all traffic. A fraction [(p−1)/p] of
    keys leave the node, so between consecutive remote puts a node does
    the per-key work of [p/(p−1)] keys on average.

    This is exactly the class of algorithm whose LogP analyses
    under-predicted run time in Dusseau's study; the LoPC characterization
    below prices the missing contention. *)

type t = {
  keys : int;       (** Total keys, a positive multiple of [p]. *)
  p : int;          (** Processor count, at least 2. *)
  key_cost : float; (** Cycles to bucket and copy one key. *)
}

val create : keys:int -> p:int -> key_cost:float -> t
(** @raise Invalid_argument if the invariants above fail. *)

val keys_per_node : t -> int
(** [keys / p]. *)

val messages_per_node : t -> float
(** Expected remote puts per node, [keys/p ·. (p−1)/p]. *)

val work_between_requests : t -> float
(** [W = key_cost ·. p/(p−1)]. *)

val characterize : t -> Lopc.Params.algorithm
(** The [(n, W)] pair (with [n] rounded to the nearest integer). *)

val lopc_runtime : Lopc.Params.t -> t -> float
(** LoPC prediction of the distribution phase.
    @raise Invalid_argument if [params.p <> t.p]. *)

val logp_runtime : Lopc.Params.t -> t -> float
(** Contention-free LogP prediction — the analysis that under-predicted
    in the motivating study. *)
