type t = { keys : int; p : int; key_cost : float }

let create ~keys ~p ~key_cost =
  if p < 2 then invalid_arg "Sample_sort: need at least two processors";
  if keys <= 0 || keys mod p <> 0 then
    invalid_arg "Sample_sort: keys must be a positive multiple of P";
  if key_cost <= 0. || not (Float.is_finite key_cost) then
    invalid_arg "Sample_sort: key cost must be positive";
  { keys; p; key_cost }

let keys_per_node t = t.keys / t.p

let messages_per_node t =
  Float.of_int (keys_per_node t) *. Float.of_int (t.p - 1) /. Float.of_int t.p

let work_between_requests t = t.key_cost *. Float.of_int t.p /. Float.of_int (t.p - 1)

let characterize t =
  Lopc.Params.algorithm
    ~n:(int_of_float (Float.round (messages_per_node t)))
    ~w:(work_between_requests t)

let check_p (params : Lopc.Params.t) t =
  if params.p <> t.p then
    invalid_arg
      (Printf.sprintf "Sample_sort: parameter set has P=%d but workload has P=%d"
         params.p t.p)

let lopc_runtime params t =
  check_p params t;
  Lopc.All_to_all.total_runtime params (characterize t)

let logp_runtime params t =
  check_p params t;
  Lopc.Logp.total_runtime params (characterize t)
