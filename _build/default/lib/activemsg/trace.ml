type collector = {
  limit : int;
  mutable collected : Machine.cycle_report list;  (* newest first *)
  mutable count : int;
}

let collector ?(limit = 64) () =
  if limit < 1 then invalid_arg "Trace.collector: limit < 1";
  let t = { limit; collected = []; count = 0 } in
  let observe (report : Machine.cycle_report) =
    if report.Machine.measured && t.count < t.limit then begin
      t.collected <- report :: t.collected;
      t.count <- t.count + 1
    end
  in
  (t, observe)

let reports t = List.rev t.collected

let pp_report ppf (r : Machine.cycle_report) =
  Format.fprintf ppf
    "node %3d: start %.1f, sent %+.1f, done %+.1f (Rq %.1f, Ry %.1f, wire %.1f)"
    r.Machine.origin r.Machine.started
    (r.Machine.sent -. r.Machine.started)
    (r.Machine.completed -. r.Machine.started)
    r.Machine.request_residence r.Machine.reply_residence r.Machine.wire

(* Render one cycle as contiguous segments: thread work (incl. preemption),
   wire (both directions pooled for display), request residence, reply
   residence. Segments are scaled by [per_char] time units per column. *)
let pp_one ~per_char ppf (r : Machine.cycle_report) =
  let rw = r.Machine.sent -. r.Machine.started in
  let total = r.Machine.completed -. r.Machine.started in
  let segments =
    [
      ('=', rw);
      ('-', r.Machine.wire);
      ('q', r.Machine.request_residence);
      ('y', r.Machine.reply_residence);
    ]
  in
  Format.fprintf ppf "node %3d @%10.1f |" r.Machine.origin r.Machine.started;
  List.iter
    (fun (ch, duration) ->
      let cols = max 1 (int_of_float (Float.round (duration /. per_char))) in
      if duration > 0. then Format.fprintf ppf "%s" (String.make cols ch))
    segments;
  Format.fprintf ppf "| R = %.1f@," total

let pp_timeline ?(width = 60) ppf reports =
  match reports with
  | [] -> Format.fprintf ppf "(no cycles collected)@."
  | _ ->
    let longest =
      List.fold_left
        (fun acc (r : Machine.cycle_report) ->
          Float.max acc (r.Machine.completed -. r.Machine.started))
        0. reports
    in
    let per_char = Float.max 1e-9 (longest /. Float.of_int width) in
    Format.fprintf ppf "@[<v>legend: = work  - wire  q request handler  y reply handler@,";
    Format.fprintf ppf "scale: one column = %.1f cycles@," per_char;
    List.iter (pp_one ~per_char ppf) reports;
    Format.fprintf ppf "@]"
