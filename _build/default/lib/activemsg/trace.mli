(** Cycle-level tracing and ASCII timelines.

    Built on {!Machine.run}'s [on_cycle] observer: a bounded collector
    gathers the first completed cycles of a run, and the renderer prints
    each as a proportional text timeline — handy for eyeballing where a
    configuration spends its cycles (work, wire, handler queueing) and
    for teaching what the LoPC terms mean:

    {v
    node  3 @  12040.0  |======== W 1000 ==|-- St --|# Rq 412 #|-- St --|# Ry 208 #|  R = 1740
    v}  *)

type collector
(** Bounded in-memory trace. *)

val collector : ?limit:int -> unit -> collector * (Machine.cycle_report -> unit)
(** [collector ()] returns a trace plus the observer function to pass as
    [Machine.run ~on_cycle]. The first [limit] (default [64]) measured
    cycles are retained; warm-up cycles and overflow are dropped.
    @raise Invalid_argument if [limit < 1]. *)

val reports : collector -> Machine.cycle_report list
(** Collected cycles in completion order. *)

val pp_report : Format.formatter -> Machine.cycle_report -> unit
(** One-line summary of a cycle. *)

val pp_timeline : ?width:int -> Format.formatter -> Machine.cycle_report list -> unit
(** Proportional ASCII timelines, one line per cycle, with a shared time
    scale chosen from the longest cycle. [width] is the number of
    characters for that longest cycle (default [60]). *)
