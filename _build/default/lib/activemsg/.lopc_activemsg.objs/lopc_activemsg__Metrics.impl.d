lib/activemsg/metrics.ml: Array Float List Lopc_stats
