lib/activemsg/spec.mli: Lopc_dist Lopc_prng Lopc_topology
