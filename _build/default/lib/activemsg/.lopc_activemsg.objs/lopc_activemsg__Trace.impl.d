lib/activemsg/trace.ml: Float Format List Machine String
