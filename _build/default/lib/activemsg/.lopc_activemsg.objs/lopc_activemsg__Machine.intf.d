lib/activemsg/machine.mli: Metrics Spec
