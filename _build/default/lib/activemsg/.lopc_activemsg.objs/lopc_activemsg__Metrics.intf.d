lib/activemsg/metrics.mli: Lopc_stats
