lib/activemsg/machine.ml: Array Float List Lopc_dist Lopc_eventsim Lopc_prng Lopc_stats Lopc_topology Metrics Printf Queue Spec
