lib/activemsg/spec.ml: Array Float Format Fun List Lopc_dist Lopc_prng Lopc_topology
