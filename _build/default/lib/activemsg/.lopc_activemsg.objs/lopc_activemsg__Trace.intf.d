lib/activemsg/trace.mli: Format Machine
