(** Fault injection for the active-message simulator.

    The paper's machine model (§2) assumes a perfectly reliable,
    contention-free interconnect. For the NOW setting LoPC also claims,
    messages are dropped, duplicated and delayed, and the runtime recovers
    with timeout + retransmission. This module describes that failure
    layer; {!Machine} injects it deterministically from PRNG streams split
    off {e after} the per-node streams, so

    - the same seed replays the same faulty execution bit-for-bit, and
    - a fault config with zero probabilities (and a timeout longer than
      any round trip) is bit-identical to running with no faults at all.

    Faulty specs are restricted to blocking threads ([window = 1]),
    single-hop routes and the contention-free interconnect
    ([topology = None]); {!Spec.validate} and {!Machine} enforce this. *)

module Distribution = Lopc_dist.Distribution
module Rng = Lopc_prng.Rng

type backoff =
  | Fixed  (** Every retry waits the base timeout. *)
  | Exponential of { factor : float; cap : float }
      (** Try [n] waits [timeout ·. min cap (factor^(n−1))]. *)
  | Jittered of { spread : float }
      (** Try [n] waits [timeout] scaled by a uniform draw from
          [[1 − spread, 1 + spread]] (mean multiplier 1). *)

type outage_kind =
  | Slowdown of float
      (** Handler service at the node is multiplied by this factor (≥ 1)
          while the window is active. *)
  | Crash
      (** Every message arriving at the node during the window is lost;
          retransmission recovers the traffic after the restart. *)

type outage = {
  node : int;          (** Affected node id. *)
  starts : float;      (** Absolute simulation time the window opens. *)
  duration : float;    (** Window length (> 0). *)
  kind : outage_kind;
}
(** A transient per-node slowdown or crash-restart window. *)

type t = {
  drop : float;
      (** Per-traversal loss probability in [0, 1), applied independently
          to every request and reply copy. *)
  duplicate : float;
      (** Probability in [0, 1] that the network delivers a second copy of
          a message (the copy is subject to [drop] and delay spikes but is
          not itself re-duplicated). *)
  delay_epsilon : float;
      (** Weight in [0, 1] of the delay-spike mixture: with this
          probability a traversal samples its wire time from
          [delay_spike] instead of the spec's wire distribution. *)
  delay_spike : Distribution.t;  (** Second wire distribution (the spike). *)
  timeout : float;     (** Base retransmission timeout (> 0). *)
  backoff : backoff;   (** Retry schedule. *)
  max_tries : int;
      (** Retry budget (≥ 1): after this many unanswered tries the cycle
          is abandoned and counted in [Metrics.failed_cycles]. *)
  outages : outage list;
}

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_epsilon:float ->
  ?delay_spike:Distribution.t ->
  ?backoff:backoff ->
  ?max_tries:int ->
  ?outages:outage list ->
  timeout:float ->
  unit ->
  t
(** Fault config with all injection turned off by default: [drop],
    [duplicate] and [delay_epsilon] default to [0.], [backoff] to
    {!Fixed}, [max_tries] to [8], [outages] to [[]]. *)

val validate : nodes:int -> t -> (t, string) result
(** Checks every field against the ranges documented above ([nodes] bounds
    the outage node ids). Called from {!Spec.validate}. *)

val timeout_multiplier : t -> try_:int -> float
(** Deterministic timeout multiplier of the [try_]-th attempt (1-based):
    [1.] for {!Fixed}, [min cap (factor^(n−1))] for {!Exponential}, and
    the mean multiplier [1.] for {!Jittered}. This is what the analytical
    companion ([Lopc.Fault_model]) consumes as its backoff schedule. *)

val mean_timeout : t -> try_:int -> float
(** [timeout ·. timeout_multiplier]. *)

val timeout_for : t -> try_:int -> Rng.t -> float
(** Actual timeout for an attempt; samples the jitter factor from [rng]
    (a fault stream, never a node stream) for {!Jittered}. *)

val active_outage : t -> node:int -> now:float -> outage option
(** The outage window covering [node] at time [now], if any. *)

val is_crashed : t -> node:int -> now:float -> bool
(** Whether [node] is inside a {!Crash} window at [now]. *)

val slowdown_at : t -> node:int -> now:float -> float
(** Handler service multiplier for [node] at [now] ([1.] outside
    {!Slowdown} windows). *)
