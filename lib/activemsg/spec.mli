module Topology = Lopc_topology.Topology

(** Machine and workload specification for the active-message simulator.

    Mirrors the architectural assumptions of paper §2: [nodes] processors
    on a contention-free interconnect with infinitely deep hardware
    message queues. Each node may run one compute thread that alternates
    local work with blocking requests; request handlers run atomically at
    high priority and preempt the thread (unless a protocol processor is
    present, §5.1 "Modeling Shared Memory"). *)

module Distribution = Lopc_dist.Distribution

type route = Lopc_prng.Rng.t -> int list
(** [route rng] samples the chain of nodes a request visits, in order.
    A one-element list is the ordinary single-hop request; longer lists
    model the "multi-hop" requests of Appendix A. The reply returns
    directly from the last hop to the originating node. *)

type thread = {
  work : Distribution.t;  (** Local work [W] between blocking requests. *)
  route : route;          (** Destination chain sampler. *)
  window : int;           (** Maximum outstanding requests. [1] is the
                              paper's blocking model; larger values give
                              the non-blocking communication of §7 (the
                              thread keeps working until the window
                              fills). *)
}

type t = {
  nodes : int;                       (** [P], number of processors. *)
  threads : thread option array;     (** Per-node compute thread; [None]
                                         for pure servers. *)
  handler : Distribution.t;          (** Request-handler service time [So]. *)
  reply_handler : Distribution.t;    (** Reply-handler service time
                                         (the paper uses the same [So]). *)
  wire : Distribution.t;             (** Interconnect latency [St] per hop. *)
  protocol_processor : bool;         (** When [true], handlers execute on a
                                         dedicated per-node protocol
                                         processor and never preempt the
                                         thread (shared-memory mode). *)
  gap : float;                       (** LogP's [g]: minimum spacing between
                                         consecutive messages through a
                                         node's network interface, applied
                                         independently on the send and
                                         receive sides. [0.] (the paper's
                                         assumption of balanced bandwidth)
                                         disables the NI entirely. *)
  polling : bool;                    (** When [true], message notification
                                         is by polling (LogP's CM-5
                                         assumption): handlers never
                                         preempt a running thread and only
                                         execute at request-issue points or
                                         while the thread is blocked.
                                         Mutually exclusive with
                                         [protocol_processor]. *)
  initial_delay : (int -> float) option;
      (** Optional per-node start offset for the first cycle, e.g. to
          stagger an otherwise lock-step pattern. *)
  barrier : barrier option;
      (** Optional global barrier: every thread waits after each
          [interval] completed cycles until all threads arrive, then all
          restart simultaneously - the CM-5-style resynchronization the
          paper's introduction discusses ("extra barriers ... to
          resynchronize the communication pattern"). *)
  topology : Topology.t option;
      (** See the note above the type. *)
  fault : Fault.t option;
      (** Optional fault-injection and recovery layer ({!Fault}): message
          loss/duplication/delay spikes, per-node outage windows, and a
          timeout–retransmit protocol with sequence-number duplicate
          suppression. Requires blocking threads ([window = 1]),
          single-hop routes and [topology = None]. [None] keeps the
          paper's perfectly reliable interconnect. *)
}

and barrier = {
  interval : int;  (** Cycles per thread between barriers, [>= 1]. *)
  cost : float;    (** Time consumed by the barrier itself once the last
                       thread arrives, [>= 0.] (very low on the CM-5,
                       expensive elsewhere, per section 1). *)
}

(** When a {!Topology.t} is supplied in [topology], messages are routed
    over the torus with contended links and the [wire] distribution is
    ignored; [None] keeps the paper's contention-free interconnect. *)

val validate : t -> (t, string) result
(** Check node count, array lengths, route targets are checked at run
    time; distribution parameters are validated here. *)

val uniform_other : nodes:int -> origin:int -> route
(** Single-hop route to a uniformly random node other than [origin] — the
    homogeneous all-to-all pattern of §5. *)

val round_robin : nodes:int -> origin:int -> route
(** Deterministic single-hop route cycling through [origin+1, origin+2,
    ...] (mod [nodes]) — the "carefully staggered" all-to-all pattern
    discussed in the introduction. The returned closure is stateful. *)

val uniform_server : servers:int -> route
(** Single-hop route to a uniformly random node in [\[0, servers)] — the
    client-server pattern of §6 (servers occupy the low node ids). *)

val hotspot : nodes:int -> origin:int -> hot:int -> fraction:float -> route
(** With probability [fraction] go to node [hot], otherwise to a uniform
    other node (≠ origin). Models irregular traffic skew.
    @raise Invalid_argument if [fraction] is outside [\[0,1\]] or
    [hot] out of range. *)

val multi_hop : nodes:int -> origin:int -> hops:int -> route
(** Route visiting [hops] distinct uniformly chosen nodes (≠ origin),
    for exercising the Appendix-A multi-hop equations. *)

val all_to_all :
  ?protocol_processor:bool ->
  ?polling:bool ->
  ?gap:float ->
  ?staggered:bool ->
  ?window:int ->
  ?fault:Fault.t ->
  nodes:int ->
  work:Distribution.t ->
  handler:Distribution.t ->
  wire:Distribution.t ->
  unit ->
  t
(** Homogeneous all-to-all machine (§5): every node runs a thread with the
    given work distribution; [staggered] (default [false]) uses
    {!round_robin} instead of {!uniform_other}; [window] defaults to [1]
    (blocking requests). *)

val client_server :
  ?protocol_processor:bool ->
  ?fault:Fault.t ->
  nodes:int ->
  servers:int ->
  work:Distribution.t ->
  handler:Distribution.t ->
  wire:Distribution.t ->
  unit ->
  t
(** Work-pile machine (§6): nodes [0..servers−1] are pure servers, the
    remaining [nodes − servers] are clients.
    @raise Invalid_argument unless [0 < servers < nodes]. *)
