(** Measurements collected by a simulation run.

    Per-cycle observations map one-to-one onto the quantities of the LoPC
    model (paper Fig 4-3/4-4): for every completed compute/request cycle
    the simulator records the thread residence [Rw] (work plus preemption
    by handlers), total wire time, request-handler residence [Rq] (summed
    over hops: queueing plus service), reply-handler residence [Ry], and
    the full cycle time [R]. Node-level signals (utilizations and handler
    queue lengths) are time-averaged, matching the steady-state averages
    Little's law relates. *)

module Welford = Lopc_stats.Welford

type t = {
  mutable response : Welford.t;        (** Full cycle time [R]. *)
  mutable rw : Welford.t;              (** Thread residence [Rw]. *)
  mutable rq : Welford.t;              (** Request-handler residence [Rq], summed
                                   over hops. *)
  mutable ry : Welford.t;              (** Reply-handler residence [Ry]. *)
  mutable wire_time : Welford.t;       (** Total interconnect time per cycle. *)
  mutable latency : Welford.t;  (** Request latency: send instant to reply-handler
                                    completion. Equals [R − Rw] for blocking
                                    threads; the key metric for windowed
                                    (non-blocking) threads. *)
  mutable handler_service : Welford.t; (** Observed handler service samples (to
                                   cross-check mean and C²). *)
  mutable response_quantiles : (float * Lopc_stats.P2_quantile.t) list;
      (** Streaming percentile estimators for the cycle time, keyed by
          quantile; read through {!response_percentile}. *)
  mutable max_backlog : int;
      (** Read through {!max_handler_backlog}. *)
  mutable backlog_at_arrival : Welford.t;
      (** Read through {!arrival_backlog}. *)
  mutable cycles : int;        (** Completed measured cycles. *)
  mutable failed_cycles : int;
      (** Cycles abandoned after the fault layer's retry budget was
          exhausted (always [0] without faults). *)
  mutable request_sends : int;
      (** Request transmissions, including retransmits — the offered
          load's numerator. *)
  mutable retransmits : int;
      (** Timeout-triggered request retransmissions. *)
  mutable duplicate_deliveries : int;
      (** Request deliveries suppressed as duplicates by the handler-side
          sequence-number check (retransmitted or network-duplicated
          copies). Each still costs a full handler service. *)
  mutable stale_replies : int;
      (** Replies discarded at the origin because their cycle already
          completed or another copy was accepted first. *)
  mutable dropped_messages : int;
      (** Message copies lost to drop faults or crash windows. *)
  mutable tries_per_cycle : Welford.t;
      (** Tries needed per finished (answered or abandoned) cycle. *)
  mutable try_latency : Welford.t;
      (** Latency of the successful try: last (re)transmission to reply
          acceptance. *)
  mutable measure_start : float;  (** Simulation time when measurement
                                      began (after warm-up). *)
  mutable measure_end : float;    (** Simulation time of the last measured
                                      completion. *)
  request_queue : Lopc_stats.Time_average.t array;
      (** Per node: request handlers present (queued + in service) —
          the model's [Qq]. *)
  reply_queue : Lopc_stats.Time_average.t array;
      (** Per node: reply handlers present — the model's [Qy]. *)
  busy_request : Lopc_stats.Time_average.t array;
      (** Per node: 1 while a request handler is in service — [Uq]. *)
  busy_reply : Lopc_stats.Time_average.t array;
      (** Per node: 1 while a reply handler is in service — [Uy]. *)
  busy_thread : Lopc_stats.Time_average.t array;
      (** Per node: 1 while the compute thread is executing. *)
}

val create : nodes:int -> t
(** Fresh, empty metrics for a [nodes]-processor run. *)

val elapsed : t -> float
(** Measured interval length, [measure_end − measure_start]. *)

val throughput : t -> float
(** Completed cycles per unit time over the measured interval — the
    system throughput [X] (all threads combined); [nan] if nothing was
    measured. *)

val mean_response : t -> float
(** Mean cycle time [R]; [nan] when no cycles completed. *)

val goodput : t -> float
(** Successfully answered cycles per unit time — equals {!throughput}
    (which never counts abandoned cycles); [nan] if nothing was
    measured. *)

val offered_load : t -> float
(** Request sends (including retransmits) per unit time; with faults this
    exceeds {!goodput} by the retry inflation, without faults the two are
    equal. [nan] if nothing was measured. *)

val mean_tries : t -> float
(** Mean tries per finished cycle ([1.] without faults; [nan] when no
    cycles finished). *)

val mean_try_latency : t -> float
(** Mean latency of the successful try (send to reply acceptance). *)

val avg_request_queue : t -> float
(** [Qq] averaged over nodes and time. *)

val avg_reply_queue : t -> float
(** [Qy] averaged over nodes and time. *)

val avg_request_util : t -> float
(** [Uq] averaged over nodes. *)

val avg_reply_util : t -> float
(** [Uy] averaged over nodes. *)

val avg_thread_util : t -> float
(** Thread execution fraction averaged over nodes. *)

val max_handler_backlog : t -> int
(** Largest number of messages simultaneously present (queued plus in
    service) at any node during measurement — a direct check of the
    paper's infinite-buffer assumption (§2): real machines like Alewife
    hold only a few messages in hardware. *)

val arrival_backlog : t -> Welford.t
(** Queue length observed by arriving messages (excluding themselves) —
    the quantity Bard's approximation equates with the steady-state
    queue length. Compare with {!avg_request_queue} [+]
    {!avg_reply_queue} to measure the approximation's error directly. *)

val response_percentile : t -> float -> float
(** [response_percentile t q] is a streaming P² estimate of the [q]-th
    percentile of the cycle time, for [q ∈ {0.5, 0.9, 0.95, 0.99}];
    @raise Invalid_argument for other [q] (estimators are maintained only
    for those four). [nan] when no cycles completed. *)

val reset_at : t -> now:float -> unit
(** Drop all accumulated statistics and restart measurement at [now] —
    called once at the end of warm-up. *)
