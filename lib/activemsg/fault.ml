module Distribution = Lopc_dist.Distribution
module Rng = Lopc_prng.Rng

type backoff =
  | Fixed
  | Exponential of { factor : float; cap : float }
  | Jittered of { spread : float }

type outage_kind = Slowdown of float | Crash

type outage = { node : int; starts : float; duration : float; kind : outage_kind }

type t = {
  drop : float;
  duplicate : float;
  delay_epsilon : float;
  delay_spike : Distribution.t;
  timeout : float;
  backoff : backoff;
  max_tries : int;
  outages : outage list;
}

let create ?(drop = 0.) ?(duplicate = 0.) ?(delay_epsilon = 0.)
    ?(delay_spike = Distribution.Constant 0.) ?(backoff = Fixed) ?(max_tries = 8)
    ?(outages = []) ~timeout () =
  { drop; duplicate; delay_epsilon; delay_spike; timeout; backoff; max_tries; outages }

let validate ~nodes t =
  let problem =
    if not (Float.is_finite t.drop) || t.drop < 0. || t.drop >= 1. then
      Some "drop probability must lie in [0, 1)"
    else if not (Float.is_finite t.duplicate) || t.duplicate < 0. || t.duplicate > 1.
    then Some "duplication probability must lie in [0, 1]"
    else if
      not (Float.is_finite t.delay_epsilon)
      || t.delay_epsilon < 0. || t.delay_epsilon > 1.
    then Some "delay-spike weight must lie in [0, 1]"
    else if not (Float.is_finite t.timeout) || t.timeout <= 0. then
      Some "timeout must be positive and finite"
    else if t.max_tries < 1 then Some "retry budget must allow at least one try"
    else
      match t.backoff with
      | Exponential { factor; _ } when factor < 1. || not (Float.is_finite factor) ->
          Some "exponential backoff factor must be >= 1"
      | Exponential { cap; _ } when cap < 1. || not (Float.is_finite cap) ->
          Some "exponential backoff cap must be >= 1"
      | Jittered { spread } when spread < 0. || spread >= 1. ->
          Some "jitter spread must lie in [0, 1)"
      | Fixed | Exponential _ | Jittered _ -> None
  in
  let problem =
    match problem with
    | Some _ -> problem
    | None -> (
        match Distribution.validate t.delay_spike with
        | Error reason -> Some ("delay spike: " ^ reason)
        | Ok _ ->
            List.find_map
              (fun o ->
                if o.node < 0 || o.node >= nodes then
                  Some "outage names a node outside the machine"
                else if not (Float.is_finite o.starts) || o.starts < 0. then
                  Some "outage start time must be non-negative"
                else if not (Float.is_finite o.duration) || o.duration <= 0. then
                  Some "outage duration must be positive"
                else
                  match o.kind with
                  | Slowdown f when not (Float.is_finite f) || f < 1. ->
                      Some "slowdown factor must be >= 1"
                  | Slowdown _ | Crash -> None)
              t.outages)
  in
  match problem with Some reason -> Error ("fault: " ^ reason) | None -> Ok t

(* Deterministic part of the backoff schedule: the timeout multiplier for
   the [try_]-th attempt (1-based). The jittered schedule has mean
   multiplier 1 — jitter is sampled in [timeout_for]. *)
let timeout_multiplier t ~try_ =
  match t.backoff with
  | Fixed | Jittered _ -> 1.
  | Exponential { factor; cap } ->
      Float.min cap (factor ** float_of_int (try_ - 1))

let mean_timeout t ~try_ = t.timeout *. timeout_multiplier t ~try_

let timeout_for t ~try_ rng =
  let base = mean_timeout t ~try_ in
  match t.backoff with
  | Fixed | Exponential _ -> base
  | Jittered { spread } ->
      (* Uniform in [1 − spread, 1 + spread] × base: mean stays [base]. *)
      base *. Rng.float_range rng (1. -. spread) (1. +. spread)

let active_outage t ~node ~now =
  List.find_opt
    (fun o -> o.node = node && now >= o.starts && now < o.starts +. o.duration)
    t.outages

let is_crashed t ~node ~now =
  match active_outage t ~node ~now with
  | Some { kind = Crash; _ } -> true
  | Some { kind = Slowdown _; _ } | None -> false

let slowdown_at t ~node ~now =
  match active_outage t ~node ~now with
  | Some { kind = Slowdown f; _ } -> f
  | Some { kind = Crash; _ } | None -> 1.
