module Topology = Lopc_topology.Topology

module Distribution = Lopc_dist.Distribution
module Rng = Lopc_prng.Rng

type route = Rng.t -> int list

type thread = { work : Distribution.t; route : route; window : int }

type t = {
  nodes : int;
  threads : thread option array;
  handler : Distribution.t;
  reply_handler : Distribution.t;
  wire : Distribution.t;
  protocol_processor : bool;
  gap : float;
  polling : bool;
  initial_delay : (int -> float) option;
  barrier : barrier option;
  topology : Topology.t option;
  fault : Fault.t option;
}

and barrier = { interval : int; cost : float }

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.nodes <= 0 then err "machine needs at least one node, got %d" t.nodes
  else if t.polling && t.protocol_processor then
    err "polling and protocol_processor are mutually exclusive"
  else if t.gap < 0. || not (Float.is_finite t.gap) then
    err "gap must be finite and >= 0, got %g" t.gap
  else if
    (match t.barrier with
    | None -> false
    | Some b -> b.interval < 1 || b.cost < 0. || not (Float.is_finite b.cost))
  then err "barrier needs interval >= 1 and finite cost >= 0"
  else if
    (match t.topology with
    | None -> false
    | Some topo -> topo.Topology.rows * topo.Topology.cols <> t.nodes)
  then err "topology size does not match the node count"
  else if Option.is_some t.fault && Option.is_some t.topology then
    err "faults require the contention-free interconnect (topology = None)"
  else if Array.length t.threads <> t.nodes then
    err "threads array has %d entries for %d nodes" (Array.length t.threads) t.nodes
  else begin
    let fault_problem =
      match t.fault with
      | None -> None
      | Some f -> (
          match Fault.validate ~nodes:t.nodes f with
          | Error reason -> Some reason
          | Ok _ ->
              if
                Array.exists
                  (function Some th -> th.window > 1 | None -> false)
                  t.threads
              then Some "faults require blocking threads (window = 1)"
              else None)
    in
    let dist_problem =
      List.find_map
        (fun (name, d) ->
          match Distribution.validate d with
          | Ok _ -> None
          | Error reason -> Some (name ^ ": " ^ reason))
        [ ("handler", t.handler); ("reply_handler", t.reply_handler); ("wire", t.wire) ]
    in
    let thread_problem =
      Array.to_list t.threads
      |> List.find_map (function
           | None -> None
           | Some th ->
             if th.window < 1 then Some "thread window must be at least 1"
             else if th.window > 1 && Option.is_some t.barrier then
               Some "barriers require blocking threads (window = 1)"
             else (
               match Distribution.validate th.work with
               | Ok _ -> None
               | Error reason -> Some ("thread work: " ^ reason)))
    in
    match (fault_problem, dist_problem, thread_problem) with
    | Some reason, _, _ | None, Some reason, _ | None, None, Some reason ->
        Error reason
    | None, None, None -> Ok t
  end

let uniform_other ~nodes ~origin =
  if nodes < 2 then invalid_arg "Spec.uniform_other: need at least two nodes";
  fun rng ->
    let raw = Rng.int_below rng (nodes - 1) in
    [ (if raw >= origin then raw + 1 else raw) ]

let round_robin ~nodes ~origin =
  if nodes < 2 then invalid_arg "Spec.round_robin: need at least two nodes";
  let offset = ref 0 in
  fun _rng ->
    offset := (!offset mod (nodes - 1)) + 1;
    [ (origin + !offset) mod nodes ]

let uniform_server ~servers =
  if servers <= 0 then invalid_arg "Spec.uniform_server: need at least one server";
  fun rng -> [ Rng.int_below rng servers ]

let hotspot ~nodes ~origin ~hot ~fraction =
  if hot < 0 || hot >= nodes then invalid_arg "Spec.hotspot: hot node out of range";
  if not (fraction >= 0. && fraction <= 1.) then
    invalid_arg "Spec.hotspot: fraction outside [0,1]";
  let fallback = uniform_other ~nodes ~origin in
  fun rng -> if Rng.bernoulli rng fraction then [ hot ] else fallback rng

let multi_hop ~nodes ~origin ~hops =
  if hops < 1 then invalid_arg "Spec.multi_hop: need at least one hop";
  if nodes < 2 then invalid_arg "Spec.multi_hop: need at least two nodes";
  let pick = uniform_other ~nodes ~origin in
  fun rng -> List.concat_map (fun _ -> pick rng) (List.init hops Fun.id)

let check spec =
  match validate spec with Ok s -> s | Error reason -> invalid_arg ("Spec: " ^ reason)

let all_to_all ?(protocol_processor = false) ?(polling = false) ?(gap = 0.)
    ?(staggered = false) ?(window = 1) ?fault ~nodes ~work ~handler ~wire () =
  let make_route origin =
    if staggered then round_robin ~nodes ~origin else uniform_other ~nodes ~origin
  in
  check
    {
      nodes;
      threads = Array.init nodes (fun i -> Some { work; route = make_route i; window });
      handler;
      reply_handler = handler;
      wire;
      protocol_processor;
      gap;
      polling;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault;
    }

let client_server ?(protocol_processor = false) ?fault ~nodes ~servers ~work ~handler
    ~wire () =
  if servers <= 0 || servers >= nodes then
    invalid_arg "Spec.client_server: need 0 < servers < nodes";
  check
    {
      nodes;
      threads =
        Array.init nodes (fun i ->
            if i < servers then None
            else Some { work; route = uniform_server ~servers; window = 1 });
      handler;
      reply_handler = handler;
      wire;
      protocol_processor;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = None;
      fault;
    }
