(** The active-message machine simulator.

    Executes a {!Spec.t} on the discrete-event engine and returns
    {!Metrics.t}. The simulation follows paper §2 exactly:

    - the interconnect is contention free — every hop takes an
      independent draw from the wire distribution, regardless of load;
    - per-node message queues are unbounded FIFOs;
    - handlers are atomic and run at higher priority than the compute
      thread; in message-passing mode an arriving message preempts the
      thread (preempt-resume), in protocol-processor mode handlers run on
      a separate per-node resource and the thread is never disturbed;
    - a blocked thread resumes only when its reply handler has completed
      {e and} the handler queue has drained (queued handlers have
      priority, §5.1).

    Runs are deterministic functions of [seed] (or of the supplied [rng]
    stream). The entry points are re-entrant: all simulation state lives in
    the machine value built per call, so independent replications may run
    concurrently on separate domains as long as each gets its own stream. *)

type result = {
  metrics : Metrics.t;   (** Post-warm-up measurements. *)
  final_time : float;    (** Simulation clock at termination. *)
  events : int;          (** Total events executed (including warm-up). *)
  interrupted : Lopc_robust.Budget.stop_reason option;
      (** [Some reason] when a [budget] stopped the run before its cycle
          target; the metrics then cover only the cycles completed so
          far. [None] for a run that reached its target (or that was
          given no budget). *)
}

type cycle_report = {
  origin : int;           (** Node whose thread ran the cycle. *)
  started : float;        (** Work began (after the previous reply). *)
  sent : float;           (** Request issued. *)
  completed : float;      (** Reply handler finished. *)
  request_residence : float;  (** [Rq], summed over hops. *)
  reply_residence : float;    (** [Ry]. *)
  wire : float;           (** Total interconnect time. *)
  measured : bool;        (** Whether the cycle fell inside the
                              measurement window. *)
}
(** One completed compute/request cycle, as delivered to [on_cycle]
    observers — the raw material for traces and custom statistics. *)

val run :
  ?seed:int ->
  ?rng:Lopc_prng.Rng.t ->
  ?warmup_cycles:int ->
  ?max_events:int ->
  ?on_cycle:(cycle_report -> unit) ->
  ?obs:Lopc_obs.Sim_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  spec:Spec.t ->
  cycles:int ->
  unit ->
  result
(** [run ~spec ~cycles ()] simulates until [cycles] compute/request cycles
    have completed after warm-up (counted across all threads).
    [warmup_cycles] (default [max 1000 (cycles/10)]) completions are
    discarded first. [seed] defaults to [42]; when [rng] is given it is
    used as the master stream instead (the caller typically passes a
    {!Lopc_prng.Rng.split} child keyed on its replication index, so
    parallel replications stay deterministic). [max_events] (default
    [200_000_000]) is a runaway guard.

    When [obs] is given, the machine feeds it every observable
    transition — thread start/stop, handler begin/end, queue-depth
    changes, cycle completions, fault events, periodic engine samples —
    timestamped with the simulation clock only, and closes any open
    spans at termination ({!Lopc_obs.Sim_probe.finish}). The probe is
    pure instrumentation: it draws no randomness and schedules nothing,
    so a run's results are bit-identical with and without it.

    [budget] is consulted once per event (warm-up included, one unit of
    fuel each); when it stops the run, the result comes back gracefully
    with [interrupted = Some reason] and whatever metrics accumulated —
    in contrast to the hard [max_events] guard, which raises. A
    cancellation is observed within one event of the token flip. Fuel is
    simulation progress, so budgeted runs remain deterministic.
    @raise Invalid_argument if the spec fails {!Spec.validate}, no node
    runs a thread, a route ever returns an empty list or an out-of-range
    node, or [cycles <= 0]. *)

type confidence = {
  relative_half_width : float;  (** Achieved ~95% CI half-width relative
                                    to the mean response time; [nan] when
                                    undefined. *)
  batches : int;                (** Batches accumulated. *)
  converged : bool;             (** Whether the precision target was met
                                    before the batch budget ran out. *)
}

val run_until_confident :
  ?seed:int ->
  ?rng:Lopc_prng.Rng.t ->
  ?warmup_cycles:int ->
  ?max_events:int ->
  ?batch_cycles:int ->
  ?max_batches:int ->
  ?obs:Lopc_obs.Sim_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  rel_precision:float ->
  spec:Spec.t ->
  unit ->
  result * confidence
(** [run_until_confident ~rel_precision ~spec ()] simulates in batches of
    [batch_cycles] (default [2_000]) completed cycles, treating batch
    means of the response time as approximately independent, until the
    ~95% confidence half-width on the mean response falls below
    [rel_precision ×. mean] (or [max_batches], default [200], is
    reached). The standard batch-means stopping rule for steady-state
    means. @raise Invalid_argument on non-positive controls. *)
