module Topology = Lopc_topology.Topology

module Rng = Lopc_prng.Rng
module Distribution = Lopc_dist.Distribution
module Engine = Lopc_eventsim.Engine
module Time_average = Lopc_stats.Time_average
module Welford = Lopc_stats.Welford
module Sim_probe = Lopc_obs.Sim_probe

type result = {
  metrics : Metrics.t;
  final_time : float;
  events : int;
  interrupted : Lopc_robust.Budget.stop_reason option;
}

type cycle_report = {
  origin : int;
  started : float;
  sent : float;
  completed : float;
  request_residence : float;
  reply_residence : float;
  wire : float;
  measured : bool;
}

(* One compute/request cycle of a thread, from the instant the thread
   (re)starts local work to the completion of its reply handler.

   All-float on purpose: OCaml lays such a record out flat, so the
   per-hop accumulator stores ([t_sent], [rq_total], [wire_total]) are
   plain writes; with a mixed record every one of them would allocate a
   fresh float box. The origin node id rides along as a float — ids are
   small ints, exact far below 2^53 — and is converted back at its three
   integer use sites. *)
type cycle = {
  origin : float;
  t_start : float;
  mutable t_sent : float;
  mutable rq_total : float;
  mutable wire_total : float;
}

type msg_kind = Request | Reply

type msg = {
  kind : msg_kind;
  cycle : cycle;
  mutable remaining_hops : int list;  (* hops still to visit after the current one *)
  mutable arrived : float;            (* arrival time at the current node *)
  seq : int;  (* per-origin sequence number under faults; -1 otherwise *)
}

(* Retry state of the (single, window = 1) outstanding request of a node
   while faults are injected. *)
type pending = {
  pseq : int;
  pcycle : cycle;
  pdest : int;
  mutable tries : int;
  mutable timer : Engine.handle option;
  mutable reply_accepted : bool;
  mutable last_sent : float;
}

type thread_state =
  | Unstarted
  | Running of { handle : Engine.handle; finish : float }
  | Suspended of { remaining : float }  (* preempted, or waiting for queue drain *)
  | Blocked

type node = {
  id : int;
  rng : Rng.t;
  thread : Spec.thread option;
  mutable tstate : thread_state;
  mutable current_cycle : cycle option;
  queue : msg Queue.t;
  mutable busy : bool;  (* handler resource (CPU or protocol processor) *)
  mutable outstanding : int;  (* requests in flight (windowed sends) *)
  mutable cycles_done : int;   (* completed cycles (for barrier pacing) *)
  mutable parked : bool;       (* waiting at a barrier *)
  (* Fault-layer state (untouched when the spec injects no faults): *)
  mutable next_seq : int;              (* sequence numbers for dedup *)
  mutable pending : pending option;    (* in-flight request being retried *)
  seen : (int, int) Hashtbl.t;         (* origin -> highest seq delivered *)
}

type machine = {
  spec : Spec.t;
  engine : Engine.t;
  nodes : node array;
  metrics : Metrics.t;
  mutable measuring : bool;
  mutable completed_total : int;   (* completions since the start of time *)
  mutable completed_measured : int;
  thread_count : int;
  mutable parked_count : int;      (* threads currently at the barrier *)
  on_cycle : (cycle_report -> unit) option;
  (* Torus link bookkeeping: links.(node).(direction) is the time at which
     that outgoing link becomes free (timestamp-serialized FIFO). *)
  links : float array array;
  (* FIFO network interfaces, serialized by timestamp: a message passes
     each NI for [gap] cycles; the next message waits for the NI. Indexed
     by node id in flat float arrays (rather than mutable node fields) so
     the stores on the per-message path never allocate a float box. *)
  send_ni_free : float array;
  recv_ni_free : float array;
  (* Per-node fault-injection streams. Split from the master AFTER the node
     streams, and consulted only for fault decisions, so a run with a
     zero-probability fault config consumes exactly the same node-stream
     draws as a fault-free run — the replay bit-identity the tests rely
     on. Empty when [spec.fault = None]. *)
  fault_rngs : Rng.t array;
  (* Observability probe; [None] keeps the hot path to an option match. *)
  obs : Sim_probe.t option;
  (* Why the run loop stopped early, when a budget said so. *)
  mutable interrupted : Lopc_robust.Budget.stop_reason option;
}

(* Run [f] on the probe, when one is attached. *)
let obs_event m f = match m.obs with None -> () | Some o -> f o

let check_hop m hop =
  if hop < 0 || hop >= m.spec.Spec.nodes then
    invalid_arg
      (Printf.sprintf "Machine: route returned node %d outside [0, %d)" hop
         m.spec.Spec.nodes)

(* --- signal helpers ----------------------------------------------------- *)

let set_thread_running m node v =
  let now = Engine.now m.engine in
  Time_average.update m.metrics.Metrics.busy_thread.(node.id) ~now v;
  obs_event m (fun o -> Sim_probe.thread_running o ~node:node.id ~now (v > 0.5))

let queue_signal m node kind delta =
  let arr =
    match kind with
    | Request -> m.metrics.Metrics.request_queue
    | Reply -> m.metrics.Metrics.reply_queue
  in
  let ta = arr.(node.id) in
  Time_average.update ta ~now:(Engine.now m.engine) (Time_average.value ta +. delta)

let busy_signal m node kind v =
  let arr =
    match kind with
    | Request -> m.metrics.Metrics.busy_request
    | Reply -> m.metrics.Metrics.busy_reply
  in
  Time_average.update arr.(node.id) ~now:(Engine.now m.engine) v

(* --- thread lifecycle ---------------------------------------------------- *)

let rec start_thread_work m node remaining =
  let now = Engine.now m.engine in
  let handle = Engine.schedule m.engine ~delay:remaining (fun _ -> thread_done m node) in
  node.tstate <- Running { handle; finish = now +. remaining };
  set_thread_running m node 1.

(* The thread may (re)start only when no handler holds the CPU; with a
   protocol processor the CPU is always available to the thread. *)
and resume_thread_if_possible m node =
  match node.tstate with
  | Suspended { remaining } ->
    if m.spec.Spec.protocol_processor || not node.busy then
      start_thread_work m node remaining
  | Unstarted | Running _ | Blocked -> ()

(* Begin a new compute/request cycle: sample the work and leave the thread
   Suspended; the caller's dispatch tail decides when it actually runs. *)
and begin_cycle m node =
  match node.thread with
  | None -> ()
  | Some thread ->
    let now = Engine.now m.engine in
    let cycle =
      { origin = Float.of_int node.id; t_start = now; t_sent = Float.nan;
        rq_total = 0.; wire_total = 0. }
    in
    node.current_cycle <- Some cycle;
    let w = Distribution.sample thread.Spec.work node.rng in
    node.tstate <- Suspended { remaining = w }

(* Work quantum complete: issue the blocking request. *)
and thread_done m node =
  let now = Engine.now m.engine in
  set_thread_running m node 0.;
  let thread =
    match node.thread with
    | Some t -> t
    | None -> assert false
  in
  let cycle =
    match node.current_cycle with
    | Some c -> c
    | None -> assert false
  in
  cycle.t_sent <- now;
  node.outstanding <- node.outstanding + 1;
  (* A windowed (non-blocking) thread keeps computing until the window is
     full; a blocking thread (window 1) always waits here. *)
  if node.outstanding < thread.Spec.window then begin_cycle m node
  else node.tstate <- Blocked;
  let hops =
    match thread.Spec.route node.rng with
    | [] -> invalid_arg "Machine: route returned an empty hop list"
    | hops -> hops
  in
  List.iter (check_hop m) hops;
  let first, rest = (List.hd hops, List.tl hops) in
  (match m.spec.Spec.fault with
  | None -> send m ~src:node ~cycle ~kind:Request ~remaining:rest ~dest:first ~seq:(-1)
  | Some f ->
    if rest <> [] then
      invalid_arg "Machine: faults require single-hop routes";
    let seq = node.next_seq in
    node.next_seq <- seq + 1;
    let p =
      { pseq = seq; pcycle = cycle; pdest = first; tries = 1; timer = None;
        reply_accepted = false; last_sent = now }
    in
    node.pending <- Some p;
    if m.measuring then
      m.metrics.Metrics.request_sends <- m.metrics.Metrics.request_sends + 1;
    let delay = Fault.timeout_for f ~try_:1 m.fault_rngs.(node.id) in
    p.timer <- Some (Engine.schedule m.engine ~delay (fun _ -> request_timeout m node p));
    send m ~src:node ~cycle ~kind:Request ~remaining:[] ~dest:first ~seq);
  (* Request-issue is a poll point: in polling mode any handlers that
     queued up during the work quantum run now, before the thread may
     continue with its next quantum. *)
  try_dispatch m node;
  resume_thread_if_possible m node

(* --- message transport and handler execution ----------------------------- *)

(* Fault-aware send: each physical copy independently faces drop, a delay
   spike, and (for the first copy) network duplication; all fault decisions
   draw from the sender's fault stream only. *)
and send m ~src ~cycle ~kind ~remaining ~dest ~seq =
  match m.spec.Spec.fault with
  | None -> send_copy m ~src ~cycle ~kind ~remaining ~dest ~seq ~spiked:false
  | Some f ->
    let frng = m.fault_rngs.(src.id) in
    let emit () =
      if Rng.bernoulli frng f.Fault.drop then begin
        if m.measuring then
          m.metrics.Metrics.dropped_messages <-
            m.metrics.Metrics.dropped_messages + 1;
        obs_event m (fun o ->
            Sim_probe.fault_event o ~node:src.id ~now:(Engine.now m.engine) "drop")
      end
      else begin
        let spiked =
          f.Fault.delay_epsilon > 0. && Rng.bernoulli frng f.Fault.delay_epsilon
        in
        send_copy m ~src ~cycle ~kind ~remaining ~dest ~seq ~spiked
      end
    in
    emit ();
    if f.Fault.duplicate > 0. && Rng.bernoulli frng f.Fault.duplicate then emit ()

and send_copy m ~src ~cycle ~kind ~remaining ~dest ~seq ~spiked =
  let now = Engine.now m.engine in
  let msg = { kind; cycle; remaining_hops = remaining; arrived = Float.nan; seq } in
  let gap = m.spec.Spec.gap in
  (* Injection waits for the sender's NI, occupies it for [gap], then the
     interconnect follows. With gap = 0 this reduces to the plain wire. *)
  let injected =
    if Float.equal gap 0. then now
    else begin
      let start = Float.max now m.send_ni_free.(src.id) in
      m.send_ni_free.(src.id) <- start +. gap;
      start +. gap
    end
  in
  match m.spec.Spec.topology with
  | None ->
    let st =
      if spiked then begin
        match m.spec.Spec.fault with
        | Some f -> Distribution.sample f.Fault.delay_spike m.fault_rngs.(src.id)
        | None -> assert false
      end
      else Distribution.sample m.spec.Spec.wire (m.nodes.(dest)).rng
    in
    cycle.wire_total <- cycle.wire_total +. st;
    ignore
      (Engine.schedule_at m.engine ~time:(injected +. st) (fun _ ->
           wire_arrival m m.nodes.(dest) msg))
  | Some topo ->
    let path = Topology.route topo ~src:src.id ~dst:dest in
    traverse m ~topo ~msg ~dest ~injected_at:injected ~depart:injected path

(* Hop-by-hop torus traversal: each link is held for [link_time] (waiting
   if busy), each hop then adds [per_hop] propagation. *)
and traverse m ~topo ~msg ~dest ~injected_at ~depart path =
  match path with
  | [] ->
    msg.cycle.wire_total <- msg.cycle.wire_total +. (depart -. injected_at);
    ignore
      (Engine.schedule_at m.engine ~time:depart (fun _ ->
           wire_arrival m m.nodes.(dest) msg))
  | (node, direction) :: rest ->
    let free = m.links.(node) in
    let slot = Topology.direction_index direction in
    let start = Float.max depart free.(slot) in
    free.(slot) <- start +. topo.Topology.link_time;
    let next = start +. topo.Topology.link_time +. topo.Topology.per_hop in
    if rest = [] then traverse m ~topo ~msg ~dest ~injected_at ~depart:next []
    else
      ignore
        (Engine.schedule_at m.engine ~time:next (fun _ ->
             traverse m ~topo ~msg ~dest ~injected_at ~depart:next rest))

(* The message reached the destination's NI; delivery into the handler
   queue costs another [gap] of (possibly queued) NI time. *)
and wire_arrival m node msg =
  let gap = m.spec.Spec.gap in
  if Float.equal gap 0. then arrival m node msg
  else begin
    let now = Engine.now m.engine in
    let start = Float.max now m.recv_ni_free.(node.id) in
    m.recv_ni_free.(node.id) <- start +. gap;
    ignore
      (Engine.schedule_at m.engine ~time:(start +. gap) (fun _ -> arrival m node msg))
  end

(* Fault-layer admission control: crash windows lose the message, request
   deliveries are checked against the dedup table (but still handled at
   full cost — the handler demand inflation the model predicts), and only
   the first reply of the pending sequence number is accepted; every other
   reply is discarded at zero cost. *)
and arrival m node msg =
  match m.spec.Spec.fault with
  | None -> deliver m node msg
  | Some f ->
    let now = Engine.now m.engine in
    if Fault.is_crashed f ~node:node.id ~now then begin
      if m.measuring then
        m.metrics.Metrics.dropped_messages <- m.metrics.Metrics.dropped_messages + 1;
      obs_event m (fun o -> Sim_probe.fault_event o ~node:node.id ~now "drop")
    end
    else begin
      match msg.kind with
      | Request ->
        let origin = Float.to_int msg.cycle.origin in
        (match Hashtbl.find_opt node.seen origin with
        | Some last when msg.seq <= last ->
          if m.measuring then
            m.metrics.Metrics.duplicate_deliveries <-
              m.metrics.Metrics.duplicate_deliveries + 1;
          obs_event m (fun o -> Sim_probe.fault_event o ~node:node.id ~now "duplicate")
        | Some _ | None -> Hashtbl.replace node.seen origin msg.seq);
        deliver m node msg
      | Reply -> begin
        match node.pending with
        | Some p when p.pseq = msg.seq && not p.reply_accepted ->
          p.reply_accepted <- true;
          (match p.timer with
          | Some h ->
            Engine.cancel h;
            p.timer <- None
          | None -> ());
          if m.measuring then
            Welford.add m.metrics.Metrics.try_latency (now -. p.last_sent);
          deliver m node msg
        | Some _ | None ->
          if m.measuring then
            m.metrics.Metrics.stale_replies <- m.metrics.Metrics.stale_replies + 1;
          obs_event m (fun o -> Sim_probe.fault_event o ~node:node.id ~now "stale")
      end
    end

and deliver m node msg =
  msg.arrived <- Engine.now m.engine;
  queue_signal m node msg.kind 1.;
  if m.measuring then begin
    (* Backlog this message finds: waiting messages plus any in service. *)
    let found = Queue.length node.queue + if node.busy then 1 else 0 in
    Welford.add m.metrics.Metrics.backlog_at_arrival (Float.of_int found);
    let depth = found + 1 in
    if depth > m.metrics.Metrics.max_backlog then
      m.metrics.Metrics.max_backlog <- depth
  end;
  Queue.push msg node.queue;
  obs_event m (fun o ->
      Sim_probe.queue_depth o ~node:node.id ~now:msg.arrived ~arrival:true
        (Queue.length node.queue + if node.busy then 1 else 0));
  try_dispatch m node

(* Start the next queued handler if the handler resource is idle,
   preempting the compute thread in message-passing mode. *)
and try_dispatch m node =
  let thread_running = match node.tstate with Running _ -> true | _ -> false in
  if
    (not node.busy)
    && (not (Queue.is_empty node.queue))
    (* Polling: a running thread is never interrupted — queued messages
       wait for the next poll point (request issue or blocking). *)
    && not (m.spec.Spec.polling && thread_running)
  then begin
    let now = Engine.now m.engine in
    if not m.spec.Spec.protocol_processor then begin
      match node.tstate with
      | Running { handle; finish } ->
        Engine.cancel handle;
        node.tstate <- Suspended { remaining = finish -. now };
        set_thread_running m node 0.
      | Unstarted | Suspended _ | Blocked -> ()
    end;
    let msg = Queue.pop node.queue in
    node.busy <- true;
    busy_signal m node msg.kind 1.;
    obs_event m (fun o ->
        Sim_probe.handler_begin o ~node:node.id ~now
          ~reply:(match msg.kind with Reply -> true | Request -> false));
    let dist =
      match msg.kind with
      | Request -> m.spec.Spec.handler
      | Reply -> m.spec.Spec.reply_handler
    in
    let cost = Distribution.sample dist node.rng in
    let cost =
      match m.spec.Spec.fault with
      | None -> cost
      | Some f -> cost *. Fault.slowdown_at f ~node:node.id ~now
    in
    if m.measuring then Welford.add m.metrics.Metrics.handler_service cost;
    ignore (Engine.schedule m.engine ~delay:cost (fun _ -> handler_done m node msg))
  end

and handler_done m node msg =
  let now = Engine.now m.engine in
  node.busy <- false;
  busy_signal m node msg.kind 0.;
  queue_signal m node msg.kind (-1.);
  obs_event m (fun o ->
      Sim_probe.handler_end o ~node:node.id ~now
        ~reply:(match msg.kind with Reply -> true | Request -> false);
      Sim_probe.queue_depth o ~node:node.id ~now ~arrival:false
        (Queue.length node.queue));
  (match msg.kind with
  | Request -> begin
    msg.cycle.rq_total <- msg.cycle.rq_total +. (now -. msg.arrived);
    match msg.remaining_hops with
    | next :: rest ->
      send m ~src:node ~cycle:msg.cycle ~kind:Request ~remaining:rest ~dest:next
        ~seq:msg.seq
    | [] ->
      send m ~src:node ~cycle:msg.cycle ~kind:Reply ~remaining:[]
        ~dest:(Float.to_int msg.cycle.origin) ~seq:msg.seq
  end
  | Reply -> complete_cycle m node msg);
  try_dispatch m node;
  (* With a protocol processor the thread runs regardless of handler
     activity; on a shared CPU it may only resume once the queue drained. *)
  resume_thread_if_possible m node

(* The retransmission timer of a pending request fired. *)
and request_timeout m node p =
  match m.spec.Spec.fault with
  | None -> assert false
  | Some f -> begin
    (* Guard against a stale (logically cancelled) timer: the pending slot
       must still hold this very request and no reply may be in. *)
    match node.pending with
    | Some q when q.pseq = p.pseq && not p.reply_accepted ->
      if p.tries >= f.Fault.max_tries then give_up m node p
      else begin
        p.tries <- p.tries + 1;
        p.last_sent <- Engine.now m.engine;
        if m.measuring then begin
          m.metrics.Metrics.retransmits <- m.metrics.Metrics.retransmits + 1;
          m.metrics.Metrics.request_sends <- m.metrics.Metrics.request_sends + 1
        end;
        obs_event m (fun o ->
            Sim_probe.fault_event o ~node:node.id ~now:p.last_sent
              ~value:(Float.of_int p.tries) "retransmit");
        let delay = Fault.timeout_for f ~try_:p.tries m.fault_rngs.(node.id) in
        p.timer <-
          Some (Engine.schedule m.engine ~delay (fun _ -> request_timeout m node p));
        send m ~src:node ~cycle:p.pcycle ~kind:Request ~remaining:[] ~dest:p.pdest
          ~seq:p.pseq
      end
    | Some _ | None -> ()
  end

(* Retry budget exhausted: abandon the cycle. The thread moves on to its
   next cycle; any late replies for this sequence number are discarded as
   stale on arrival. *)
and give_up m node p =
  node.pending <- None;
  node.outstanding <- node.outstanding - 1;
  obs_event m (fun o ->
      Sim_probe.fault_event o ~node:node.id ~now:(Engine.now m.engine)
        ~value:(Float.of_int p.tries) "giveup");
  if m.measuring then begin
    m.metrics.Metrics.measure_end <- Engine.now m.engine;
    m.metrics.Metrics.failed_cycles <- m.metrics.Metrics.failed_cycles + 1;
    Welford.add m.metrics.Metrics.tries_per_cycle (Float.of_int p.tries)
  end;
  finish_cycle m node;
  (* Unlike the reply path, nothing else runs after this timer event: the
     next cycle's work quantum must be kicked off here or the thread would
     stay suspended forever. *)
  resume_thread_if_possible m node

(* Reply handler finished at the origin: close the books on this cycle and
   start the next one. *)
and complete_cycle m node msg =
  let now = Engine.now m.engine in
  let cycle = msg.cycle in
  assert (Float.to_int cycle.origin = node.id);
  node.outstanding <- node.outstanding - 1;
  (match m.spec.Spec.fault with
  | None -> ()
  | Some _ -> (
    match node.pending with
    | Some p when p.pseq = msg.seq ->
      node.pending <- None;
      if m.measuring then
        Welford.add m.metrics.Metrics.tries_per_cycle (Float.of_int p.tries)
    | Some _ | None -> ()));
  obs_event m (fun o ->
      Sim_probe.cycle_completed o ~node:node.id ~now
        ~rw:(cycle.t_sent -. cycle.t_start) ~wire:cycle.wire_total
        ~rq:cycle.rq_total ~ry:(now -. msg.arrived) ~total:(now -. cycle.t_start));
  (match m.on_cycle with
  | None -> ()
  | Some observer ->
    observer
      {
        origin = node.id;
        started = cycle.t_start;
        sent = cycle.t_sent;
        completed = now;
        request_residence = cycle.rq_total;
        reply_residence = now -. msg.arrived;
        wire = cycle.wire_total;
        measured = m.measuring;
      });
  if m.measuring then begin
    m.metrics.Metrics.measure_end <- now;
    m.metrics.Metrics.cycles <- m.metrics.Metrics.cycles + 1;
    if cycle.t_start >= m.metrics.Metrics.measure_start then begin
      Welford.add m.metrics.Metrics.response (now -. cycle.t_start);
      Welford.add m.metrics.Metrics.rw (cycle.t_sent -. cycle.t_start);
      Welford.add m.metrics.Metrics.rq cycle.rq_total;
      Welford.add m.metrics.Metrics.ry (now -. msg.arrived);
      Welford.add m.metrics.Metrics.wire_time cycle.wire_total;
      Welford.add m.metrics.Metrics.latency (now -. cycle.t_sent);
      List.iter
        (fun (_, est) -> Lopc_stats.P2_quantile.add est (now -. cycle.t_start))
        m.metrics.Metrics.response_quantiles
    end
  end;
  finish_cycle m node

(* Shared tail of answered and abandoned cycles: advance the counters that
   pace the run loop, the barrier, and the thread's next cycle. *)
and finish_cycle m node =
  m.completed_total <- m.completed_total + 1;
  if m.measuring then m.completed_measured <- m.completed_measured + 1;
  node.cycles_done <- node.cycles_done + 1;
  (* A blocked thread starts its next cycle now; a windowed thread that is
     still computing just sees its window open up. A barrier interval
     boundary parks the thread until every thread arrives. *)
  match node.tstate with
  | Blocked -> begin
    match m.spec.Spec.barrier with
    | Some { Spec.interval; cost } when node.cycles_done mod interval = 0 ->
      node.parked <- true;
      m.parked_count <- m.parked_count + 1;
      if m.parked_count = m.thread_count then
        (* Last thread arrived: release everyone after the barrier cost. *)
        ignore
          (Engine.schedule m.engine ~delay:cost (fun _ ->
               m.parked_count <- 0;
               Array.iter
                 (fun n ->
                   if n.parked then begin
                     n.parked <- false;
                     begin_cycle m n;
                     resume_thread_if_possible m n
                   end)
                 m.nodes))
    | Some _ | None -> begin_cycle m node
  end
  | Unstarted | Running _ | Suspended _ -> ()

(* --- driver -------------------------------------------------------------- *)

(* Build the machine, schedule the initial cycles and run the warm-up
   phase; returns the machine plus a guarded single-step function. *)
let prepare ?on_cycle ?rng ?obs ?budget ~seed ~warmup ~max_events ~spec () =
  (match Spec.validate spec with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Machine: " ^ reason));
  let engine = Engine.create () in
  (* The master stream may be supplied by the caller (a split child keyed
     on the replication, for parallel reproduction runs); everything below
     only ever splits and draws from [master], and the machine record owns
     all other state, so concurrent [run] calls never share anything. *)
  let master = match rng with Some r -> r | None -> Rng.create seed in
  let metrics = Metrics.create ~nodes:spec.Spec.nodes in
  let nodes =
    Array.init spec.Spec.nodes (fun id ->
        {
          id;
          rng = Rng.split master;
          thread = spec.Spec.threads.(id);
          tstate = Unstarted;
          current_cycle = None;
          queue = Queue.create ();
          busy = false;
          outstanding = 0;
          cycles_done = 0;
          parked = false;
          next_seq = 0;
          pending = None;
          seen = Hashtbl.create 8;
        })
  in
  (* Fault streams MUST be split after every node stream so that the node
     streams (and hence a zero-probability faulty run) are identical to a
     fault-free run under the same seed. *)
  let fault_rngs =
    match spec.Spec.fault with
    | None -> [||]
    | Some _ -> Array.init spec.Spec.nodes (fun _ -> Rng.split master)
  in
  let thread_count =
    Array.fold_left (fun acc n -> if Option.is_none n.thread then acc else acc + 1) 0 nodes
  in
  let m =
    { spec; engine; nodes; metrics; measuring = false; completed_total = 0;
      completed_measured = 0; thread_count; parked_count = 0; on_cycle;
      links = Array.init spec.Spec.nodes (fun _ -> Array.make 4 0.);
      send_ni_free = Array.make spec.Spec.nodes 0.;
      recv_ni_free = Array.make spec.Spec.nodes 0.;
      fault_rngs; obs; interrupted = None }
  in
  if thread_count = 0 then invalid_arg "Machine: no node runs a compute thread";
  (match obs with
  | None -> ()
  | Some o ->
    (* Engine health is sampled every 256 executed events; the probe's
       events are pure instrumentation and never schedule anything. *)
    Engine.set_observer engine (fun e ->
        if Engine.events_processed e land 255 = 0 then
          Sim_probe.engine_sample o ~now:(Engine.now e) ~heap:(Engine.pending e)
            ~executed:(Engine.events_processed e)));
  (* Kick off every thread's first cycle (optionally staggered). *)
  Array.iter
    (fun node ->
      match node.thread with
      | None -> ()
      | Some _ ->
        let delay =
          match spec.Spec.initial_delay with None -> 0. | Some f -> f node.id
        in
        if delay < 0. then invalid_arg "Machine: negative initial delay";
        ignore
          (Engine.schedule engine ~delay (fun _ ->
               begin_cycle m node;
               resume_thread_if_possible m node)))
    nodes;
  (* Phase 1: warm-up. *)
  let steps = ref 0 in
  let step_guarded () =
    (* The graceful stop (one unit of fuel per event, cancellation
       observed within one event) comes before the legacy hard guard. *)
    let stop =
      match budget with None -> None | Some b -> Lopc_robust.Budget.check b
    in
    match stop with
    | Some reason ->
      m.interrupted <- Some reason;
      (* Close the measurement window at the stop time: queue and busy
         time-averages have integrated past the last completed cycle, and
         leaving [measure_end] behind them would make the utilization
         readouts see time running backwards. *)
      if m.measuring then
        m.metrics.Metrics.measure_end <-
          Float.max m.metrics.Metrics.measure_end (Engine.now engine);
      false
    | None ->
      incr steps;
      if !steps > max_events then
        invalid_arg "Machine: event budget exhausted (likely a runaway configuration)";
      Engine.step engine
  in
  while m.completed_total < warmup && step_guarded () do
    ()
  done;
  m.measuring <- true;
  Metrics.reset_at metrics ~now:(Engine.now engine);
  (m, step_guarded)

let result_of m =
  {
    metrics = m.metrics;
    final_time = Engine.now m.engine;
    events = Engine.events_processed m.engine;
    interrupted = m.interrupted;
  }

let finish_obs m =
  match m.obs with
  | None -> ()
  | Some o -> Sim_probe.finish o ~now:(Engine.now m.engine)

let run ?(seed = 42) ?rng ?warmup_cycles ?(max_events = 200_000_000) ?on_cycle ?obs
    ?budget ~spec ~cycles () =
  if cycles <= 0 then invalid_arg "Machine: cycles must be positive";
  let warmup = match warmup_cycles with Some w -> max 0 w | None -> max 1000 (cycles / 10) in
  let m, step_guarded =
    prepare ?on_cycle ?rng ?obs ?budget ~seed ~warmup ~max_events ~spec ()
  in
  while m.completed_measured < cycles && step_guarded () do
    ()
  done;
  finish_obs m;
  result_of m

type confidence = {
  relative_half_width : float;
  batches : int;
  converged : bool;
}

let run_until_confident ?(seed = 42) ?rng ?(warmup_cycles = 2_000)
    ?(max_events = 500_000_000) ?(batch_cycles = 2_000) ?(max_batches = 200) ?obs
    ?budget ~rel_precision ~spec () =
  if rel_precision <= 0. then invalid_arg "Machine: rel_precision must be positive";
  if batch_cycles <= 0 then invalid_arg "Machine: batch_cycles must be positive";
  if max_batches < 3 then invalid_arg "Machine: need at least three batches";
  let m, step_guarded =
    prepare ?rng ?obs ?budget ~seed ~warmup:(max 0 warmup_cycles) ~max_events ~spec ()
  in
  let batch_means = Lopc_stats.Welford.create () in
  let exhausted = ref false in
  let converged = ref false in
  while (not !converged) && (not !exhausted) && Lopc_stats.Welford.count batch_means < max_batches do
    let target = m.completed_measured + batch_cycles in
    let count0 = Welford.count m.metrics.Metrics.response in
    let total0 = Welford.total m.metrics.Metrics.response in
    while m.completed_measured < target && not !exhausted do
      if not (step_guarded ()) then exhausted := true
    done;
    let dcount = Welford.count m.metrics.Metrics.response - count0 in
    if dcount > 0 then
      Lopc_stats.Welford.add batch_means
        ((Welford.total m.metrics.Metrics.response -. total0) /. Float.of_int dcount);
    if Lopc_stats.Welford.count batch_means >= 3 then begin
      let mean = Lopc_stats.Welford.mean batch_means in
      let half = Lopc_stats.Welford.confidence_interval batch_means in
      if (not (Float.equal mean 0.)) && Float.abs (half /. mean) <= rel_precision then
        converged := true
    end
  done;
  finish_obs m;
  let mean = Lopc_stats.Welford.mean batch_means in
  let half = Lopc_stats.Welford.confidence_interval batch_means in
  ( result_of m,
    {
      relative_half_width =
        (if Float.is_nan half || Float.equal mean 0. then Float.nan
         else Float.abs (half /. mean));
      batches = Lopc_stats.Welford.count batch_means;
      converged = !converged;
    } )
