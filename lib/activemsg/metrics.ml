module Welford = Lopc_stats.Welford
module Time_average = Lopc_stats.Time_average
module P2_quantile = Lopc_stats.P2_quantile

let tracked_quantiles = [ 0.5; 0.9; 0.95; 0.99 ]

type t = {
  mutable response : Welford.t;
  mutable rw : Welford.t;
  mutable rq : Welford.t;
  mutable ry : Welford.t;
  mutable wire_time : Welford.t;
  mutable latency : Welford.t;
  mutable handler_service : Welford.t;
  mutable response_quantiles : (float * P2_quantile.t) list;
  mutable max_backlog : int;
  mutable backlog_at_arrival : Welford.t;
  mutable cycles : int;
  mutable failed_cycles : int;
  mutable request_sends : int;
  mutable retransmits : int;
  mutable duplicate_deliveries : int;
  mutable stale_replies : int;
  mutable dropped_messages : int;
  mutable tries_per_cycle : Welford.t;
  mutable try_latency : Welford.t;
  mutable measure_start : float;
  mutable measure_end : float;
  request_queue : Time_average.t array;
  reply_queue : Time_average.t array;
  busy_request : Time_average.t array;
  busy_reply : Time_average.t array;
  busy_thread : Time_average.t array;
}

let create ~nodes =
  let mk () = Array.init nodes (fun _ -> Time_average.create ()) in
  {
    response = Welford.create ();
    rw = Welford.create ();
    rq = Welford.create ();
    ry = Welford.create ();
    wire_time = Welford.create ();
    latency = Welford.create ();
    handler_service = Welford.create ();
    response_quantiles =
      List.map (fun q -> (q, P2_quantile.create ~q)) tracked_quantiles;
    max_backlog = 0;
    backlog_at_arrival = Welford.create ();
    cycles = 0;
    failed_cycles = 0;
    request_sends = 0;
    retransmits = 0;
    duplicate_deliveries = 0;
    stale_replies = 0;
    dropped_messages = 0;
    tries_per_cycle = Welford.create ();
    try_latency = Welford.create ();
    measure_start = 0.;
    measure_end = 0.;
    request_queue = mk ();
    reply_queue = mk ();
    busy_request = mk ();
    busy_reply = mk ();
    busy_thread = mk ();
  }

let elapsed t = t.measure_end -. t.measure_start

let throughput t =
  let dt = elapsed t in
  if dt <= 0. then Float.nan else Float.of_int t.cycles /. dt

let mean_response t = Welford.mean t.response

(* Goodput counts only cycles whose request was answered; offered load
   counts every request send, including retransmits. The two coincide when
   no faults are injected. *)
let goodput t = throughput t

let offered_load t =
  let dt = elapsed t in
  if dt <= 0. then Float.nan else Float.of_int t.request_sends /. dt

let mean_tries t = Welford.mean t.tries_per_cycle

let mean_try_latency t = Welford.mean t.try_latency

let avg_over_nodes arrays ~upto =
  let n = Array.length arrays in
  if n = 0 then Float.nan
  else begin
    let acc = ref 0. in
    Array.iter (fun ta -> acc := !acc +. Time_average.average ta ~now:upto) arrays;
    !acc /. Float.of_int n
  end

let avg_request_queue t = avg_over_nodes t.request_queue ~upto:t.measure_end

let avg_reply_queue t = avg_over_nodes t.reply_queue ~upto:t.measure_end

let avg_request_util t = avg_over_nodes t.busy_request ~upto:t.measure_end

let avg_reply_util t = avg_over_nodes t.busy_reply ~upto:t.measure_end

let avg_thread_util t = avg_over_nodes t.busy_thread ~upto:t.measure_end

let max_handler_backlog t = t.max_backlog

let arrival_backlog t = t.backlog_at_arrival

let response_percentile t q =
  match List.assoc_opt q t.response_quantiles with
  | Some est -> P2_quantile.estimate est
  | None ->
    invalid_arg
      "Metrics.response_percentile: only 0.5, 0.9, 0.95 and 0.99 are tracked"

let reset_at t ~now =
  t.response <- Welford.create ();
  t.rw <- Welford.create ();
  t.rq <- Welford.create ();
  t.ry <- Welford.create ();
  t.wire_time <- Welford.create ();
  t.latency <- Welford.create ();
  t.handler_service <- Welford.create ();
  t.response_quantiles <-
    List.map (fun q -> (q, P2_quantile.create ~q)) tracked_quantiles;
  t.max_backlog <- 0;
  t.backlog_at_arrival <- Welford.create ();
  t.cycles <- 0;
  t.failed_cycles <- 0;
  t.request_sends <- 0;
  t.retransmits <- 0;
  t.duplicate_deliveries <- 0;
  t.stale_replies <- 0;
  t.dropped_messages <- 0;
  t.tries_per_cycle <- Welford.create ();
  t.try_latency <- Welford.create ();
  t.measure_start <- now;
  t.measure_end <- now;
  let reset_all = Array.iter (fun ta -> Time_average.reset ta ~now) in
  reset_all t.request_queue;
  reset_all t.reply_queue;
  reset_all t.busy_request;
  reset_all t.busy_reply;
  reset_all t.busy_thread
