module Roots = Lopc_numerics.Roots

let efficiency (params : Params.t) ~w =
  if w < 0. || not (Float.is_finite w) then invalid_arg "Scaling: invalid work value";
  if Float.equal w 0. then 0. else w /. (All_to_all.solve params ~w).All_to_all.r

let min_work_for_efficiency (params : Params.t) ~target =
  if not (target > 0. && target < 1.) then
    invalid_arg "Scaling.min_work_for_efficiency: target outside (0, 1)";
  let gap w = efficiency params ~w -. target in
  (* Efficiency is 0 at W = 0 and approaches 1 as W grows, monotonically:
     bracket upward from a small positive W. *)
  let lo, hi = Roots.expand_bracket_upward ~f:gap 1e-6 in
  Roots.brent ~f:gap lo hi

let speedup (params : Params.t) ~total_work ~requests =
  if total_work <= 0. || not (Float.is_finite total_work) then
    invalid_arg "Scaling.speedup: invalid total work";
  if requests < 1 then invalid_arg "Scaling.speedup: need at least one request";
  let n = Float.of_int requests in
  let w = total_work /. (Float.of_int params.Params.p *. n) in
  let r = (All_to_all.solve params ~w).All_to_all.r in
  total_work /. (n *. r)

let speedup_curve ~p_values ~st ~so ?(c2 = 1.) ~total_work ~requests_per_node () =
  List.map
    (fun p ->
      let params = Params.create ~c2 ~p ~st ~so () in
      (p, speedup params ~total_work ~requests:requests_per_node))
    p_values
