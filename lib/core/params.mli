(** LoPC model parameters (paper §3, Table 3.1).

    The architectural characterization is shared with LogP:

    {v
    LoPC   LogP   Description
    St     L      Average wire time (latency) in the interconnect
    So     o      Average cost of message dispatch (interrupt + handler)
    —      g      Peak processor-to-network bandwidth gap (assumed 0)
    P      P      Number of processors
    C²     —      Variability of handler service time (optional)
    v}

    The algorithmic characterization is the pair [(n, W)]: each thread
    issues [n] blocking requests with an average of [W] cycles of local
    work between them (§3 derives both for a matrix-vector multiply). *)

type t = {
  p : int;     (** Number of processors. *)
  st : float [@lopc.cost] [@lopc.unit "cycles"];
      (** Wire latency per network traversal (LogP's [L]). *)
  so : float [@lopc.cost] [@lopc.unit "cycles"];
      (** Handler occupancy: interrupt + handler service (LogP's [o]). *)
  c2 : float [@lopc.cost];
      (** Squared coefficient of variation of handler service time:
          [0.] constant, [1.] exponential (default). *)
}

val create : ?c2:float -> p:int -> st:float -> so:float -> unit -> t
(** [create ~p ~st ~so ()] validates and builds a parameter set. [c2]
    defaults to [1.] (the paper's default exponential assumption).
    @raise Invalid_argument if [p < 1], [st < 0.], [so <= 0.] or
    [c2 < 0.]. *)

val of_logp : l:float -> o:float -> p:int -> t
(** [of_logp ~l ~o ~p] imports a LogP characterization directly:
    [St = L], [So = o], [C² = 1.]. The LogP [g] parameter is dropped —
    LoPC assumes balanced processor/network bandwidth (§3). *)

val validate : t -> (t, string) result
(** Check the invariants listed under {!create}. *)

type algorithm = {
  n : int;  (** Total blocking requests issued per thread. *)
  w : float [@lopc.cost] [@lopc.unit "cycles"];
      (** Average local work between requests. *)
}
(** Algorithmic characterization. *)

val algorithm : n:int -> w:float -> algorithm
(** @raise Invalid_argument if [n < 0] or [w < 0.]. *)

val pp : Format.formatter -> t -> unit
(** Render e.g. ["P=32 St=40 So=200 C2=0"]. *)

val logp_correspondence : (string * string * string) list
(** Rows of Table 3.1: [(lopc_name, logp_name, description)] — used by
    the reproduction harness to print the table. *)
