(** LoPC for homogeneous all-to-all communication (paper §5).

    Every one of the [P] nodes runs a thread that alternates [W] cycles of
    local work with a blocking request to a uniformly random peer. By
    homogeneity the per-node equations collapse to one scalar fixed point
    in the cycle time [R] (Eqs 4.1, 5.1–5.10):

    {v
    s  = So / R                          (per-node handler throughput × So)
    β  = (C² − 1) / 2
    Qq = s · (1 + (1+2β)·s + β·s²) / (1 − s − s²)
    Qy = s · (1 + Qq + β·s)
    Rq = Qq · R        Ry = Qy · R
    Rw = (W + So·Qq) / (1 − s)           (message passing; W with a
                                          protocol processor, §5.1)
    R  = Rw + 2·St + Rq + Ry
    v}

    §5.3 notes the system is a quartic in [R]; {!quartic} constructs that
    polynomial explicitly and {!solve} offers three interchangeable
    solution methods (they agree to solver tolerance — see the tests). *)

type solution = {
  r : float;           (** Cycle time [R] including contention. *)
  rw : float;          (** Thread residence [Rw]. *)
  rq : float;          (** Request-handler residence [Rq]. *)
  ry : float;          (** Reply-handler residence [Ry]. *)
  qq : float;          (** Request handlers at a node, [Qq]. *)
  qy : float;          (** Reply handlers at a node, [Qy]. *)
  uq : float [@lopc.prob];  (** Utilization by request handlers, [Uq]. *)
  uy : float [@lopc.prob];  (** Utilization by reply handlers, [Uy]. *)
  throughput : float;  (** System throughput [X = P / R]. *)
  contention : float;  (** [R] minus the contention-free LogP cycle. *)
}

type execution =
  | Interrupt
      (** The paper's default machine: handlers interrupt the compute
          thread (preempt-resume), Eq 5.7. *)
  | Polling
      (** LogP's CM-5-style assumption (§3): handlers run only when the
          thread yields — at request-issue points and while blocked. The
          thread is never preempted ([Rw = W]) but every handler first
          waits out the residual work quantum of a busy thread, adding
          [Uw ·. (1 + C²w)/2 ·. W] to [Rq] and [Ry]. *)
  | Protocol_processor
      (** Shared-memory machines (§5.1): handlers execute on a dedicated
          per-node protocol processor; [Rw = W] and handlers queue only
          against each other. *)

type solve_method =
  | Brent_on_residual  (** Root of [F R −. R] by Brent's method (default). *)
  | Damped_iteration   (** Scalar fixed-point iteration with damping. *)
  | Polynomial_roots   (** Real roots of the cleared-denominator
                           polynomial of §5.3. *)

val solve_status :
  ?probe:Lopc_numerics.Solver_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  ?execution:execution ->
  ?work_scv:float ->
  ?solve_method:solve_method ->
  Params.t ->
  w:float ->
  solution option * Lopc_numerics.Fixed_point.status
(** [solve_status params ~w] solves the homogeneous model and reports a
    structured outcome. [execution] defaults to [Interrupt]; [work_scv]
    (squared coefficient of variation of the work quanta, default [1.])
    only affects [Polling], whose handler waiting time includes the
    thread's residual quantum. For [Brent_on_residual] the [Converged]
    iteration count is the number of residual evaluations. The reliable
    model never reports [Saturated] — its saturation floor lies strictly
    below the contention-free cycle time (see {!Fault_model} for a model
    that can).

    [probe] receives one event per iteration ([Damped_iteration]: the
    damped fixed-point steps, residuals strictly decreasing on a
    contraction) or per residual evaluation (the bracketing methods:
    residuals follow the bracket search, not a monotone schedule), with
    [hottest] set to the handler station's utilization [So/R] at the
    evaluated iterate.

    [budget] is consulted once per iteration ([Damped_iteration]) or per
    residual evaluation ([Brent_on_residual]); when it stops the run the
    outcome is [(None, Exhausted _)]. [Polynomial_roots] does not consult
    the budget: the direct root computation is a fixed amount of work and
    cannot spin.
    @raise Invalid_argument if [w < 0.], [work_scv < 0.], or parameters
    are invalid. *)

val solve :
  ?probe:Lopc_numerics.Solver_probe.t ->
  ?execution:execution ->
  ?work_scv:float ->
  ?solve_method:solve_method ->
  Params.t ->
  w:float ->
  solution
(** Raising variant of {!solve_status}.
    @raise Invalid_argument as {!solve_status}.
    @raise Lopc_numerics.Fixed_point.Diverged on any non-converged
    outcome. *)

val fixed_point_map :
  ?execution:execution -> ?work_scv:float -> Params.t -> w:float -> float -> float
(** [fixed_point_map params ~w r] is the map [F] whose fixed point is the
    cycle time — exposed for the bound proofs and property tests ([F] is
    continuous and decreasing above the contention-free cycle time). *)

val quartic :
  ?execution:execution -> ?work_scv:float -> Params.t -> w:float -> Lopc_numerics.Polynomial.t
(** The cleared-denominator polynomial whose relevant real root is the
    cycle time (degree ≤ 5 before trimming; degree 4 in the paper's
    [C² = 0] message-passing case after cancellation). *)

val lower_bound : Params.t -> w:float -> float
(** Contention-free cost, [W + 2·St + 2·So] (Eq 5.12 left). *)

val upper_bound : Params.t -> w:float -> float
(** [W + 2·St + k·So] with [k] from {!rule_of_thumb_constant}
    (Eq 5.12 right: [k = 3.46] when [C² = 0]). *)

val rule_of_thumb_constant : c2:float -> float
(** The constant [k] such that [R* < W + 2·St + k·So] for all [W, St]:
    the normalized solution at [W = 0], [St = 0], [So = 1] where
    contention is maximal. [k ≈ 3.46] for [C² = 0], growing with [C²]. *)

val contention_fraction : Params.t -> w:float -> float
(** Fraction of the cycle time spent on contention,
    [(R − lower_bound) / R] — the y-axis of Fig 5-1. *)

val total_runtime : ?execution:execution -> Params.t -> Params.algorithm -> float
(** [n ·. R]: predicted application run time (§4). *)
