module Topology = Lopc_topology.Topology
module Roots = Lopc_numerics.Roots

type solution = {
  r : float;
  r_contention_free : float;
  link_utilization : float;
  crossing_residence : float;
  mean_distance : float;
  penalty : float;
}

let check (params : Params.t) ~(topology : Topology.t) ~w =
  (match Params.validate params with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Torus: " ^ reason));
  if w < 0. || not (Float.is_finite w) then invalid_arg "Torus: invalid work value";
  if topology.Topology.rows * topology.Topology.cols <> params.p then
    invalid_arg "Torus: topology size does not match P"

(* Bard residence of one crossing of a link with constant occupancy
   [link_time] and arrival rate [lambda]; the hop propagation follows. *)
let crossing ~(topology : Topology.t) ~lambda =
  let lt = topology.Topology.link_time in
  if Float.equal lt 0. then topology.Topology.per_hop
  else begin
    let u = lambda *. lt in
    if u >= 0.999 then infinity
    else topology.Topology.per_hop +. (lt *. (1. -. (u /. 2.)) /. (1. -. u))
  end

(* Effective one-way network time given the cycle time r: per-dimension
   link rates (by symmetry every X link carries mean_dx/R, every Y link
   mean_dy/R). *)
let network_time ~topology r =
  let mean_dx, mean_dy = Topology.mean_offsets topology in
  let cx = crossing ~topology ~lambda:(mean_dx /. r) in
  let cy = crossing ~topology ~lambda:(mean_dy /. r) in
  (mean_dx *. cx) +. (mean_dy *. cy)

let solve (params : Params.t) ~topology ~w =
  check params ~topology ~w;
  let d = Topology.mean_distance topology in
  let st_free =
    d *. (topology.Topology.per_hop +. topology.Topology.link_time)
  in
  let base_params = Params.create ~c2:params.c2 ~p:params.p ~st:st_free ~so:params.so () in
  let r_free = (All_to_all.solve base_params ~w).All_to_all.r in
  (* Fixed point with the contended network: replace the 2·St term of the
     zero-St model by two traversals of the torus. *)
  let no_net = Params.create ~c2:params.c2 ~p:params.p ~st:0. ~so:params.so () in
  let f r =
    All_to_all.fixed_point_map no_net ~w r +. (2. *. network_time ~topology r) -. r
  in
  let lb = w +. (2. *. st_free) +. (2. *. params.so) in
  let r =
    if f lb <= 0. then lb
    else begin
      let lo, hi = Roots.expand_bracket_upward ~f lb in
      Roots.brent ~f lo hi
    end
  in
  let mean_dx, mean_dy = Topology.mean_offsets topology in
  let u =
    (* Report the busier dimension's utilization. *)
    Float.max (mean_dx /. r) (mean_dy /. r) *. topology.Topology.link_time
  in
  {
    r;
    r_contention_free = r_free;
    link_utilization = u;
    crossing_residence = network_time ~topology r /. Float.max 1e-12 d;
    mean_distance = d;
    penalty = (r /. r_free) -. 1.;
  }

let tolerable_link_time ?(penalty = 0.05) (params : Params.t) ~(topology : Topology.t) ~w =
  if penalty <= 0. then invalid_arg "Torus.tolerable_link_time: penalty must be positive";
  check params ~topology ~w;
  let slowdown lt =
    (solve params ~topology:{ topology with Topology.link_time = lt } ~w).penalty
    -. penalty
  in
  let lo, hi = Roots.expand_bracket_upward ~f:slowdown 1e-9 in
  Roots.brent ~f:slowdown lo hi
