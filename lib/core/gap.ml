module Roots = Lopc_numerics.Roots

type solution = {
  gap : float;
  r : float;
  r_without_gap : float;
  ni_residence : float;
  ni_utilization : float;
  penalty : float;
}

let check (params : Params.t) ~gap ~w =
  (match Params.validate params with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Gap: " ^ reason));
  if w < 0. || not (Float.is_finite w) then invalid_arg "Gap: invalid work value";
  if gap < 0. || not (Float.is_finite gap) then invalid_arg "Gap: invalid gap value"

let lower_bound ~gap (params : Params.t) ~w =
  check params ~gap ~w;
  w +. (2. *. params.st) +. (4. *. gap) +. (2. *. params.so)

(* Bard residence of one passage through an NI with constant service g and
   arrival rate 2/R. Valid while the NI is stable (2g < R). *)
let ni_residence_at ~gap r =
  if Float.equal gap 0. then 0.
  else begin
    let lambda = 2. /. r in
    let u = lambda *. gap in
    if u >= 0.999 then infinity else gap *. (1. -. (u /. 2.)) /. (1. -. u)
  end

let fixed_point_map ~gap (params : Params.t) ~w r =
  All_to_all.fixed_point_map params ~w r +. (4. *. ni_residence_at ~gap r)

let solve ?(gap = 0.) (params : Params.t) ~w =
  check params ~gap ~w;
  let base = All_to_all.solve params ~w in
  if Float.equal gap 0. then
    {
      gap;
      r = base.All_to_all.r;
      r_without_gap = base.All_to_all.r;
      ni_residence = 0.;
      ni_utilization = 0.;
      penalty = 0.;
    }
  else begin
    let lb = lower_bound ~gap params ~w in
    let f r = fixed_point_map ~gap params ~w r -. r in
    let r =
      if f lb <= 0. then lb
      else begin
        let lo, hi = Roots.expand_bracket_upward ~f lb in
        Roots.brent ~f lo hi
      end
    in
    {
      gap;
      r;
      r_without_gap = base.All_to_all.r;
      ni_residence = ni_residence_at ~gap r;
      ni_utilization = 2. *. gap /. r;
      penalty = (r /. base.All_to_all.r) -. 1.;
    }
  end

let tolerable_gap ?(penalty = 0.05) (params : Params.t) ~w =
  if penalty <= 0. then invalid_arg "Gap.tolerable_gap: penalty must be positive";
  check params ~gap:0. ~w;
  let slowdown g = (solve ~gap:g params ~w).penalty -. penalty in
  (* The penalty is 0 at g = 0 and grows without bound; bracket upward. *)
  let lo, hi = Roots.expand_bracket_upward ~f:slowdown 1e-9 in
  Roots.brent ~f:slowdown lo hi
