module Roots = Lopc_numerics.Roots
module Fixed_point = Lopc_numerics.Fixed_point
module Solver_probe = Lopc_numerics.Solver_probe
module Polynomial = Lopc_numerics.Polynomial
module Linear = Lopc_numerics.Linear

type solution = {
  r : float;
  rw : float;
  rq : float;
  ry : float;
  qq : float;
  qy : float;
  uq : float [@lopc.prob];
  uy : float [@lopc.prob];
  throughput : float;
  contention : float;
}

type execution = Interrupt | Polling | Protocol_processor

type solve_method = Brent_on_residual | Damped_iteration | Polynomial_roots

let check (params : Params.t) ~w =
  (match Params.validate params with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("All_to_all: " ^ reason));
  if w < 0. || not (Float.is_finite w) then invalid_arg "All_to_all: invalid work value"

let lower_bound (params : Params.t) ~w =
  check params ~w;
  w +. (2. *. params.st) +. (2. *. params.so)

(* Queue lengths in closed form given s = So/R (see the .mli header).
   Requires 1 − s − s² > 0, i.e. R above the golden-ratio multiple of So,
   which holds whenever R exceeds the contention-free cycle time.

   [extra] is an additional normalized waiting term e = E/R added to the
   request-handler residency before service (zero except in polling mode,
   where E is the destination thread's residual work quantum). Reply
   handlers never pay it: with blocking requests the home thread is
   already blocked when its reply arrives.
     Qq = s·(1 + Qq + Qy + 2βs) + e
     Qy = s·(1 + Qq + βs) *)
let queues ?(extra = 0.) (params : Params.t) s =
  let beta = (params.c2 -. 1.) /. 2. in
  let denom = 1. -. s -. (s *. s) in
  let gq = (1. +. ((1. +. (2. *. beta)) *. s) +. (beta *. s *. s)) /. denom in
  let qq = (s *. gq) +. (extra /. denom) in
  let qy = s *. (1. +. qq +. (beta *. s)) in
  (qq, qy)
[@@lint.allow
  "unguarded-division division-by-vanishing"
    "every solver keeps r above the golden-ratio multiple of So (see the header \
     comment), so 1 - s - s^2 stays strictly positive"]

(* In polling mode a handler arriving while the thread computes waits for
   the residual work quantum: probability Uw = W/R, mean residual
   (1 + C²w)/2 · W. *)
let polling_wait ~work_scv ~w r =
  let uw = w /. r in
  uw *. ((1. +. work_scv) /. 2.) *. w

let analyze ~execution ~work_scv (params : Params.t) ~w r =
  let s = params.so /. r in
  let extra =
    match execution with
    | Polling -> polling_wait ~work_scv ~w r /. r
    | Interrupt | Protocol_processor -> 0.
  in
  let qq, qy = queues ~extra params s in
  let rq = qq *. r in
  let ry = qy *. r in
  let rw =
    match execution with
    | Interrupt ->
      ((w +. (params.so *. qq)) /. (1. -. s)
      [@lint.allow
        "unguarded-division division-by-vanishing"
          "safe for the same reason as [queues]: s = So/r < 1 whenever r is in the \
           solvers' bracket, which starts at the contention-free bound"])
    | Polling | Protocol_processor -> w
  in
  (rw, rq, ry, qq, qy, s)

let fixed_point_map ?(execution = Interrupt) ?(work_scv = 1.) (params : Params.t) ~w r =
  let rw, rq, ry, _, _, _ = analyze ~execution ~work_scv params ~w r in
  rw +. (2. *. params.st) +. rq +. ry

(* The fixed point of F lies above the contention-free cycle time; F is
   decreasing there, so (F r − r) changes sign exactly once. *)
let solve_brent ?execution ?work_scv params ~w =
  let lb = lower_bound params ~w in
  let f r = fixed_point_map ?execution ?work_scv params ~w r -. r in
  (* F lb > lb in all non-degenerate cases, but guard exact equality. *)
  if f lb <= 0. then lb
  else begin
    let lo, hi = Roots.expand_bracket_upward ~f lb in
    Roots.brent ~f lo hi
  end

(* Clearing denominators in r − F(r) = 0: multiplying by
   r·(r − So)·(r² − r·So − So²) yields a polynomial of degree ≤ 5. Rather
   than expanding symbolically we interpolate it exactly from 6 samples. *)
let quartic ?(execution = Interrupt) ?(work_scv = 1.) (params : Params.t) ~w =
  check params ~w;
  let so = params.so in
  let cleared r =
    let d1 = r -. so in
    let d2 = (r *. r) -. (r *. so) -. (so *. so) in
    (r -. fixed_point_map ~execution ~work_scv params ~w r) *. r *. d1 *. d2
  in
  let lb = lower_bound params ~w in
  (* Interpolate in the normalized variable u = r / lb so the Vandermonde
     system stays well conditioned, then rescale coefficients back: if
     q(u) = Σ c_j u^j interpolates G(lb·u), then G(r) = Σ (c_j / lb^j) r^j. *)
  let points = Array.init 6 (fun i -> 1.1 +. (0.45 *. Float.of_int i)) in
  let vandermonde =
    Array.map (fun u -> Array.init 6 (fun j -> u ** Float.of_int j)) points
  in
  let rhs = Array.map (fun u -> cleared (lb *. u)) points in
  let coeffs = Linear.solve vandermonde rhs in
  let rescaled = Array.mapi (fun j c -> c /. (lb ** Float.of_int j)) coeffs in
  (* Interpolation noise can leave a tiny spurious leading coefficient;
     trim anything far below the dominant scale (in normalized units). *)
  let scale = Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 0. coeffs in
  let cleaned =
    Array.mapi
      (fun j c -> if Float.abs coeffs.(j) < 1e-7 *. scale then 0. else c)
      rescaled
  in
  Polynomial.of_coeffs cleaned

let solve_polynomial ?execution ?work_scv params ~w =
  (* A singular Vandermonde system (degenerate interpolation points) means
     the polynomial route is unusable, not that the model has no solution —
     fall back to the bracketed solver, like the no-candidate case below. *)
  match quartic ?execution ?work_scv params ~w with
  | exception Linear.Singular -> solve_brent ?execution ?work_scv params ~w
  | poly -> (
    let lb = lower_bound params ~w in
    let candidates =
      Polynomial.real_roots poly
      |> Array.to_list
      |> List.filter (fun r -> r >= lb *. (1. -. 1e-9))
    in
    match candidates with
    | [] -> solve_brent ?execution ?work_scv params ~w
    | first :: rest -> List.fold_left Float.min first rest)

let solution_of_r (params : Params.t) ~w ~work_scv ~execution r =
  let rw, rq, ry, qq, qy, s = analyze ~execution ~work_scv params ~w r in
  ({
     r;
     rw;
     rq;
     ry;
     qq;
     qy;
     uq = s;
     uy = s;
     throughput = Float.of_int params.p /. r;
     contention = r -. lower_bound params ~w;
   }
  [@lint.allow
    "probability-range"
      "s = So/r < 1 whenever r is in the solvers' bracket, which starts at the \
       contention-free bound W + 2 St + 2 So > So"])

(* The reliable all-to-all model cannot saturate: the queue denominator's
   positive root is the golden-ratio multiple of So, strictly below the
   contention-free bound W + 2·St + 2·So where every bracket starts, so the
   residual always crosses zero. [Saturated] is produced by the solvers
   whose demand can outgrow capacity ([Amva], [General], [Fault_model]);
   here a structured failure can only be [Diverged] or [Exhausted]. *)

(* Budget stops on the bracketed path surface inside the residual callback,
   where Brent gives us no other exit; caught below, never escaping
   [solve_status]. *)
exception Budget_stop of Lopc_robust.Budget.stop_reason

let solve_status ?probe ?budget ?(execution = Interrupt) ?(work_scv = 1.)
    ?(solve_method = Brent_on_residual) params ~w =
  check params ~w;
  if work_scv < 0. || not (Float.is_finite work_scv) then
    invalid_arg "All_to_all: invalid work_scv";
  let lb = lower_bound params ~w in
  (* The one queueing resource here is the handler: utilization So/R at
     cycle time R, which is what the probe reports as [hottest]. *)
  let handler_u r = params.Params.so /. Float.max r lb in
  match solve_method with
  | Damped_iteration ->
    let f r =
      (* Clamp into the region where the closed forms are valid. *)
      let r = Float.max r lb in
      fixed_point_map ~execution ~work_scv params ~w r
    in
    let fp_probe =
      match probe with
      | None -> None
      | Some p ->
        Some
          (fun (ev : Solver_probe.event) ->
            p
              {
                ev with
                Solver_probe.hottest = Some (0, handler_u ev.Solver_probe.iterate.(0));
              })
    in
    let r, status =
      Fixed_point.solve_scalar_status ?probe:fp_probe ?budget ~damping:0.5 ~tol:1e-12
        ~f lb
    in
    (match status with
    | Fixed_point.Converged _ ->
      (Some (solution_of_r params ~w ~work_scv ~execution (Float.max r lb)), status)
    | status -> (None, status))
  | Brent_on_residual | Polynomial_roots -> begin
    let evals = ref 0 in
    (* [f] (and therefore its budget raise) sits lexically inside the
       [try] whose handler maps the stop onto [Exhausted]: [f] is also
       called from the bracketing guard below, outside the inner match. *)
    try
      let f r =
        (match budget with
        | None -> ()
        | Some b -> (
          match Lopc_robust.Budget.check b with
          | None -> ()
          | Some reason -> raise (Budget_stop reason)));
        incr evals;
        let fr = fixed_point_map ~execution ~work_scv params ~w r -. r in
        (match probe with
        | None -> ()
        | Some p ->
          p
            {
              Solver_probe.iter = !evals;
              residual = Float.abs fr;
              damping = 1.;
              iterate = [| r |];
              hottest = Some (0, handler_u r);
            });
        fr
      in
      begin match
        (match solve_method with
        | Polynomial_roots -> solve_polynomial ~execution ~work_scv params ~w
        | Brent_on_residual | Damped_iteration ->
          if f lb <= 0. then lb
          else begin
            let lo, hi = Roots.expand_bracket_upward ~f lb in
            Roots.brent ~f lo hi
          end)
      with
      | r ->
        ( Some (solution_of_r params ~w ~work_scv ~execution r),
          Fixed_point.Converged { iters = !evals } )
      | exception (Roots.No_bracket | Roots.Not_converged _) ->
        ( None,
          Fixed_point.Diverged
            {
              iters = !evals;
              residual = Float.abs (fixed_point_map ~execution ~work_scv params ~w lb -. lb);
            } )
      end
    with Budget_stop reason ->
      (None, Fixed_point.Exhausted { iters = !evals; reason })
  end

let solve ?probe ?execution ?work_scv ?solve_method params ~w =
  match solve_status ?probe ?execution ?work_scv ?solve_method params ~w with
  | Some s, _ -> s
  | None, status ->
    raise (Fixed_point.Diverged ("All_to_all: " ^ Fixed_point.status_to_string status))

let rule_of_thumb_constant ~c2 =
  let params = Params.create ~c2 ~p:2 ~st:0. ~so:1. () in
  (solve params ~w:0.).r

let upper_bound (params : Params.t) ~w =
  check params ~w;
  w +. (2. *. params.st) +. (rule_of_thumb_constant ~c2:params.c2 *. params.so)

let contention_fraction params ~w =
  let s = solve params ~w in
  s.contention /. s.r

let total_runtime ?execution params (alg : Params.algorithm) =
  Float.of_int alg.n *. (solve ?execution params ~w:alg.w).r
