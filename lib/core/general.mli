(** The general LoPC model (paper Appendix A).

    Removes every homogeneity assumption of §5: each node [c] may run a
    thread with its own mean work [Wc] and its own visit vector [Vck]
    giving the average number of request-handler executions its cycle
    places on node [k]. Row sums may exceed 1 — a request that makes
    multiple network hops executes a handler at every hop (Σ_k Vck = hops
    per cycle). Reply handlers always run at the thread's home node, once
    per cycle.

    The equation system (A.1–A.10) is solved by damped fixed-point
    iteration on the per-thread throughputs [Xc]; given [Xc] the
    per-node quantities have closed forms (Little's law plus Bard's
    approximation), including the [C²] residual-life correction of §5.2
    applied per node.

    Setting [protocol_processor] models shared-memory machines: handlers
    execute on a dedicated protocol processor, so [Rwk = Wk] (no BKT
    inflation), while handlers still queue against each other. *)

type node_spec = {
  work : float option;   (** [Some w]: this node runs a thread with mean
                             work [w] per cycle; [None]: pure server. *)
  visits : float array;  (** [visits.(k) = Vck]: mean request-handler
                             executions at node [k] per cycle of this
                             node's thread. Ignored when [work = None].
                             All entries [>= 0.]; the row sum is the mean
                             hop count and must be positive for thread
                             nodes. *)
}

type t = {
  params : Params.t;          (** [P] must equal the node count. *)
  nodes : node_spec array;
  protocol_processor : bool;
}

type node_solution = {
  rq : float;  (** Request-handler residence [Rqk]. *)
  ry : float;  (** Reply-handler residence [Ryk]. *)
  rw : float;  (** Thread residence [Rwk] ([nan] for pure servers). *)
  qq : float;  (** Request handlers present, [Qqk]. *)
  qy : float;  (** Reply handlers present, [Qyk]. *)
  uq : float;  (** Utilization by request handlers, [Uqk]. *)
  uy : float;  (** Utilization by reply handlers, [Uyk]. *)
}

type solution = {
  cycle_times : float array;   (** [Rc] per node ([nan] for servers). *)
  throughputs : float array;   (** [Xc = 1 / Rc] per node ([0.] for
                                   servers). *)
  node_solutions : node_solution array;
  system_throughput : float;   (** [Σ_c Xc]. *)
}

val validate : t -> (t, string) result
(** Shape/sign checks: [params.p] equals the node count, visit vectors
    have length [P] with non-negative entries, thread rows have positive
    sums, at least one node runs a thread. *)

val solve_status :
  ?probe:Lopc_numerics.Solver_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  ?tol:float -> ?max_iter:int -> t -> solution option * Lopc_numerics.Fixed_point.status
(** Solve the system A.1–A.10 and report a structured outcome. When the
    iteration stalls, the last iterate is inspected: a node whose
    request-handler utilization reached (or passed) 1 is reported as
    [Saturated] with the node index, anything else as [Diverged].
    [budget] is consulted once per fixed-point iteration; a budget stop
    is reported as [Exhausted] verbatim (no saturation re-diagnosis).
    Non-converged outcomes return no solution.
    @raise Invalid_argument when {!validate} fails. *)

val solve :
  ?probe:Lopc_numerics.Solver_probe.t -> ?tol:float -> ?max_iter:int -> t -> solution
(** Raising variant of {!solve_status}.
    @raise Invalid_argument when {!validate} fails.
    @raise Lopc_numerics.Fixed_point.Diverged on any non-converged
    outcome (e.g. a node saturated by handler load). *)

val homogeneous_all_to_all : Params.t -> w:float -> t
(** The §5 pattern expressed in Appendix-A form: every node a thread with
    work [w] and [Vck = 1/(P−1)] for [k ≠ c] — used to check that the
    general model reduces to {!All_to_all}. *)

val client_server : Params.t -> w:float -> servers:int -> t
(** The §6 pattern in Appendix-A form: nodes [0..servers−1] pure servers,
    clients visiting each server with [Vck = 1/Ps]. *)
