type t = {
  p : int;
  st : float [@lopc.cost] [@lopc.unit "cycles"];
  so : float [@lopc.cost] [@lopc.unit "cycles"];
  c2 : float [@lopc.cost];
}

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.p < 1 then err "need at least one processor, got P=%d" t.p
  else if t.st < 0. || not (Float.is_finite t.st) then err "St must be finite and >= 0, got %g" t.st
  else if t.so <= 0. || not (Float.is_finite t.so) then err "So must be finite and > 0, got %g" t.so
  else if t.c2 < 0. || not (Float.is_finite t.c2) then err "C2 must be finite and >= 0, got %g" t.c2
  else Ok t

let create ?(c2 = 1.) ~p ~st ~so () =
  match
    validate
      ({ p; st; so; c2 }
      [@lint.allow
        "negative-cost"
          "raw constructor arguments: [validate] rejects any out-of-range field \
           before the record escapes"])
  with
  | Ok t -> t
  | Error reason -> invalid_arg ("Params: " ^ reason)

let of_logp ~l ~o ~p = create ~p ~st:l ~so:o ()

type algorithm = { n : int; w : float [@lopc.cost] [@lopc.unit "cycles"] }

let algorithm ~n ~w =
  if n < 0 then invalid_arg "Params.algorithm: negative request count";
  if w < 0. || not (Float.is_finite w) then invalid_arg "Params.algorithm: invalid work";
  { n; w }

let pp ppf t = Format.fprintf ppf "P=%d St=%g So=%g C2=%g" t.p t.st t.so t.c2

let logp_correspondence =
  [
    ("St", "L", "Average wire time (latency) in the interconnect");
    ("So", "o", "Average cost of message dispatch");
    ("-", "g", "Peak processor to network bandwidth (assumed balanced)");
    ("P", "P", "Number of processors");
    ("C2", "-", "Variability in message processing time (optional)");
  ]
