module Fixed_point = Lopc_numerics.Fixed_point
module Solver_probe = Lopc_numerics.Solver_probe

type node_spec = { work : float option; visits : float array }

type t = {
  params : Params.t;
  nodes : node_spec array;
  protocol_processor : bool;
}

type node_solution = {
  rq : float;
  ry : float;
  rw : float;
  qq : float;
  qy : float;
  uq : float;
  uy : float;
}

type solution = {
  cycle_times : float array;
  throughputs : float array;
  node_solutions : node_solution array;
  system_throughput : float;
}

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let p = Array.length t.nodes in
  match Params.validate t.params with
  | Error reason -> Error reason
  | Ok _ ->
    if t.params.Params.p <> p then
      err "params.p = %d but %d nodes specified" t.params.Params.p p
    else begin
      let problem = ref None in
      let has_thread = ref false in
      Array.iteri
        (fun c spec ->
          if Array.length spec.visits <> p then
            problem := Some (Printf.sprintf "node %d visit vector has length %d, expected %d" c (Array.length spec.visits) p);
          Array.iter
            (fun v ->
              if v < 0. || not (Float.is_finite v) then
                problem := Some "negative or non-finite visit ratio")
            spec.visits;
          match spec.work with
          | None -> ()
          | Some w ->
            has_thread := true;
            if w < 0. || not (Float.is_finite w) then
              problem := Some (Printf.sprintf "node %d has invalid work" c);
            let hops = Array.fold_left ( +. ) 0. spec.visits in
            if hops <= 0. then
              problem := Some (Printf.sprintf "thread node %d never sends a request" c))
        t.nodes;
      if not !has_thread then problem := Some "no node runs a thread";
      match !problem with Some reason -> Error reason | None -> Ok t
    end

(* Per-node queue lengths given request-handler utilization [a = So·Λk]
   and reply-handler utilization [b = So·Xk] (Bard + Eq 5.8 correction):
     Qq = a·(1 + Qq + Qy + β(a+b))
     Qy = b·(1 + Qq + β·a)
   solved exactly as a 2×2 system.

   In a closed network a node can never hold more messages than there are
   threads (each thread has at most one request in flight), so queue
   lengths are clamped to that physical bound; this keeps the outer
   fixed-point iteration stable when an intermediate iterate saturates a
   node. *)
let node_queues ~beta ~max_queue a b =
  let denom = 1. -. a -. (a *. b) in
  if denom <= 1e-9 then (max_queue, Float.min max_queue (b *. (1. +. max_queue +. (beta *. a))))
  else begin
    let qq = a *. (1. +. b +. (beta *. (a +. b)) +. (beta *. a *. b)) /. denom in
    let qq = Float.max 0. (Float.min qq max_queue) in
    let qy = Float.max 0. (Float.min (b *. (1. +. qq +. (beta *. a))) max_queue) in
    (qq, qy)
  end

let solve_status ?probe ?budget ?(tol = 1e-12) ?(max_iter = 200_000) t =
  (match validate t with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("General: " ^ reason));
  let p = Array.length t.nodes in
  let { Params.st; so; c2; _ } = t.params in
  let beta = (c2 -. 1.) /. 2. in
  let thread_count =
    Array.fold_left
      (fun acc spec -> if Option.is_none spec.work then acc else acc + 1)
      0 t.nodes
  in
  let max_queue = Float.of_int thread_count in
  let hops =
    Array.map
      (fun spec -> Array.fold_left ( +. ) 0. spec.visits)
      t.nodes
  in
  (* Full per-node analysis for a given throughput vector. *)
  let analyze x =
    let lambda =
      Array.init p (fun k ->
          let acc = ref 0. in
          Array.iteri (fun c spec -> acc := !acc +. (spec.visits.(k) *. x.(c))) t.nodes;
          !acc)
    in
    Array.init p (fun k ->
        let a = so *. lambda.(k) in
        let b = so *. x.(k) in
        let qq, qy = node_queues ~beta ~max_queue a b in
        let rq = so *. (1. +. qq +. qy +. (beta *. (a +. b))) in
        let ry = so *. (1. +. qq +. (beta *. a)) in
        let rw =
          match t.nodes.(k).work with
          | None -> Float.nan
          | Some w ->
            if t.protocol_processor then w
            else (w +. (so *. qq)) /. Float.max 1e-6 (1. -. a)
        in
        { rq; ry; rw; qq; qy; uq = a; uy = b })
  in
  let cycle_time per_node c =
    match t.nodes.(c).work with
    | None -> Float.nan
    | Some _ ->
      let spec = t.nodes.(c) in
      let acc = ref 0. in
      Array.iteri
        (fun k v -> if v > 0. then acc := !acc +. (v *. (st +. per_node.(k).rq)))
        spec.visits;
      per_node.(c).rw +. !acc +. st +. per_node.(c).ry
  in
  let step x =
    let per_node = analyze x in
    Array.init p (fun c ->
        match t.nodes.(c).work with
        | None -> 0.
        | Some _ -> 1. /. cycle_time per_node c)
  in
  let x0 =
    Array.init p (fun c ->
        match t.nodes.(c).work with
        | None -> 0.
        | Some w ->
          (* Contention-free starting point. *)
          1. /. (w +. (hops.(c) *. (st +. so)) +. st +. so))
  in
  (* The node with the most loaded request handlers at an iterate — the
     probe's [hottest] and the saturation diagnosis below agree on it. *)
  let hottest per_node =
    let best = ref None in
    Array.iteri
      (fun k (ns : node_solution) ->
        match !best with
        | Some (_, u) when u >= ns.uq -> ()
        | _ -> best := Some (k, ns.uq))
      per_node;
    !best
  in
  let fp_probe =
    match probe with
    | None -> None
    | Some pr ->
      Some
        (fun (ev : Solver_probe.event) ->
          pr { ev with Solver_probe.hottest = hottest (analyze ev.Solver_probe.iterate) })
  in
  let outcome, status =
    Fixed_point.solve_vector_status ?probe:fp_probe ?budget ~damping:0.1 ~tol ~max_iter
      ~f:step x0
  in
  let x = outcome.Fixed_point.value in
  match status with
  | Fixed_point.Converged _ ->
    let per_node = analyze x in
    let cycle_times = Array.init p (fun c -> cycle_time per_node c) in
    ( Some
        {
          cycle_times;
          throughputs = x;
          node_solutions = per_node;
          system_throughput = Array.fold_left ( +. ) 0. x;
        },
      status )
  (* A budget stop is the caller's allowance ending, not a property of the
     iterate — report it as-is rather than re-diagnosing saturation. *)
  | Fixed_point.Exhausted _ -> (None, status)
  | _ ->
    (* Diagnose the stall from the last iterate: a node whose request
       handlers are driven to (or past) full utilization has no finite
       fixed point — report it as saturation with the culprit node. *)
    let per_node = analyze x in
    (match hottest per_node with
    | Some (station, utilization) when utilization >= 1. -. 1e-9 ->
      (None, Fixed_point.Saturated { station; utilization })
    | Some _ | None -> (None, status))

let solve ?probe ?tol ?max_iter t =
  match solve_status ?probe ?tol ?max_iter t with
  | Some s, _ -> s
  | None, status ->
    raise (Fixed_point.Diverged ("General: " ^ Fixed_point.status_to_string status))

let homogeneous_all_to_all (params : Params.t) ~w =
  let p = params.p in
  if p < 2 then invalid_arg "General.homogeneous_all_to_all: need P >= 2";
  let v = 1. /. Float.of_int (p - 1) in
  {
    params;
    protocol_processor = false;
    nodes =
      Array.init p (fun c ->
          {
            work = Some w;
            visits = Array.init p (fun k -> if k = c then 0. else v);
          });
  }

let client_server (params : Params.t) ~w ~servers =
  let p = params.p in
  if servers <= 0 || servers >= p then
    invalid_arg "General.client_server: need 0 < servers < P";
  let v = 1. /. Float.of_int servers in
  {
    params;
    protocol_processor = false;
    nodes =
      Array.init p (fun c ->
          if c < servers then { work = None; visits = Array.make p 0. }
          else { work = Some w; visits = Array.init p (fun k -> if k < servers then v else 0.) });
  }
