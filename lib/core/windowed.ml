module Roots = Lopc_numerics.Roots

type solution = {
  window : int;
  r : float;
  rw : float;
  rq : float;
  ry : float;
  uq : float;
  qq : float;
  node_rate : float;
  throughput : float;
  processor_util : float;
}

let saturation_rate (params : Params.t) ~w =
  if w < 0. || not (Float.is_finite w) then invalid_arg "Windowed: invalid work value";
  1. /. (w +. (2. *. params.so))

(* Queue lengths at handler utilization u — the §5 closed forms. The
   1 - u - u² denominator is safe because the only caller, [residencies],
   rejects u at or above the golden-ratio bound before calling in. *)
let queues (params : Params.t) u =
  let beta = (params.c2 -. 1.) /. 2. in
  let denom = 1. -. u -. (u *. u) in
  let gq = (1. +. ((1. +. (2. *. beta)) *. u) +. (beta *. u *. u)) /. denom in
  let qq = u *. gq in
  let qy = u *. (1. +. qq +. (beta *. u)) in
  (qq, qy)
[@@lint.allow
  "unguarded-division division-by-vanishing"
    "the only caller, [residencies], rejects u at or above the golden-ratio bound \
     before calling in, so 1 - u - u^2 stays strictly positive"]

(* Golden-ratio bound: the closed forms need 1 − u − u² > 0. *)
let u_limit = (sqrt 5. -. 1.) /. 2.

(* All per-slot residencies implied by a candidate per-node rate x;
   returns None when x saturates a denominator (rate infeasible). *)
let residencies (params : Params.t) ~w ~window x =
  let u = params.so *. x in
  if u >= u_limit *. 0.999 then None
  else begin
    let qq, qy = queues params u in
    let rq = qq /. x in
    let ry = qy /. x in
    (* Window 1: the thread is blocked whenever its reply handler runs, so
       only request handlers interfere (the paper's Eq 5.7). Window >= 2:
       the thread computes while replies arrive, so both handler classes
       preempt it — this is also what caps the rate at the physical
       saturation 1/(W + 2 So). *)
    let quantum =
      if window = 1 then (w +. (params.so *. qq)) /. (1. -. u)
      else begin
        let busy = 2. *. u in
        if busy >= 0.999 then infinity
        else (w +. (params.so *. (qq +. qy))) /. (1. -. busy)
      end
    in
    let kf = Float.of_int window in
    let self_queue = (kf -. 1.) /. kf *. x *. quantum in
    if (not (Float.is_finite quantum)) || self_queue >= 0.999 then None
    else begin
      let rw = quantum /. (1. -. self_queue) in
      Some (rw, rq, ry, u, qq)
    end
  end

let solve ?(window = 1) (params : Params.t) ~w =
  (match Params.validate params with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Windowed: " ^ reason));
  if window < 1 then invalid_arg "Windowed: window must be at least 1";
  if w < 0. || not (Float.is_finite w) then invalid_arg "Windowed: invalid work value";
  let kf = Float.of_int window in
  (* h x = window / R(x) − x changes sign exactly once in (0, x_max). *)
  let h x =
    match residencies params ~w ~window x with
    | None -> -1.
    | Some (rw, rq, ry, _, _) ->
      let r = rw +. (2. *. params.st) +. rq +. ry in
      (kf /. r) -. x
  in
  (* The rate can never exceed the handler-capacity and BKT-validity
     ceilings; bisect within them. *)
  let x_max =
    Float.min (u_limit /. params.so) (if w > 0. then 1. /. w else infinity) *. 0.999
  in
  let x_lo = 1e-12 in
  let x =
    if h x_max >= 0. then x_max
    else Roots.bisect ~tol:1e-14 ~f:h x_lo x_max
  in
  match residencies params ~w ~window x with
  | None ->
    (* Only reachable if bisection landed on the infeasible edge. *)
    invalid_arg "Windowed: configuration saturates the processors"
  | Some (rw, rq, ry, uq, qq) ->
    let r = rw +. (2. *. params.st) +. rq +. ry in
    {
      window;
      r;
      rw;
      rq;
      ry;
      uq;
      qq;
      node_rate = x;
      throughput = Float.of_int params.p *. x;
      processor_util = x *. (w +. (2. *. params.so));
    }

let speedup_curve ?(max_window = 8) (params : Params.t) ~w =
  if max_window < 1 then invalid_arg "Windowed.speedup_curve: max_window < 1";
  let base = (solve ~window:1 params ~w).node_rate in
  Array.init max_window (fun i ->
      let k = i + 1 in
      (k, (solve ~window:k params ~w).node_rate /. base))
