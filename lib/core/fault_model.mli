(** Analytical companion of the simulator's fault layer
    ({!Lopc_activemsg.Fault}): the homogeneous all-to-all model of §5
    extended with message loss, duplication, delay spikes, and the
    timeout–retransmit recovery protocol.

    With per-traversal drop rate ℓ the expected tries per request is the
    paper-style retry inflation 1/(1−q) (q the per-try round-trip failure,
    truncated at the retry budget), which inflates the request-handler
    demand seen by the AMVA station by [handler_load] deliveries per cycle
    — retransmitted and duplicated copies are handled at full cost even
    though the sequence-number check suppresses their effect. The cycle
    time solved for is

    {[ R = Rw + E_wait + 2·St_eff + Rq + Ry ]}

    where [E_wait] is the expected timeout waiting of the failed tries,
    [St_eff] the ε-mixture wire mean, and the queue terms come from an
    asymmetric generalization of the paper's closed forms (request and
    reply handler utilizations now differ by the factor [handler_load]).
    At zero fault probabilities every quantity reduces exactly to
    {!All_to_all.solve}.

    Validity: interrupt-notification blocking threads (the restrictions
    {!Lopc_activemsg.Spec.validate} enforces on faulty specs), and a
    timeout comfortably above the typical round trip — the model charges
    every failed try its full backoff and assumes no spurious
    retransmissions. Per-node outage windows are transient scenario
    features and are not modeled. *)

type config = {
  drop : float [@lopc.prob];
      (** Per-traversal loss probability ℓ ∈ [0, 1). *)
  duplicate : float [@lopc.prob];
      (** Per-traversal duplication probability ∈ [0, 1]. *)
  delay_epsilon : float [@lopc.prob];
      (** Delay-spike mixture weight ε ∈ [0, 1]. *)
  spike_mean : float [@lopc.cost];
      (** Mean of the spike wire distribution. *)
  timeout : float [@lopc.cost] [@lopc.unit "cycles"];
      (** Base retransmission timeout T > 0. *)
  backoff : int -> float;
      (** Timeout multiplier of the n-th try (1-based, ≥ 1) — pass
          [Lopc_activemsg.Fault.timeout_multiplier] to mirror a simulator
          config (jittered backoff has mean multiplier 1). *)
  max_tries : int;        (** Retry budget B ≥ 1. *)
}

val config :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_epsilon:float ->
  ?spike_mean:float ->
  ?backoff:(int -> float) ->
  ?max_tries:int ->
  timeout:float ->
  unit ->
  config
(** Constructor with all fault probabilities defaulted to [0.], constant
    backoff, and [max_tries = 8]. *)

val validate : config -> (config, string) result

val per_try_failure : config -> float
(** q: probability a single try gets no answer — both directions must
    deliver at least one copy. [1 − (1−ℓ)²] without duplication. *)

val expected_tries : config -> float
(** E[tries per cycle] [= (1 − q^B)/(1 − q)] — the retry inflation. *)

val failure_probability : config -> float
(** [q^B]: predicted fraction of cycles abandoned with the budget
    exhausted. *)

val handler_load : config -> float
(** Request-handler deliveries per cycle,
    [expected_tries · (1−ℓ)(1+d)] — the demand inflation fed to the
    request station. *)

val effective_wire : config -> Params.t -> float
(** [St_eff = (1−ε)·St + ε·spike_mean]. *)

val expected_timeout_wait : config -> float
(** [E_wait]: expected total backoff waiting per (eventually answered)
    cycle, [Σ_{j<B} T(j)·(q^j − q^B)/(1 − q^B)]. *)

type solution = {
  r : float;             (** Cycle time of answered cycles. *)
  rw : float;            (** Thread residence (work + preemption). *)
  rq : float;            (** Request residence of the successful try. *)
  ry : float;            (** Reply residence. *)
  qq : float;            (** Request-handler queue length. *)
  qy : float;            (** Reply-handler queue length. *)
  uq : float [@lopc.prob];  (** Request-handler utilization (inflated). *)
  uy : float [@lopc.prob];  (** Reply-handler utilization. *)
  throughput : float;    (** Goodput [P/R] (failure rate assumed small). *)
  tries : float;         (** {!expected_tries}. *)
  timeout_wait : float;  (** {!expected_timeout_wait}. *)
  load : float;          (** {!handler_load}. *)
  failure_rate : float;  (** {!failure_probability}. *)
}

val solve_status :
  ?probe:Lopc_numerics.Solver_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  config -> Params.t -> w:float -> solution option * Lopc_numerics.Fixed_point.status
(** Solve the faulty fixed point. Returns [Saturated] (with the inflated
    request utilization at the saturation floor) when the retry-inflated
    handler demand admits no stable cycle time, [Diverged] if root
    bracketing fails, [Exhausted] when [budget] (consulted once per map
    evaluation) stops the search; [iters] counts map evaluations.
    @raise Invalid_argument on invalid [config], [params] or [w]. *)

val solve :
  ?probe:Lopc_numerics.Solver_probe.t -> config -> Params.t -> w:float -> solution
(** Like {!solve_status}.
    @raise Lopc_numerics.Fixed_point.Diverged when no solution exists. *)
