module Fixed_point = Lopc_numerics.Fixed_point
module Roots = Lopc_numerics.Roots

type config = {
  drop : float [@lopc.prob];
  duplicate : float [@lopc.prob];
  delay_epsilon : float [@lopc.prob];
  spike_mean : float [@lopc.cost];
  timeout : float [@lopc.cost] [@lopc.unit "cycles"];
  backoff : int -> float;
  max_tries : int;
}

let config ?(drop = 0.) ?(duplicate = 0.) ?(delay_epsilon = 0.) ?(spike_mean = 0.)
    ?(backoff = fun _ -> 1.) ?(max_tries = 8) ~timeout () =
  ({ drop; duplicate; delay_epsilon; spike_mean; timeout; backoff; max_tries }
  [@lint.allow
    "probability-range negative-cost"
      "raw constructor arguments: every solver entry point runs [validate] (via \
       [check] or [check_inputs]) before using the record"])

let validate c =
  if not (Float.is_finite c.drop) || c.drop < 0. || c.drop >= 1. then
    Error "Fault_model: drop probability must lie in [0, 1)"
  else if not (Float.is_finite c.duplicate) || c.duplicate < 0. || c.duplicate > 1.
  then Error "Fault_model: duplication probability must lie in [0, 1]"
  else if
    not (Float.is_finite c.delay_epsilon)
    || c.delay_epsilon < 0. || c.delay_epsilon > 1.
  then Error "Fault_model: delay-spike weight must lie in [0, 1]"
  else if not (Float.is_finite c.spike_mean) || c.spike_mean < 0. then
    Error "Fault_model: spike mean must be finite and >= 0"
  else if not (Float.is_finite c.timeout) || c.timeout <= 0. then
    Error "Fault_model: timeout must be positive and finite"
  else if c.max_tries < 1 then Error "Fault_model: retry budget must be >= 1"
  else Ok c

let check c =
  match validate c with Ok c -> c | Error reason -> invalid_arg reason

(* P(at least one copy of a message is delivered): the primary copy
   survives with 1 − ℓ; with probability d the network emits a second copy
   and at least one of the two survives with 1 − ℓ². *)
let delivery_probability c =
  ((1. -. c.duplicate) *. (1. -. c.drop))
  +. (c.duplicate *. (1. -. (c.drop *. c.drop)))

(* A try succeeds when the request reaches the handler and a reply makes it
   back; the two directions fail independently. (Multiple delivered request
   copies generate extra replies, slightly raising the true success odds —
   a second-order effect this first-order model ignores.) *)
let per_try_failure c =
  let pd = delivery_probability c in
  1. -. (pd *. pd)

(* E[tries per cycle] with retry budget B: sum_{n=0}^{B-1} q^n — the
   ISSUE's 1/(1−ℓ) retry inflation, refined to a per-try round-trip
   failure q and truncated at the budget. *)
let expected_tries c =
  let q = per_try_failure c in
  let acc = ref 0. and qn = ref 1. in
  for _ = 1 to c.max_tries do
    acc := !acc +. !qn;
    qn := !qn *. q
  done;
  !acc

(* Fraction of cycles abandoned after B unanswered tries. *)
let failure_probability c = per_try_failure c ** Float.of_int c.max_tries

(* Mean deliveries per transmission attempt: the surviving copies. *)
let deliveries_per_try c = (1. -. c.drop) *. (1. +. c.duplicate)

(* Request-handler deliveries per completed cycle — the handler-demand
   inflation: every delivered copy (retransmitted or duplicated) costs a
   full handler service even when the dedup check flags it. *)
let handler_load c = expected_tries c *. deliveries_per_try c

(* Mean wire time per traversal under the ε-mixture of spikes. *)
let effective_wire c (params : Params.t) =
  ((1. -. c.delay_epsilon) *. params.st) +. (c.delay_epsilon *. c.spike_mean)

(* Expected total timeout waiting on a cycle that eventually succeeds:
   the j-th backoff T(j) is paid iff at least j tries fail, so
   E = Σ_{j=1}^{B−1} T(j)·(q^j − q^B)/(1 − q^B). Failed tries replace the
   round trip — the successful try then pays the ordinary residences. *)
let expected_timeout_wait c =
  let q = per_try_failure c in
  if q <= 0. || c.max_tries <= 1 then 0.
  else begin
    let qb = q ** Float.of_int c.max_tries in
    let acc = ref 0. and qj = ref q in
    for j = 1 to c.max_tries - 1 do
      acc := !acc +. (c.timeout *. c.backoff j *. (!qj -. qb));
      qj := !qj *. q
    done;
    (!acc /. (1. -. qb)
    [@lint.allow
      "unguarded-division division-by-vanishing"
        "1 - q^B > 0 since q < 1 (drop < 1 forces pd > 0)"])
  end

type solution = {
  r : float;
  rw : float;
  rq : float;
  ry : float;
  qq : float;
  qy : float;
  uq : float [@lopc.prob];
  uy : float [@lopc.prob];
  throughput : float;
  tries : float;
  timeout_wait : float;
  load : float;
  failure_rate : float;
}

(* Asymmetric generalization of [All_to_all.queues]: request and reply
   handlers now have different utilizations sq = kq·So/R and sy = So/R.
   From Qq = sq·(1 + Qq + Qy + β(sq+sy)) and Qy = sy·(1 + Qq + β·sq):
     Qq·(1 − sq − sq·sy) = sq·(1 + sy + β(sq+sy) + β·sq·sy)
   which reduces exactly to the paper's closed form at sq = sy. *)
let queues ~beta sq sy =
  let denom = 1. -. sq -. (sq *. sy) in
  let qq =
    (sq *. (1. +. sy +. (beta *. (sq +. sy)) +. (beta *. sq *. sy)) /. denom
    [@lint.allow
      "unguarded-division division-by-vanishing"
        "the solver keeps r strictly above the positive root of denom(r) = 0 (the \
         saturation floor)"])
  in
  let qy = sy *. (1. +. qq +. (beta *. sq)) in
  (qq, qy)

let lower_bound c (params : Params.t) ~w =
  w +. expected_timeout_wait c +. (2. *. effective_wire c params)
  +. (2. *. params.so)

(* The cycle-time map under faults. With kq = handler_load:
     R = Rw + E_wait + 2·St_eff + Rq + Ry,
   where Rq is the per-visit request residence recovered from Little's law
   at the inflated visit rate kq/R (Rq = Qq·R/kq), and Ry = Qy·R. *)
let fixed_point_map c (params : Params.t) ~w r =
  let beta = (params.c2 -. 1.) /. 2. in
  let kq = handler_load c in
  let sq = kq *. params.so /. r in
  let sy = params.so /. r in
  let qq, qy = queues ~beta sq sy in
  let rw =
    ((w +. (params.so *. qq)) /. (1. -. sq)
    [@lint.allow
      "unguarded-division division-by-vanishing"
        "r > saturation floor implies sq < 1 (see [solve_status])"])
  in
  rw +. expected_timeout_wait c +. (2. *. effective_wire c params)
  +. (qq *. r
     /. kq
     [@lint.allow
       "division-by-vanishing"
         "kq = E[tries] * (1 - drop)(1 + dup) >= 1 - drop > 0 because [validate] \
          rejects drop >= 1"])
  +. (qy *. r)

let solution_of_r c (params : Params.t) ~w r =
  let beta = (params.c2 -. 1.) /. 2. in
  let kq = handler_load c in
  let sq = kq *. params.so /. r in
  let sy = params.so /. r in
  let qq, qy = queues ~beta sq sy in
  let rw =
    ((w +. (params.so *. qq)) /. (1. -. sq)
    [@lint.allow
      "unguarded-division division-by-vanishing"
        "r > saturation floor implies sq < 1 (see [solve_status])"])
  in
  ({
     r;
     rw;
     rq =
       (qq *. r
       /. kq
       [@lint.allow
         "division-by-vanishing"
           "kq = E[tries] * (1 - drop)(1 + dup) >= 1 - drop > 0 because [validate] \
            rejects drop >= 1"]);
     ry = qy *. r;
     qq;
     qy;
     uq = sq;
     uy = sy;
     throughput = Float.of_int params.p /. r;
     tries = expected_tries c;
     timeout_wait = expected_timeout_wait c;
     load = kq;
     failure_rate = failure_probability c;
   }
  [@lint.allow
    "probability-range"
      "sq and sy are utilizations below 1 for any r above the saturation floor, \
       the only regime in which [solve_status] builds a solution"])

let check_inputs c (params : Params.t) ~w =
  (match Params.validate params with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Fault_model: " ^ reason));
  if w < 0. || not (Float.is_finite w) then invalid_arg "Fault_model: invalid work value";
  ignore (check c)

(* As in [All_to_all]: a budget stop inside the root-finder's residual
   callback, caught before it can escape [solve_status]. *)
exception Budget_stop of Lopc_robust.Budget.stop_reason

let solve_status ?probe ?budget c (params : Params.t) ~w =
  check_inputs c params ~w;
  let kq = handler_load c in
  let a = kq *. params.so in
  let b = params.so in
  (* Positive root of 1 − a/r − a·b/r² = 0: below it the asymmetric queue
     denominators are non-positive and the request station is saturated. *)
  let r_floor = (a +. Float.sqrt ((a *. a) +. (4. *. a *. b))) /. 2. in
  let lb = lower_bound c params ~w in
  let evals = ref 0 in
  (* [f] is called from guard positions and failure handlers too, so the
     budget stop is caught around the whole dispatch rather than per
     root-finder call — and [f] is defined inside the [try] so its raise
     is lexically within the handler (the exn-escape rule is lexical). *)
  try
    let f r =
      (match budget with
      | None -> ()
      | Some b -> (
        match Lopc_robust.Budget.check b with
        | None -> ()
        | Some reason -> raise (Budget_stop reason)));
      incr evals;
      let fr = fixed_point_map c params ~w r -. r in
      (match probe with
      | None -> ()
      | Some p ->
        (* The retry-inflated request station is the one that saturates:
           utilization a/r at cycle time r. *)
        p
          {
            Lopc_numerics.Solver_probe.iter = !evals;
            residual = Float.abs fr;
            damping = 1.;
            iterate = [| r |];
            (* r is always at or above the bracket start, which is positive. *)
            hottest = Some (0, a /. r);
          });
      fr
    in
    if r_floor >= lb then begin
      (* The saturation floor sits above the contention-free bound: check
         that a fixed point exists strictly above the floor. *)
      let start = r_floor *. (1. +. 1e-9) in
      if f start <= 0. then
        ( None,
          Fixed_point.Saturated
            {
              station = 0;
              utilization =
                (a
                /. start
                [@lint.allow
                  "division-by-vanishing"
                    "start > r_floor >= sqrt(a*b) > 0: a and b are positive once \
                     [validate] accepts the parameters"]);
            } )
      else begin
        match
          let lo, hi = Roots.expand_bracket_upward ~f start in
          Roots.brent ~f lo hi
        with
        | r ->
          (Some (solution_of_r c params ~w r), Fixed_point.Converged { iters = !evals })
        | exception (Roots.No_bracket | Roots.Not_converged _) ->
          (None, Fixed_point.Diverged { iters = !evals; residual = Float.abs (f lb) })
      end
    end
    else if f lb <= 0. then
      (* Degenerate but healthy: the fixed point is at (or below) the
         contention-free bound, as in [All_to_all.solve_brent]. *)
      (Some (solution_of_r c params ~w lb), Fixed_point.Converged { iters = !evals })
    else begin
      match
        let lo, hi = Roots.expand_bracket_upward ~f lb in
        Roots.brent ~f lo hi
      with
      | r ->
        (Some (solution_of_r c params ~w r), Fixed_point.Converged { iters = !evals })
      | exception (Roots.No_bracket | Roots.Not_converged _) ->
        (None, Fixed_point.Diverged { iters = !evals; residual = Float.abs (f lb) })
    end
  with Budget_stop reason -> (None, Fixed_point.Exhausted { iters = !evals; reason })

let solve ?probe c params ~w =
  match solve_status ?probe c params ~w with
  | Some s, _ -> s
  | None, status ->
    raise (Fixed_point.Diverged ("Fault_model: " ^ Fixed_point.status_to_string status))
