(** Generic continuous-time Markov chain steady-state solver.

    Given an initial state and a transition function, the solver explores
    the reachable state space, builds the generator as a compressed
    sparse-row matrix in the same single pass, and computes the stationary
    distribution by Gauss–Seidel sweeps on the balance equations (falling
    back to uniformized power iteration when the chain is not strongly
    connected). Used to validate the simulator and to measure the LoPC
    approximations exactly (no Monte-Carlo noise) on machines small
    enough to enumerate. *)

type 'state solution
(** Stationary distribution over the reachable states. *)

type iteration =
  | Auto
      (** Gauss–Seidel when the reachable chain is strongly connected
          (unique stationary distribution), power iteration otherwise.
          The default. *)
  | Power
      (** Uniformized power iteration [pi <- pi (I + Q/lambda)] — the
          historical method, kept as the unconditionally safe reference. *)
  | Power_aitken
      (** Power iteration with periodic componentwise Aitken delta-squared
          extrapolation; convergence is still gated by the residual, the
          extrapolant only re-seeds the iterate. *)
  | Gauss_seidel
      (** Balance-equation Gauss–Seidel on the incoming-transition matrix.
          Far fewer sweeps than [Power] on stiff chains; requires every
          state to have an exit (it falls back to the power path mid-solve
          if a sweep goes non-finite). *)

exception State_space_too_large of int
(** Raised (by {!solve} only) when exploration exceeds the state budget. *)

type status =
  | Converged of { iters : int }
      (** Power iteration met its tolerance after [iters] sweeps. *)
  | Not_converged of { iters : int; diff : float }
      (** [max_iter] sweeps without meeting the tolerance; [diff] is the
          last scaled L1 residual [||pi Q||_1 / lambda]. The returned
          distribution is the last iterate. *)
  | Exhausted of { reason : Lopc_robust.Budget.stop_reason }
      (** The budget stopped exploration or iteration; no solution. *)
  | Too_large of { max_states : int }
      (** Exploration exceeded [max_states]; no solution. *)

val status_to_string : status -> string

val solve_status :
  ?budget:Lopc_robust.Budget.t ->
  ?iteration:iteration ->
  ?max_states:int ->
  ?tol:float ->
  ?max_iter:int ->
  initial:'state ->
  transitions:('state -> ('state * float) list) ->
  unit ->
  'state solution option * status
(** Non-raising variant of {!solve}: state-space overflow comes back as
    [Too_large] instead of an exception, a non-converged iteration is
    reported (with its last scaled L1 residual) instead of silent, and
    [budget] — consulted once per explored state and once per sweep,
    whatever the [iteration] method — stops the computation with
    [Exhausted]. Every method renormalizes the iterate each sweep, so
    [sum pi = 1] holds to rounding error regardless of sweep count, and
    declares convergence on the residual of the current iterate (never on
    the raw successive step alone). Only raises [Invalid_argument] (on a
    non-finite or negative rate). *)

val solve :
  ?iteration:iteration ->
  ?max_states:int ->
  ?tol:float ->
  ?max_iter:int ->
  initial:'state ->
  transitions:('state -> ('state * float) list) ->
  unit ->
  'state solution
(** [solve ~initial ~transitions ()] computes the stationary distribution
    of the irreducible CTMC reachable from [initial]. [transitions s]
    lists [(successor, rate)] pairs with strictly positive rates
    (duplicate successors are summed; self-loops ignored). Defaults:
    [iteration = Auto], [max_states = 2_000_000], [tol = 1e-12],
    [max_iter = 200_000].
    States must be usable as [Hashtbl] keys (structural equality).
    @raise State_space_too_large when the budget is exceeded.
    @raise Invalid_argument on a non-positive rate. *)

val states : 'state solution -> int
(** Number of reachable states. *)

val probability : 'state solution -> 'state -> float
(** Stationary probability of one state ([0.] if unreachable). *)

val sum_pi : 'state solution -> float
(** [Σ_s π(s)], summed in discovery order. Every solver sweep renormalizes,
    so this is [1.] to rounding error — exposed so tests can pin the
    invariant down instead of trusting it. *)

val expectation : 'state solution -> f:('state -> float) -> float
(** [expectation sol ~f] is [Σ_s π(s)·f(s)]. Summation runs over states in
    discovery order (the order exploration first reached them), never in
    [Hashtbl] bucket order, so the floating-point result is a function of
    the model alone and is bit-for-bit reproducible. *)

val rate_of : 'state solution -> event:('state -> ('state * float) list -> float) ->
  transitions:('state -> ('state * float) list) -> float
(** [rate_of sol ~event ~transitions] is the steady-state rate of an
    event class: [Σ_s π(s) ·. event s (transitions s)], where [event]
    returns the total rate of the transitions of interest out of [s]
    (e.g. completions of a particular handler). Like {!expectation}, the
    sum runs in deterministic discovery order. *)
