(** Generic continuous-time Markov chain steady-state solver.

    Given an initial state and a transition function, the solver explores
    the reachable state space, builds the sparse generator, and computes
    the stationary distribution by power iteration on the uniformized
    chain. Used to validate the simulator and to measure the LoPC
    approximations exactly (no Monte-Carlo noise) on machines small
    enough to enumerate. *)

type 'state solution
(** Stationary distribution over the reachable states. *)

exception State_space_too_large of int
(** Raised (by {!solve} only) when exploration exceeds the state budget. *)

type status =
  | Converged of { iters : int }
      (** Power iteration met its tolerance after [iters] sweeps. *)
  | Not_converged of { iters : int; diff : float }
      (** [max_iter] sweeps without meeting the tolerance; [diff] is the
          last L1 step. The returned distribution is the last iterate. *)
  | Exhausted of { reason : Lopc_robust.Budget.stop_reason }
      (** The budget stopped exploration or iteration; no solution. *)
  | Too_large of { max_states : int }
      (** Exploration exceeded [max_states]; no solution. *)

val status_to_string : status -> string

val solve_status :
  ?budget:Lopc_robust.Budget.t ->
  ?max_states:int ->
  ?tol:float ->
  ?max_iter:int ->
  initial:'state ->
  transitions:('state -> ('state * float) list) ->
  unit ->
  'state solution option * status
(** Non-raising variant of {!solve}: state-space overflow comes back as
    [Too_large] instead of an exception, a non-converged power iteration
    is reported (with its last L1 step) instead of silent, and [budget] —
    consulted once per explored state and once per power-iteration sweep
    — stops the computation with [Exhausted]. Only raises
    [Invalid_argument] (on a non-finite or negative rate). *)

val solve :
  ?max_states:int ->
  ?tol:float ->
  ?max_iter:int ->
  initial:'state ->
  transitions:('state -> ('state * float) list) ->
  unit ->
  'state solution
(** [solve ~initial ~transitions ()] computes the stationary distribution
    of the irreducible CTMC reachable from [initial]. [transitions s]
    lists [(successor, rate)] pairs with strictly positive rates
    (duplicate successors are summed; self-loops ignored). Defaults:
    [max_states = 2_000_000], [tol = 1e-12], [max_iter = 200_000].
    States must be usable as [Hashtbl] keys (structural equality).
    @raise State_space_too_large when the budget is exceeded.
    @raise Invalid_argument on a non-positive rate. *)

val states : 'state solution -> int
(** Number of reachable states. *)

val probability : 'state solution -> 'state -> float
(** Stationary probability of one state ([0.] if unreachable). *)

val expectation : 'state solution -> f:('state -> float) -> float
(** [expectation sol ~f] is [Σ_s π(s)·f(s)]. Summation runs over states in
    discovery order (the order exploration first reached them), never in
    [Hashtbl] bucket order, so the floating-point result is a function of
    the model alone and is bit-for-bit reproducible. *)

val rate_of : 'state solution -> event:('state -> ('state * float) list -> float) ->
  transitions:('state -> ('state * float) list) -> float
(** [rate_of sol ~event ~transitions] is the steady-state rate of an
    event class: [Σ_s π(s) ·. event s (transitions s)], where [event]
    returns the total rate of the transitions of interest out of [s]
    (e.g. completions of a particular handler). Like {!expectation}, the
    sum runs in deterministic discovery order. *)
