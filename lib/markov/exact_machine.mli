(** Exact steady-state analysis of a small LoPC machine.

    Enumerates the full continuous-time Markov chain of the paper's §2
    machine running homogeneous blocking all-to-all traffic with
    exponential work, handler and wire times (the model's default
    [C² = 1] setting), and solves it with {!Ctmc}. The chain captures
    exactly what the event-driven simulator executes — FIFO handler
    queues, preempt-resume threads (free under memoryless work), blocking
    requests — so it provides a Monte-Carlo-free third pillar next to the
    simulator and the approximate LoPC model:

    - exact vs simulator: validates the simulator to solver tolerance;
    - exact vs LoPC: measures the Bard/BKT approximation error itself.

    State: per node, the phase of its (single) outstanding cycle —
    working, request in the wire, request at the destination, reply in
    the wire, reply at home — plus the FIFO content of every node's
    handler queue. The state space grows quickly: [p = 2] has a few
    dozen states, [p = 3] a few hundred, [p = 4] several thousand. *)

type result = {
  states : int;           (** Reachable CTMC states. *)
  cycle_time : float;     (** Exact mean compute/request cycle time [R]. *)
  throughput : float;     (** Exact per-node cycle completion rate. *)
  qq : float;             (** Exact mean request handlers per node. *)
  qy : float;             (** Exact mean reply handlers per node. *)
  uq : float;             (** Exact utilization by request handlers. *)
  uy : float;             (** Exact utilization by reply handlers. *)
}

val all_to_all :
  ?max_states:int -> p:int -> w:float -> so:float -> st:float -> unit -> result
(** [all_to_all ~p ~w ~so ~st ()] solves the [p]-node machine exactly.
    All times must be strictly positive (exponential rates); [p >= 2].
    [max_states] defaults to [2_000_000].
    @raise Invalid_argument on non-positive parameters.
    @raise Ctmc.State_space_too_large if [p] is too ambitious. *)

val all_to_all_status :
  ?budget:Lopc_robust.Budget.t ->
  ?max_states:int ->
  p:int -> w:float -> so:float -> st:float -> unit ->
  result option * Ctmc.status
(** Non-raising variant of {!all_to_all} for supervised callers (the
    degradation cascade): state-space overflow, a non-converged power
    iteration, and budget stops come back as a {!Ctmc.status} instead of
    an exception or a silent wrong answer. [budget] is consulted once per
    explored CTMC state and once per power-iteration sweep. Only raises
    [Invalid_argument] on invalid machine parameters. *)
