type 'state solution = {
  index : ('state, int) Hashtbl.t;
  state_of_id : 'state array;
      (* inverse of [index], in discovery order: aggregation iterates this
         array so results never depend on Hashtbl bucket order *)
  pi : float array;
}

exception State_space_too_large of int

type status =
  | Converged of { iters : int }
  | Not_converged of { iters : int; diff : float }
  | Exhausted of { reason : Lopc_robust.Budget.stop_reason }
  | Too_large of { max_states : int }

type iteration = Auto | Power | Power_aitken | Gauss_seidel

let status_to_string = function
  | Converged { iters } -> Printf.sprintf "converged in %d iterations" iters
  | Not_converged { iters; diff } ->
    Printf.sprintf "not converged after %d iterations (l1 residual %g)" iters diff
  | Exhausted { reason } -> Lopc_robust.Budget.reason_to_string reason
  | Too_large { max_states } ->
    Printf.sprintf "state space exceeds %d states" max_states

(* Local control-flow exception for budget stops: raised at the two loop
   heads below and caught at the end of [solve_status], so callers only
   ever see the [Exhausted] status. *)
exception Budget_stop of Lopc_robust.Budget.stop_reason

(* The reachable generator in compressed sparse row form. Row [i] holds the
   off-diagonal outgoing transitions of state [i], in the exact order the
   caller's [transitions] function produced them (duplicate destinations
   stay separate entries, so float accumulation order — and hence the
   result — matches the historical list-of-rows representation
   bit-for-bit). Rows are laid out in discovery order: exploration is a
   plain BFS in which every state is queued exactly once, so states are
   popped — and their rows appended — in id order, which is what lets the
   matrix be built in one pass with no intermediate per-row lists. *)
type csr = {
  n : int;
  row_ptr : int array;        (* length n + 1 *)
  col : int array;            (* length nnz: destination ids *)
  rate : float array;         (* length nnz: transition rates *)
  out_rate : float array;     (* length n: total exit rate per state *)
}

(* Column-major twin of the CSR matrix: incoming transitions per state,
   sources in ascending id order. Only built for Gauss–Seidel sweeps. *)
type csc = {
  col_ptr : int array;        (* length n + 1 *)
  src : int array;            (* length nnz: source ids *)
  in_rate : float array;      (* length nnz *)
}

let csc_of_csr (m : csr) =
  let nnz = m.row_ptr.(m.n) in
  let counts = Array.make (m.n + 1) 0 in
  for k = 0 to nnz - 1 do
    let j = m.col.(k) in
    counts.(j + 1) <- counts.(j + 1) + 1
  done;
  for j = 1 to m.n do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let col_ptr = Array.copy counts in
  let src = Array.make nnz 0 in
  let in_rate = Array.make nnz 0. in
  let fill = Array.copy counts in
  for i = 0 to m.n - 1 do
    for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let j = m.col.(k) in
      let pos = fill.(j) in
      fill.(j) <- pos + 1;
      src.(pos) <- i;
      in_rate.(pos) <- m.rate.(k)
    done
  done;
  { col_ptr; src; in_rate }

(* Strong connectivity of the reachable chain: forward cover from state 0
   (free — exploration guarantees it) plus backward cover over the
   transposed matrix. A strongly connected chain has a unique stationary
   distribution, which is what licenses Gauss–Seidel; anything else
   (absorbing states, several recurrent classes) keeps the historical
   power-iteration limit. *)
let strongly_connected (m : csr) (c : csc) =
  if m.n = 0 then true
  else begin
    let seen = Bytes.make m.n '\000' in
    Bytes.set seen 0 '\001';
    let stack = ref [ 0 ] in
    let covered = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | j :: rest ->
        stack := rest;
        for k = c.col_ptr.(j) to c.col_ptr.(j + 1) - 1 do
          let i = c.src.(k) in
          if Bytes.get seen i = '\000' then begin
            Bytes.set seen i '\001';
            incr covered;
            stack := i :: !stack
          end
        done
    done;
    !covered = m.n
  end
[@@lint.allow
  "unbounded-retry"
    "the worklist loop visits each of the n states at most once (guarded by \
     the [seen] byte set), so it is bounded by the already-capped state count; \
     the caller's budget was consulted once per state during exploration"]

(* One l1 residual of the balance equations, scaled like a uniformized
   power step: ||pi Q||_1 / lambda = sum_j |sum_i pi_i q_ij - pi_j q_j| / lambda.
   This is exactly the successive-iterate l1 step a power sweep would take
   from [pi], so the convergence threshold means the same thing for every
   method. *)
let residual (m : csr) (c : csc) ~lambda pi =
  let acc = ref 0. in
  for j = 0 to m.n - 1 do
    let inflow = ref 0. in
    for k = c.col_ptr.(j) to c.col_ptr.(j + 1) - 1 do
      inflow := !inflow +. (pi.(c.src.(k)) *. c.in_rate.(k))
    done;
    acc := !acc +. Float.abs (!inflow -. (pi.(j) *. m.out_rate.(j)))
  done;
  !acc /. lambda

let normalize pi =
  let s = Array.fold_left ( +. ) 0. pi in
  if s > 0. && Float.is_finite s then
    for i = 0 to Array.length pi - 1 do
      pi.(i) <- pi.(i) /. s
    done

let solve_status ?budget ?(iteration = Auto) ?(max_states = 2_000_000)
    ?(tol = 1e-12) ?(max_iter = 200_000) ~initial ~transitions () =
  try
    (* [check_budget] lives inside the [try] so its raise is lexically
       within the handler below (the exn-escape rule reasons lexically). *)
    let check_budget () =
      match budget with
      | None -> ()
      | Some b -> (
        match Lopc_robust.Budget.check b with
        | None -> ()
        | Some reason -> raise (Budget_stop reason))
    in
    (* Phase 1: explore the reachable state space (one unit of fuel per
       popped frontier state) and append each popped state's row straight
       into the CSR arrays. BFS discipline makes the two coincide: a state
       is pushed exactly once, at discovery, so pop order equals id order
       and row [i] is complete before row [i + 1] begins. *)
    let index : ('state, int) Hashtbl.t = Hashtbl.create 4096 in
    let state_of_id = ref (Array.make 64 initial) in
    let count = ref 0 in
    let id_of s =
      match Hashtbl.find_opt index s with
      | Some i -> i
      | None ->
        if !count >= max_states then raise (State_space_too_large max_states);
        let i = !count in
        Hashtbl.add index s i;
        if i >= Array.length !state_of_id then begin
          let fresh = Array.make (2 * Array.length !state_of_id) s in
          Array.blit !state_of_id 0 fresh 0 (Array.length !state_of_id);
          state_of_id := fresh
        end;
        (!state_of_id).(i) <- s;
        incr count;
        i
    in
    ignore (id_of initial);
    let row_ptr = ref (Array.make 65 0) in
    let col = ref (Array.make 256 0) in
    let rate = ref (Array.make 256 0.) in
    let nnz = ref 0 in
    let push_entry j r =
      if !nnz >= Array.length !col then begin
        let cap = 2 * Array.length !col in
        let col' = Array.make cap 0 and rate' = Array.make cap 0. in
        Array.blit !col 0 col' 0 !nnz;
        Array.blit !rate 0 rate' 0 !nnz;
        col := col';
        rate := rate'
      end;
      (!col).(!nnz) <- j;
      (!rate).(!nnz) <- r;
      incr nnz
    in
    let frontier = Queue.create () in
    Queue.push initial frontier;
    let filled = ref 0 in
    while not (Queue.is_empty frontier) do
      check_budget ();
      match Queue.take_opt frontier with
      | None -> ()
      | Some s ->
        let i = !filled in
        incr filled;
        (* BFS invariant: the i-th pop is the state discovered i-th. *)
        assert (i = (match Hashtbl.find_opt index s with Some v -> v | None -> -1));
        if i + 1 >= Array.length !row_ptr then begin
          let fresh = Array.make (2 * Array.length !row_ptr) 0 in
          Array.blit !row_ptr 0 fresh 0 (Array.length !row_ptr);
          row_ptr := fresh
        end;
        List.iter
          (fun (s', r) ->
            if r < 0. || not (Float.is_finite r) then
              invalid_arg "Ctmc.solve: non-positive or non-finite rate";
            if not (Float.equal r 0.) then begin
              let before = !count in
              let j = id_of s' in
              if !count > before then Queue.push s' frontier;
              (* Self-loops compare by id (int), not by polymorphic
                 equality on the caller's state type. *)
              if j <> i then push_entry j r
            end)
          (transitions s);
        (!row_ptr).(i + 1) <- !nnz
    done;
    let n = !count in
    let m =
      {
        n;
        row_ptr = Array.sub !row_ptr 0 (n + 1);
        col = Array.sub !col 0 !nnz;
        rate = Array.sub !rate 0 !nnz;
        out_rate =
          Array.init n (fun i ->
              let acc = ref 0. in
              for k = (!row_ptr).(i) to (!row_ptr).(i + 1) - 1 do
                acc := !acc +. (!rate).(k)
              done;
              !acc);
      }
    in
    let state_of_id = Array.sub !state_of_id 0 n in
    (* Phase 2: pick a sweep and iterate to the stationary distribution.
       One unit of fuel per sweep, whatever the method. *)
    let lambda = 1.01 *. Array.fold_left Float.max 1e-12 m.out_rate in
    let c = csc_of_csr m in
    let method_ =
      match iteration with
      | Auto -> if strongly_connected m c then Gauss_seidel else Power
      | (Power | Power_aitken | Gauss_seidel) as it -> it
    in
    let pi = Array.make n (1. /. Float.of_int n) in
    let iter = ref 0 in
    let last_diff = ref Float.infinity in
    let converged = ref false in
    (match method_ with
    | Auto -> assert false
    | Power | Power_aitken ->
      (* Uniformized power iteration pi <- pi P, P = I + Q / lambda, on the
         CSR rows. [diff] doubles as the l1 residual of the pre-sweep
         iterate (next - pi = pi (P - I) = pi Q / lambda), so convergence
         is residual-based; each accepted iterate is renormalized so float
         drift cannot accumulate over long runs (historically [sum pi]
         drifted freely and convergence was declared on the raw step). *)
      let next = Array.make n 0. in
      let prev = if method_ = Power_aitken then Array.make n 0. else [||] in
      let prev2 = if method_ = Power_aitken then Array.make n 0. else [||] in
      while (not !converged) && !iter < max_iter do
        check_budget ();
        incr iter;
        Array.fill next 0 n 0.;
        for i = 0 to n - 1 do
          let stay = pi.(i) *. (1. -. (m.out_rate.(i) /. lambda)) in
          next.(i) <- next.(i) +. stay;
          for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
            let j = m.col.(k) in
            next.(j) <- next.(j) +. (pi.(i) *. m.rate.(k) /. lambda)
          done
        done;
        let diff = ref 0. in
        for i = 0 to n - 1 do
          diff := !diff +. Float.abs (next.(i) -. pi.(i))
        done;
        if method_ = Power_aitken then begin
          Array.blit prev 0 prev2 0 n;
          Array.blit pi 0 prev 0 n
        end;
        Array.blit next 0 pi 0 n;
        normalize pi;
        last_diff := !diff;
        if !diff <= tol then converged := true
        else if
          method_ = Power_aitken && !iter >= 3 && !iter mod 8 = 0
        then begin
          (* Aitken delta-squared extrapolation on the last three iterates;
             the guarded denominator skips components that already
             converged. Negative extrapolants are clamped — the result is
             only a better starting point, never the reported answer (the
             residual test above still gates convergence). *)
          for i = 0 to n - 1 do
            let d2 = pi.(i) -. (2. *. prev.(i)) +. prev2.(i) in
            if Float.abs d2 > 1e-300 then begin
              let step = pi.(i) -. prev.(i) in
              let x =
                (pi.(i) -. (step *. step /. d2)
                [@lint.allow
                  "division-by-vanishing"
                    "the enclosing branch holds only when |d2| > 1e-300, so the \
                     denominator is bounded away from 0; a non-finite quotient is \
                     additionally rejected by the Float.is_finite guard below"])
              in
              if x > 0. && Float.is_finite x then pi.(i) <- x
            end
          done;
          normalize pi
        end
      done
    | Gauss_seidel ->
      (* Balance-equation Gauss–Seidel on the transposed (incoming) matrix:
         pi_j <- (sum_{i<>j} pi_i q_ij) / q_j, sweeping states in id order
         and consuming updated values immediately. Only selected when the
         chain is strongly connected, so every q_j is strictly positive and
         the fixed point is the unique stationary distribution — the same
         limit power iteration reaches, in far fewer sweeps on the stiff
         chains the exact LoPC machine produces. Each sweep renormalizes
         and convergence is the same scaled residual as the power path. *)
      while (not !converged) && !iter < max_iter do
        check_budget ();
        incr iter;
        for j = 0 to n - 1 do
          let q_j = m.out_rate.(j) in
          if q_j > 0. then begin
            let inflow = ref 0. in
            for k = c.col_ptr.(j) to c.col_ptr.(j + 1) - 1 do
              inflow := !inflow +. (pi.(c.src.(k)) *. c.in_rate.(k))
            done;
            pi.(j) <- !inflow /. q_j
          end
        done;
        normalize pi;
        let r = residual m c ~lambda pi in
        last_diff := r;
        if r <= tol then converged := true
        else if not (Float.is_finite r) then begin
          (* Defensive: a sweep went non-finite (pathological rate
             spread). Restart on the unconditionally safe power path,
             keeping the fuel and iteration budgets already spent. *)
          Array.fill pi 0 n (1. /. Float.of_int n);
          let next = Array.make n 0. in
          while (not !converged) && !iter < max_iter do
            check_budget ();
            incr iter;
            Array.fill next 0 n 0.;
            for i = 0 to n - 1 do
              let stay = pi.(i) *. (1. -. (m.out_rate.(i) /. lambda)) in
              next.(i) <- next.(i) +. stay;
              for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
                let j = m.col.(k) in
                next.(j) <- next.(j) +. (pi.(i) *. m.rate.(k) /. lambda)
              done
            done;
            let diff = ref 0. in
            for i = 0 to n - 1 do
              diff := !diff +. Float.abs (next.(i) -. pi.(i))
            done;
            Array.blit next 0 pi 0 n;
            normalize pi;
            last_diff := !diff;
            if !diff <= tol then converged := true
          done
        end
      done);
    let sol = { index; state_of_id; pi } in
    if !converged then (Some sol, Converged { iters = !iter })
    else (Some sol, Not_converged { iters = !iter; diff = !last_diff })
  with
  | Budget_stop reason -> (None, Exhausted { reason })
  | State_space_too_large max_states -> (None, Too_large { max_states })

(* Legacy entry point: raises on overflow, silently returns the last
   iterate past [max_iter] — exactly the old contract. *)
let solve ?iteration ?max_states ?tol ?max_iter ~initial ~transitions () =
  match solve_status ?iteration ?max_states ?tol ?max_iter ~initial ~transitions () with
  | Some sol, _ -> sol
  | None, Too_large { max_states } -> raise (State_space_too_large max_states)
  | None, _ ->
    (* No budget was passed, so neither [Exhausted] nor any other
       solution-less status can occur. *)
    assert false

let states t = Array.length t.pi

let probability t s =
  match Hashtbl.find_opt t.index s with Some i -> t.pi.(i) | None -> 0.

let sum_pi t = Array.fold_left ( +. ) 0. t.pi

(* Both aggregations iterate [state_of_id] (discovery order) rather than the
   hash table, so float accumulation order — and hence the exact result — is
   a function of the model alone. *)

let expectation t ~f =
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. (t.pi.(i) *. f s)) t.state_of_id;
  !acc

let rate_of t ~event ~transitions =
  let acc = ref 0. in
  Array.iteri
    (fun i s -> acc := !acc +. (t.pi.(i) *. event s (transitions s)))
    t.state_of_id;
  !acc
