type 'state solution = {
  index : ('state, int) Hashtbl.t;
  state_of_id : 'state array;
      (* inverse of [index], in discovery order: aggregation iterates this
         array so results never depend on Hashtbl bucket order *)
  pi : float array;
}

exception State_space_too_large of int

type status =
  | Converged of { iters : int }
  | Not_converged of { iters : int; diff : float }
  | Exhausted of { reason : Lopc_robust.Budget.stop_reason }
  | Too_large of { max_states : int }

let status_to_string = function
  | Converged { iters } -> Printf.sprintf "converged in %d iterations" iters
  | Not_converged { iters; diff } ->
    Printf.sprintf "not converged after %d iterations (l1 diff %g)" iters diff
  | Exhausted { reason } -> Lopc_robust.Budget.reason_to_string reason
  | Too_large { max_states } ->
    Printf.sprintf "state space exceeds %d states" max_states

(* Local control-flow exception for budget stops: raised at the two loop
   heads below and caught at the end of [solve_status], so callers only
   ever see the [Exhausted] status. *)
exception Budget_stop of Lopc_robust.Budget.stop_reason

let solve_status ?budget ?(max_states = 2_000_000) ?(tol = 1e-12)
    ?(max_iter = 200_000) ~initial ~transitions () =
  try
    (* [check_budget] lives inside the [try] so its raise is lexically
       within the handler below (the exn-escape rule reasons lexically). *)
    let check_budget () =
      match budget with
      | None -> ()
      | Some b -> (
        match Lopc_robust.Budget.check b with
        | None -> ()
        | Some reason -> raise (Budget_stop reason))
    in
    (* Phase 1: explore the reachable state space (one unit of fuel per
       popped frontier state). *)
  let index : ('state, int) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref [] in
  let count = ref 0 in
  let id_of s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
      if !count >= max_states then raise (State_space_too_large max_states);
      let i = !count in
      Hashtbl.add index s i;
      states := s :: !states;
      incr count;
      i
  in
  ignore (id_of initial);
  (* Rows of the generator, built as we pop a worklist. *)
  let rows : (int * float) list array ref = ref (Array.make 64 []) in
  let ensure i =
    if i >= Array.length !rows then begin
      let fresh = Array.make (max (2 * Array.length !rows) (i + 1)) [] in
      Array.blit !rows 0 fresh 0 (Array.length !rows);
      rows := fresh
    end
  in
  let frontier = Queue.create () in
  Queue.push initial frontier;
  let explored = ref 0 in
  while not (Queue.is_empty frontier) do
    check_budget ();
    match Queue.take_opt frontier with
    | None -> ()
    | Some s ->
      let i = id_of s in
      ensure i;
      if (match (!rows).(i) with [] -> true | _ :: _ -> false) then begin
        incr explored;
        let out =
          List.filter_map
            (fun (s', rate) ->
              if rate < 0. || not (Float.is_finite rate) then
                invalid_arg "Ctmc.solve: non-positive or non-finite rate";
              if Float.equal rate 0. then None
              else begin
                let before = !count in
                let j = id_of s' in
                if !count > before then Queue.push s' frontier;
                (* Self-loops compare by id (int), not by polymorphic
                   equality on the caller's state type. *)
                if j = i then None else Some (j, rate)
              end)
            (transitions s)
        in
        (* Mark visited even for absorbing states. *)
        (!rows).(i) <- (match out with [] -> [ (i, 0.) ] | _ :: _ -> out)
      end
  done;
  let n = !count in
  let rows = Array.sub !rows 0 n in
  (* Phase 2: uniformize and power-iterate pi <- pi P. *)
  let out_rate = Array.map (fun row -> List.fold_left (fun a (_, r) -> a +. r) 0. row) rows in
  let lambda = 1.01 *. Array.fold_left Float.max 1e-12 out_rate in
  let pi = Array.make n (1. /. Float.of_int n) in
  let next = Array.make n 0. in
  let converged = ref false in
  let iter = ref 0 in
  let last_diff = ref Float.infinity in
  (* One unit of fuel per power iteration. *)
  while (not !converged) && !iter < max_iter do
    check_budget ();
    incr iter;
    Array.fill next 0 n 0.;
    for i = 0 to n - 1 do
      let stay = pi.(i) *. (1. -. (out_rate.(i) /. lambda)) in
      next.(i) <- next.(i) +. stay;
      List.iter
        (fun (j, rate) -> next.(j) <- next.(j) +. (pi.(i) *. rate /. lambda))
        rows.(i)
    done;
    let diff = ref 0. in
    for i = 0 to n - 1 do
      diff := !diff +. Float.abs (next.(i) -. pi.(i));
      pi.(i) <- next.(i)
    done;
    last_diff := !diff;
    if !diff <= tol then converged := true
  done;
  let state_of_id = Array.make n initial in
  List.iteri (fun k s -> state_of_id.(n - 1 - k) <- s) !states;
  let sol = { index; state_of_id; pi } in
  if !converged then (Some sol, Converged { iters = !iter })
  else (Some sol, Not_converged { iters = !iter; diff = !last_diff })
  with
  | Budget_stop reason -> (None, Exhausted { reason })
  | State_space_too_large max_states -> (None, Too_large { max_states })

(* Legacy entry point: raises on overflow, silently returns the last
   iterate past [max_iter] — exactly the old contract. *)
let solve ?max_states ?tol ?max_iter ~initial ~transitions () =
  match solve_status ?max_states ?tol ?max_iter ~initial ~transitions () with
  | Some sol, _ -> sol
  | None, Too_large { max_states } -> raise (State_space_too_large max_states)
  | None, _ ->
    (* No budget was passed, so neither [Exhausted] nor any other
       solution-less status can occur. *)
    assert false

let states t = Array.length t.pi

let probability t s =
  match Hashtbl.find_opt t.index s with Some i -> t.pi.(i) | None -> 0.

(* Both aggregations iterate [state_of_id] (discovery order) rather than the
   hash table, so float accumulation order — and hence the exact result — is
   a function of the model alone. *)

let expectation t ~f =
  let acc = ref 0. in
  Array.iteri (fun i s -> acc := !acc +. (t.pi.(i) *. f s)) t.state_of_id;
  !acc

let rate_of t ~event ~transitions =
  let acc = ref 0. in
  Array.iteri
    (fun i s -> acc := !acc +. (t.pi.(i) *. event s (transitions s)))
    t.state_of_id;
  !acc
