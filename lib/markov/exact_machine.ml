(* Phases of a node's single outstanding compute/request cycle. *)
type phase =
  | Working
  | Req_wire of int  (* request in flight toward this destination *)
  | Req_at of int    (* request in the destination's FIFO *)
  | Rep_wire         (* reply in flight home *)
  | Rep_home         (* reply in the home FIFO *)

(* One entry of a node's handler FIFO. *)
type item = Req of int (* owner *) | Rep

type state = { phases : phase list; queues : item list list }

type result = {
  states : int;
  cycle_time : float;
  throughput : float;
  qq : float;
  qy : float;
  uq : float;
  uy : float;
}

let nth = List.nth

let set_nth lst i v = List.mapi (fun j x -> if j = i then v else x) lst

let append_nth lst i v = List.mapi (fun j x -> if j = i then x @ [ v ] else x) lst

let pop_nth lst i =
  List.mapi (fun j x -> if j = i then match x with [] -> [] | _ :: t -> t else x) lst

(* Validated machine: the chain's initial state and transition function,
   shared by the raising and the status-returning entry points. *)
let model ~p ~w ~so ~st =
  if p < 2 then invalid_arg "Exact_machine: need at least two nodes";
  List.iter
    (fun (name, v) ->
      if v <= 0. || not (Float.is_finite v) then
        invalid_arg (Printf.sprintf "Exact_machine: %s must be strictly positive" name))
    [ ("w", w); ("so", so); ("st", st) ];
  let mu_w = 1. /. w and mu_so = 1. /. so and mu_st = 1. /. st in
  let initial =
    { phases = List.init p (fun _ -> Working); queues = List.init p (fun _ -> []) }
  in
  let transitions s =
    let moves = ref [] in
    let add s' rate = moves := (s', rate) :: !moves in
    List.iteri
      (fun i phase ->
        match phase with
        | Working ->
          (* The thread runs only while its own FIFO is empty
             (preempt-resume is free under memoryless work). On
             completion it sends to a uniformly random peer. *)
          if nth s.queues i = [] then
            for d = 0 to p - 1 do
              if d <> i then
                add
                  { s with phases = set_nth s.phases i (Req_wire d) }
                  (mu_w /. Float.of_int (p - 1))
            done
        | Req_wire d ->
          add
            {
              phases = set_nth s.phases i (Req_at d);
              queues = append_nth s.queues d (Req i);
            }
            mu_st
        | Req_at _ -> ()   (* progresses via the destination's FIFO head *)
        | Rep_wire ->
          add
            {
              phases = set_nth s.phases i Rep_home;
              queues = append_nth s.queues i Rep;
            }
            mu_st
        | Rep_home -> ()   (* progresses via the home FIFO head *))
      s.phases;
    (* Handler completions: the head of each non-empty FIFO finishes at
       rate mu_so. *)
    List.iteri
      (fun k queue ->
        match queue with
        | [] -> ()
        | Req owner :: _ ->
          add
            {
              phases = set_nth s.phases owner Rep_wire;
              queues = pop_nth s.queues k;
            }
            mu_so
        | Rep :: _ ->
          (* Node k's own reply completes: its thread starts a new cycle. *)
          add
            { phases = set_nth s.phases k Working; queues = pop_nth s.queues k }
            mu_so)
      s.queues;
    !moves
  in
  (initial, transitions)

(* Steady-state aggregates of a solved chain. *)
let aggregate ~mu_so sol =
  (* Per-node completion rate: head of node 0's FIFO is a reply. *)
  let head_is queue pred = match queue with h :: _ -> pred h | [] -> false in
  let throughput =
    mu_so
    *. Ctmc.expectation sol ~f:(fun s ->
           if head_is (nth s.queues 0) (function Rep -> true | Req _ -> false) then 1.
           else 0.)
  in
  let count_items pred s =
    List.length (List.filter pred (nth s.queues 0)) |> Float.of_int
  in
  {
    states = Ctmc.states sol;
    cycle_time = 1. /. throughput;
    throughput;
    qq = Ctmc.expectation sol ~f:(count_items (function Req _ -> true | Rep -> false));
    qy = Ctmc.expectation sol ~f:(count_items (function Rep -> true | Req _ -> false));
    uq =
      Ctmc.expectation sol ~f:(fun s ->
          if head_is (nth s.queues 0) (function Req _ -> true | Rep -> false) then 1.
          else 0.);
    uy =
      Ctmc.expectation sol ~f:(fun s ->
          if head_is (nth s.queues 0) (function Rep -> true | Req _ -> false) then 1.
          else 0.);
  }

let all_to_all ?max_states ~p ~w ~so ~st () =
  let initial, transitions = model ~p ~w ~so ~st in
  let sol = Ctmc.solve ?max_states ~initial ~transitions () in
  aggregate ~mu_so:(1. /. so) sol

let all_to_all_status ?budget ?max_states ~p ~w ~so ~st () =
  let initial, transitions = model ~p ~w ~so ~st in
  match Ctmc.solve_status ?budget ?max_states ~initial ~transitions () with
  | Some sol, status -> (Some (aggregate ~mu_so:(1. /. so) sol), status)
  | None, status -> (None, status)
