module Distribution = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module General = Lopc.General

type t =
  | All_to_all
  | All_to_all_staggered
  | Client_server of { servers : int }
  | Hotspot of { hot : int; fraction : float }
  | Multi_hop of { hops : int }

let validate ~nodes t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if nodes < 2 then err "patterns need at least two nodes, got %d" nodes
  else
    match t with
    | All_to_all | All_to_all_staggered -> Ok t
    | Client_server { servers } ->
      if servers > 0 && servers < nodes then Ok t
      else err "client-server needs 0 < servers < nodes, got %d of %d" servers nodes
    | Hotspot { hot; fraction } ->
      if hot < 0 || hot >= nodes then err "hot node %d out of range" hot
      else if not (fraction >= 0. && fraction <= 1.) then
        err "hotspot fraction %g outside [0,1]" fraction
      else Ok t
    | Multi_hop { hops } ->
      if hops >= 1 then Ok t else err "multi-hop needs hops >= 1, got %d" hops

let check ~nodes t =
  match validate ~nodes t with
  | Ok t -> t
  | Error reason -> invalid_arg ("Pattern: " ^ reason)

(* Visit matrix row for a thread at [c] under each pattern. *)
let visit_row ~nodes c = function
  | All_to_all | All_to_all_staggered ->
    let v = 1. /. Float.of_int (nodes - 1) in
    Array.init nodes (fun k -> if k = c then 0. else v)
  | Client_server { servers } ->
    let v = 1. /. Float.of_int servers in
    Array.init nodes (fun k -> if k < servers then v else 0.)
  | Hotspot { hot; fraction } ->
    let spread = (1. -. fraction) /. Float.of_int (nodes - 1) in
    Array.init nodes (fun k ->
        let base = if k = c then 0. else spread in
        if k = hot then base +. fraction else base)
  | Multi_hop { hops } ->
    let v = Float.of_int hops /. Float.of_int (nodes - 1) in
    Array.init nodes (fun k -> if k = c then 0. else v)

let is_server t c =
  match t with Client_server { servers } -> c < servers | _ -> false

let to_general ?(protocol_processor = false) (params : Lopc.Params.t) ~w t =
  let nodes = params.p in
  let t = check ~nodes t in
  {
    General.params;
    protocol_processor;
    nodes =
      Array.init nodes (fun c ->
          if is_server t c then { General.work = None; visits = Array.make nodes 0. }
          else { General.work = Some w; visits = visit_row ~nodes c t });
  }

let route_for ~nodes c = function
  | All_to_all -> Spec.uniform_other ~nodes ~origin:c
  | All_to_all_staggered -> Spec.round_robin ~nodes ~origin:c
  | Client_server { servers } -> Spec.uniform_server ~servers
  | Hotspot { hot; fraction } -> Spec.hotspot ~nodes ~origin:c ~hot ~fraction
  | Multi_hop { hops } -> Spec.multi_hop ~nodes ~origin:c ~hops

let to_spec ?(protocol_processor = false) ?(polling = false) ?fault ~nodes ~work
    ~handler ~wire t =
  let t = check ~nodes t in
  {
    Spec.nodes;
    threads =
      Array.init nodes (fun c ->
          if is_server t c then None
          else Some { Spec.work; route = route_for ~nodes c t; window = 1 });
    handler;
    reply_handler = handler;
    wire;
    protocol_processor;
    gap = 0.;
    polling;
    initial_delay = None;
    barrier = None;
    topology = None;
    fault;
  }

let description = function
  | All_to_all -> "homogeneous all-to-all (uniform random peers)"
  | All_to_all_staggered -> "all-to-all with round-robin (staggered) destinations"
  | Client_server { servers } -> Printf.sprintf "client-server work-pile (%d servers)" servers
  | Hotspot { hot; fraction } ->
    Printf.sprintf "hotspot (%.0f%% of requests to node %d)" (100. *. fraction) hot
  | Multi_hop { hops } -> Printf.sprintf "multi-hop all-to-all (%d hops)" hops
