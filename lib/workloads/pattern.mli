(** Communication patterns, usable by both the analytical model and the
    simulator.

    A pattern is an abstract description of who talks to whom; it can be
    lowered either to an Appendix-A visit matrix ({!to_general}) for the
    LoPC model or to a simulator machine ({!to_spec}). Keeping the two
    lowerings in one place guarantees model and simulation are validated
    against the {e same} workload. *)

module Distribution = Lopc_dist.Distribution

type t =
  | All_to_all
      (** Homogeneous uniform traffic (§5): every node a thread, each
          request to a uniformly random peer. *)
  | All_to_all_staggered
      (** Deterministic round-robin destinations (the CM-5 style
          "carefully scheduled" pattern of the introduction). Lowers to
          the same visit matrix as {!All_to_all} for the model. *)
  | Client_server of { servers : int }
      (** Work-pile (§6): the low [servers] node ids serve, the rest are
          clients picking servers uniformly. *)
  | Hotspot of { hot : int; fraction : float }
      (** All-to-all where each request goes to node [hot] with the given
          probability, otherwise to a uniform other node — an irregular
          pattern with a contended home node. *)
  | Multi_hop of { hops : int }
      (** All-to-all where each request visits [hops] uniformly chosen
          remote nodes before the reply (Appendix A). *)

val validate : nodes:int -> t -> (t, string) result
(** Check pattern parameters against the machine size. *)

val to_general :
  ?protocol_processor:bool -> Lopc.Params.t -> w:float -> t -> Lopc.General.t
(** Lower to the Appendix-A model instance.
    @raise Invalid_argument when {!validate} fails against
    [params.p]. *)

val to_spec :
  ?protocol_processor:bool ->
  ?polling:bool ->
  ?fault:Lopc_activemsg.Fault.t ->
  nodes:int ->
  work:Distribution.t ->
  handler:Distribution.t ->
  wire:Distribution.t ->
  t ->
  Lopc_activemsg.Spec.t
(** Lower to a simulator machine with the given service-time
    distributions; [fault] optionally injects the {!Lopc_activemsg.Fault}
    failure layer. @raise Invalid_argument when {!validate} fails. *)

val description : t -> string
(** One-line human-readable name. *)
