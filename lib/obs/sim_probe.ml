module Histogram = Lopc_stats.Histogram
module P2_quantile = Lopc_stats.P2_quantile

type handler_state = H_idle | H_request | H_reply

type node_state = {
  queue : Series.t;
  thread : Series.t;
  busy_request : Series.t;
  busy_reply : Series.t;
  mutable thread_open : bool;
  mutable handler : handler_state;
}

type t = {
  nodes : int;
  recorder : Recorder.t option;
  states : node_state array;
  depth_hist : Histogram.t;
  depth_p99 : P2_quantile.t;
  depth_samples : Reservoir.t;
  mutable cycles : int;
}

let span_w = "W"
let span_rq = "Rq"
let span_ry = "Ry"

(* Track layout: two tracks per node so spans on one track never overlap
   themselves even when a protocol processor lets the thread compute
   while a handler is in service. *)
let thread_track node = 2 * node
let handler_track node = (2 * node) + 1
let engine_track t = 2 * t.nodes

let create ?recorder ?(window = 1000.) ~nodes () =
  if nodes < 1 then invalid_arg "Sim_probe.create: nodes must be positive";
  let state _ =
    {
      queue = Series.create ~window ();
      thread = Series.create ~window ();
      busy_request = Series.create ~window ();
      busy_reply = Series.create ~window ();
      thread_open = false;
      handler = H_idle;
    }
  in
  {
    nodes;
    recorder;
    states = Array.init nodes state;
    depth_hist = Histogram.create ~lo:0. ~hi:64. ~bins:64;
    depth_p99 = P2_quantile.create ~q:0.99;
    depth_samples = Reservoir.create ~capacity:1024 ();
    cycles = 0;
  }

let nodes t = t.nodes

let recorder t = t.recorder

let on_recorder t f = match t.recorder with None -> () | Some r -> f r

let thread_running t ~node ~now running =
  let st = t.states.(node) in
  if running && not st.thread_open then begin
    st.thread_open <- true;
    Series.update st.thread ~now 1.;
    on_recorder t (fun r -> Recorder.begin_span r ~ts:now ~track:(thread_track node) span_w)
  end
  else if (not running) && st.thread_open then begin
    st.thread_open <- false;
    Series.update st.thread ~now 0.;
    on_recorder t (fun r -> Recorder.end_span r ~ts:now ~track:(thread_track node) span_w)
  end

let handler_begin t ~node ~now ~reply =
  let st = t.states.(node) in
  match st.handler with
  | H_request | H_reply -> ()  (* already in service; the machine never does this *)
  | H_idle ->
    if reply then begin
      st.handler <- H_reply;
      Series.update st.busy_reply ~now 1.;
      on_recorder t (fun r ->
          Recorder.begin_span r ~ts:now ~track:(handler_track node) span_ry)
    end
    else begin
      st.handler <- H_request;
      Series.update st.busy_request ~now 1.;
      on_recorder t (fun r ->
          Recorder.begin_span r ~ts:now ~track:(handler_track node) span_rq)
    end

let handler_end t ~node ~now ~reply =
  let st = t.states.(node) in
  match (st.handler, reply) with
  | H_reply, true ->
    st.handler <- H_idle;
    Series.update st.busy_reply ~now 0.;
    on_recorder t (fun r -> Recorder.end_span r ~ts:now ~track:(handler_track node) span_ry)
  | H_request, false ->
    st.handler <- H_idle;
    Series.update st.busy_request ~now 0.;
    on_recorder t (fun r -> Recorder.end_span r ~ts:now ~track:(handler_track node) span_rq)
  | (H_idle | H_request | H_reply), _ -> ()

let queue_depth t ~node ~now ~arrival depth =
  let st = t.states.(node) in
  let d = Float.of_int depth in
  Series.update st.queue ~now d;
  if arrival then begin
    Histogram.add t.depth_hist d;
    P2_quantile.add t.depth_p99 d;
    Reservoir.add t.depth_samples ~ts:now d
  end;
  on_recorder t (fun r -> Recorder.counter r ~ts:now ~track:(handler_track node) "queue" d)

let cycle_completed t ~node ~now ~rw ~wire ~rq ~ry ~total =
  t.cycles <- t.cycles + 1;
  on_recorder t (fun r ->
      Recorder.instant r ~ts:now ~track:(thread_track node) "cycle"
        ~args:
          [
            ("rw", Recorder.Num rw);
            ("wire", Recorder.Num wire);
            ("rq", Recorder.Num rq);
            ("ry", Recorder.Num ry);
            ("r", Recorder.Num total);
          ])

let fault_event ?value t ~node ~now name =
  on_recorder t (fun r ->
      let args =
        match value with None -> [] | Some v -> [ ("value", Recorder.Num v) ]
      in
      Recorder.instant r ~ts:now ~track:(thread_track node) name ~args)

let engine_sample t ~now ~heap ~executed =
  on_recorder t (fun r ->
      Recorder.counter r ~ts:now ~track:(engine_track t) "heap" (Float.of_int heap);
      Recorder.counter r ~ts:now ~track:(engine_track t) "events" (Float.of_int executed))

let finish t ~now =
  Array.iteri
    (fun node st ->
      (match st.handler with
      | H_idle -> ()
      | H_request ->
        st.handler <- H_idle;
        on_recorder t (fun r ->
            Recorder.end_span r ~ts:now ~track:(handler_track node) span_rq)
      | H_reply ->
        st.handler <- H_idle;
        on_recorder t (fun r ->
            Recorder.end_span r ~ts:now ~track:(handler_track node) span_ry));
      if st.thread_open then begin
        st.thread_open <- false;
        on_recorder t (fun r ->
            Recorder.end_span r ~ts:now ~track:(thread_track node) span_w)
      end)
    t.states

let cycles t = t.cycles

let queue_series t ~node = t.states.(node).queue

let thread_series t ~node = t.states.(node).thread

let request_busy_series t ~node = t.states.(node).busy_request

let reply_busy_series t ~node = t.states.(node).busy_reply

let thread_utilization t ~node ~now = Series.average t.states.(node).thread ~now

let request_utilization t ~node ~now = Series.average t.states.(node).busy_request ~now

let reply_utilization t ~node ~now = Series.average t.states.(node).busy_reply ~now

let mean_queue t ~node ~now = Series.average t.states.(node).queue ~now

let arrival_depth_quantile t = P2_quantile.estimate t.depth_p99

let arrival_depth_histogram t = t.depth_hist

let depth_samples t = t.depth_samples
