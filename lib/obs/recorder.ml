type arg = Str of string | Num of float | Int of int

type kind = Begin | End | Instant | Counter

type event = {
  ts : float;
  track : int;
  kind : kind;
  name : string;
  args : (string * arg) list;
}

type t = {
  limit : int;
  mutable rev_events : event list;  (* newest first *)
  mutable count : int;
  mutable dropped : int;
  mutable last_ts : float;
}

let create ?(limit = 200_000) () =
  if limit < 1 then invalid_arg "Recorder.create: limit must be positive";
  { limit; rev_events = []; count = 0; dropped = 0; last_ts = Float.neg_infinity }

let emit t ~ts ~track ~kind ~name args =
  if not (Float.is_finite ts) then invalid_arg "Recorder.emit: non-finite timestamp";
  if ts < t.last_ts then invalid_arg "Recorder.emit: timestamp went backwards";
  t.last_ts <- ts;
  if t.count >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.rev_events <- { ts; track; kind; name; args } :: t.rev_events;
    t.count <- t.count + 1
  end

let begin_span t ~ts ~track name = emit t ~ts ~track ~kind:Begin ~name []

let end_span t ~ts ~track name = emit t ~ts ~track ~kind:End ~name []

let instant ?(args = []) t ~ts ~track name = emit t ~ts ~track ~kind:Instant ~name args

let counter t ~ts ~track name v =
  emit t ~ts ~track ~kind:Counter ~name [ ("value", Num v) ]

let length t = t.count

let dropped t = t.dropped

let events t = List.rev t.rev_events

(* JSON string escaping for the small character set trace names can
   contain; control characters are escaped numerically for safety. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_arg_json ppf = function
  | Str s -> Format.fprintf ppf "\"%s\"" (json_escape s)
  | Num v ->
    if Float.is_finite v then Format.fprintf ppf "%.9g" v
    else Format.fprintf ppf "\"%.9g\"" v (* nan/inf are not JSON literals *)
  | Int i -> Format.fprintf ppf "%d" i

let pp_args_json ppf args =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "\"%s\":%a" (json_escape k) pp_arg_json v)
    args;
  Format.fprintf ppf "}"

let phase_of_kind = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Counter -> "C"

let pp_chrome ppf t =
  Format.fprintf ppf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@\n{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d"
        (json_escape e.name) (phase_of_kind e.kind) e.ts e.track;
      (match e.kind with
      | Instant -> Format.fprintf ppf ",\"s\":\"t\""
      | Begin | End | Counter -> ());
      (match e.args with
      | [] -> ()
      | args -> Format.fprintf ppf ",\"args\":%a" pp_args_json args);
      Format.fprintf ppf "}")
    (events t);
  Format.fprintf ppf "@\n],\"displayTimeUnit\":\"ms\",";
  Format.fprintf ppf "\"otherData\":{\"clock\":\"simulated-cycles\",\"dropped\":%d}}@\n"
    t.dropped

let pp_arg_text ppf = function
  | Str s -> Format.fprintf ppf "%s" s
  | Num v -> Format.fprintf ppf "%.9g" v
  | Int i -> Format.fprintf ppf "%d" i

let letter_of_kind = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "I"
  | Counter -> "C"

let pp_text ppf t =
  Format.fprintf ppf "# lopc-obs/1 events=%d dropped=%d@\n" t.count t.dropped;
  List.iter
    (fun e ->
      Format.fprintf ppf "%.3f %d %s %s" e.ts e.track (letter_of_kind e.kind) e.name;
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg_text v) e.args;
      Format.fprintf ppf "@\n")
    (events t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      if Filename.check_suffix path ".json" then pp_chrome ppf t else pp_text ppf t;
      Format.pp_print_flush ppf ())
