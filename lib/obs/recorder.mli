(** Span/event recorder with deterministic, simulation-clock timestamps.

    A {!t} accumulates a bounded, monotonically timestamped stream of
    begin/end spans, instants and counter samples, each attached to an
    integer [track] (one per simulated node, plus synthetic tracks for
    the engine itself). The stream renders either as Chrome
    [trace_event] JSON — loadable in [chrome://tracing] and Perfetto —
    or as a compact line-oriented text format for grepping and golden
    tests.

    Timestamps are simulated cycles, never wall clock, so recordings are
    byte-identical across runs and machines ([obs-no-wallclock] lint
    rule). *)

type arg =
  | Str of string  (** Rendered as a JSON string. *)
  | Num of float  (** Rendered with [%.9g]. *)
  | Int of int
      (** Rendered without a decimal point (counts, sequence numbers). *)

type kind =
  | Begin  (** Opens a span on a track; must be closed by {!End}. *)
  | End  (** Closes the innermost open span of the same name. *)
  | Instant  (** A point event (fault, retransmit, cycle completion). *)
  | Counter  (** A sampled numeric series (queue depth, heap size). *)

type event = {
  ts : float;  (** Simulated-cycle timestamp. *)
  track : int;  (** Rendered as the Chrome [tid]. *)
  kind : kind;
  name : string;
  args : (string * arg) list;
}

type t

val create : ?limit:int -> unit -> t
(** A fresh recorder keeping at most [limit] events (default
    [200_000]); once full, further events are counted in {!dropped} and
    discarded, so a runaway simulation cannot exhaust memory.
    @raise Invalid_argument if [limit < 1]. *)

val emit :
  t -> ts:float -> track:int -> kind:kind -> name:string ->
  (string * arg) list -> unit
(** Append one event. Timestamps must be non-decreasing across calls —
    the simulator emits in event-execution order, which is time order.
    @raise Invalid_argument if [ts] precedes the previous event or is
    not finite. *)

val begin_span : t -> ts:float -> track:int -> string -> unit
(** [emit] shorthand for a {!Begin} with no args. *)

val end_span : t -> ts:float -> track:int -> string -> unit
(** [emit] shorthand for an {!End} with no args. *)

val instant :
  ?args:(string * arg) list -> t -> ts:float -> track:int -> string -> unit
(** [emit] shorthand for an {!Instant}. *)

val counter : t -> ts:float -> track:int -> string -> float -> unit
(** [emit] shorthand for a {!Counter} carrying [("value", Num v)]. *)

val length : t -> int
(** Events currently held. *)

val dropped : t -> int
(** Events discarded after the limit was reached. *)

val events : t -> event list
(** Recorded events, oldest first. *)

val pp_chrome : Format.formatter -> t -> unit
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): spans as
    [ph:"B"]/[ph:"E"], instants as thread-scoped [ph:"i"], counters as
    [ph:"C"]. Load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

val pp_text : Format.formatter -> t -> unit
(** Compact text: a [# lopc-obs/1] header then one
    [<ts> <track> <B|E|I|C> <name> [k=v ...]] line per event. *)

val write_file : t -> string -> unit
(** Write the recording to [path]: Chrome JSON when the file name ends
    in [.json], text otherwise. *)
