type t = {
  capacity : int;
  mutable kept_rev : (float * float) list;  (* newest first *)
  mutable kept : int;
  mutable seen : int;
  mutable stride : int;
}

let create ?(capacity = 512) () =
  if capacity < 2 then invalid_arg "Reservoir.create: capacity must be at least 2";
  { capacity; kept_rev = []; kept = 0; seen = 0; stride = 1 }

(* Drop every other kept sample (keeping the oldest of each pair) and
   double the stride; survivors remain evenly spaced over the stream. *)
let compact t =
  let oldest_first = List.rev t.kept_rev in
  let survivors = ref [] in
  let n = ref 0 in
  List.iteri
    (fun i s ->
      if i mod 2 = 0 then begin
        survivors := s :: !survivors;
        incr n
      end)
    oldest_first;
  t.kept_rev <- !survivors;
  t.kept <- !n;
  t.stride <- t.stride * 2

let add t ~ts v =
  if t.seen mod t.stride = 0 then begin
    if t.kept >= t.capacity then compact t;
    t.kept_rev <- (ts, v) :: t.kept_rev;
    t.kept <- t.kept + 1
  end;
  t.seen <- t.seen + 1

let seen t = t.seen

let stride t = t.stride

let samples t = Array.of_list (List.rev t.kept_rev)
