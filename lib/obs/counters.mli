(** Robustness counters: degradation and budget-exhaustion totals.

    Monotone atomic counters bumped by the degradation cascade's
    [on_event] hook and by callers observing [Exhausted] solver statuses;
    read by the CLI and bench reporting. Pure observability — nothing in
    the computation path reads them. *)

type t

val create : unit -> t
(** A fresh, zeroed counter set. *)

val global : t
(** The process-wide instance the artifact cascades report into. *)

val record_degradation : t -> unit
(** One cascade stage failed and a cheaper stage was tried. *)

val record_cascade_failure : t -> unit
(** A cascade ran out of stages without producing a value. *)

val record_exhaustion : t -> unit
(** A budget stopped a solver or simulation (fuel or cancellation). *)

val degradations : t -> int
val cascade_failures : t -> int
val exhaustions : t -> int

val reset : t -> unit
(** Zero every counter (tests and per-run CLI reporting). *)

val summary : t -> string
(** One-line [key=value] rendering of the totals. *)
