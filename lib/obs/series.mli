(** Fixed-window trajectory of a piecewise-constant signal.

    Wraps {!Lopc_stats.Time_average} to expose not just the end-of-run
    mean but the *trajectory*: the signal's time average over each
    consecutive window of [window] simulated cycles. This is what lets
    a queue-length plot show the transient ramp the end-of-run
    aggregate hides.

    The total integral is preserved exactly: closing a window advances
    the accumulator to the window boundary and restarts it there, so
    {!integral} equals what a single [Time_average] over the whole run
    would report (up to float summation order). *)

type t

val create : ?start:float -> window:float -> unit -> t
(** Track a signal that holds [0.] from [start] (default [0.]),
    aggregated in windows of [window] cycles.
    @raise Invalid_argument if [window] is not positive and finite. *)

val update : t -> now:float -> float -> unit
(** The signal changed to [v] at [now]; windows crossed since the last
    update are closed on the way.
    @raise Invalid_argument if time goes backwards. *)

val value : t -> float
(** Current signal value. *)

val points : t -> (float * float) array
(** Closed windows as [(window_start, window_mean)], oldest first. The
    window still open is not included — see {!current}. *)

val current : t -> now:float -> float * float
(** [(window_start, mean_so_far)] of the open window; the mean is [nan]
    when no time has elapsed inside it. *)

val integral : t -> now:float -> float
(** [∫ signal dt] from [start] to [now], across all windows. *)

val average : t -> now:float -> float
(** {!integral} divided by elapsed time; [nan] when no time elapsed. *)
