(** Bounded, deterministic sample decimation.

    Keeps a bounded set of [(timestamp, value)] samples from an
    unbounded stream without randomness: samples are kept every
    [stride]-th arrival, and when the buffer fills, every other kept
    sample is discarded and the stride doubles. The survivors are a
    systematic (stride) sample spread over the whole stream, and the
    result depends only on the input sequence, never on an RNG, so
    traces stay replayable ([determinism-taint] safe). *)

type t

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] samples (default [512]).
    @raise Invalid_argument if [capacity < 2]. *)

val add : t -> ts:float -> float -> unit
(** Offer one sample; it is kept only if it falls on the current
    stride. *)

val seen : t -> int
(** Samples offered so far. *)

val stride : t -> int
(** Current decimation stride: one in [stride] offered samples is
    kept. Starts at [1] and doubles at each compaction. *)

val samples : t -> (float * float) array
(** Kept samples, oldest first. *)
