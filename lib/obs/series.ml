module Time_average = Lopc_stats.Time_average

type t = {
  window : float;
  start : float;
  mutable window_start : float;
  acc : Time_average.t;  (* integrates the open window only *)
  mutable closed_rev : (float * float) list;  (* (start, mean), newest first *)
  mutable closed_area : float;
}

let create ?(start = 0.) ~window () =
  if not (Float.is_finite window) || window <= 0. then
    invalid_arg "Series.create: window must be positive and finite";
  {
    window;
    start;
    window_start = start;
    acc = Time_average.create ~start_time:start ();
    closed_rev = [];
    closed_area = 0.;
  }

(* Close every window boundary at or before [now]. [reset] keeps the
   signal value while restarting integration at the boundary, which is
   exactly the window-rollover semantics we need. *)
let rec close_until t now =
  let boundary = t.window_start +. t.window in
  if now >= boundary then begin
    let area = Time_average.integral t.acc ~now:boundary in
    t.closed_rev <- (t.window_start, area /. t.window) :: t.closed_rev;
    t.closed_area <- t.closed_area +. area;
    Time_average.reset t.acc ~now:boundary;
    t.window_start <- boundary;
    close_until t now
  end

let update t ~now v =
  close_until t now;
  Time_average.update t.acc ~now v

let value t = Time_average.value t.acc

let points t = Array.of_list (List.rev t.closed_rev)

let current t ~now =
  (t.window_start, Time_average.average t.acc ~now)

let integral t ~now = t.closed_area +. Time_average.integral t.acc ~now

let average t ~now =
  let elapsed = now -. t.start in
  if elapsed <= 0. then Float.nan else integral t ~now /. elapsed
