(** Simulator-facing observability probe.

    One [Sim_probe.t] rides along a [Machine.run]: the simulator calls
    the transition functions below at its event hooks, and the probe
    fans each transition into (a) span/instant/counter records on an
    optional {!Recorder}, and (b) per-node fixed-window {!Series} so
    queue length and utilization *trajectories* survive the run, not
    just the end-of-run means.

    Track layout: node [i] owns track [2i] (thread work spans [W],
    cycle and fault instants) and track [2i+1] (handler service spans
    [Rq]/[Ry], the [queue] depth counter); track [2·nodes] carries the
    engine's own counters. Two tracks per node because a protocol
    processor lets the thread compute while a handler is in service —
    on separate tracks, no span ever overlaps itself, so begin/end
    records are well nested per track ([W] never self-overlaps; the
    machine serializes handlers per node). {!finish} closes any spans
    still open at termination, making every recording balanced. *)

type t

val create : ?recorder:Recorder.t -> ?window:float -> nodes:int -> unit -> t
(** A probe for a machine of [nodes] nodes. Transitions are recorded on
    [recorder] when given; trajectories use windows of [window]
    simulated cycles (default [1000.]).
    @raise Invalid_argument if [nodes < 1] or [window] is invalid. *)

val nodes : t -> int

val recorder : t -> Recorder.t option

(** {1 Simulator-facing transitions}

    All timestamps are the engine clock and must be non-decreasing. *)

val thread_running : t -> node:int -> now:float -> bool -> unit
(** The node's compute thread started ([true]) or stopped ([false])
    running. Opens/closes a [W] span; repeated same-state calls are
    ignored. *)

val handler_begin : t -> node:int -> now:float -> reply:bool -> unit
(** A message handler began service on the node: a reply handler
    ([Ry] span) or a request handler ([Rq] span). *)

val handler_end : t -> node:int -> now:float -> reply:bool -> unit
(** The handler finished; closes the matching span. *)

val queue_depth : t -> node:int -> now:float -> arrival:bool -> int -> unit
(** The node's handler backlog (queued messages plus the one in
    service) changed to [depth]. [arrival] marks changes caused by a
    message arriving — only those samples feed the arrival-depth
    histogram/quantile, the quantity Bard's approximation speaks
    about. *)

val cycle_completed :
  t -> node:int -> now:float ->
  rw:float -> wire:float -> rq:float -> ry:float -> total:float -> unit
(** A request/reply cycle completed on the node: an instant event
    carrying the per-phase breakdown (compute-side wait [rw], wire
    time, request service [rq], reply service [ry], end-to-end
    [total]). *)

val fault_event : ?value:float -> t -> node:int -> now:float -> string -> unit
(** A fault-layer event ([drop], [duplicate], [stale], [retransmit],
    [giveup]) as an instant on the node's track, with an optional
    numeric payload (e.g. the retry count). *)

val engine_sample : t -> now:float -> heap:int -> executed:int -> unit
(** Periodic engine health sample: pending-event heap size and events
    executed, as counters on the synthetic engine track (index
    [nodes]). *)

val finish : t -> now:float -> unit
(** Close any spans still open (in-flight work or handler service at
    termination). Call once, after the run. Idempotent. *)

(** {1 Readouts} *)

val cycles : t -> int
(** Completed cycles observed. *)

val queue_series : t -> node:int -> Series.t
(** Per-node backlog trajectory (queued + in service). *)

val thread_series : t -> node:int -> Series.t
(** Per-node thread-running indicator trajectory. *)

val request_busy_series : t -> node:int -> Series.t
(** Per-node request-handler-busy indicator trajectory. *)

val reply_busy_series : t -> node:int -> Series.t
(** Per-node reply-handler-busy indicator trajectory. *)

val thread_utilization : t -> node:int -> now:float -> float
(** Time-average of the thread-running indicator over [\[0, now\]] —
    the probe-integrated counterpart of [Metrics.avg_thread_util]. *)

val request_utilization : t -> node:int -> now:float -> float

val reply_utilization : t -> node:int -> now:float -> float

val mean_queue : t -> node:int -> now:float -> float

val arrival_depth_quantile : t -> float
(** P² estimate of the 0.99 quantile of backlog seen by arriving
    messages; [nan] before any arrival. *)

val arrival_depth_histogram : t -> Lopc_stats.Histogram.t
(** Histogram of backlog seen by arriving messages. *)

val depth_samples : t -> Reservoir.t
(** Decimated [(time, depth)] samples of arrival backlog. *)
