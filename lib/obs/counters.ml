(* Process-wide robustness counters: how often the degradation cascade
   fell back, failed outright, or a budget stopped a computation. Plain
   monotone atomics — cheap enough to bump from any domain, read by the
   CLI / bench reporting after a run. Counters are observability, never
   control flow: nothing reads them to make a decision, so they do not
   compromise determinism of results even though their totals depend on
   scheduling when runs overlap. *)

type t = {
  degradations : int Atomic.t;  (* cascade stages that fell through *)
  cascade_failures : int Atomic.t;  (* cascades with no surviving stage *)
  exhaustions : int Atomic.t;  (* budget stops observed (fuel or cancel) *)
}

let create () =
  {
    degradations = Atomic.make 0;
    cascade_failures = Atomic.make 0;
    exhaustions = Atomic.make 0;
  }

(* One shared instance: the cascade sites are spread across artifacts and
   the CLI, and the interesting number is the per-process total. *)
let global = create ()

let record_degradation t = Atomic.incr t.degradations

let record_cascade_failure t = Atomic.incr t.cascade_failures

let record_exhaustion t = Atomic.incr t.exhaustions

let degradations t = Atomic.get t.degradations

let cascade_failures t = Atomic.get t.cascade_failures

let exhaustions t = Atomic.get t.exhaustions

let reset t =
  Atomic.set t.degradations 0;
  Atomic.set t.cascade_failures 0;
  Atomic.set t.exhaustions 0

let summary t =
  Printf.sprintf "degradations=%d cascade_failures=%d exhaustions=%d"
    (degradations t) (cascade_failures t) (exhaustions t)
