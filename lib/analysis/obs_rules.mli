(** Observability wall-clock ban (typed, interprocedural).

    No definition reachable from the observability layer (any definition
    whose source lives under an entry directory, [lib/obs] by default) may
    reference a wall clock ([Sys.time], [Unix.gettimeofday], [Unix.time]).
    Trace timestamps must come from the simulated clock only — that is
    what keeps trace files byte-identical across runs and across [--jobs]
    settings. Findings carry the reachability chain from the observability
    definition that first discovered the clock. *)

val rule_id : string

val severity : Finding.severity

val summary : string

type config = { entry_dirs : string list }

val default_config : config

val check : ?config:config -> Callgraph.t -> Finding.t list
