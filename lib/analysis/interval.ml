(* The numeric stage's abstract domain: closed float intervals with an
   explicit may-be-NaN bit. Soundness of the transfer functions rests on
   IEEE rounding being monotone: for a monotone-in-each-argument real
   operation, evaluating the float operation at the interval corners
   brackets every concrete float result, so no directed rounding is
   needed. The corner cases that produce NaN concretely (inf - inf,
   0 * inf, 0/0, inf/inf) are detected and folded into the [nan] flag. *)

type t = { range : (float * float) option; nan : bool }

let bot = { range = None; nan = false }
let top = { range = Some (neg_infinity, infinity); nan = true }
let nan_only = { range = None; nan = true }

let v lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.v: bounds must be ordered and not NaN";
  { range = Some (lo, hi); nan = false }

let const c =
  if Float.is_nan c then nan_only else { range = Some (c, c); nan = false }

let is_bot t = (match t.range with None -> true | Some _ -> false) && not t.nan

let is_top t =
  t.nan
  &&
  match t.range with
  | Some (lo, hi) -> Float.equal lo neg_infinity && Float.equal hi infinity
  | None -> false

let equal a b =
  Bool.equal a.nan b.nan
  &&
  match (a.range, b.range) with
  | None, None -> true
  | Some (al, ah), Some (bl, bh) -> Float.equal al bl && Float.equal ah bh
  | None, Some _ | Some _, None -> false

let leq a b =
  (not a.nan || b.nan)
  &&
  match (a.range, b.range) with
  | None, _ -> true
  | Some _, None -> false
  | Some (al, ah), Some (bl, bh) -> bl <= al && ah <= bh

let join a b =
  let nan = a.nan || b.nan in
  match (a.range, b.range) with
  | None, r | r, None -> { range = r; nan }
  | Some (al, ah), Some (bl, bh) ->
    { range = Some (Float.min al bl, Float.max ah bh); nan }

let meet a b =
  let nan = a.nan && b.nan in
  match (a.range, b.range) with
  | None, _ | _, None -> { range = None; nan }
  | Some (al, ah), Some (bl, bh) ->
    let lo = Float.max al bl and hi = Float.min ah bh in
    { range = (if lo > hi then None else Some (lo, hi)); nan }

(* Fixed thresholds bound the number of distinct values a widened bound
   can take, so chaotic iteration with [widen] always terminates. The
   model-relevant landmarks are 0 (costs, rates) and 1 (probabilities,
   utilisations). *)
let lo_thresholds = [ 1.; 0.; -1.; neg_infinity ]
let hi_thresholds = [ -1.; 0.; 1.; infinity ]

let widen old next =
  let nan = old.nan || next.nan in
  match (old.range, next.range) with
  | None, r | r, None -> { range = r; nan }
  | Some (ol, oh), Some (nl, nh) ->
    let lo = if nl < ol then List.find (fun th -> th <= nl) lo_thresholds else ol in
    let hi = if nh > oh then List.find (fun th -> th >= nh) hi_thresholds else oh in
    { range = Some (lo, hi); nan }

let mem x t =
  if Float.is_nan x then t.nan
  else match t.range with Some (lo, hi) -> lo <= x && x <= hi | None -> false

let contains_zero t =
  match t.range with Some (lo, hi) -> lo <= 0. && 0. <= hi | None -> false

let may_negative t = match t.range with Some (lo, _) -> lo < 0. | None -> false
let may_nan t = t.nan

let may_pos_inf t =
  match t.range with Some (_, hi) -> Float.equal hi infinity | None -> false

let may_neg_inf t =
  match t.range with Some (lo, _) -> Float.equal lo neg_infinity | None -> false

let may_inf t = may_pos_inf t || may_neg_inf t

(* Hull of the non-NaN corner values; a NaN corner means some attainable
   endpoint combination produces NaN concretely, so it sets the flag. *)
let of_corners ~nan corners =
  let reals = List.filter (fun c -> not (Float.is_nan c)) corners in
  let nan = nan || List.exists Float.is_nan corners in
  match reals with
  | [] -> { range = None; nan }
  | c :: rest ->
    let lo = List.fold_left Float.min c rest
    and hi = List.fold_left Float.max c rest in
    { range = Some (lo, hi); nan }

(* Binary transfer skeleton: bottom is absorbing; an operand that is
   NaN-only poisons the result to NaN-only. *)
let lift2 f a b =
  if is_bot a || is_bot b then bot
  else
    match (a.range, b.range) with
    | None, _ | _, None -> nan_only
    | Some ra, Some rb -> f ~nan:(a.nan || b.nan) ra rb

let lift1 f a =
  if is_bot a then bot
  else match a.range with None -> nan_only | Some r -> f ~nan:a.nan r

let neg =
  lift1 (fun ~nan (lo, hi) -> { range = Some (-.hi, -.lo); nan })

let abs =
  lift1 (fun ~nan (lo, hi) ->
      if lo >= 0. then { range = Some (lo, hi); nan }
      else if hi <= 0. then { range = Some (-.hi, -.lo); nan }
      else { range = Some (0., Float.max (-.lo) hi); nan })

let add =
  lift2 (fun ~nan (al, ah) (bl, bh) ->
      of_corners ~nan [ al +. bl; al +. bh; ah +. bl; ah +. bh ])

let sub =
  lift2 (fun ~nan (al, ah) (bl, bh) ->
      of_corners ~nan [ al -. bl; al -. bh; ah -. bl; ah -. bh ])

let mul a b =
  lift2
    (fun ~nan (al, ah) (bl, bh) ->
      (* 0 * inf can arise with 0 in the interior, which corners miss. *)
      let nan =
        nan
        || (contains_zero a && may_inf b)
        || (contains_zero b && may_inf a)
      in
      (* A corner like 0 * inf evaluates to NaN and drops out of the hull,
         but zero-times-finite products of interior members are real: for
         [-0,-0] * [-inf,inf] every corner is NaN while -0. *. 1. is -0.
         Whenever one operand admits 0 and the other a finite value, 0 is
         an attainable product, so pin it into the hull explicitly. *)
      let has_finite lo hi = lo < hi || Float.is_finite lo in
      let corners = [ al *. bl; al *. bh; ah *. bl; ah *. bh ] in
      let corners =
        if
          (contains_zero a && has_finite bl bh)
          || (contains_zero b && has_finite al ah)
        then 0. :: corners
        else corners
      in
      of_corners ~nan corners)
    a b

let div a b =
  lift2
    (fun ~nan (al, ah) (bl, bh) ->
      if contains_zero b then
        (* x / ±0 jumps to ±inf on either side of the pole, so the hull is
           the full line; 0/0 (and inf/inf if both admit it) is NaN. *)
        {
          range = Some (neg_infinity, infinity);
          nan = nan || contains_zero a || (may_inf a && may_inf b);
        }
      else
        let nan = nan || (may_inf a && may_inf b) in
        of_corners ~nan [ al /. bl; al /. bh; ah /. bl; ah /. bh ])
    a b

let min_ =
  lift2 (fun ~nan (al, ah) (bl, bh) ->
      { range = Some (Float.min al bl, Float.min ah bh); nan })

let max_ =
  lift2 (fun ~nan (al, ah) (bl, bh) ->
      { range = Some (Float.max al bl, Float.max ah bh); nan })

let sqrt_ =
  lift1 (fun ~nan (lo, hi) ->
      if hi < 0. then { range = None; nan = true }
      else
        let nan = nan || lo < 0. in
        { range = Some (sqrt (Float.max lo 0.), sqrt hi); nan })

let exp_ = lift1 (fun ~nan (lo, hi) -> { range = Some (exp lo, exp hi); nan })

let refine t ~cmp ~bound ~int_typed ~keep_nan =
  if Float.is_nan bound then (* x cmp NaN never holds *)
    if keep_nan then { range = None; nan = t.nan } else bot
  else
    let strict_below b = if int_typed then b -. 1. else Float.pred b in
    let strict_above b = if int_typed then b +. 1. else Float.succ b in
    let half =
      match cmp with
      | `Lt ->
        let hi = strict_below bound in
        if Float.is_nan hi then None else Some (neg_infinity, hi)
      | `Le -> Some (neg_infinity, bound)
      | `Gt ->
        let lo = strict_above bound in
        if Float.is_nan lo then None else Some (lo, infinity)
      | `Ge -> Some (bound, infinity)
      | `Eq -> Some (bound, bound)
    in
    meet t { range = half; nan = keep_nan }

let to_string t =
  if is_bot t then "_|_"
  else if is_top t then "top"
  else
    match t.range with
    | None -> "NaN"
    | Some (lo, hi) ->
      Printf.sprintf "[%g, %g]%s" lo hi (if t.nan then " or-NaN" else "")
