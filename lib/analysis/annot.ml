(* Parsing of the [@lopc.*] numeric-contract attributes. These live in
   the same namespaced-attribute family as [@lint.allow]: the compiler
   ignores them, the absint stage reads them from label declarations and
   parameter patterns in the typed tree. *)

type t = Prob | Cost | Range of float * float | Unit of string

let string_payload = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

let range_of_payload s =
  match String.split_on_char ' ' (String.trim s) with
  | [ lo; hi ] -> (
    match (float_of_string_opt lo, float_of_string_opt hi) with
    | Some lo, Some hi when lo <= hi && not (Float.is_nan lo || Float.is_nan hi)
      ->
      Some (Range (lo, hi))
    | _ -> None)
  | _ -> None

let of_attribute (a : Parsetree.attribute) =
  match a.attr_name.txt with
  | "lopc.prob" -> Some Prob
  | "lopc.cost" -> Some Cost
  | "lopc.range" -> Option.bind (string_payload a.attr_payload) range_of_payload
  | "lopc.unit" ->
    Option.map (fun u -> Unit u) (string_payload a.attr_payload)
  | _ -> None

let of_attributes attrs = List.filter_map of_attribute attrs

let interval = function
  | Prob -> Some (Interval.v 0. 1.)
  | Cost -> Some (Interval.v 0. infinity)
  | Range (lo, hi) -> Some (Interval.v lo hi)
  | Unit _ -> None

let rule_id = function
  | Prob -> "probability-range"
  | Cost -> "negative-cost"
  | Range (lo, hi) ->
    (* Generic ranges report under the closest blessed rule: a range
       inside [0, 1] is probability-like, otherwise sign-like. *)
    if lo >= 0. && hi <= 1. then "probability-range" else "negative-cost"
  | Unit _ -> "unit-mismatch"

let unit_of annots =
  List.find_map (function Unit u -> Some u | _ -> None) annots

let describe = function
  | Prob -> "a probability in [0, 1]"
  | Cost -> "a non-negative cost"
  | Range (lo, hi) -> Printf.sprintf "in range [%g, %g]" lo hi
  | Unit u -> Printf.sprintf "in unit %S" u
