(* Stage 2 of the linter: load typed trees, build the call graph, run the
   interprocedural rules, and filter suppressions by re-reading the
   [@lint.allow] attributes of whichever source files the findings point
   into. Stage 1 (driver.ml) never sees .cmt files; this module never
   parses untyped sources except to recover suppression regions. *)

exception No_cmt_inputs of string list

let catalogue =
  [
    (Taint_rules.rule_id, Taint_rules.severity, Taint_rules.summary);
    (Exn_rules.rule_id, Exn_rules.severity, Exn_rules.summary);
    (Stream_rules.rule_id, Stream_rules.severity, Stream_rules.summary);
    (Par_rules.rule_id, Par_rules.severity, Par_rules.summary);
    (Obs_rules.rule_id, Obs_rules.severity, Obs_rules.summary);
    (Retry_rules.rule_id, Retry_rules.severity, Retry_rules.summary);
  ]
  @ Race_rules.catalogue @ Numeric_rules.catalogue

let analyze_units ?(entries = []) ?(stage = `All) units =
  let graph = Callgraph.build units in
  let taint_config = { Taint_rules.default_config with entries } in
  let findings =
    match stage with
    | `Numeric -> Numeric_rules.check graph
    | `All ->
      let effects = Effects.analyze graph in
      Taint_rules.check ~config:taint_config graph
      @ Exn_rules.check graph @ Stream_rules.check graph
      @ Par_rules.check graph @ Obs_rules.check graph
      @ Retry_rules.check ~config:{ Retry_rules.default_config with entries } graph
      @ Race_rules.check effects
      @ Numeric_rules.check graph
  in
  (* Suppression regions come from the sources the findings point into;
     cache per file since many findings share one. *)
  let regions_cache = Hashtbl.create 8 in
  let regions_for file =
    match Hashtbl.find_opt regions_cache file with
    | Some r -> r
    | None ->
      let r = Suppress.regions_of_file file in
      Hashtbl.add regions_cache file r;
      r
  in
  findings
  |> List.filter (fun f -> not (Suppress.suppressed (regions_for (Finding.file f)) f))
  |> List.sort_uniq Finding.compare

(* Accept either _build paths or plain source roots: when a root holds no
   .cmt files directly, look for its compiled image under _build/default
   so `lopc_lint --typed lib` works from the repository root. *)
let effective_root root =
  if Cmt_loader.cmt_files [ root ] <> [] then root
  else
    let built = Filename.concat (Filename.concat "_build" "default") root in
    if Sys.file_exists built then built else root

let units_of_paths roots =
  let roots = List.map effective_root roots in
  if Cmt_loader.cmt_files roots = [] then raise (No_cmt_inputs roots);
  Cmt_loader.load roots

let analyze_paths ?entries ?stage roots =
  analyze_units ?entries ?stage (units_of_paths roots)

let effects_of_paths roots =
  Effects.analyze (Callgraph.build (units_of_paths roots))

let absint_of_paths roots =
  Absint.analyze (Callgraph.build (units_of_paths roots))
