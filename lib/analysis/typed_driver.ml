(* Stage 2 of the linter: load typed trees, build the call graph, run the
   interprocedural rules, and filter suppressions by re-reading the
   [@lint.allow] attributes of whichever source files the findings point
   into. Stage 1 (driver.ml) never sees .cmt files; this module never
   parses untyped sources except to recover suppression regions. *)

let catalogue =
  [
    (Taint_rules.rule_id, Taint_rules.severity, Taint_rules.summary);
    (Exn_rules.rule_id, Exn_rules.severity, Exn_rules.summary);
    (Stream_rules.rule_id, Stream_rules.severity, Stream_rules.summary);
    (Par_rules.rule_id, Par_rules.severity, Par_rules.summary);
    (Obs_rules.rule_id, Obs_rules.severity, Obs_rules.summary);
  ]

let analyze_units ?(entries = []) units =
  let graph = Callgraph.build units in
  let taint_config = { Taint_rules.default_config with entries } in
  let findings =
    Taint_rules.check ~config:taint_config graph
    @ Exn_rules.check graph @ Stream_rules.check graph @ Par_rules.check graph
    @ Obs_rules.check graph
  in
  (* Suppression regions come from the sources the findings point into;
     cache per file since many findings share one. *)
  let regions_cache = Hashtbl.create 8 in
  let regions_for file =
    match Hashtbl.find_opt regions_cache file with
    | Some r -> r
    | None ->
      let r = Suppress.regions_of_file file in
      Hashtbl.add regions_cache file r;
      r
  in
  findings
  |> List.filter (fun f -> not (Suppress.suppressed (regions_for (Finding.file f)) f))
  |> List.sort_uniq Finding.compare

let analyze_paths ?entries roots =
  (* Accept either _build paths or plain source roots: when a root holds no
     .cmt files directly, look for its compiled image under _build/default
     so `lopc_lint --typed lib` works from the repository root. *)
  let effective root =
    if Cmt_loader.cmt_files [ root ] <> [] then root
    else
      let built = Filename.concat (Filename.concat "_build" "default") root in
      if Sys.file_exists built then built else root
  in
  let units = Cmt_loader.load (List.map effective roots) in
  analyze_units ?entries units
