type unit_info = {
  modname : string;  (* compilation unit name, e.g. "Lopc_markov__Ctmc" *)
  base : string;  (* user-facing module name, e.g. "Ctmc" *)
  source : string;  (* source path as recorded at compile time *)
  structure : Typedtree.structure;
}

(* "Lopc_markov__Ctmc" -> "Ctmc"; dune mangles wrapped-library and
   executable units as <prefix>__<Module>. *)
let base_of_modname m =
  let n = String.length m in
  let rec scan i =
    if i < 0 then None
    else if i + 1 < n && m.[i] = '_' && m.[i + 1] = '_' then Some (i + 2)
    else scan (i - 1)
  in
  match scan (n - 2) with Some j -> String.sub m j (n - j) | None -> m

(* "Lopc_markov__Ctmc" -> Some "Lopc_markov": the generated wrapper module
   whose fields alias the real units. References through the wrapper
   ("Lopc_markov.Ctmc.solve") are normalised by dropping it. *)
let wrapper_of_modname m =
  let n = String.length m in
  let rec scan i =
    if i < 0 then None
    else if i + 1 < n && m.[i] = '_' && m.[i + 1] = '_' then Some i
    else scan (i - 1)
  in
  match scan (n - 2) with Some j when j > 0 -> Some (String.sub m 0 j) | _ -> None

let of_implementation ~modname ~source structure =
  { modname; base = base_of_modname modname; source; structure }

let read_cmt path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Implementation structure; cmt_modname; cmt_sourcefile; _ } ->
    Some
      (of_implementation ~modname:cmt_modname
         ~source:(Option.value cmt_sourcefile ~default:path)
         structure)
  | _ -> None
  | exception _ -> None

(* Depth-first listing of every .cmt under [roots] (dot-directories such as
   dune's .objs included), sorted for stable unit ordering. *)
let cmt_files roots =
  let acc = ref [] in
  let rec visit path =
    match Sys.is_directory path with
    | true ->
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry -> visit (Filename.concat path entry))
    | false -> if Filename.check_suffix path ".cmt" then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  List.iter visit (List.filter Sys.file_exists roots);
  List.rev !acc

(* Load every distinct compilation unit under [roots]. Units are
   deduplicated by module name (dune emits one wrapper unit per executable
   directory, all called Dune__exe); the first occurrence in sorted scan
   order wins, so repeated runs see the same set. *)
let load roots =
  let seen = Hashtbl.create 64 in
  cmt_files roots
  |> List.filter_map (fun path ->
         match read_cmt path with
         | Some u when not (Hashtbl.mem seen u.modname) ->
           Hashtbl.add seen u.modname ();
           Some u
         | _ -> None)

let typecheck_initialised = ref false

(* Typecheck a source string against the standard library alone — the
   harness behind the typed-rule test fixtures, which must not depend on a
   pre-existing _build tree. *)
let typecheck_string ~modname ~source contents =
  if not !typecheck_initialised then begin
    typecheck_initialised := true;
    Compmisc.init_path ();
    (* Fixtures are deliberately odd code; compiler warnings about them are
       noise for whoever runs the test binary. *)
    ignore (Warnings.parse_options false "-a")
  end;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf source;
  match Parse.implementation lexbuf with
  | exception exn -> Error ("parse error: " ^ Printexc.to_string exn)
  | parsetree -> (
    match Typemod.type_structure env parsetree with
    | structure, _, _, _, _ -> Ok (of_implementation ~modname ~source structure)
    | exception exn -> Error ("type error: " ^ Printexc.to_string exn))
