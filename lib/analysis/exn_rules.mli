(** Exception escape (typed, interprocedural).

    Every [solve_status] definition — and everything it calls, transitively
    — must be raise-free except for [Invalid_argument] (the documented
    precondition contract) and exceptions that are raised and caught before
    escaping. The analysis computes per-definition escape sets by fixpoint
    over the call graph, subtracting at every call site the exceptions the
    enclosing handlers catch; ["*"] stands for a computed (re-raised)
    exception, which only a wildcard handler removes. Stdlib functions
    outside a known raising list are assumed non-raising, and implicit
    bounds/assert failures are out of scope (documented approximations).
    Findings carry a witness chain ending at the raise site. *)

val rule_id : string

val severity : Finding.severity

val summary : string

type config = {
  entry_names : string list;
      (** definitions checked for the non-raising contract *)
  allowed : string list;  (** exceptions the contract permits *)
}

val default_config : config

val check : ?config:config -> Callgraph.t -> Finding.t list
