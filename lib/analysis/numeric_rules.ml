(* Findings adapter for the interval stage: Absint emits raw violations
   tagged with a rule id; this module owns the rule metadata (severity,
   summary, hint) and produces Finding.t values the typed driver can
   merge, suppress and sort like any other rule's. *)

let probability_range = "probability-range"
let negative_cost = "negative-cost"
let division_by_vanishing = "division-by-vanishing"
let unit_mismatch = "unit-mismatch"

let catalogue =
  [
    ( probability_range,
      Finding.Error,
      "a value flowing into a [@lopc.prob]-annotated parameter, field or \
       binding may lie outside [0, 1]" );
    ( negative_cost,
      Finding.Error,
      "a value flowing into a [@lopc.cost]-annotated parameter, field or \
       binding may be negative (or NaN)" );
    ( division_by_vanishing,
      Finding.Warning,
      "a subtraction-shaped denominator (the 1 - u family) whose interval \
       contains 0, with no dominating guard on this path" );
    ( unit_mismatch,
      Finding.Error,
      "two quantities with different [@lopc.unit] tags are mixed additively" );
  ]

let hint_of = function
  | rule when String.equal rule probability_range ->
    "clamp or validate the value before it reaches the annotated slot (e.g. \
     guard with 0. <= q && q <= 1., or Float.min 1. (Float.max 0. q)); if the \
     range is enforced elsewhere, suppress with [@lint.allow \
     \"probability-range\" \"why\"]"
  | rule when String.equal rule negative_cost ->
    "guard the expression to be >= 0 (validate at the boundary, or Float.max \
     0.); if non-negativity is enforced elsewhere, suppress with [@lint.allow \
     \"negative-cost\" \"why\"]"
  | rule when String.equal rule division_by_vanishing ->
    "guard the division so the denominator interval excludes 0 on this path \
     (e.g. if u >= 1. then ... else x /. (1. -. u), or divide by Float.max \
     eps (1. -. u)); if saturation is impossible by construction, suppress \
     with [@lint.allow \"division-by-vanishing\" \"why\"]"
  | _ ->
    "convert one side explicitly before mixing units (cycles vs seconds vs \
     dimensionless rates), or fix the [@lopc.unit] annotation"

let severity_of rule =
  match List.find_opt (fun (id, _, _) -> String.equal id rule) catalogue with
  | Some (_, sev, _) -> sev
  | None -> Finding.Warning

let check_absint absint =
  List.map
    (fun (v : Absint.violation) ->
      Finding.v ~rule:v.v_rule ~severity:(severity_of v.v_rule) ~loc:v.v_loc
        ~message:v.v_message ~hint:(hint_of v.v_rule))
    (Absint.check absint)

let check graph = check_absint (Absint.analyze graph)
