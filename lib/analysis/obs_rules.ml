(* Observability wall-clock ban: no definition reachable from the
   observability layer (anything under lib/obs — the recorder, probes and
   emitters) may reach a wall clock. Trace timestamps must be simulated
   cycles only, or traces stop being byte-identical across runs and the
   jobs-independence guarantee (same trace at any --jobs) breaks. Same BFS
   machinery as the determinism taint, restricted to clock sources. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

let rule_id = "obs-no-wallclock"

let severity = Finding.Error

let summary = "a wall clock reachable from the observability layer (lib/obs)"

let hint =
  "timestamp trace events with the simulated clock (Engine.now / the machine's \
   event times) and thread it to the emitter explicitly; wall-clock time makes \
   traces differ run to run and across --jobs"

type config = { entry_dirs : string list }

let default_config = { entry_dirs = [ "lib/obs" ] }

let dir_prefix dir path =
  let n = String.length dir in
  String.length path > n && String.sub path 0 n = dir && path.[n] = '/'

let is_entry config (d : Callgraph.def) =
  List.exists (fun dir -> dir_prefix dir d.Callgraph.source) config.entry_dirs

let wall_clocks = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let check ?(config = default_config) (graph : Callgraph.t) =
  let findings = ref [] in
  let visited = ref SSet.empty in
  let queue = Queue.create () in
  let entries =
    List.filter (is_entry config) graph.defs
    |> List.map (fun (d : Callgraph.def) -> d.key)
    |> List.sort_uniq String.compare
  in
  List.iter (fun k -> Queue.push (k, [ k ]) queue) entries;
  List.iter (fun k -> visited := SSet.add k !visited) entries;
  while not (Queue.is_empty queue) do
    let key, chain = Queue.pop queue in
    match Callgraph.find graph key with
    | None -> ()
    | Some d ->
      List.iter
        (fun (r : Callgraph.ref_site) ->
          if List.mem r.target wall_clocks then begin
            let message =
              Printf.sprintf "the wall clock %s; reachable as %s" r.target
                (String.concat " -> " (List.rev chain))
            in
            findings :=
              Finding.v ~rule:rule_id ~severity ~loc:r.ref_loc ~message ~hint
              :: !findings
          end;
          if SMap.mem r.target graph.by_key && not (SSet.mem r.target !visited)
          then begin
            visited := SSet.add r.target !visited;
            Queue.push (r.target, r.target :: chain) queue
          end)
        d.refs
  done;
  List.rev !findings
