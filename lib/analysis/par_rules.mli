(** Parallel task RNG capture (typed, intraprocedural).

    Tasks handed to [Parallel.run]/[Parallel.map] execute on whichever
    domain steals them; a task that draws from (or splits) a raw [Rng.t]
    captured from the enclosing scope produces values that depend on
    worker scheduling, because the shared generator's state advances in
    completion order. [Parallel.run] is order-insensitive exactly when
    every task draws only from its own pre-split stream — derived
    serially, keyed on the task index — which is the discipline this rule
    enforces: inside any argument of a [Parallel.run]/[map] application, a
    use of a raw [Rng.t] under a lambda whose binder lies outside that
    argument is an error. [Rng.t array] carriers (one element per task)
    are the sanctioned pattern and are not flagged; uses outside any
    lambda run serially at construction time and are also fine. *)

val rule_id : string

val severity : Finding.severity

val summary : string

(** Whether a normalised key is [Parallel.run] or [Parallel.map] — of the
    real [Lopc_repro.Parallel] or of a fixture-local [Parallel] module
    (matched by suffix). Shared with the race rules ({!Race_rules}), so
    "what counts as a parallel entry" has one definition. *)
val is_parallel_runner : string -> bool

(** Every ident bound by any pattern inside the expression — lambda
    parameters and let-bindings alike. *)
val bound_idents : Typedtree.expression -> Ident.t list

val check : Callgraph.t -> Finding.t list
