(** Safety of a type under polymorphic structural compare/equality/hash.

    A type is unsafe when structural comparison of its values is
    order-fragile or replay-hostile: it contains [float] (NaN / signed-zero
    semantics), a type variable (the instantiation is not visible at the
    site), a function (comparison raises), or an abstract/foreign type whose
    representation cannot be expanded through the project's own type
    declarations. Project types are expanded transitively (records,
    variants, abbreviations) through the call graph's type table. *)

(** [unsafe_reason graph ~owner ty] is [Some reason] when [ty] is unsafe,
    [None] when it is provably structural-comparison-safe. [owner] is the
    dotted module context of the use site, used to resolve bare type
    names. *)
val unsafe_reason : Callgraph.t -> owner:string -> Types.type_expr -> string option

(** The domain of a comparison operator's instantiated type (the first
    argument of the arrow), when it is an arrow. *)
val comparison_domain : Types.type_expr -> Types.type_expr option

(** Whether a value of a type is (or contains) shared mutable storage.
    [Shared kind] names the first mutable container found (ref cell,
    array, bytes, hash table, buffer, queue, stack, mutable record),
    expanding project declarations transitively; [Atomic_cell] means the
    only mutability found is [Atomic.t]; [Frozen] is immutable. Function
    types are [Frozen] — closures are classified by what their bodies do
    (see {!Effects}), not by what their environments could hold. *)
type mutability = Frozen | Atomic_cell | Shared of string

val mutability : Callgraph.t -> owner:string -> Types.type_expr -> mutability
