(* RNG stream discipline: a stream returned by Prng.Rng.split is a linear
   resource — drawing from the same child stream at two places couples
   their sequences, which silently breaks bit-for-bit replay the moment one
   consumer's draw count changes. The rule approximates linearity per
   let-binding: a variable bound to the result of [Rng.split] may be
   consumed at most once along any execution path. Uses on the two arms of
   a conditional count as alternatives (max); uses in sequence add; a use
   under a lambda or loop body counts double, because the body may run any
   number of times. Aliasing ([let alias = s in ...]) is itself a use, so
   alias-then-use is flagged. *)

let rule_id = "rng-stream-discipline"

let severity = Finding.Error

let summary = "a stream produced by Rng.split is consumed more than once on some path"

let hint =
  "split once per consumer (each child stream has exactly one owner); re-using or \
   aliasing a child couples draw sequences and silently breaks replay. If the reuse \
   is deliberate, suppress with [@lint.allow \"rng-stream-discipline\" \"why\"]"

(* Does this application produce a fresh stream? Matched on the normalised
   callee key suffix so both [Rng.split] and [Lopc_prng.Rng.split] (and a
   fixture's local [Rng] module) qualify. *)
let is_split_callee key =
  key = "Rng.split"
  ||
  let suffix = ".Rng.split" in
  let n = String.length key and m = String.length (suffix : string) in
  n > m && String.sub key (n - m) m = suffix

(* Maximum number of uses of [id] along any execution path through [e]. *)
let rec max_uses id (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Pident i, _, _) -> if Ident.same i id then 1 else 0
  | Texp_ifthenelse (cond, then_, else_) ->
    max_uses id cond
    + Stdlib.max (max_uses id then_)
        (match else_ with Some e -> max_uses id e | None -> 0)
  | Texp_match (scrut, cases, _) ->
    max_uses id scrut + max_over_cases id cases
  | Texp_try (body, cases) -> Stdlib.max (max_uses id body) (max_over_cases id cases)
  | Texp_function { cases; _ } ->
    (* The closure may be applied any number of times. *)
    2 * max_over_cases id cases
  | Texp_while (cond, body) -> max_uses id cond + (2 * max_uses id body)
  | Texp_for (_, _, lo, hi, _, body) ->
    max_uses id lo + max_uses id hi + (2 * max_uses id body)
  | _ ->
    (* Sequential composition: sum over immediate children. *)
    let acc = ref 0 in
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _sub child -> acc := !acc + max_uses id child);
      }
    in
    Tast_iterator.default_iterator.expr it e;
    !acc

and max_over_cases : type k. Ident.t -> k Typedtree.case list -> int =
 fun id cases ->
  List.fold_left
    (fun acc (c : _ Typedtree.case) ->
      let g = match c.c_guard with Some g -> max_uses id g | None -> 0 in
      Stdlib.max acc (g + max_uses id c.c_rhs))
    0 cases

(* All textual use sites of [id], for the finding message. *)
let use_sites id (e : Typedtree.expression) =
  let sites = ref [] in
  let rec walk (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Pident i, lid, _) when Ident.same i id -> sites := lid.loc :: !sites
    | _ -> ());
    let it = { Tast_iterator.default_iterator with expr = (fun _sub c -> walk c) } in
    Tast_iterator.default_iterator.expr it e
  in
  walk e;
  List.rev !sites

let check_def ~normalize_key (d : Callgraph.def) =
  match d.Callgraph.body with
  | None -> []
  | Some body ->
    let findings = ref [] in
    let rec walk (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_let (Nonrecursive, vbs, cont) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | ( Tpat_var (id, name),
                Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, _) )
              when is_split_callee (normalize_key path) ->
              let uses = max_uses id cont in
              if uses >= 2 then begin
                let lines =
                  use_sites id cont
                  |> List.map (fun (l : Location.t) ->
                         string_of_int l.loc_start.pos_lnum)
                in
                let message =
                  Printf.sprintf
                    "stream `%s` (from %s) is consumed %d times along one path in %s \
                     (uses at line%s %s); each split child must have exactly one \
                     consumer"
                    name.txt
                    (normalize_key path) uses d.Callgraph.key
                    (if List.length lines = 1 then "" else "s")
                    (String.concat ", " lines)
                in
                findings :=
                  Finding.v ~rule:rule_id ~severity ~loc:vb.vb_loc ~message ~hint
                  :: !findings
              end
            | _ -> ())
          vbs
      | _ -> ());
      let it = { Tast_iterator.default_iterator with expr = (fun _sub c -> walk c) } in
      Tast_iterator.default_iterator.expr it e
    in
    walk body;
    List.rev !findings

let check (graph : Callgraph.t) =
  let normalize_key path =
    Callgraph.key_of
      (Callgraph.normalize ~wrappers:graph.Callgraph.wrappers
         ~aliases:Callgraph.SMap.empty (Callgraph.flatten_path path))
  in
  List.concat_map (check_def ~normalize_key) graph.defs
