(* A project-wide call graph built from typed trees.

   Nodes are top-level value bindings (including bindings inside nested
   modules), keyed by a normalised dotted name such as "Amva.solve_status".
   Normalisation erases the three ways the same global can be spelled —
   through the dune wrapper module ("Lopc_mva.Station.validate"), through
   the mangled unit name ("Lopc_mva__Station.validate"), or through a local
   module alias ("module S = Lopc_mva.Station") — so cross-module edges
   resolve no matter how the source wrote the reference.

   Each node records every global reference in its body (with the
   instantiated type at the use site and the exception handlers enclosing
   it) and every textual raise site. The three typed rules — determinism
   taint, exception escape, RNG stream discipline — are all graph walks
   over this structure. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module IMap = Map.Make (Ident)

type ref_site = {
  target : string;  (* normalised dotted key of the referenced value *)
  ref_loc : Location.t;
  typ : Types.type_expr;  (* instantiated type at the reference *)
  caught : string list;  (* exn constructor names handled around the site; "*" = all *)
}

type raise_site = {
  exn : string;  (* constructor base name; "*" when raising a computed exn *)
  written : string;  (* as written in the source, for messages *)
  raise_loc : Location.t;
  raise_caught : string list;
}

type def = {
  key : string;
  def_name : string;
  source : string;
  unit_base : string;
  def_loc : Location.t;
  refs : ref_site list;  (* in source order *)
  raises : raise_site list;
  body : Typedtree.expression option;
}

type t = {
  defs : def list;  (* deterministic unit-then-source order *)
  by_key : def SMap.t;  (* first binding of a key wins *)
  types_by_key : Types.type_declaration SMap.t;  (* "Station.t" -> declaration *)
  wrappers : SSet.t;
  idents : string IMap.t;  (* toplevel binding ident -> its key, all units *)
}

(* ------------------------------------------------------------------ *)
(* Path normalisation                                                  *)
(* ------------------------------------------------------------------ *)

let rec flatten_path (p : Path.t) =
  match p with
  | Pident id -> [ Ident.name id ]
  | Pdot (p, s) -> flatten_path p @ [ s ]
  | Papply (p, _) -> flatten_path p
  | Pextra_ty (p, _) -> flatten_path p

(* [aliases] maps a local module name to its already-normalised target
   segments; [wrappers] is the set of dune wrapper-module names. *)
let normalize ~wrappers ~aliases segments =
  let rec fix segments =
    match segments with
    | [] -> []
    | "Stdlib" :: rest when rest <> [] -> fix rest
    | head :: rest -> (
      let head' = Cmt_loader.base_of_modname head in
      if head' <> head then fix (head' :: rest)
      else if SSet.mem head wrappers && rest <> [] then fix rest
      else
        match SMap.find_opt head aliases with
        | Some target when rest <> [] -> target @ rest
        | _ -> segments)
  in
  fix segments

let key_of segments = String.concat "." segments

(* ------------------------------------------------------------------ *)
(* Pass 1: definition shells, module aliases, type declarations        *)
(* ------------------------------------------------------------------ *)

(* Variables bound by a pattern, outermost first. *)
let rec pattern_vars : type k. k Typedtree.general_pattern -> (Ident.t * string) list =
 fun pat ->
  match pat.pat_desc with
  | Tpat_var (id, name) -> [ (id, name.txt) ]
  | Tpat_alias (p, id, name) -> (id, name.txt) :: pattern_vars p
  | Tpat_tuple ps -> List.concat_map pattern_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pattern_vars ps
  | Tpat_record (fields, _) -> List.concat_map (fun (_, _, p) -> pattern_vars p) fields
  | Tpat_array ps -> List.concat_map pattern_vars ps
  | Tpat_lazy p -> pattern_vars p
  | Tpat_or (a, b, _) -> pattern_vars a @ pattern_vars b
  | Tpat_variant (_, Some p, _) -> pattern_vars p
  | Tpat_value p -> pattern_vars (p :> Typedtree.value Typedtree.general_pattern)
  | _ -> []

type shell = {
  s_key : string;
  s_name : string;
  s_loc : Location.t;
  s_expr : Typedtree.expression;
  s_idents : Ident.t list;  (* all idents this binding introduces *)
}

(* Collect, for one unit: binding shells (prefix-qualified), the ident->key
   resolution map for same-unit references, local module aliases, and type
   declarations. *)
let scan_unit (u : Cmt_loader.unit_info) ~wrappers =
  let shells = ref [] in
  let ident_keys = ref [] in
  let aliases = ref SMap.empty in
  let types = ref [] in
  let init_count = ref 0 in
  let rec scan_items prefix items =
    List.iter (fun (item : Typedtree.structure_item) -> scan_item prefix item) items
  and scan_item prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match pattern_vars vb.vb_pat with
          | [] ->
            (* [let () = ...] module initialisation: still a node, so entry
               directories cover their side-effecting toplevel code. *)
            incr init_count;
            let name = Printf.sprintf "(init-%d)" !init_count in
            shells :=
              {
                s_key = prefix ^ name;
                s_name = name;
                s_loc = vb.vb_loc;
                s_expr = vb.vb_expr;
                s_idents = [];
              }
              :: !shells
          | (_, first) :: _ as vars ->
            let key = prefix ^ first in
            let idents = List.map fst vars in
            List.iter (fun (id, _) -> ident_keys := (id, key) :: !ident_keys) vars;
            shells :=
              {
                s_key = key;
                s_name = first;
                s_loc = vb.vb_loc;
                s_expr = vb.vb_expr;
                s_idents = idents;
              }
              :: !shells)
        vbs
    | Tstr_module mb -> scan_module prefix mb
    | Tstr_recmodule mbs -> List.iter (scan_module prefix) mbs
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          types := (prefix ^ d.typ_name.txt, d.typ_type) :: !types)
        decls
    | _ -> ()
  and scan_module prefix (mb : Typedtree.module_binding) =
    let name = match mb.mb_id with Some id -> Some (Ident.name id) | None -> None in
    match name with
    | None -> ()
    | Some name -> (
      let rec strip (me : Typedtree.module_expr) =
        match me.mod_desc with
        | Tmod_constraint (me, _, _, _) -> strip me
        | desc -> desc
      in
      match strip mb.mb_expr with
      | Tmod_ident (path, _) ->
        let target = normalize ~wrappers ~aliases:!aliases (flatten_path path) in
        aliases := SMap.add name target !aliases
      | Tmod_structure str -> scan_items (prefix ^ name ^ ".") str.str_items
      | Tmod_functor (_, body) -> (
        (* Definitions inside a functor body are ordinary nodes (their
           references to the functor parameter roll up as unresolved
           locals). Applications of the functor are not expanded: a
           reference through [F(M).g] keeps its own normalised key with
           no definition behind it, which every graph walk tolerates. *)
        match strip body with
        | Tmod_structure str -> scan_items (prefix ^ name ^ ".") str.str_items
        | _ -> ())
      | _ -> ())
  in
  scan_items (u.base ^ ".") u.structure.str_items;
  (List.rev !shells, !ident_keys, !aliases, List.rev !types)

(* ------------------------------------------------------------------ *)
(* Pass 2: reference and raise collection per definition               *)
(* ------------------------------------------------------------------ *)

let is_internal_name n = String.length n > 0 && n.[0] = '*'

(* Exception constructor names matched by a handler pattern; "*" for
   patterns that catch everything. *)
let rec handler_names : type k. k Typedtree.general_pattern -> string list =
 fun pat ->
  match pat.pat_desc with
  | Tpat_construct (lid, _, _, _) -> (
    match List.rev (Longident.flatten lid.txt) with last :: _ -> [ last ] | [] -> [])
  | Tpat_or (a, b, _) -> handler_names a @ handler_names b
  | Tpat_alias (p, _, _) -> handler_names p
  | Tpat_value p -> handler_names (p :> Typedtree.value Typedtree.general_pattern)
  | Tpat_exception p -> handler_names p
  | _ -> [ "*" ]

(* Exception names caught by the exception cases of a [match]. *)
let match_exception_names cases =
  List.concat_map
    (fun (c : Typedtree.computation Typedtree.case) ->
      let rec exn_parts : Typedtree.computation Typedtree.general_pattern -> string list
          =
       fun pat ->
        match pat.pat_desc with
        | Tpat_exception p -> handler_names p
        | Tpat_or (a, b, _) -> exn_parts a @ exn_parts b
        | _ -> []
      in
      exn_parts c.c_lhs)
    cases

let collect_body ~resolve_ident ~normalize_segs (expr : Typedtree.expression) =
  let refs = ref [] in
  let raises = ref [] in
  let record_ref caught (e : Typedtree.expression) path (lid : _ Location.loc) =
    let segments = flatten_path path in
    match segments with
    | [ n ] when is_internal_name n -> ()
    | _ ->
      let target =
        match path with
        | Path.Pident id -> (
          match resolve_ident id with
          | Some key -> Some key
          | None -> None (* locals roll up into the enclosing definition *))
        | _ -> Some (key_of (normalize_segs segments))
      in
      (match target with
      | Some target when not lid.loc.Location.loc_ghost ->
        refs := { target; ref_loc = lid.loc; typ = e.exp_type; caught } :: !refs
      | _ -> ())
  in
  let rec walk caught (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (path, lid, _) -> record_ref caught e path lid
    | Texp_try (body, cases) ->
      let caught' =
        List.concat_map (fun (c : _ Typedtree.case) -> handler_names c.c_lhs) cases
        @ caught
      in
      walk caught' body;
      List.iter
        (fun (c : _ Typedtree.case) ->
          Option.iter (walk caught) c.c_guard;
          walk caught c.c_rhs)
        cases
    | Texp_match (scrut, cases, _) ->
      let caught' = match_exception_names cases @ caught in
      walk caught' scrut;
      List.iter
        (fun (c : _ Typedtree.case) ->
          Option.iter (walk caught) c.c_guard;
          walk caught c.c_rhs)
        cases
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as f), args)
      when match key_of (normalize_segs (flatten_path p)) with
           | "raise" | "raise_notrace" -> true
           | _ -> false -> (
      (* Keep the reference to raise itself (harmless) and record the site. *)
      (match f.exp_desc with
      | Texp_ident (path, lid, _) -> record_ref caught f path lid
      | _ -> ());
      match args with
      | [ (_, Some arg) ] -> (
        match arg.exp_desc with
        | Texp_construct (lid, _, payload) ->
          let written = String.concat "." (Longident.flatten lid.txt) in
          let exn =
            match List.rev (Longident.flatten lid.txt) with
            | last :: _ -> last
            | [] -> "*"
          in
          raises :=
            { exn; written; raise_loc = lid.loc; raise_caught = caught } :: !raises;
          List.iter (walk caught) payload
        | _ ->
          raises :=
            {
              exn = "*";
              written = "a computed exception";
              raise_loc = arg.exp_loc;
              raise_caught = caught;
            }
            :: !raises;
          walk caught arg)
      | args -> List.iter (fun (_, a) -> Option.iter (walk caught) a) args)
    | _ ->
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _sub child -> walk caught child);
        }
      in
      Tast_iterator.default_iterator.expr it e
  in
  walk [] expr;
  (List.rev !refs, List.rev !raises)

(* ------------------------------------------------------------------ *)
(* Graph assembly                                                      *)
(* ------------------------------------------------------------------ *)

let build (units : Cmt_loader.unit_info list) =
  let wrappers =
    List.fold_left
      (fun acc (u : Cmt_loader.unit_info) ->
        match Cmt_loader.wrapper_of_modname u.modname with
        | Some w -> SSet.add w acc
        | None -> acc)
      SSet.empty units
  in
  let scanned = List.map (fun u -> (u, scan_unit u ~wrappers)) units in
  let types_by_key =
    List.fold_left
      (fun acc (_, (_, _, _, types)) ->
        List.fold_left
          (fun acc (k, d) -> if SMap.mem k acc then acc else SMap.add k d acc)
          acc types)
      SMap.empty scanned
  in
  let defs =
    List.concat_map
      (fun ((u : Cmt_loader.unit_info), (shells, ident_keys, aliases, _)) ->
        let resolve_ident id =
          List.find_map
            (fun (id', key) -> if Ident.same id id' then Some key else None)
            ident_keys
        in
        let normalize_segs = normalize ~wrappers ~aliases in
        List.map
          (fun s ->
            let refs, raises = collect_body ~resolve_ident ~normalize_segs s.s_expr in
            {
              key = s.s_key;
              def_name = s.s_name;
              source = u.source;
              unit_base = u.base;
              def_loc = s.s_loc;
              refs;
              raises;
              body = Some s.s_expr;
            })
          shells)
      scanned
  in
  let by_key =
    List.fold_left
      (fun acc d -> if SMap.mem d.key acc then acc else SMap.add d.key d acc)
      SMap.empty defs
  in
  let idents =
    List.fold_left
      (fun acc (_, (_, ident_keys, _, _)) ->
        List.fold_left (fun acc (id, key) -> IMap.add id key acc) acc ident_keys)
      IMap.empty scanned
  in
  { defs; by_key; types_by_key; wrappers; idents }

let find t key = SMap.find_opt key t.by_key

let resolve_ident t id = IMap.find_opt id t.idents

(* Normalised key of a reference path outside any local-alias context: the
   cross-unit spelling rules only (wrapper modules, [Stdlib], mangling). *)
let normalize_path t path =
  key_of (normalize ~wrappers:t.wrappers ~aliases:SMap.empty (flatten_path path))

(* Resolve a type path seen at a use site to its project declaration.
   [owner] is the dotted module context of the site (or of the declaration
   being expanded), so bare [Pident] type names resolve within their own
   module first. Returns the resolved key so recursive expansion can update
   its owner. *)
let find_type t ~owner segments =
  let segments = normalize ~wrappers:t.wrappers ~aliases:SMap.empty segments in
  let candidates =
    match segments with
    | [ n ] -> [ owner ^ "." ^ n; n ]
    | _ -> [ key_of segments ]
  in
  List.find_map
    (fun key ->
      match SMap.find_opt key t.types_by_key with
      | Some decl -> Some (key, decl)
      | None -> None)
    candidates
