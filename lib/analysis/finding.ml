type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  loc : Location.t;
  message : string;
  hint : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let v ~rule ~severity ~loc ~message ~hint = { rule; severity; loc; message; hint }

let file t = t.loc.Location.loc_start.Lexing.pos_fname

let line t = t.loc.Location.loc_start.Lexing.pos_lnum

let col t =
  let p = t.loc.Location.loc_start in
  p.Lexing.pos_cnum - p.Lexing.pos_bol

let end_line t = t.loc.Location.loc_end.Lexing.pos_lnum

let end_col t =
  let p = t.loc.Location.loc_end in
  p.Lexing.pos_cnum - p.Lexing.pos_bol

(* Order findings by file, then source position, then rule id so output is
   stable across runs and directory traversal order. *)
let compare a b =
  let c = String.compare (file a) (file b) in
  if c <> 0 then c
  else
    let c = Int.compare (line a) (line b) in
    if c <> 0 then c
    else
      let c = Int.compare (col a) (col b) in
      if c <> 0 then c else String.compare a.rule b.rule

let pp_human ppf t =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s@\n  hint: %s" (file t) (line t) (col t)
    (severity_to_string t.severity)
    t.rule t.message t.hint

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json ppf t =
  Format.fprintf ppf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"end_line":%d,"end_col":%d,"message":"%s","hint":"%s"}|}
    (json_escape t.rule)
    (severity_to_string t.severity)
    (json_escape (file t))
    (line t) (col t) (end_line t) (end_col t) (json_escape t.message) (json_escape t.hint)
