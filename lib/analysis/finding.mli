(** A single lint diagnostic: rule id, severity, precise source span, message
    and a short fix hint. *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  loc : Location.t;
  message : string;
  hint : string;
}

val v :
  rule:string -> severity:severity -> loc:Location.t -> message:string -> hint:string -> t

val severity_to_string : severity -> string
val file : t -> string
val line : t -> int
val col : t -> int
val end_line : t -> int
val end_col : t -> int

(** Stable ordering: file, then position, then rule id. *)
val compare : t -> t -> int

(** [file:line:col: severity [rule] message] plus an indented hint line. *)
val pp_human : Format.formatter -> t -> unit

(** One finding as a single-line JSON object. *)
val pp_json : Format.formatter -> t -> unit

(** JSON string-body escaping shared by the JSON and SARIF emitters. *)
val json_escape : string -> string
