(* Flow-sensitive interval abstract interpretation over typed trees.

   Two passes share one evaluator. The first ([analyze]) computes
   interprocedural return-value summaries by chaotic iteration with
   widening: every definition's body is evaluated in an environment
   seeding its parameters from their [@lopc.*] annotations (top when
   unannotated), and the resulting value is widened against the previous
   round until nothing changes. The second ([check]) replays each body
   once against the stable summaries with reporting switched on and
   collects numeric-contract violations.

   The evaluator is deliberately partial: constructs it does not model
   (matches, tries, loops, constructors, ...) fall through to a generic
   walk that still evaluates every subexpression — so checks inside
   them fire — and abstract to top. Environments are immutable ident
   maps; OCaml bindings are immutable, so one pass over a loop body is
   sound for the bindings we track (mutable state reads through [!] or
   fields abstract to top anyway). Branches refine: a comparison that
   holds meets the tested variable with the matching half-line (strict
   bounds through [Float.pred]/[succ], NaN cleared because no comparison
   holds on NaN), a branch that raises evaluates to bottom and so
   contributes nothing to the join. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet
module IMap = Callgraph.IMap

type value = { itv : Interval.t; vanishing : bool; uom : string option }

type violation = { v_rule : string; v_loc : Location.t; v_message : string }

type param = {
  p_arg : Asttypes.arg_label;
  p_display : string;
  p_annots : Annot.t list;
}

type t = {
  graph : Callgraph.t;
  summaries : value SMap.t;
  params : param list SMap.t;
}

let top_value = { itv = Interval.top; vanishing = false; uom = None }
let bot_value = { itv = Interval.bot; vanishing = false; uom = None }
let num itv = { itv; vanishing = false; uom = None }

let uom_join a b =
  match (a.uom, b.uom) with
  | Some ua, Some ub when String.equal ua ub -> Some ua
  | Some u, None when Interval.is_bot b.itv -> Some u
  | None, Some u when Interval.is_bot a.itv -> Some u
  | _ -> None

let join_value a b =
  {
    itv = Interval.join a.itv b.itv;
    vanishing = a.vanishing || b.vanishing;
    uom = uom_join a b;
  }

let widen_value old next =
  {
    itv = Interval.widen old.itv next.itv;
    vanishing = old.vanishing || next.vanishing;
    uom = uom_join old next;
  }

let value_equal a b =
  Interval.equal a.itv b.itv
  && Bool.equal a.vanishing b.vanishing
  && Option.equal String.equal a.uom b.uom

let value_of_annots annots =
  let itv =
    List.fold_left
      (fun acc a ->
        match Annot.interval a with Some i -> Interval.meet acc i | None -> acc)
      Interval.top annots
  in
  { itv; vanishing = false; uom = Annot.unit_of annots }

(* ------------------------------------------------------------------ *)
(* Analysis state                                                      *)
(* ------------------------------------------------------------------ *)

type state = {
  graph : Callgraph.t;
  mutable summaries : value SMap.t;
  mutable params : param list SMap.t;
  mutable violations : violation list;
  reporting : bool;
  mutable quiet : bool;  (* re-evaluations (guard bounds) must not re-emit *)
}

let emit st ~rule ~loc message =
  if st.reporting && not st.quiet then
    st.violations <- { v_rule = rule; v_loc = loc; v_message = message } :: st.violations

let quietly st f =
  let saved = st.quiet in
  st.quiet <- true;
  let r = f () in
  st.quiet <- saved;
  r

let path_key st path =
  match path with
  | Path.Pident id -> (
    match Callgraph.resolve_ident st.graph id with
    | Some key -> key
    | None -> Callgraph.normalize_path st.graph path)
  | _ -> Callgraph.normalize_path st.graph path

let type_head (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match List.rev (Callgraph.flatten_path p) with
    | last :: _ -> Some last
    | [] -> None)
  | _ -> None

let is_int_type ty =
  match type_head ty with Some "int" -> true | _ -> false

let is_arrow_type ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let const_float (c : Asttypes.constant) =
  match c with
  | Asttypes.Const_int n -> Some (float_of_int n)
  | Asttypes.Const_float s -> float_of_string_opt s
  | Asttypes.Const_int32 n -> Some (Int32.to_float n)
  | Asttypes.Const_int64 n -> Some (Int64.to_float n)
  | Asttypes.Const_nativeint n -> Some (Nativeint.to_float n)
  | Asttypes.Const_char _ | Asttypes.Const_string _ -> None

(* Callees that never return: their application evaluates to bottom, so
   an [if u >= 1. then invalid_arg "..." else ...] branch contributes
   nothing to the join and the else-branch refinement survives. *)
let raising_keys =
  SSet.of_list [ "raise"; "raise_notrace"; "invalid_arg"; "failwith"; "exit" ]

(* A statement-position expression that always raises: the guard shapes
   [if bad then invalid_arg "..."] refine the code after them. *)
let rec always_raises st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
    SSet.mem (path_key st p) raising_keys
  | Texp_assert
      ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, []); _ }, _)
    ->
    true
  | Texp_let (_, _, e) | Texp_sequence (_, e) -> always_raises st e
  | Texp_ifthenelse (_, a, Some b) -> always_raises st a && always_raises st b
  | _ -> false

let rec pattern_binding (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, name) -> Some (id, name.txt, p.pat_attributes)
  | Typedtree.Tpat_alias (inner, id, name) -> (
    match pattern_binding inner with
    | Some (_, _, attrs) -> Some (id, name.txt, p.pat_attributes @ attrs)
    | None -> Some (id, name.txt, p.pat_attributes))
  | _ -> None

let display_of_label (lbl : Asttypes.arg_label) name =
  match lbl with
  | Asttypes.Nolabel -> name
  | Asttypes.Labelled l -> "~" ^ l
  | Asttypes.Optional l -> "?" ^ l

(* ------------------------------------------------------------------ *)
(* The evaluator                                                       *)
(* ------------------------------------------------------------------ *)

let summary_value st key =
  match SMap.find_opt key st.summaries with
  | Some v -> v
  | None -> (
    match Callgraph.find st.graph key with
    | Some { body = Some _; _ } -> bot_value (* not yet reached this round *)
    | Some { body = None; _ } | None -> top_value)

let rec eval st env (e : Typedtree.expression) : value =
  match e.exp_desc with
  | Texp_constant c -> (
    match const_float c with
    | Some f -> num (Interval.const f)
    | None -> top_value)
  | Texp_ident (Path.Pident id, _, _) when IMap.mem id env -> IMap.find id env
  | Texp_ident (path, _, _) ->
    if is_arrow_type e.exp_type then top_value
    else summary_value st (path_key st path)
  | Texp_let (_, vbs, body) ->
    let env = List.fold_left (bind_vb st) env vbs in
    eval st env body
  | Texp_sequence (a, b) ->
    let env = eval_statement st env a in
    eval st env b
  | Texp_ifthenelse (cond, th, el) -> (
    ignore (eval st env cond);
    let vt = eval st (constrain st env cond ~holds:true) th in
    match el with
    | Some el ->
      let ve = eval st (constrain st env cond ~holds:false) el in
      join_value vt ve
    | None -> top_value)
  | Texp_function { arg_label; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
    -> (
    (* A nested lambda: bind its parameter (annotation-seeded) and keep
       walking; the closure itself abstracts to top. *)
    match pattern_binding c_lhs with
    | Some (id, _, attrs) ->
      let annots = Annot.of_attributes attrs in
      let v = if annots = [] then top_value else value_of_annots annots in
      ignore (eval st (IMap.add id v env) c_rhs);
      ignore arg_label;
      top_value
    | None ->
      ignore (eval st env c_rhs);
      top_value)
  | Texp_apply (fn, args) -> eval_apply st env e fn args
  | Texp_field (obj, _, lbl) ->
    ignore (eval st env obj);
    let annots = Annot.of_attributes lbl.Types.lbl_attributes in
    if annots = [] then top_value else value_of_annots annots
  | Texp_setfield (obj, _, lbl, rhs) ->
    ignore (eval st env obj);
    let v = eval st env rhs in
    check_annotated st
      ~what:(Printf.sprintf "field %s" lbl.Types.lbl_name)
      ~loc:rhs.exp_loc
      (Annot.of_attributes lbl.Types.lbl_attributes)
      v;
    top_value
  | Texp_record { fields; extended_expression } ->
    Option.iter (fun ee -> ignore (eval st env ee)) extended_expression;
    Array.iter
      (fun ((lbl : Types.label_description), defn) ->
        match defn with
        | Typedtree.Overridden (_, ex) ->
          let v = eval st env ex in
          check_annotated st
            ~what:(Printf.sprintf "field %s" lbl.lbl_name)
            ~loc:ex.exp_loc
            (Annot.of_attributes lbl.lbl_attributes)
            v
        | Typedtree.Kept _ -> ())
      fields;
    top_value
  | _ -> generic st env e

(* Unhandled constructs: evaluate every child (so checks inside fire
   exactly once) and abstract to top. *)
and generic st env (e : Typedtree.expression) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _sub child -> ignore (eval st env child));
    }
  in
  Tast_iterator.default_iterator.expr it e;
  top_value

and eval_statement st env (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_ifthenelse (cond, th, None) when always_raises st th ->
    ignore (eval st env cond);
    ignore (eval st (constrain st env cond ~holds:true) th);
    constrain st env cond ~holds:false
  | Texp_assert (cond, _) ->
    ignore (eval st env cond);
    constrain st env cond ~holds:true
  | _ ->
    ignore (eval st env a);
    env

and bind_vb st env (vb : Typedtree.value_binding) =
  match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
  | (Typedtree.Tpat_any | Typedtree.Tpat_construct _), _ ->
    eval_statement st env vb.vb_expr
  | _ -> (
    let v = eval st env vb.vb_expr in
    match pattern_binding vb.vb_pat with
    | Some (id, name, attrs) ->
      let annots = Annot.of_attributes attrs in
      let v =
        if annots = [] then v
        else begin
          check_annotated st ~what:(Printf.sprintf "binding %s" name)
            ~loc:vb.vb_expr.exp_loc annots v;
          (* after the check the annotation acts as an assume *)
          let want = value_of_annots annots in
          {
            itv = Interval.meet v.itv want.itv;
            vanishing = v.vanishing;
            uom = (match want.uom with Some _ as u -> u | None -> v.uom);
          }
        end
      in
      IMap.add id v env
    | None -> env)

and eval_apply st env (e : Typedtree.expression) fn args =
  let key =
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> Some (path_key st p)
    | _ ->
      ignore (eval st env fn);
      None
  in
  match (key, args) with
  | Some "&&", [ (_, Some a); (_, Some b) ] ->
    ignore (eval st env a);
    ignore (eval st (constrain st env a ~holds:true) b);
    top_value
  | Some "||", [ (_, Some a); (_, Some b) ] ->
    ignore (eval st env a);
    ignore (eval st (constrain st env a ~holds:false) b);
    top_value
  | Some (("+." | "+" | "-." | "-" | "*." | "*" | "/." | "/") as op),
    [ (_, Some a); (_, Some b) ] ->
    let va = eval st env a and vb = eval st env b in
    arith st op ~site:e.exp_loc ~denom:b va vb
  | Some (("min" | "max" | "Float.min" | "Float.max") as op),
    [ (_, Some a); (_, Some b) ] ->
    let va = eval st env a and vb = eval st env b in
    let f = match op with "min" | "Float.min" -> Interval.min_ | _ -> Interval.max_ in
    { itv = f va.itv vb.itv;
      vanishing = va.vanishing || vb.vanishing;
      uom = uom_join va vb }
  | Some ("~-." | "~-"), [ (_, Some a) ] ->
    let va = eval st env a in
    { va with itv = Interval.neg va.itv }
  | Some ("abs_float" | "Float.abs" | "abs"), [ (_, Some a) ] ->
    let va = eval st env a in
    { va with itv = Interval.abs va.itv }
  | Some ("sqrt" | "Float.sqrt"), [ (_, Some a) ] ->
    let va = eval st env a in
    num (Interval.sqrt_ va.itv)
  | Some ("exp" | "Float.exp"), [ (_, Some a) ] ->
    let va = eval st env a in
    num (Interval.exp_ va.itv)
  | Some ("float_of_int" | "Float.of_int"), [ (_, Some a) ] -> eval st env a
  | Some ("int_of_float" | "truncate" | "Float.to_int"), [ (_, Some a) ] ->
    let va = eval st env a in
    (* truncation moves toward zero, so the hull with 0 is sound *)
    num (Interval.join va.itv (Interval.const 0.))
  | Some key, _ when SSet.mem key raising_keys ->
    List.iter (fun (_, a) -> Option.iter (fun a -> ignore (eval st env a)) a) args;
    bot_value
  | Some key, _ ->
    let argv =
      List.map (fun (lbl, a) -> (lbl, a, Option.map (eval st env) a)) args
    in
    check_call st env key argv;
    if is_arrow_type e.exp_type then top_value else summary_value st key
  | None, _ ->
    List.iter (fun (_, a) -> Option.iter (fun a -> ignore (eval st env a)) a) args;
    top_value

and arith st op ~site ~denom va vb =
  (match op with
  | "+." | "-." | "+" | "-" -> (
    match (va.uom, vb.uom) with
    | Some ua, Some ub when not (String.equal ua ub) ->
      emit st ~rule:"unit-mismatch" ~loc:site
        (Printf.sprintf
           "mixing values in unit %S and unit %S additively; convert one side \
            explicitly"
           ua ub)
    | _ -> ())
  | _ -> ());
  match op with
  | "+." | "+" ->
    {
      itv = Interval.add va.itv vb.itv;
      vanishing = va.vanishing || vb.vanishing;
      uom = uom_join va vb;
    }
  | "-." ->
    (* Float subtraction is where cancellation lives: the result is the
       vanishing-denominator candidate of the [1. - u] family. Integer
       subtraction ([n - 1] node counts) is deliberately excluded. *)
    {
      itv = Interval.sub va.itv vb.itv;
      vanishing = true;
      uom = uom_join va vb;
    }
  | "-" ->
    {
      itv = Interval.sub va.itv vb.itv;
      vanishing = va.vanishing || vb.vanishing;
      uom = uom_join va vb;
    }
  | "*." | "*" ->
    {
      itv = Interval.mul va.itv vb.itv;
      vanishing = va.vanishing || vb.vanishing;
      uom = None;
    }
  | "/." ->
    if vb.vanishing && Interval.contains_zero vb.itv then
      emit st ~rule:"division-by-vanishing" ~loc:denom.Typedtree.exp_loc
        (Printf.sprintf
           "denominator is subtraction-shaped with interval %s, which contains \
            0; the division can produce inf or NaN"
           (Interval.to_string vb.itv));
    { itv = Interval.div va.itv vb.itv; vanishing = va.vanishing; uom = None }
  | _ ->
    (* integer division truncates, which corner evaluation does not
       bracket; stay at top *)
    top_value

and check_annotated st ~what ~loc annots (v : value) =
  if annots <> [] then begin
    List.iter
      (fun a ->
        match Annot.interval a with
        | Some want when not (Interval.leq v.itv want) ->
          emit st ~rule:(Annot.rule_id a) ~loc
            (Printf.sprintf "%s is declared %s but a value with interval %s \
                             flows in"
               what (Annot.describe a)
               (Interval.to_string v.itv))
        | Some _ | None -> ())
      annots;
    match (Annot.unit_of annots, v.uom) with
    | Some want, Some got when not (String.equal want got) ->
      emit st ~rule:"unit-mismatch" ~loc
        (Printf.sprintf "%s is declared in unit %S but a value in unit %S \
                         flows in"
           what want got)
    | _ -> ()
  end

and check_call st env key argv =
  if st.reporting then
    match SMap.find_opt key st.params with
    | None -> ()
    | Some params ->
      let parr = Array.of_list params in
      let used = Array.make (Array.length parr) false in
      let claim pred =
        let found = ref None in
        Array.iteri
          (fun i p ->
            match !found with
            | Some _ -> ()
            | None -> if (not used.(i)) && pred p then found := Some i)
          parr;
        Option.iter (fun i -> used.(i) <- true) !found;
        !found
      in
      List.iter
        (fun ((lbl : Asttypes.arg_label), argo, vo) ->
          let pio =
            match lbl with
            | Asttypes.Nolabel ->
              claim (fun p ->
                  match p.p_arg with Asttypes.Nolabel -> true | _ -> false)
            | Asttypes.Labelled l | Asttypes.Optional l ->
              claim (fun p ->
                  match p.p_arg with
                  | Asttypes.Labelled l' | Asttypes.Optional l' ->
                    String.equal l l'
                  | Asttypes.Nolabel -> false)
          in
          match (pio, argo, vo) with
          | Some pi, Some (argexp : Typedtree.expression), Some v
            when parr.(pi).p_annots <> [] ->
            let p = parr.(pi) in
            (* the typechecker wraps an applied optional in [Some] *)
            let argexp, v =
              match (p.p_arg, argexp.exp_desc) with
              | Asttypes.Optional _,
                Texp_construct (_, { cstr_name = "Some"; _ }, [ inner ]) ->
                (inner, quietly st (fun () -> eval st env inner))
              | _ -> (argexp, v)
            in
            check_annotated st
              ~what:(Printf.sprintf "argument %s of %s" p.p_display key)
              ~loc:argexp.exp_loc p.p_annots v
          | _ -> ())
        argv

(* Refinement of the environment by [cond = holds]. *)
and constrain st env (cond : Typedtree.expression) ~holds =
  match cond.exp_desc with
  | Texp_apply
      ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some a); (_, Some b) ])
    -> (
    let op = path_key st p in
    match op with
    | "&&" ->
      if holds then constrain st (constrain st env a ~holds:true) b ~holds:true
      else env
    | "||" ->
      if holds then env
      else constrain st (constrain st env a ~holds:false) b ~holds:false
    | "<" | "<=" | ">" | ">=" | "=" | "Float.equal" | "Int.equal" ->
      let env = refine_side st env ~this:a ~other:b ~op ~holds ~swap:false in
      refine_side st env ~this:b ~other:a ~op ~holds ~swap:true
    | _ -> env)
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some a) ]) -> (
    match path_key st p with
    | "not" -> constrain st env a ~holds:(not holds)
    | "Float.is_finite" when holds -> (
      (* [Float.is_finite x] holding excludes NaN and both infinities. *)
      match a.Typedtree.exp_desc with
      | Texp_ident (Path.Pident id, _, _) when IMap.mem id env ->
        let cur = IMap.find id env in
        let finite = Interval.v (-.Float.max_float) Float.max_float in
        IMap.add id { cur with itv = Interval.meet cur.itv finite } env
      | _ -> env)
    | _ -> env)
  | _ -> env

and refine_side st env ~this ~other ~op ~holds ~swap =
  match this.Typedtree.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when IMap.mem id env -> (
    let cur = IMap.find id env in
    let bv = quietly st (fun () -> eval st env other) in
    let int_typed = is_int_type this.Typedtree.exp_type in
    (* the relation [this cmp other], as written *)
    let cmp =
      match (op, swap) with
      | "<", false -> `Lt
      | "<", true -> `Gt
      | "<=", false -> `Le
      | "<=", true -> `Ge
      | ">", false -> `Gt
      | ">", true -> `Lt
      | ">=", false -> `Ge
      | ">=", true -> `Le
      | _ -> `Eq
    in
    match (bv.itv : Interval.t).range with
    | None ->
      (* [other] is NaN-only or unreachable: no comparison with it ever
         holds *)
      if holds then IMap.add id { cur with itv = Interval.bot } env else env
    | Some (blo, bhi) ->
      if holds then
        let itv =
          match cmp with
          | `Eq ->
            (* this = other and other is not NaN here *)
            Interval.meet cur.itv (Interval.v blo bhi)
          | `Lt | `Le ->
            (* this < other <= bhi *)
            Interval.refine cur.itv ~cmp ~bound:bhi ~int_typed ~keep_nan:false
          | `Gt | `Ge ->
            Interval.refine cur.itv ~cmp ~bound:blo ~int_typed ~keep_nan:false
        in
        IMap.add id { cur with itv } env
      else if Interval.may_nan bv.itv then
        (* the negation of a comparison against a possibly-NaN value
           carries no information *)
        env
      else
        let itv =
          match cmp with
          | `Eq -> cur.itv (* x <> y: nothing exploitable *)
          | `Lt ->
            (* not (this < other): this >= other >= blo, or this is NaN *)
            Interval.refine cur.itv ~cmp:`Ge ~bound:blo ~int_typed ~keep_nan:true
          | `Le ->
            Interval.refine cur.itv ~cmp:`Gt ~bound:blo ~int_typed ~keep_nan:true
          | `Gt ->
            Interval.refine cur.itv ~cmp:`Le ~bound:bhi ~int_typed ~keep_nan:true
          | `Ge ->
            Interval.refine cur.itv ~cmp:`Lt ~bound:bhi ~int_typed ~keep_nan:true
        in
        IMap.add id { cur with itv } env)
  | _ -> env

(* ------------------------------------------------------------------ *)
(* Definitions and fixpoint                                            *)
(* ------------------------------------------------------------------ *)

(* Peel the leading single-case lambdas off a definition body: bind each
   parameter to its annotation seed and record it for call-site checks. *)
let rec peel st env acc (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ }
    -> (
    match pattern_binding c_lhs with
    | Some (id, name, attrs) ->
      let annots = Annot.of_attributes attrs in
      let v = if annots = [] then top_value else value_of_annots annots in
      let p =
        {
          p_arg = arg_label;
          p_display = display_of_label arg_label name;
          p_annots = annots;
        }
      in
      peel st (IMap.add id v env) (p :: acc) c_rhs
    | None ->
      let p =
        { p_arg = arg_label; p_display = display_of_label arg_label "_";
          p_annots = [] }
      in
      peel st env (p :: acc) c_rhs)
  | _ -> (env, List.rev acc, e)

let def_value st (d : Callgraph.def) =
  match d.body with
  | None -> None
  | Some body ->
    let env, params, inner = peel st IMap.empty [] body in
    st.params <- SMap.add d.key params st.params;
    Some (eval st env inner)

let max_rounds = 50

let fixpoint st =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    let seen = ref SSet.empty in
    List.iter
      (fun (d : Callgraph.def) ->
        if not (SSet.mem d.key !seen) then begin
          seen := SSet.add d.key !seen;
          match def_value st d with
          | None -> ()
          | Some next ->
            let cur =
              Option.value (SMap.find_opt d.key st.summaries) ~default:bot_value
            in
            let next = widen_value cur next in
            if not (value_equal cur next) then begin
              st.summaries <- SMap.add d.key next st.summaries;
              changed := true
            end
        end)
      st.graph.defs
  done

let fresh_state ~reporting graph summaries params =
  { graph; summaries; params; violations = []; reporting; quiet = false }

let analyze graph =
  let st = fresh_state ~reporting:false graph SMap.empty SMap.empty in
  fixpoint st;
  { graph; summaries = st.summaries; params = st.params }

let check (t : t) =
  let st = fresh_state ~reporting:true t.graph t.summaries t.params in
  let seen = ref SSet.empty in
  List.iter
    (fun (d : Callgraph.def) ->
      if not (SSet.mem d.key !seen) then begin
        seen := SSet.add d.key !seen;
        ignore (def_value st d)
      end)
    t.graph.defs;
  List.rev st.violations

let summary (t : t) key = SMap.find_opt key t.summaries

let print_summary ppf (t : t) key =
  match SMap.find_opt key t.summaries with
  | None -> false
  | Some ret ->
    let params = Option.value (SMap.find_opt key t.params) ~default:[] in
    Format.fprintf ppf "interval summary of %s@." key;
    List.iter
      (fun p ->
        let v =
          if p.p_annots = [] then top_value else value_of_annots p.p_annots
        in
        Format.fprintf ppf "  param %s: %s%s@." p.p_display
          (Interval.to_string v.itv)
          (match Annot.unit_of p.p_annots with
          | Some u -> " unit:" ^ u
          | None -> ""))
      params;
    Format.fprintf ppf "  return: %s%s@."
      (Interval.to_string ret.itv)
      (match ret.uom with Some u -> " unit:" ^ u | None -> "");
    true
