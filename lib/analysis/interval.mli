(** Float interval lattice with explicit NaN tracking — the abstract
    domain of the numeric stage ([Absint]).

    An element abstracts a set of runtime [float] values: [range]
    over-approximates the real-valued members (a closed interval whose
    bounds may be infinite), [nan] records whether NaN may be among
    them. Bottom is [{range = None; nan = false}] (no value reaches this
    point); [{range = None; nan = true}] is "NaN and nothing else"; top
    admits every float including NaN. Ints are abstracted into the same
    domain (exactly, up to 2^53).

    Transfer functions are sound without directed rounding because IEEE
    rounding is monotone: evaluating an operation at interval corners in
    float arithmetic brackets every concrete result. NaN-producing corner
    cases (inf - inf, 0 * inf, 0/0, x/0) set the [nan] flag
    conservatively. *)

type t = private { range : (float * float) option; nan : bool }

val bot : t
val top : t

(** NaN and nothing else. *)
val nan_only : t

(** [v lo hi] is the NaN-free interval \[lo, hi\]. Raises [Invalid_argument]
    if [lo > hi] or either bound is NaN. *)
val v : float -> float -> t

(** Singleton; [const nan] is [nan_only]. *)
val const : float -> t

val is_bot : t -> bool
val is_top : t -> bool
val equal : t -> t -> bool

(** Lattice order: [leq a b] iff every value [a] admits, [b] admits. *)
val leq : t -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t

(** [widen old next] extrapolates unstable bounds to the nearest member of
    a fixed threshold set ({-∞, -1, 0, 1, +∞}), so any ascending chain of
    widenings stabilises in a bounded number of steps. *)
val widen : t -> t -> t

(** Does the concrete value [x] belong to the abstraction? *)
val mem : float -> t -> bool

val contains_zero : t -> bool
val may_negative : t -> bool
val may_nan : t -> bool

(** Transfer functions for float arithmetic (corner evaluation). *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val sqrt_ : t -> t
val exp_ : t -> t

(** Refinement by a comparison guard that is known to hold:
    [refine t ~cmp ~bound] is the meet of [t] with [{x | x cmp bound}].
    Strict comparisons use [Float.pred]/[Float.succ] ([± 1] when
    [int_typed]). A guard that holds also proves the value is not NaN
    (every comparison is false on NaN) unless [keep_nan] — pass
    [~keep_nan:true] when refining by the {e negation} of a guard, where
    NaN remains possible. *)
val refine :
  t ->
  cmp:[ `Lt | `Le | `Gt | `Ge | `Eq ] ->
  bound:float ->
  int_typed:bool ->
  keep_nan:bool ->
  t

(** Stable rendering used by [--show-intervals] and findings: ["_|_"],
    ["top"], ["NaN"], or ["\[lo, hi\]"] with an [" or-NaN"] suffix when NaN
    is possible; bounds formatted with [%g]. *)
val to_string : t -> string
