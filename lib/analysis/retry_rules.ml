(* Unbounded-retry detection: any [while] loop in a definition reachable
   from a solver or simulator entry point must be budget-aware. A retry or
   polling loop with no fuel, cancellation token, or explicit iteration
   bound in sight is exactly the loop that wedges a run when the model
   leaves its convergent regime — the supervised-runtime contract says
   every such loop polls a budget once per iteration so a supervisor can
   stop it. [for] loops are inherently bounded and exempt.

   A loop passes if its enclosing definition mentions a budget-ish
   identifier — anything containing [fuel], [budget], [cancel], [max_],
   [deadline] or [remaining], which covers direct [Budget.check] calls,
   local helpers like [check_budget], and loops guarded by a stepper that
   received the budget — or references [Budget.*] / [Cancel.*] directly.
   The granularity is the definition, not the loop: a definition that
   threads a budget anywhere is assumed to have wired it into its loops
   (the chaos tests check the wiring dynamically). Same BFS machinery as
   the determinism taint, so findings carry the call chain from the entry
   that reached the loop. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

let rule_id = "unbounded-retry"

let severity = Finding.Error

let summary =
  "a while loop reachable from a solver or simulator entry with no budget, \
   cancellation token, or iteration bound in sight"

let hint =
  "poll a Lopc_robust.Budget.t (or Cancel.t) once per iteration, or bound the \
   loop with an explicit max_*/fuel counter; if the loop is provably bounded by \
   its data, suppress with [@lint.allow \"unbounded-retry\" \"why\"]"

type config = {
  entries : string list;  (* extra entry keys or key prefixes *)
  entry_dirs : string list;
  entry_names : string list;
}

let default_config =
  {
    entries = [];
    entry_dirs = [ "lib/activemsg"; "lib/eventsim" ];
    entry_names = [ "solve"; "solve_status" ];
  }

let dir_prefix dir path =
  let n = String.length dir in
  String.length path > n && String.sub path 0 n = dir && path.[n] = '/'

let is_entry config (d : Callgraph.def) =
  List.exists (fun dir -> dir_prefix dir d.Callgraph.source) config.entry_dirs
  || List.mem d.Callgraph.def_name config.entry_names
  || List.exists
       (fun e ->
         d.Callgraph.key = e
         || (String.length d.Callgraph.key > String.length e
            && String.sub d.Callgraph.key 0 (String.length e + 1) = e ^ "."))
       config.entries

let path_head target =
  match String.index_opt target '.' with
  | Some i -> String.sub target 0 i
  | None -> target

let bound_substrings = [ "fuel"; "budget"; "cancel"; "max_"; "deadline"; "remaining" ]

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n > 0 && at 0

let budget_ish name =
  let name = String.lowercase_ascii name in
  List.exists (contains name) bound_substrings

(* Does any identifier in the subtree look like a bound or budget? Local
   idents count ([check_budget], [max_iter]) as well as globals. *)
let mentions_bound expr =
  let found = ref false in
  let expr_it sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (path, _, _) -> (
      match List.rev (Callgraph.flatten_path path) with
      | last :: _ -> if budget_ish last then found := true
      | [] -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_it } in
  it.expr it expr;
  !found

(* Locations of every while loop in [body]. *)
let while_locs body =
  let acc = ref [] in
  let expr_it sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_while (_, _) -> acc := e.Typedtree.exp_loc :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = expr_it } in
  it.expr it body;
  List.rev !acc

let def_budget_aware (d : Callgraph.def) =
  List.exists
    (fun (r : Callgraph.ref_site) ->
      let head = path_head r.target in
      head = "Budget" || head = "Cancel")
    d.Callgraph.refs

let check ?(config = default_config) (graph : Callgraph.t) =
  let findings = ref [] in
  let visited = ref SSet.empty in
  let queue = Queue.create () in
  let entries =
    List.filter (is_entry config) graph.defs
    |> List.map (fun (d : Callgraph.def) -> d.key)
    |> List.sort_uniq String.compare
  in
  List.iter (fun k -> Queue.push (k, [ k ]) queue) entries;
  List.iter (fun k -> visited := SSet.add k !visited) entries;
  while not (Queue.is_empty queue) do
    let key, chain = Queue.pop queue in
    match Callgraph.find graph key with
    | None -> ()
    | Some d ->
      (match d.Callgraph.body with
      | Some body when not (def_budget_aware d || mentions_bound body) ->
        List.iter
          (fun loc ->
            let message =
              Printf.sprintf
                "a while loop with no budget, cancellation, or bound in sight; \
                 reachable as %s"
                (String.concat " -> " (List.rev chain))
            in
            findings :=
              Finding.v ~rule:rule_id ~severity ~loc ~message ~hint :: !findings)
          (while_locs body)
      | Some _ | None -> ());
      List.iter
        (fun (r : Callgraph.ref_site) ->
          if SMap.mem r.target graph.by_key && not (SSet.mem r.target !visited)
          then begin
            visited := SSet.add r.target !visited;
            Queue.push (r.target, r.target :: chain) queue
          end)
        d.Callgraph.refs
  done;
  List.rev !findings
