(** The numeric-safety rules backed by the {!Absint} interval stage:
    [probability-range], [negative-cost], [division-by-vanishing] and
    [unit-mismatch]. *)

(** (id, severity, summary) for every rule this module can emit, in
    catalogue order. *)
val catalogue : (string * Finding.severity * string) list

(** Run the interval analysis over a built call graph and translate its
    violations into findings (unsorted; callers sort and filter
    suppressions). *)
val check : Callgraph.t -> Finding.t list

(** As {!check} but over a pre-computed analysis. *)
val check_absint : Absint.t -> Finding.t list
