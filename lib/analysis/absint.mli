(** Flow-sensitive interval abstract interpretation over the typed trees
    — the third stage of the linter.

    [analyze] runs a summary fixpoint over the call graph: every
    definition gets an abstract return value in the {!Interval} domain
    (widened, so chaotic iteration terminates), with parameter seeds
    taken from the [@lopc.*] annotations ({!Annot}) on its argument
    patterns. Inside a body the evaluation is flow-sensitive:
    comparisons refine the environment on each branch ([if u < 1.]
    narrows [u] to \[-inf, pred 1.\] in the then-branch, and a branch
    that raises contributes nothing to the join), which is exactly the
    precision step the syntactic [unguarded-division] heuristic cannot
    make.

    [check] replays every body against the fixpoint summaries and emits
    the numeric-contract violations ({!Numeric_rules} maps them to
    findings):

    - [probability-range] / [negative-cost]: a value whose interval is
      not contained in an annotated parameter/field's admissible range
      flows into it (top counts — an unconstrained value may lie
      outside);
    - [division-by-vanishing]: a [/.] denominator that is
      subtraction-shaped (the [1. - u] family, tracked by a [vanishing]
      bit) and whose interval contains 0;
    - [unit-mismatch]: two different [@lopc.unit] tags mixed
      additively. *)

(** Abstract value: interval, "derived from a subtraction" bit (the
    vanishing-denominator family), and the dimension tag if one is
    known. *)
type value = { itv : Interval.t; vanishing : bool; uom : string option }

type violation = { v_rule : string; v_loc : Location.t; v_message : string }

type t

val analyze : Callgraph.t -> t

(** All violations, in emission order (callers sort). *)
val check : t -> violation list

(** Fixpoint return-value summary of a definition, by call-graph key. *)
val summary : t -> string -> value option

(** The stable dump behind [lopc_lint --show-intervals KEY]: one [param]
    line per declared parameter (its annotation-seeded interval, [top]
    when unannotated) and a [return] line with the fixpoint summary.
    False when the key has no summary. *)
val print_summary : Format.formatter -> t -> string -> bool
