(** Loading typed trees for stage 2 of the linter.

    The typed analyses run over the compiler's [.cmt] files, which dune
    writes next to the object files (under [.*.objs/byte/]) whenever it
    compiles a library or executable. Each loaded unit carries its typed
    {!Typedtree.structure} plus the source path recorded at compile time, so
    findings point back into the original files. *)

type unit_info = {
  modname : string;  (** compilation unit name, e.g. ["Lopc_markov__Ctmc"] *)
  base : string;  (** user-facing module name, e.g. ["Ctmc"] *)
  source : string;  (** source path as recorded at compile time *)
  structure : Typedtree.structure;
}

(** ["Lopc_markov__Ctmc"] → ["Ctmc"]; identity when there is no [__]. *)
val base_of_modname : string -> string

(** ["Lopc_markov__Ctmc"] → [Some "Lopc_markov"], the dune-generated wrapper
    module; [None] for unmangled unit names. *)
val wrapper_of_modname : string -> string option

val of_implementation :
  modname:string -> source:string -> Typedtree.structure -> unit_info

(** Read one [.cmt]; [None] for interfaces, partial implementations, or
    unreadable/mismatched files. *)
val read_cmt : string -> unit_info option

(** Every [.cmt] file under the given roots (dot-directories included),
    sorted. *)
val cmt_files : string list -> string list

(** Load all distinct units under the given roots, deduplicated by module
    name, first occurrence in sorted scan order winning. *)
val load : string list -> unit_info list

(** Typecheck a source string against the standard library and wrap the
    resulting typed tree as a unit — the harness used by the typed-rule test
    fixtures. [Error] carries a parse- or type-error description. *)
val typecheck_string :
  modname:string -> source:string -> string -> (unit_info, string) result
