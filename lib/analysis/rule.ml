type t = {
  id : string;
  severity : Finding.severity;
  summary : string;
  hint : string;
  check : path:string -> Parsetree.structure -> Finding.t list;
}

let v ~id ~severity ~summary ~hint ~check = { id; severity; summary; hint; check }

let finding rule ~loc message =
  Finding.v ~rule:rule.id ~severity:rule.severity ~loc ~message ~hint:rule.hint

(* Path predicates shared by path-sensitive rules. Paths are compared on
   their '/'-separated segments so "lib", "./lib/foo.ml" and
   "bench/../lib/x.ml" are classified by what was actually passed in. *)
let segments path = String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let in_library path = match segments path with "lib" :: _ -> true | _ -> false

let in_prng path =
  match segments path with "lib" :: "prng" :: _ -> true | _ -> false
