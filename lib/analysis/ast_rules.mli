(** The Parsetree-level rules: each walks a parsed compilation unit with
    {!Ast_iterator} and reports findings with precise locations. *)

val float_equality : Rule.t
val unguarded_division : Rule.t
val global_rng : Rule.t
val physical_equality : Rule.t
val banned_constructs : Rule.t
val bare_failwith : Rule.t

(** All AST rules, in catalogue order. *)
val rules : Rule.t list
