(* Parallel task RNG capture: closures handed to Parallel.run/Parallel.map
   execute on whichever domain steals them, in whatever order the workers
   reach them. A task that draws from — or splits — a generator captured
   from the enclosing scope therefore produces values that depend on
   scheduling, even though every individual stream operation is
   deterministic: the shared generator's state advances in completion
   order. The discipline that makes Parallel.run order-insensitive is to
   derive one child stream per task *serially* (Rng.split_n at plan-build
   time) and have task [i] own element [i]; then every draw is a pure
   function of (seed, task index). The rule enforces the discipline
   intraprocedurally: inside any argument of a Parallel.run/map
   application, a use of a raw [Rng.t] under a lambda whose binder is
   outside that argument is a finding. Arrays of streams ([Rng.t array])
   are the sanctioned carrier and are not flagged. *)

let rule_id = "parallel-rng-capture"

let severity = Finding.Error

let summary =
  "a task passed to Parallel.run/map captures a raw Rng.t from outside the task"

let hint =
  "derive per-task streams serially before building the task array (let streams = \
   Rng.split_n master n) and let task i own streams.(i); drawing from or splitting a \
   shared generator inside a task makes its values depend on worker scheduling. If the \
   capture is provably benign, suppress with [@lint.allow \"parallel-rng-capture\" \
   \"why\"]"

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* Both the real [Lopc_repro.Parallel] and a fixture's local [Parallel]
   module qualify, as elsewhere in the typed rules. *)
let is_parallel_runner key =
  List.exists
    (fun fn -> key = "Parallel." ^ fn || has_suffix ~suffix:(".Parallel." ^ fn) key)
    [ "run"; "map" ]

let is_rng_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (path, _, _) ->
    let name = Path.name path in
    name = "Rng.t" || has_suffix ~suffix:".Rng.t" name
  | _ -> false

(* Every ident bound by any pattern inside [e] — lambda parameters and
   let-bindings within the task array all count as task-internal. *)
let bound_idents (e : Typedtree.expression) =
  let acc = ref [] in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit =
   fun sub p ->
    acc := Typedtree.pat_bound_idents p @ !acc;
    Tast_iterator.default_iterator.pat sub p
  in
  let it = { Tast_iterator.default_iterator with pat } in
  it.expr it e;
  !acc

(* First use site, per captured ident, of a raw Rng.t under a lambda in
   [arg]: uses outside any lambda happen at array-construction time on the
   submitting domain, in program order, and are fine. *)
let captured_streams (arg : Typedtree.expression) =
  let bound = bound_idents arg in
  let seen = Hashtbl.create 4 in
  let hits = ref [] in
  let rec walk ~in_closure (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Pident id, lid, _)
      when in_closure && is_rng_type e.exp_type
           && (not (List.exists (Ident.same id) bound))
           && not (Hashtbl.mem seen (Ident.name id)) ->
      Hashtbl.add seen (Ident.name id) ();
      hits := (Ident.name id, lid.loc) :: !hits
    | _ -> ());
    let in_closure =
      in_closure || match e.exp_desc with Texp_function _ -> true | _ -> false
    in
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _sub child -> walk ~in_closure child);
      }
    in
    Tast_iterator.default_iterator.expr it e
  in
  walk ~in_closure:false arg;
  List.rev !hits

let check_def ~normalize_key (d : Callgraph.def) =
  match d.Callgraph.body with
  | None -> []
  | Some body ->
    let findings = ref [] in
    let rec walk (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args) ->
        let callee = normalize_key path in
        if is_parallel_runner callee then
          List.iter
            (fun (_, arg) ->
              match arg with
              | None -> ()
              | Some (arg : Typedtree.expression) ->
                List.iter
                  (fun (name, loc) ->
                    let message =
                      Printf.sprintf
                        "task passed to %s captures the outer stream `%s` in %s; \
                         draws from a shared generator advance its state in worker \
                         completion order, so the values depend on scheduling"
                        callee name d.Callgraph.key
                    in
                    findings :=
                      Finding.v ~rule:rule_id ~severity ~loc ~message ~hint
                      :: !findings)
                  (captured_streams arg))
            args
      | _ -> ());
      let it = { Tast_iterator.default_iterator with expr = (fun _sub c -> walk c) } in
      Tast_iterator.default_iterator.expr it e
    in
    walk body;
    List.rev !findings

let check (graph : Callgraph.t) =
  let normalize_key path =
    Callgraph.key_of
      (Callgraph.normalize ~wrappers:graph.Callgraph.wrappers
         ~aliases:Callgraph.SMap.empty (Callgraph.flatten_path path))
  in
  List.concat_map (check_def ~normalize_key) graph.defs
