type region = {
  rules : string list;  (* rule ids named by the attribute payload *)
  start_cnum : int;
  end_cnum : int;
  whole_file : bool;
}

let attribute_name = "lint.allow"

(* Payload of [@lint.allow "rule-a rule-b"] or [@lint.allow "rule-a, rule-b"]:
   a single string constant naming one or more rule ids. *)
let rules_of_payload (payload : Parsetree.payload) =
  match payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char ',')
    |> List.filter_map (fun id ->
           let id = String.trim id in
           if id = "" then None else Some id)
  | _ -> []

let rules_of_attributes (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = attribute_name then rules_of_payload a.attr_payload else [])
    attrs

let region_of ~whole_file (loc : Location.t) rules =
  {
    rules;
    start_cnum = loc.loc_start.pos_cnum;
    end_cnum = loc.loc_end.pos_cnum;
    whole_file;
  }

(* Collect every span an allow-attribute governs: the attributed expression,
   the whole [let] binding carrying [@@lint.allow], the surrounding module
   item, or the whole file for floating [@@@lint.allow]. *)
let collect (structure : Parsetree.structure) =
  let regions = ref [] in
  let add ~whole_file loc attrs =
    match rules_of_attributes attrs with
    | [] -> ()
    | rules -> regions := region_of ~whole_file loc rules :: !regions
  in
  let expr sub (e : Parsetree.expression) =
    add ~whole_file:false e.pexp_loc e.pexp_attributes;
    Ast_iterator.default_iterator.expr sub e
  in
  let value_binding sub (vb : Parsetree.value_binding) =
    add ~whole_file:false vb.pvb_loc vb.pvb_attributes;
    Ast_iterator.default_iterator.value_binding sub vb
  in
  let structure_item sub (item : Parsetree.structure_item) =
    (match item.pstr_desc with
    | Pstr_attribute a ->
      if a.attr_name.txt = attribute_name then
        (match rules_of_payload a.attr_payload with
        | [] -> ()
        | rules -> regions := region_of ~whole_file:true item.pstr_loc rules :: !regions)
    | _ -> ());
    Ast_iterator.default_iterator.structure_item sub item
  in
  let it = { Ast_iterator.default_iterator with expr; value_binding; structure_item } in
  it.structure it structure;
  !regions

(* Overlap, not containment: the parser can attach a trailing attribute to
   the last operand of an infix expression rather than the whole expression
   ([x = 1.0 [@lint.allow ...]] lands on [1.0]), so a finding is suppressed
   when its span intersects the attributed span at all. *)
let suppressed regions (f : Finding.t) =
  let start_cnum = f.Finding.loc.loc_start.pos_cnum in
  let end_cnum = f.Finding.loc.loc_end.pos_cnum in
  List.exists
    (fun r ->
      List.mem f.Finding.rule r.rules
      && (r.whole_file || (start_cnum <= r.end_cnum && end_cnum >= r.start_cnum)))
    regions
