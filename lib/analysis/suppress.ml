type region = {
  rules : string list;  (* rule ids named by the attribute payload *)
  justification : string option;  (* second string payload, if any *)
  attr_loc : Location.t;  (* where the attribute itself sits *)
  start_cnum : int;
  end_cnum : int;
  whole_file : bool;
}

let attribute_name = "lint.allow"

(* Payload of [@lint.allow "rule-a rule-b" "why this is safe"]: one string
   constant naming one or more rule ids, optionally applied to a second
   string constant carrying the justification. The bare one-string form is
   still parsed (it suppresses) but [justification] is [None], which the
   driver reports as a [bare-suppression] finding. *)
let rules_of_payload (payload : Parsetree.payload) =
  let split s =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char ',')
    |> List.filter_map (fun id ->
           let id = String.trim id in
           if id = "" then None else Some id)
  in
  match payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> (split s, None)
    | Pexp_apply
        ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
          [ (Nolabel, { pexp_desc = Pexp_constant (Pconst_string (why, _, _)); _ }) ] )
      ->
      let why = String.trim why in
      (split s, if why = "" then None else Some why)
    | _ -> ([], None))
  | _ -> ([], None)

let region_of ~whole_file ~attr_loc (loc : Location.t) (rules, justification) =
  {
    rules;
    justification;
    attr_loc;
    start_cnum = loc.loc_start.pos_cnum;
    end_cnum = loc.loc_end.pos_cnum;
    whole_file;
  }

(* Collect every span an allow-attribute governs: the attributed expression,
   the whole [let] binding carrying [@@lint.allow], the surrounding module
   item, or the whole file for floating [@@@lint.allow]. *)
let collect (structure : Parsetree.structure) =
  let regions = ref [] in
  let add ~whole_file loc (attrs : Parsetree.attributes) =
    List.iter
      (fun (a : Parsetree.attribute) ->
        if a.attr_name.txt = attribute_name then
          match rules_of_payload a.attr_payload with
          | [], _ -> ()
          | payload ->
            regions := region_of ~whole_file ~attr_loc:a.attr_loc loc payload :: !regions)
      attrs
  in
  let expr sub (e : Parsetree.expression) =
    add ~whole_file:false e.pexp_loc e.pexp_attributes;
    Ast_iterator.default_iterator.expr sub e
  in
  let value_binding sub (vb : Parsetree.value_binding) =
    add ~whole_file:false vb.pvb_loc vb.pvb_attributes;
    Ast_iterator.default_iterator.value_binding sub vb
  in
  let structure_item sub (item : Parsetree.structure_item) =
    (match item.pstr_desc with
    | Pstr_attribute a ->
      if a.attr_name.txt = attribute_name then (
        match rules_of_payload a.attr_payload with
        | [], _ -> ()
        | payload ->
          regions :=
            region_of ~whole_file:true ~attr_loc:a.attr_loc item.pstr_loc payload
            :: !regions)
    | _ -> ());
    Ast_iterator.default_iterator.structure_item sub item
  in
  let it = { Ast_iterator.default_iterator with expr; value_binding; structure_item } in
  it.structure it structure;
  !regions

(* Overlap, not containment: the parser can attach a trailing attribute to
   the last operand of an infix expression rather than the whole expression
   ([x = 1.0 [@lint.allow ...]] lands on [1.0]), so a finding is suppressed
   when its span intersects the attributed span at all. *)
let suppressed regions (f : Finding.t) =
  let start_cnum = f.Finding.loc.loc_start.pos_cnum in
  let end_cnum = f.Finding.loc.loc_end.pos_cnum in
  List.exists
    (fun r ->
      List.mem f.Finding.rule r.rules
      && (r.whole_file || (start_cnum <= r.end_cnum && end_cnum >= r.start_cnum)))
    regions

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Suppression regions of a file on disk; unreadable or unparseable files
   have none. Used by the typed pass, whose findings point into source files
   it did not itself parse. *)
let regions_of_file path =
  match read_file path with
  | exception Sys_error _ -> []
  | contents -> (
    let lexbuf = Lexing.from_string contents in
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | structure -> collect structure
    | exception _ -> [])
