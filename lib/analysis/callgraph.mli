(** Project-wide call graph over typed trees.

    Nodes are top-level value bindings (including bindings in nested
    modules), keyed by a normalised dotted name such as
    ["Amva.solve_status"]. Normalisation erases wrapper modules
    ([Lopc_mva.Station.f]), mangled unit names ([Lopc_mva__Station.f]) and
    local module aliases ([module S = Lopc_mva.Station]), so the same global
    always resolves to the same key however it was spelled. Each node
    records its global references (with the instantiated type at the use
    site and the exception handlers enclosing it) and its raise sites; the
    typed rules are graph walks over this structure. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string
module IMap : Map.S with type key = Ident.t

type ref_site = {
  target : string;  (** normalised dotted key of the referenced value *)
  ref_loc : Location.t;
  typ : Types.type_expr;  (** instantiated type at the reference *)
  caught : string list;
      (** exception constructor names handled around the site; ["*"] = all *)
}

type raise_site = {
  exn : string;  (** constructor base name; ["*"] when raising a computed exn *)
  written : string;  (** as written in the source, for messages *)
  raise_loc : Location.t;
  raise_caught : string list;
}

type def = {
  key : string;
  def_name : string;
  source : string;
  unit_base : string;
  def_loc : Location.t;
  refs : ref_site list;  (** in source order *)
  raises : raise_site list;
  body : Typedtree.expression option;
}

type t = {
  defs : def list;  (** deterministic unit-then-source order *)
  by_key : def SMap.t;
  types_by_key : Types.type_declaration SMap.t;
  wrappers : SSet.t;
  idents : string IMap.t;  (** toplevel binding ident → its key, all units *)
}

val flatten_path : Path.t -> string list

(** Normalise the segments of a reference path: strip [Stdlib], demangle
    [A__B] heads, drop wrapper-module heads, apply local module aliases. *)
val normalize :
  wrappers:SSet.t -> aliases:string list SMap.t -> string list -> string list

val key_of : string list -> string

val build : Cmt_loader.unit_info list -> t

val find : t -> string -> def option

(** Resolve a binding ident to the toplevel key it introduces, when the
    ident is one a [scan_unit] pass recorded (same-unit toplevel bindings,
    including bindings in nested modules and functor bodies). *)
val resolve_ident : t -> Ident.t -> string option

(** Normalised key of a reference path outside any local-alias context —
    the cross-unit spelling rules only (wrapper modules, [Stdlib],
    mangled unit names). *)
val normalize_path : t -> Path.t -> string

(** Resolve a type path seen at a use site to its project declaration.
    [owner] is the dotted module context of the site, so bare type names
    resolve within their own module first. Returns the resolved key so
    recursive expansion can update its owner. *)
val find_type :
  t -> owner:string -> string list -> (string * Types.type_declaration) option
