(* Per-function effect summaries over mutable locations.

   For every definition in the call graph this module computes (1) the
   *direct* mutable-location events of its body — each read or write of a
   ref cell, mutable record field, array, bytes, Hashtbl, Buffer, Queue,
   Stack or Atomic cell, with the operation, whether it went through
   Atomic, and the resolved base of the location — and (2) a *transitive
   summary*, the least fixpoint of

     summary(d) = direct(d)  ∪  ⋃ { summary(c) | c referenced by d }

   over the finite powerset of toplevel keys (plus two booleans), so the
   fixpoint terminates: the domain is finite and every step is a monotone
   union.

   Location bases are classified three ways. [Global key] is a toplevel
   definition (resolved through the same ident/path normalisation as the
   call graph) — the only locations whose identity survives
   interprocedural propagation. [Based (id, name)] is rooted at a local
   ident: a parameter, a capture, or a let-binding. [Opaque] is anything
   whose base the resolver cannot name (a computed expression). Writes to
   [Based] locations that were *freshly allocated* in the same definition
   (let-bound to [ref]/[Array.make]/[Hashtbl.create]/a record or array
   literal/...) are private and excluded from the summary; writes to any
   other [Based] or [Opaque] base surface as [foreign_writes] — the
   definition mutates storage owned by someone else, but which storage
   depends on its arguments. The race rules ({!Race_rules}) combine the
   two: global footprints propagate through any call depth, foreign
   writes matter when a captured mutable value flows in at a
   [Parallel.run] site. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

type target =
  | Global of string  (* toplevel definition, by call-graph key *)
  | Based of Ident.t * string  (* rooted at a local ident; name for messages *)
  | Opaque  (* computed base: (find_bucket t k) := v *)

type op = Read | Write

type via = Plain | Atomic

type event = {
  target : target;
  op : op;
  via : via;
  rmw_safe : bool;  (* an atomic read-modify-write primitive, not a plain set *)
  site : Location.t;
}

type summary = {
  global_reads : SSet.t;
  global_writes : SSet.t;  (* plain (non-Atomic) writes *)
  atomic_globals : SSet.t;  (* globals accessed through Atomic.* *)
  foreign_writes : bool;  (* plain write through a parameter/capture/opaque base *)
  foreign_reads : bool;
}

let empty_summary =
  {
    global_reads = SSet.empty;
    global_writes = SSet.empty;
    atomic_globals = SSet.empty;
    foreign_writes = false;
    foreign_reads = false;
  }

type t = {
  graph : Callgraph.t;
  events : event list SMap.t;  (* direct events per def key, source order *)
  summaries : summary SMap.t;  (* transitive fixpoint *)
  locals : Ident.t list SMap.t;  (* freshly-allocated let-bound idents per def *)
  mutable_globals : string SMap.t;  (* key -> kind, plain-mutable toplevels *)
  atomic_cells : SSet.t;  (* toplevel Atomic.t cells *)
}

(* ------------------------------------------------------------------ *)
(* The operation table                                                 *)
(* ------------------------------------------------------------------ *)

(* Known stdlib mutators/readers, by normalised callee key: which argument
   is the mutable location, what the operation does to it, and — for
   Atomic — whether the primitive is itself a safe read-modify-write. *)
let op_table : (string * (int * op * via * bool) list) list =
  [
    (":=", [ (0, Write, Plain, false) ]);
    ("incr", [ (0, Write, Plain, false) ]);
    ("decr", [ (0, Write, Plain, false) ]);
    ("!", [ (0, Read, Plain, false) ]);
    ("Array.set", [ (0, Write, Plain, false) ]);
    ("Array.unsafe_set", [ (0, Write, Plain, false) ]);
    ("Array.fill", [ (0, Write, Plain, false) ]);
    ("Array.blit", [ (0, Read, Plain, false); (2, Write, Plain, false) ]);
    ("Array.sort", [ (1, Write, Plain, false) ]);
    ("Array.get", [ (0, Read, Plain, false) ]);
    ("Array.unsafe_get", [ (0, Read, Plain, false) ]);
    ("Bytes.set", [ (0, Write, Plain, false) ]);
    ("Bytes.unsafe_set", [ (0, Write, Plain, false) ]);
    ("Bytes.fill", [ (0, Write, Plain, false) ]);
    ("Bytes.blit", [ (0, Read, Plain, false); (2, Write, Plain, false) ]);
    ("Bytes.get", [ (0, Read, Plain, false) ]);
    ("Hashtbl.add", [ (0, Write, Plain, false) ]);
    ("Hashtbl.replace", [ (0, Write, Plain, false) ]);
    ("Hashtbl.remove", [ (0, Write, Plain, false) ]);
    ("Hashtbl.reset", [ (0, Write, Plain, false) ]);
    ("Hashtbl.clear", [ (0, Write, Plain, false) ]);
    ("Hashtbl.filter_map_inplace", [ (1, Write, Plain, false) ]);
    ("Hashtbl.find", [ (0, Read, Plain, false) ]);
    ("Hashtbl.find_opt", [ (0, Read, Plain, false) ]);
    ("Hashtbl.find_all", [ (0, Read, Plain, false) ]);
    ("Hashtbl.mem", [ (0, Read, Plain, false) ]);
    ("Hashtbl.length", [ (0, Read, Plain, false) ]);
    ("Hashtbl.iter", [ (1, Read, Plain, false) ]);
    ("Hashtbl.fold", [ (1, Read, Plain, false) ]);
    ("Buffer.add_char", [ (0, Write, Plain, false) ]);
    ("Buffer.add_string", [ (0, Write, Plain, false) ]);
    ("Buffer.add_bytes", [ (0, Write, Plain, false) ]);
    ("Buffer.add_substring", [ (0, Write, Plain, false) ]);
    ("Buffer.add_buffer", [ (0, Write, Plain, false); (1, Read, Plain, false) ]);
    ("Buffer.clear", [ (0, Write, Plain, false) ]);
    ("Buffer.reset", [ (0, Write, Plain, false) ]);
    ("Buffer.truncate", [ (0, Write, Plain, false) ]);
    ("Buffer.contents", [ (0, Read, Plain, false) ]);
    ("Buffer.length", [ (0, Read, Plain, false) ]);
    ("Queue.push", [ (1, Write, Plain, false) ]);
    ("Queue.add", [ (1, Write, Plain, false) ]);
    ("Queue.pop", [ (0, Write, Plain, false) ]);
    ("Queue.take", [ (0, Write, Plain, false) ]);
    ("Queue.clear", [ (0, Write, Plain, false) ]);
    ("Queue.transfer", [ (0, Write, Plain, false); (1, Write, Plain, false) ]);
    ("Queue.peek", [ (0, Read, Plain, false) ]);
    ("Queue.top", [ (0, Read, Plain, false) ]);
    ("Queue.length", [ (0, Read, Plain, false) ]);
    ("Queue.is_empty", [ (0, Read, Plain, false) ]);
    ("Stack.push", [ (1, Write, Plain, false) ]);
    ("Stack.pop", [ (0, Write, Plain, false) ]);
    ("Stack.clear", [ (0, Write, Plain, false) ]);
    ("Stack.top", [ (0, Read, Plain, false) ]);
    ("Atomic.get", [ (0, Read, Atomic, true) ]);
    ("Atomic.set", [ (0, Write, Atomic, false) ]);
    ("Atomic.exchange", [ (0, Write, Atomic, true) ]);
    ("Atomic.compare_and_set", [ (0, Write, Atomic, true) ]);
    ("Atomic.fetch_and_add", [ (0, Write, Atomic, true) ]);
    ("Atomic.incr", [ (0, Write, Atomic, true) ]);
    ("Atomic.decr", [ (0, Write, Atomic, true) ]);
  ]

(* Projections the base resolver looks through: [a.(i) <- v] writes [a],
   [!r.field] reads [r]. *)
let projections = [ "!"; "Array.get"; "Array.unsafe_get"; "Bytes.get"; "Atomic.get" ]

(* Allocators whose let-bound result is storage private to the enclosing
   definition (until it escapes through a closure — which the race rules
   check at the capture site, not here). *)
let allocators =
  [
    "ref"; "Array.make"; "Array.init"; "Array.create_float"; "Array.copy";
    "Array.of_list"; "Array.append"; "Array.sub"; "Array.map"; "Array.mapi";
    "Array.make_matrix"; "Bytes.create"; "Bytes.make"; "Bytes.copy";
    "Bytes.of_string"; "Hashtbl.create"; "Hashtbl.copy"; "Buffer.create";
    "Queue.create"; "Stack.create"; "Atomic.make";
  ]

(* ------------------------------------------------------------------ *)
(* Per-definition event collection                                     *)
(* ------------------------------------------------------------------ *)

(* Normalised key of a callee/base path, resolving same-unit [Pident]
   references through the graph's ident table first. *)
let path_key graph path =
  match path with
  | Path.Pident id -> (
    match Callgraph.resolve_ident graph id with
    | Some key -> key
    | None -> Callgraph.normalize_path graph path)
  | _ -> Callgraph.normalize_path graph path

let nth_arg args idx =
  match List.nth_opt args idx with Some (_, arg) -> arg | None -> None

(* The base of a location expression. *)
let rec resolve_base graph (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
    match Callgraph.resolve_ident graph id with
    | Some key -> Global key
    | None -> Based (id, Ident.name id))
  | Texp_ident (path, _, _) ->
    let key = Callgraph.normalize_path graph path in
    if SMap.mem key graph.Callgraph.by_key then Global key else Opaque
  | Texp_field (obj, _, _) -> resolve_base graph obj
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when List.mem (path_key graph p) projections -> (
    match nth_arg args 0 with Some a -> resolve_base graph a | None -> Opaque)
  | _ -> Opaque

(* Idents let-bound to a fresh allocation inside [body]. Scoping is not
   tracked — idents are stamped, so a flat set is exact. *)
let fresh_locals graph (body : Typedtree.expression) =
  let acc = ref [] in
  let rec is_alloc (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_array _ | Texp_record _ -> true
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
      List.mem (path_key graph p) allocators
    | Texp_let (_, _, e) | Texp_sequence (_, e) -> is_alloc e
    | _ -> false
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    (match (vb.vb_pat.pat_desc, is_alloc vb.vb_expr) with
    | Tpat_var (id, _), true -> acc := id :: !acc
    | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.expr it body;
  !acc

(* Direct events of one expression node (the walk recurses separately). *)
let node_events graph (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_setfield (obj, _, _, _) ->
    [ { target = resolve_base graph obj; op = Write; via = Plain; rmw_safe = false;
        site = e.exp_loc } ]
  | Texp_field (obj, _, label) when label.lbl_mut = Asttypes.Mutable ->
    [ { target = resolve_base graph obj; op = Read; via = Plain; rmw_safe = false;
        site = e.exp_loc } ]
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    match List.assoc_opt (path_key graph p) op_table with
    | None -> []
    | Some specs ->
      List.filter_map
        (fun (idx, op, via, rmw_safe) ->
          match nth_arg args idx with
          | None -> None
          | Some a ->
            Some
              { target = resolve_base graph a; op; via; rmw_safe; site = a.exp_loc })
        specs)
  | _ -> []

let events_of_body graph (body : Typedtree.expression) =
  let acc = ref [] in
  let rec walk (e : Typedtree.expression) =
    acc := List.rev_append (node_events graph e) !acc;
    let it =
      { Tast_iterator.default_iterator with expr = (fun _sub child -> walk child) }
    in
    Tast_iterator.default_iterator.expr it e
  in
  walk body;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

let direct_summary ~fresh events =
  let is_fresh id = List.exists (Ident.same id) fresh in
  List.fold_left
    (fun s ev ->
      match (ev.target, ev.op, ev.via) with
      | Global g, Read, Plain -> { s with global_reads = SSet.add g s.global_reads }
      | Global g, Write, Plain -> { s with global_writes = SSet.add g s.global_writes }
      | Global g, _, Atomic -> { s with atomic_globals = SSet.add g s.atomic_globals }
      | Based (id, _), Write, Plain when not (is_fresh id) ->
        { s with foreign_writes = true }
      | Based (id, _), Read, Plain when not (is_fresh id) ->
        { s with foreign_reads = true }
      | Opaque, Write, Plain -> { s with foreign_writes = true }
      | Opaque, Read, Plain -> { s with foreign_reads = true }
      | _ -> s)
    empty_summary events

let merge a b =
  {
    global_reads = SSet.union a.global_reads b.global_reads;
    global_writes = SSet.union a.global_writes b.global_writes;
    atomic_globals = SSet.union a.atomic_globals b.atomic_globals;
    foreign_writes = a.foreign_writes || b.foreign_writes;
    foreign_reads = a.foreign_reads || b.foreign_reads;
  }

let summary_equal a b =
  SSet.equal a.global_reads b.global_reads
  && SSet.equal a.global_writes b.global_writes
  && SSet.equal a.atomic_globals b.atomic_globals
  && a.foreign_writes = b.foreign_writes
  && a.foreign_reads = b.foreign_reads

(* Least fixpoint by chaotic iteration: the domain (powerset of toplevel
   keys, twice, plus two booleans) is finite and [merge] is monotone, so
   the loop terminates. *)
let fixpoint (graph : Callgraph.t) direct =
  let sets = ref direct in
  let get key = Option.value (SMap.find_opt key !sets) ~default:empty_summary in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Callgraph.def) ->
        let current = get d.key in
        let propagated =
          List.fold_left
            (fun acc (r : Callgraph.ref_site) ->
              if SMap.mem r.target graph.Callgraph.by_key then
                merge acc (get r.target)
              else acc)
            current d.refs
        in
        if not (summary_equal propagated current) then begin
          sets := SMap.add d.key propagated !sets;
          changed := true
        end)
      graph.defs
  done;
  !sets

(* ------------------------------------------------------------------ *)
(* Mutable toplevels                                                   *)
(* ------------------------------------------------------------------ *)

let owner_of_key key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> key

let classify_toplevels (graph : Callgraph.t) =
  List.fold_left
    (fun (mutables, atomics) (d : Callgraph.def) ->
      match d.body with
      | None -> (mutables, atomics)
      | Some body -> (
        match
          Type_safety.mutability graph ~owner:(owner_of_key d.key) body.exp_type
        with
        | Type_safety.Shared kind ->
          ((if SMap.mem d.key mutables then mutables else SMap.add d.key kind mutables),
           atomics)
        | Type_safety.Atomic_cell -> (mutables, SSet.add d.key atomics)
        | Type_safety.Frozen -> (mutables, atomics)))
    (SMap.empty, SSet.empty) graph.defs

(* ------------------------------------------------------------------ *)
(* Assembly and queries                                                *)
(* ------------------------------------------------------------------ *)

let analyze (graph : Callgraph.t) =
  let events, locals, direct =
    List.fold_left
      (fun (events, locals, direct) (d : Callgraph.def) ->
        match d.body with
        | None -> (events, locals, direct)
        | Some body ->
          if SMap.mem d.key events then (events, locals, direct)
          else
            let evs = events_of_body graph body in
            let fresh = fresh_locals graph body in
            ( SMap.add d.key evs events,
              SMap.add d.key fresh locals,
              SMap.add d.key (direct_summary ~fresh evs) direct ))
      (SMap.empty, SMap.empty, SMap.empty) graph.defs
  in
  let summaries = fixpoint graph direct in
  let mutable_globals, atomic_cells = classify_toplevels graph in
  { graph; events; summaries; locals; mutable_globals; atomic_cells }

let events t key = Option.value (SMap.find_opt key t.events) ~default:[]

let fresh_in t key = Option.value (SMap.find_opt key t.locals) ~default:[]

let summary t key = SMap.find_opt key t.summaries

let mutable_global_kind t key = SMap.find_opt key t.mutable_globals

let is_atomic_cell t key = SSet.mem key t.atomic_cells

let target_name = function
  | Global key -> key
  | Based (_, name) -> name
  | Opaque -> "<expr>"

let same_target a b =
  match (a, b) with
  | Global a, Global b -> String.equal a b
  | Based (a, _), Based (b, _) -> Ident.same a b
  | _ -> false

(* The stable, human- and test-facing footprint dump behind
   [lopc_lint --effects KEY]. *)
let print_footprint ppf t key =
  match summary t key with
  | None -> false
  | Some s ->
    let pp_set label set =
      Format.fprintf ppf "  %-15s %s@." label
        (if SSet.is_empty set then "(none)"
         else String.concat " " (SSet.elements set))
    in
    let pp_flag label flag =
      Format.fprintf ppf "  %-15s %s@." label (if flag then "yes" else "no")
    in
    Format.fprintf ppf "effect footprint of %s@." key;
    pp_set "global writes:" s.global_writes;
    pp_set "global reads:" s.global_reads;
    pp_set "atomic cells:" s.atomic_globals;
    pp_flag "foreign writes:" s.foreign_writes;
    pp_flag "foreign reads:" s.foreign_reads;
    true
