(** Linter entry points: parse sources with compiler-libs, run the rule
    registry, filter suppressions, and format reports. *)

(** The seeded rule registry: {!Ast_rules.rules} then {!Project_rules.rules}.
    To add a rule, build a {!Rule.t} and extend this list (or pass a custom
    [?rules] to the functions below). *)
val default_rules : Rule.t list

(** The synthetic rule reported for [@lint.allow] attributes that carry no
    justification string. Not part of {!default_rules} — its findings come
    from the suppression regions themselves, not from a [check]. *)
val bare_suppression_rule : Rule.t

(** Lint one compilation unit given as a string. [path] determines both the
    reported file name and path-sensitive rules (lib/ vs executable code,
    lib/prng exemption, sibling-.mli lookup). [.mli] paths are only checked
    for parse errors. Findings are sorted and already suppression-filtered. *)
val lint_source : ?rules:Rule.t list -> path:string -> string -> Finding.t list

(** Lint one file from disk; unreadable or unparseable files yield a single
    [parse-error] finding. *)
val lint_file : ?rules:Rule.t list -> string -> Finding.t list

(** All .ml/.mli files under the given roots (files or directories),
    skipping _build and VCS directories, sorted. *)
val source_files : string list -> string list

(** Lint every source under the given roots. [map_tasks] runs the per-file
    tasks (the [--jobs] seam — the CLI passes a {!Lopc_repro.Parallel}
    pool's [run]); it must preserve task order. Output is byte-identical
    for any mapper because findings are re-sorted globally. *)
val lint_paths :
  ?rules:Rule.t list ->
  ?map_tasks:((unit -> Finding.t list) array -> Finding.t list array) ->
  string list ->
  Finding.t list

type format = Human | Json | Sarif

(** Print findings in the requested format. Human format appends a summary
    line when there are findings; JSON emits [{"count": n, "findings": [...]}];
    SARIF emits a single-run SARIF 2.1.0 log ({!Sarif.report}). *)
val report : Format.formatter -> format:format -> Finding.t list -> unit

(** Print the rule catalogue (id, severity, summary), one rule per line. *)
val list_rules : Format.formatter -> ?rules:Rule.t list -> unit -> unit
