(* The rule reference: one entry per rule id, carrying the rationale and a
   minimal violating example. `lopc-lint --explain <id>` prints these, and
   the README's rule table is written from the same text, so the tool and
   the docs cannot drift apart silently. *)

type entry = {
  id : string;
  severity : Finding.severity;
  stage : string;  (* "syntactic" or "typed" *)
  summary : string;
  rationale : string;
  example : string;  (* minimal violating program *)
  fix : string;
}

let entries =
  [
    {
      id = "float-equality";
      severity = Finding.Warning;
      stage = "syntactic";
      summary =
        "structural =/<>/compare applied to float literals or float-returning calls";
      rationale =
        "Queueing quantities (utilizations, residence times, rates) are floats \
         accumulated over many iterations; exact structural equality on them is \
         almost always a rounding-sensitive bug that makes convergence checks \
         platform-dependent.";
      example = "let converged r = r = 0.0";
      fix =
        "Compare with a tolerance (Float.abs (a -. b) < eps), classify \
         (Float.classify_float x = FP_zero), or use Float.equal when exact \
         equality really is intended.";
    };
    {
      id = "unguarded-division";
      severity = Finding.Warning;
      stage = "syntactic";
      summary =
        "/. by a `1. -. u`-shaped denominator with no dominating guard in the same \
         function";
      rationale =
        "The LoPC and MVA response-time formulas divide by (1 - utilization); at \
         saturation the denominator crosses zero and the result silently becomes \
         inf or nan, which then propagates through every downstream metric.";
      example = "let wait u s = s /. (1. -. u)";
      fix =
        "Guard before dividing (if u >= limit then ... else ...), clamp the \
         denominator (Float.max eps (1. -. u)), or suppress when a caller \
         provably enforces the bound.";
    };
    {
      id = "global-rng";
      severity = Finding.Error;
      stage = "syntactic";
      summary = "use of the global Stdlib.Random outside lib/prng";
      rationale =
        "The global Random stream is ambient mutable state: any call reorders \
         every later draw, so simulations stop being replayable the moment two \
         call sites share it. All randomness must flow through an explicit \
         Lopc_prng.Rng.t value.";
      example = "let jitter () = Random.float 1.0";
      fix =
        "Thread an explicit Lopc_prng.Rng.t into the function and draw from it; \
         only lib/prng may touch the raw generator.";
    };
    {
      id = "physical-equality";
      severity = Finding.Warning;
      stage = "syntactic";
      summary = "==/!= on non-unit values";
      rationale =
        "Physical equality on immutable data is representation-dependent — it \
         can differ between runs, compilers and flambda settings — so any \
         behaviour that branches on it is nondeterministic by construction.";
      example = "let same a b = a == b";
      fix = "Use structural (=) or a monomorphic equal function for the type.";
    };
    {
      id = "banned-constructs";
      severity = Finding.Error;
      stage = "syntactic";
      summary = "Obj.magic anywhere; exit or Printf.printf inside lib/";
      rationale =
        "Obj.magic defeats the type system that the rest of this linter leans \
         on; exit and printing from library code hijack the process and stdout \
         that belong to the driver, making solvers unusable as libraries.";
      example = "let cast x = Obj.magic x";
      fix =
        "Delete the Obj.magic (restructure the types); return values or use a \
         result type instead of exit/printf in library code.";
    };
    {
      id = "bare-failwith";
      severity = Finding.Warning;
      stage = "syntactic";
      summary = "failwith or raise (Failure _) inside lib/";
      rationale =
        "Failure carries only a string, so callers cannot match on the error \
         case; library errors must be typed (a dedicated exception or a result) \
         to be handleable.";
      example = "let check n = if n < 0 then failwith \"bad\"";
      fix =
        "Declare a dedicated exception or return a result; use invalid_arg only \
         for documented precondition violations.";
    };
    {
      id = "missing-mli";
      severity = Finding.Warning;
      stage = "syntactic";
      summary = "a library .ml with no sibling .mli";
      rationale =
        "Unconstrained library modules leak internals, so every refactoring is a \
         breaking change and nothing documents the intended surface.";
      example = "(* lib/foo/bar.ml exists, lib/foo/bar.mli does not *)";
      fix = "Write the interface file, exporting only the intended surface.";
    };
    {
      id = "parse-error";
      severity = Finding.Error;
      stage = "syntactic";
      summary = "file does not parse";
      rationale =
        "A file the linter cannot parse is a file none of the rules have \
         checked; treating it as clean would hide every other finding in it.";
      example = "let broken = (";
      fix = "Fix the syntax error; the compiler's message points at it.";
    };
    {
      id = "bare-suppression";
      severity = Finding.Warning;
      stage = "syntactic";
      summary = "[@lint.allow] without a justification string";
      rationale =
        "A suppression without a recorded reason rots into an unauditable \
         exemption: nobody can later tell whether the waived finding is still \
         safe, so the waiver outlives its argument.";
      example = "let x = (a = b) [@lint.allow \"float-equality\"]";
      fix =
        "Say why the finding is safe: [@lint.allow \"rule-id\" \"reason it is \
         safe here\"].";
    };
    {
      id = "determinism-taint";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "a nondeterminism source reachable from the simulator or a solver entry \
         point";
      rationale =
        "The contention model is validated by comparing solver output against \
         simulation bit-for-bit across runs; any path from a simulator or solver \
         entry point to the global RNG, a wall clock, Hashtbl iteration order, or \
         polymorphic compare at a float-bearing or abstract type makes that \
         comparison flaky in ways unit tests rarely catch. The finding prints the \
         call chain from the entry point to the source.";
      example =
        "let cost () = Sys.time ()\n\
         let solve_status model = if cost () > 0. then `Converged else `Diverged";
      fix =
        "Thread an explicit Lopc_prng.Rng.t, iterate in a deterministic order, \
         or use a monomorphic comparator (Float.compare, Int.equal, a \
         hand-written total order).";
    };
    {
      id = "exn-escape";
      severity = Finding.Error;
      stage = "typed";
      summary = "an exception can escape a solve_status (non-raising) entry point";
      rationale =
        "solve_status promises callers a status value instead of an exception — \
         that is the whole point of the _status variants. The analysis computes, \
         by fixpoint over the call graph, every exception constructor that can \
         escape each solve_status transitively, subtracting what enclosing \
         handlers catch; only Invalid_argument (the documented precondition \
         contract) is permitted. The finding shows a witness call chain down to \
         the raise site.";
      example =
        "let step x = if x > 10. then raise Exit else x +. 1.\n\
         let solve_status x = `Converged (step x)";
      fix =
        "Catch the exception and map it onto the status result, validate \
         earlier with invalid_arg, or suppress if the raise is provably \
         unreachable.";
    };
    {
      id = "rng-stream-discipline";
      severity = Finding.Error;
      stage = "typed";
      summary = "a stream produced by Rng.split is consumed more than once on some path";
      rationale =
        "Rng.split exists so each consumer owns an independent stream; if one \
         child stream feeds two consumers, their draw sequences couple, and a \
         change in one consumer's draw count silently shifts the other's values \
         — replay breaks with no error anywhere. The rule treats each split \
         result as a linear resource: at most one use along any execution path \
         (branch arms are alternatives; loop and lambda bodies count double).";
      example =
        "let pair rng =\n\
        \  let s = Rng.split rng in\n\
        \  (Rng.float s 1.0, Rng.float s 1.0)";
      fix =
        "Split once per consumer: let s1 = Rng.split rng in let s2 = Rng.split \
         rng in ... — never alias or re-draw from the same child.";
    };
    {
      id = "parallel-rng-capture";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "a task passed to Parallel.run/map captures a raw Rng.t from outside the \
         task";
      rationale =
        "Tasks handed to Parallel.run execute on whichever domain steals them, in \
         whatever order workers reach them. Parallel.run is order-insensitive \
         exactly when every task draws only from its own pre-split stream, \
         derived serially and keyed on the task index; a task that draws from or \
         splits a generator captured from the enclosing scope advances shared \
         state in worker completion order, so its values depend on scheduling. \
         Arrays of streams (Rng.t array, one element per task) are the \
         sanctioned carrier and are not flagged.";
      example =
        "let noisy pool rng =\n\
        \  Parallel.run pool (Array.init 4 (fun _ -> fun () -> Rng.float rng))";
      fix =
        "Derive per-task streams before building the task array: let streams = \
         Rng.split_n rng n in Parallel.run pool (Array.init n (fun i -> fun () \
         -> Rng.float streams.(i))).";
    };
    {
      id = "obs-no-wallclock";
      severity = Finding.Error;
      stage = "typed";
      summary = "a wall clock reachable from the observability layer (lib/obs)";
      rationale =
        "The observability layer records spans and probe samples whose \
         timestamps are simulated cycles — that is what makes trace files \
         byte-identical across runs and across --jobs settings, and what lets \
         tests compare traces exactly. Any definition reachable from lib/obs \
         that reads a wall clock (Sys.time, Unix.gettimeofday, Unix.time) \
         reintroduces real time into that path, so two identical simulations \
         could emit different traces. The analysis walks the call graph from \
         every lib/obs definition and reports each clock reference with its \
         reachability chain.";
      example =
        "let emit recorder ~track ~name =\n\
        \  Recorder.instant recorder ~ts:(Unix.gettimeofday ()) ~track ~name";
      fix =
        "Timestamp with the simulated clock: pass Engine.now (or the event's \
         arrival time) down to the emitter explicitly. Wall-clock timing \
         belongs in the bench harness, outside lib/obs.";
    };
    {
      id = "unbounded-retry";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "a while loop reachable from a solver or simulator entry with no budget, \
         cancellation token, or iteration bound in sight";
      rationale =
        "The supervised runtime can only stop work that polls a budget: fuel and \
         cancellation are checked once per iteration, so a retry or polling loop \
         that never consults a budget, token, or explicit bound is precisely the \
         loop that wedges the process when the model leaves its convergent \
         regime. The analysis walks the call graph from every solve/solve_status \
         entry and the simulator, and flags each while loop whose enclosing \
         definition mentions no budget-ish identifier (fuel, budget, cancel, \
         max_, deadline, remaining) and no direct Budget.* / Cancel.* \
         reference. for loops are inherently bounded and exempt; the finding \
         shows the call chain to the loop.";
      example =
        "let rec settle state =\n\
        \  while not (converged state) do\n\
        \    relax state\n\
        \  done\n\
         let solve_status model = settle model; `Converged";
      fix =
        "Poll a Lopc_robust.Budget.t (or Cancel.t) once per iteration and turn \
         exhaustion into an Exhausted status, or bound the loop with an \
         explicit max_*/fuel counter; suppress only when the loop is provably \
         bounded by its data.";
    };
    {
      id = "domain-shared-mutation";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "a task passed to Parallel.run/map writes a mutable location visible \
         outside the task";
      rationale =
        "Tasks run concurrently on work-stealing domains, so a plain \
         (non-Atomic) write to anything visible outside the task — a ref or \
         array captured from the enclosing scope, a module-level mutable, or a \
         captured mutable value handed to a function that writes through its \
         parameters — is a data race: the final contents depend on which \
         domain got there last. The effect analysis follows calls to a \
         fixpoint, so the write is found however deep the helper that performs \
         it; the finding shows the call chain. Mutable state allocated inside \
         the task body is private and fine; Atomic.* operations are the \
         sanctioned cross-domain primitives and are exempt.";
      example =
        "let count pool xs =\n\
        \  let hits = ref 0 in\n\
        \  Parallel.run pool (Array.map (fun x -> fun () -> \n\
        \    if x > 0 then hits := !hits + 1) xs)";
      fix =
        "Give each task its own slot — a results array indexed by task, \
         allocated at plan-build time, combined after the join — or make the \
         shared cell an Atomic and use its read-modify-write operations.";
    };
    {
      id = "atomic-read-modify-write";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "Atomic.get followed by Atomic.set on the same cell in one function";
      rationale =
        "A get/set pair on an Atomic.t is a check-then-act, not an atomic \
         update: any write another domain lands between the get and the set is \
         silently overwritten. Atomicity of the individual operations does not \
         compose — the cell ends up exactly as racy as a plain ref, while \
         looking synchronised. Cells freshly allocated in the same function \
         are exempt, since set-after-make is initialisation before sharing.";
      example = "let bump c = Atomic.set c (Atomic.get c + 1)";
      fix =
        "Use Atomic.incr/Atomic.fetch_and_add for counters, or a \
         compare_and_set retry loop for general updates; reserve Atomic.set \
         for initialisation before the cell is shared.";
    };
    {
      id = "mutable-toplevel-escape";
      severity = Finding.Warning;
      stage = "typed";
      summary = "a task passed to Parallel.run/map reads module-level mutable state";
      rationale =
        "A module-level ref, table or buffer has one instance per program, \
         shared by every task on every domain. Even read-only use inside a \
         task ties its result to whatever other code — or other tasks — have \
         done to that instance, so runs stop being a pure function of the \
         plan and replay across --jobs settings breaks. The effect analysis \
         reports reads reached through any chain of calls, with the chain.";
      example =
        "let cache : (int, float) Hashtbl.t = Hashtbl.create 64\n\
         let lookup n = Hashtbl.find_opt cache n\n\
         let eval pool plan =\n\
        \  Parallel.run pool (Array.map (fun t -> fun () -> lookup t) plan)";
      fix =
        "Allocate the state per task at plan-build time and pass it in as an \
         argument (or through the task array); a toplevel table that is \
         provably frozen before any parallel run may be suppressed with a \
         justification.";
    };
    {
      id = "probability-range";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "a value flowing into a [@lopc.prob]-annotated parameter, field or \
         binding may lie outside [0, 1]";
      rationale =
        "Every solver in this repo iterates on probabilities and utilisations \
         with hard [0, 1] domains; the contention equations silently produce \
         garbage the moment one leaves it. The interval abstract interpreter \
         tracks value ranges flow-sensitively — a guard refines the branch it \
         dominates, a raising branch contributes nothing — so a value is only \
         accepted when its interval on that path provably fits. An \
         unconstrained value (interval top) counts as a violation: the range \
         must be established by a guard, a validating constructor, or an \
         annotation on the producer.";
      example =
        "let consume ~q:(q [@lopc.prob]) = 1. -. q\n\
         let f x = consume ~q:(1. +. x) (* interval [1, inf] on any x >= 0 *)";
      fix =
        "Validate or clamp before the annotated slot (0. <= q && q <= 1., or \
         Float.min 1. (Float.max 0. q)), or annotate the producing parameter \
         so the interval carries through; suppress with a justification only \
         when the range is enforced somewhere the analysis cannot see.";
    };
    {
      id = "division-by-vanishing";
      severity = Finding.Warning;
      stage = "typed";
      summary =
        "a subtraction-shaped denominator (the 1 - u family) whose interval \
         contains 0 on some path with no dominating guard";
      rationale =
        "LoPC's contention equations divide by 1 - u terms that vanish exactly \
         at saturation, the regime every experiment pushes toward. The \
         syntactic unguarded-division rule only checks that *some* enclosing \
         conditional mentions the denominator's identifiers; the typed rule \
         supersedes it with real path sensitivity: the division is flagged \
         only when the denominator's interval *on that path* still contains \
         0 — so `if u >= 1. then ... else s /. (1. -. u)` is proven safe \
         (the else-branch refines u to [-inf, pred 1.], making the \
         denominator positive), while a guard on only one of two branches is \
         caught.";
      example =
        "let bad u s = if u < 1. then s else s /. (1. -. u)\n\
         (* guard on the wrong branch: here u >= 1., so 1 - u <= 0 *)";
      fix =
        "Guard the division so the denominator interval excludes 0 on its \
         path (if u >= 1. then ... else x /. (1. -. u)), or saturate with \
         Float.max eps (1. -. u); suppress with a justification when \
         saturation is impossible by construction.";
    };
    {
      id = "negative-cost";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "a value flowing into a [@lopc.cost]-annotated parameter, field or \
         binding may be negative or NaN";
      rationale =
        "Service times, handler costs and message counts are non-negative by \
         definition; a negative or NaN cost reaching a solver entry turns \
         the fixed point into garbage that may still converge — the worst \
         failure mode, because nothing crashes. The interval stage proves \
         non-negativity per path (subtractions are the usual culprit) and \
         rejects any flow whose interval admits values below zero, including \
         unconstrained top.";
      example =
        "type p = { st : float [@lopc.cost] }\n\
         let shrink base delta = { st = base -. delta }\n\
         (* [base - delta] has interval [-inf, inf]: delta may exceed base *)";
      fix =
        "Establish the sign with a guard or clamp (Float.max 0. x) before the \
         annotated slot, or validate at the construction boundary; suppress \
         with a justification when the invariant is enforced dynamically.";
    };
    {
      id = "unit-mismatch";
      severity = Finding.Error;
      stage = "typed";
      summary =
        "two quantities with different [@lopc.unit] tags are mixed additively";
      rationale =
        "The model mixes cycle counts, per-cycle rates and dimensionless \
         probabilities in one float type; adding a cycle count to a rate \
         typechecks and is always wrong. [@lopc.unit \"cycles\"]-style tags \
         on record fields and parameters give the absint stage a dimension \
         for each value; units propagate through +,-, min/max and bindings, \
         and an additive mix of two different known units — or a flow of a \
         known unit into a slot declared with another — is reported. \
         Multiplication clears the tag (it genuinely changes dimension).";
      example =
        "type p = { w : float [@lopc.unit \"cycles\"] }\n\
         let bad (p : p) (rate [@lopc.unit \"1/cycle\"]) = p.w +. rate";
      fix =
        "Convert explicitly before mixing (multiply by the conversion factor, \
         which clears the tag), or fix whichever [@lopc.unit] annotation is \
         wrong.";
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) entries

let pp_entry ppf e =
  Format.fprintf ppf "%s (%s, %s stage)@.  %s@.@.%s@.@.Example (violates the rule):@."
    e.id
    (Finding.severity_to_string e.severity)
    e.stage e.summary e.rationale;
  String.split_on_char '\n' e.example
  |> List.iter (fun line -> Format.fprintf ppf "    %s@." line);
  Format.fprintf ppf "@.Fix: %s@." e.fix

(* The whole catalogue as one markdown document: per-stage summary tables
   linking into a details section per rule. `lopc_lint --catalogue-md`
   prints this, a dune rule diffs it against the committed RULES.md, and
   the README points at RULES.md — so the documentation is generated from
   the same entries the tool executes and cannot drift. *)
let pp_markdown ppf () =
  let stage_entries stage = List.filter (fun e -> e.stage = stage) entries in
  let table stage =
    Format.fprintf ppf "| Rule | Severity | Summary |@.|---|---|---|@.";
    List.iter
      (fun e ->
        Format.fprintf ppf "| [`%s`](#%s) | %s | %s |@." e.id e.id
          (Finding.severity_to_string e.severity)
          e.summary)
      (stage_entries stage);
    Format.fprintf ppf "@."
  in
  Format.fprintf ppf
    "# lopc-lint rule catalogue@.@.<!-- Generated by `lopc_lint --catalogue-md`. \
     Do not edit by hand: the@.     runtest diff rule regenerates it; `dune \
     promote` accepts changes. -->@.@.Two stages: syntactic rules run on the \
     parse tree of every source file;@.typed rules need the `.cmt` trees of a \
     completed `dune build` and reason@.across modules. `lopc_lint --explain \
     <id>` prints the same text in the@.terminal.@.@.## Syntactic stage@.@.";
  table "syntactic";
  Format.fprintf ppf "## Typed stage@.@.";
  table "typed";
  Format.fprintf ppf "## Details@.";
  List.iter
    (fun e ->
      Format.fprintf ppf "@.### %s@.@.**%s, %s stage** — %s@.@.%s@.@." e.id
        (Finding.severity_to_string e.severity)
        e.stage e.summary e.rationale;
      Format.fprintf ppf "Example (violates the rule):@.@.```ocaml@.%s@.```@.@."
        e.example;
      Format.fprintf ppf "**Fix:** %s@." e.fix)
    entries
