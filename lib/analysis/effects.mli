(** Per-function effect summaries over mutable locations.

    For every definition in the call graph, collects the direct mutable
    read/write events of its body (ref cells, mutable record fields,
    arrays, bytes, hash tables, buffers, queues, stacks, Atomic cells)
    and propagates them interprocedurally to a least fixpoint, so a
    definition's summary covers everything its callees touch. Location
    bases resolve to a toplevel key when possible; writes through
    parameters or captures that were not freshly allocated locally
    surface as the [foreign_writes]/[foreign_reads] flags. The race
    rules ({!Race_rules}) are built on these summaries. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

type target =
  | Global of string  (** toplevel definition, by call-graph key *)
  | Based of Ident.t * string  (** rooted at a local ident; name for messages *)
  | Opaque  (** computed base the resolver cannot name *)

type op = Read | Write

type via = Plain | Atomic

type event = {
  target : target;
  op : op;
  via : via;
  rmw_safe : bool;
      (** an atomic read-modify-write primitive ([fetch_and_add],
          [compare_and_set], ...), as opposed to a plain [Atomic.set] *)
  site : Location.t;
}

type summary = {
  global_reads : SSet.t;
  global_writes : SSet.t;  (** plain (non-Atomic) writes *)
  atomic_globals : SSet.t;  (** globals accessed through [Atomic.*] *)
  foreign_writes : bool;
      (** plain write through a parameter, capture, or opaque base *)
  foreign_reads : bool;
}

val empty_summary : summary

type t = {
  graph : Callgraph.t;
  events : event list SMap.t;  (** direct events per def key, source order *)
  summaries : summary SMap.t;  (** transitive fixpoint *)
  locals : Ident.t list SMap.t;
      (** freshly-allocated let-bound idents per def *)
  mutable_globals : string SMap.t;
      (** key → kind, toplevel definitions of plain-mutable type *)
  atomic_cells : SSet.t;  (** toplevel [Atomic.t] cells *)
}

val analyze : Callgraph.t -> t

(** Normalised key of a callee/base path, resolving same-unit [Pident]
    references through the graph's ident table first. *)
val path_key : Callgraph.t -> Path.t -> string

(** Mutable-location events of a single expression node (the caller
    recurses). *)
val node_events : Callgraph.t -> Typedtree.expression -> event list

(** Direct events of one definition, in source order ([[]] if unknown). *)
val events : t -> string -> event list

(** Idents of the definition's let-bindings whose right-hand side is a
    fresh allocation — storage private to the definition. *)
val fresh_in : t -> string -> Ident.t list

val summary : t -> string -> summary option

(** [Some kind] when the key is a toplevel definition of plain-mutable
    type (a ref cell, hash table, mutable record, ...). *)
val mutable_global_kind : t -> string -> string option

val is_atomic_cell : t -> string -> bool

val target_name : target -> string

(** Same location base: equal global keys, or the same stamped ident. *)
val same_target : target -> target -> bool

(** Print the transitive footprint of a definition in the stable format
    behind [lopc_lint --effects KEY]; [false] when the key is unknown. *)
val print_footprint : Format.formatter -> t -> string -> bool
