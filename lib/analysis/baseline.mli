(** Accepted-findings baseline behind [lopc_lint baseline write|diff].

    The file format is a sorted tab-separated table — one line per
    (severity, rule, file) with its finding count, after a [#]-comment
    header — so it diffs cleanly in review and needs no JSON parser.

    [diff] compares current findings against the stored counts: any
    (rule, file) whose {e error}-severity count exceeds the baseline is a
    regression and CI hard-fails; warning drift and disappearing
    findings are reported but not fatal. *)

(** Serialise the aggregated counts to [path] (atomically via rename). *)
val write : path:string -> Finding.t list -> unit

(** Render a markdown drift table to the formatter and return [true] iff
    there is at least one new error-severity finding against the
    baseline at [path]. Raises [Sys_error] if the baseline is
    unreadable. *)
val diff : path:string -> Format.formatter -> Finding.t list -> bool
