let default_rules = Ast_rules.rules @ Project_rules.rules

let parse_error_rule =
  Rule.v ~id:"parse-error" ~severity:Finding.Error ~summary:"file does not parse"
    ~hint:"fix the syntax error; unparseable files cannot be analysed"
    ~check:(fun ~path:_ _ -> [])

(* Not a [check] rule: bare-suppression findings are synthesised by
   [lint_source] from the suppression regions themselves, because the
   evidence is the attribute, not the code it governs. *)
let bare_suppression_rule =
  Rule.v ~id:"bare-suppression" ~severity:Finding.Warning
    ~summary:"[@lint.allow] without a justification string"
    ~hint:
      "say why the finding is safe to ignore: [@lint.allow \"rule-id\" \"reason it is \
       safe here\"]; unjustified suppressions rot into unauditable exemptions"
    ~check:(fun ~path:_ _ -> [])

let bare_suppression_findings regions =
  List.filter_map
    (fun (r : Suppress.region) ->
      match r.justification with
      | Some _ -> None
      | None ->
        Some
          (Rule.finding bare_suppression_rule ~loc:r.attr_loc
             (Format.asprintf "suppression of %s carries no justification"
                (String.concat ", " r.rules))))
    regions

let whole_file_loc path =
  let pos = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 } in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Parse_failed of Location.t * string

(* compiler-libs' lexer keeps global mutable state (its string buffer and
   comment stack), so parsing is not domain-safe. Serialise the parse
   itself; the rule checks, suppression filtering and sorting — the bulk
   of a task under [--jobs N] — still run in parallel. *)
let parse_lock = Mutex.create ()

let parse ~path contents =
  let kind = if Filename.check_suffix path ".mli" then `Intf else `Impl in
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf path;
  Mutex.protect parse_lock @@ fun () ->
  match kind with
  | `Impl -> (
    try Structure (Parse.implementation lexbuf) with
    | Syntaxerr.Error err ->
      Parse_failed (Syntaxerr.location_of_error err, "syntax error")
    | Lexer.Error (_, loc) -> Parse_failed (loc, "lexer error")
    | exn -> Parse_failed (whole_file_loc path, Printexc.to_string exn))
  | `Intf -> (
    try Signature (Parse.interface lexbuf) with
    | Syntaxerr.Error err ->
      Parse_failed (Syntaxerr.location_of_error err, "syntax error")
    | exn -> Parse_failed (whole_file_loc path, Printexc.to_string exn))

let check_parsed ?(rules = default_rules) ~path parsed =
  match parsed with
  | Parse_failed (loc, msg) -> [ Rule.finding parse_error_rule ~loc msg ]
  | Signature _ -> []
  | Structure structure ->
    let regions = Suppress.collect structure in
    (* Only a justified suppression may silence a bare-suppression finding,
       otherwise [@lint.allow "bare-suppression"] would excuse itself. *)
    let justified =
      List.filter (fun (r : Suppress.region) -> r.justification <> None) regions
    in
    let rule_findings =
      rules
      |> List.concat_map (fun (r : Rule.t) -> r.check ~path structure)
      |> List.filter (fun f -> not (Suppress.suppressed regions f))
    in
    let bare =
      bare_suppression_findings regions
      |> List.filter (fun f -> not (Suppress.suppressed justified f))
    in
    List.sort Finding.compare (rule_findings @ bare)

let lint_source ?rules ~path contents =
  check_parsed ?rules ~path (parse ~path contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?rules path =
  match read_file path with
  | contents -> lint_source ?rules ~path contents
  | exception Sys_error msg ->
    [ Rule.finding parse_error_rule ~loc:(whole_file_loc path) msg ]

let skipped_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* Depth-first listing of every .ml/.mli under [roots]; a root that is itself
   a file is taken as-is. Results are sorted for stable reports. *)
let source_files roots =
  let acc = ref [] in
  let rec visit path =
    if Sys.is_directory path then begin
      if not (List.mem (Filename.basename path) skipped_dirs) then
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.iter (fun entry -> visit (Filename.concat path entry))
    end
    else if is_source path then acc := path :: !acc
  in
  List.iter visit roots;
  List.rev !acc

(* [map_tasks] is the parallelism seam: the CLI injects a pool-backed
   mapper ([Lopc_repro.Parallel.run]) for [--jobs N] without this library
   depending on the runtime. Any mapper must return results in task
   order; findings are then concatenated in file order and sorted, so the
   output is byte-identical whatever the worker count.

   Each task is the whole per-file job — read, parse, check — and only
   the parse itself runs under [parse_lock]. Parsing stays serialised
   (compiler-libs' lexer state, see above), but it now overlaps with
   other files' reads and rule checks instead of completing for every
   file before the first check starts: the old layout parsed everything
   up front as a serial prefix, which made [--jobs N] strictly slower
   than [--jobs 1] (pool overhead with no overlap to pay for it). *)
let lint_paths ?rules ?map_tasks roots =
  let files = source_files roots in
  let tasks =
    Array.of_list
      (List.map
         (fun path () ->
           match read_file path with
           | contents -> check_parsed ?rules ~path (parse ~path contents)
           | exception Sys_error msg ->
             [ Rule.finding parse_error_rule ~loc:(whole_file_loc path) msg ])
         files)
  in
  let results =
    match map_tasks with
    | Some run -> run tasks
    | None -> Array.map (fun task -> task ()) tasks
  in
  Array.to_list results |> List.concat |> List.sort Finding.compare

type format = Human | Json | Sarif

let report ppf ~format findings =
  match format with
  | Sarif -> Sarif.report ppf findings
  | Human ->
    List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp_human f) findings;
    let errors, warnings =
      List.partition (fun (f : Finding.t) -> f.severity = Finding.Error) findings
    in
    if findings <> [] then
      Format.fprintf ppf "%d finding%s (%d error%s, %d warning%s)@."
        (List.length findings)
        (if List.length findings = 1 then "" else "s")
        (List.length errors)
        (if List.length errors = 1 then "" else "s")
        (List.length warnings)
        (if List.length warnings = 1 then "" else "s")
  | Json ->
    Format.fprintf ppf "{@[<v 1>@,\"count\": %d,@,\"findings\": [" (List.length findings);
    List.iteri
      (fun i f ->
        if i > 0 then Format.fprintf ppf ",";
        Format.fprintf ppf "@,  %a" Finding.pp_json f)
      findings;
    Format.fprintf ppf "@,]@]@,}@."

let list_rules ppf ?(rules = default_rules) () =
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf ppf "%-20s %-7s %s@." r.id
        (Finding.severity_to_string r.severity)
        r.summary)
    rules
