(** The [@lopc.*] numeric-contract attributes the absint stage checks.

    Attach them to record-field declarations and to function parameter
    patterns:

    {[
      type t = {
        st : float; [@lopc.cost] [@lopc.unit "cycles"]
        q : float; [@lopc.prob]
      }

      let solve ~(q [@lopc.prob] : float) = ...
    ]}

    - [\[@lopc.prob\]] — the value must lie in \[0, 1\] (and not be NaN);
      violations report as [probability-range].
    - [\[@lopc.cost\]] — the value must be ≥ 0 (service times, message
      counts, rates); violations report as [negative-cost].
    - [\[@lopc.range "lo hi"\]] — generic closed-interval contract.
    - [\[@lopc.unit "cycles"\]] — dimension tag; mixing two different
      units additively reports as [unit-mismatch]. *)

type t =
  | Prob
  | Cost
  | Range of float * float
  | Unit of string

(** All well-formed [lopc.*] annotations among [attrs], declaration
    order. Malformed payloads (a non-string, an unparsable range) are
    ignored. *)
val of_attributes : Parsetree.attributes -> t list

(** The admissible interval of a range-like annotation; [None] for
    [Unit]. *)
val interval : t -> Interval.t option

(** Rule id a violation of this annotation reports under. *)
val rule_id : t -> string

(** The unit tag, if any annotation carries one. *)
val unit_of : t list -> string option

(** Human rendering for messages: ["probability [0, 1]"],
    ["non-negative cost"], ... *)
val describe : t -> string
