(** The rule reference behind [lopc-lint --explain].

    One entry per rule id — syntactic and typed — with the rationale and a
    minimal violating example. The README's rule documentation is written
    from the same text, so tool output and docs share a single source. *)

type entry = {
  id : string;
  severity : Finding.severity;
  stage : string;  (** ["syntactic"] or ["typed"] *)
  summary : string;
  rationale : string;
  example : string;  (** minimal violating program *)
  fix : string;
}

(** Every rule, stage-1 ids first, then the typed ids. *)
val entries : entry list

val find : string -> entry option

val pp_entry : Format.formatter -> entry -> unit

(** The whole catalogue as one markdown document (summary tables per stage
    plus a details section per rule) — the generated [RULES.md]. *)
val pp_markdown : Format.formatter -> unit -> unit
