(* Determinism taint: no function reachable from the simulator (anything
   under an entry directory) or from a solver entry point (any function
   named solve/solve_status, plus explicit --entry keys) may reach a
   nondeterminism source. Sources are wall clocks, the global Stdlib.Random
   stream, Hashtbl iteration (unspecified hash order), and polymorphic
   compare/equality/hash instantiated at a float-bearing, abstract or
   polymorphic type. Each finding carries the reachability chain from the
   entry that first discovered the tainted definition. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

let rule_id = "determinism-taint"

let severity = Finding.Error

let summary =
  "a nondeterminism source reachable from the simulator or a solver entry point"

let hint =
  "thread an explicit Lopc_prng.Rng.t, iterate in a deterministic order, or compare \
   with a monomorphic comparator (Float.compare, Int.equal, a hand-written total \
   order); if the site is provably harmless, suppress with [@lint.allow \
   \"determinism-taint\" \"why\"]"

type config = {
  entries : string list;  (* extra entry keys or key prefixes, from --entry *)
  entry_dirs : string list;
  entry_names : string list;
}

let default_config =
  {
    entries = [];
    entry_dirs = [ "lib/activemsg"; "lib/eventsim" ];
    entry_names = [ "solve"; "solve_status" ];
  }

let dir_prefix dir path =
  let n = String.length dir in
  String.length path > n && String.sub path 0 n = dir && path.[n] = '/'

let is_entry config (d : Callgraph.def) =
  List.exists (fun dir -> dir_prefix dir d.Callgraph.source) config.entry_dirs
  || List.mem d.Callgraph.def_name config.entry_names
  || List.exists
       (fun e ->
         d.Callgraph.key = e
         || (String.length d.Callgraph.key > String.length e
            && String.sub d.Callgraph.key 0 (String.length e + 1) = e ^ "."))
       config.entries

let path_head target =
  match String.index_opt target '.' with
  | Some i -> String.sub target 0 i
  | None -> target

let wall_clocks = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let hash_iterators = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let poly_comparators = [ "compare"; "="; "<>"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

(* Is this reference itself a nondeterminism source? *)
let source_of graph (d : Callgraph.def) (r : Callgraph.ref_site) =
  if path_head r.target = "Random" then
    Some (Printf.sprintf "the global RNG %s (replay cannot reseed it)" r.target)
  else if List.mem r.target wall_clocks then
    Some (Printf.sprintf "the wall clock %s" r.target)
  else if List.mem r.target hash_iterators then
    Some (Printf.sprintf "%s (iteration order follows the hash, not the program)" r.target)
  else if List.mem r.target poly_comparators then
    match Type_safety.comparison_domain r.typ with
    | None -> None
    | Some domain -> (
      match Type_safety.unsafe_reason graph ~owner:d.unit_base domain with
      | Some reason ->
        Some (Printf.sprintf "polymorphic %s applied at %s" r.target reason)
      | None -> None)
  else None

let check ?(config = default_config) (graph : Callgraph.t) =
  let findings = ref [] in
  let visited = ref SSet.empty in
  let queue = Queue.create () in
  let entries =
    List.filter (is_entry config) graph.defs
    |> List.map (fun (d : Callgraph.def) -> d.key)
    |> List.sort_uniq String.compare
  in
  List.iter (fun k -> Queue.push (k, [ k ]) queue) entries;
  List.iter (fun k -> visited := SSet.add k !visited) entries;
  while not (Queue.is_empty queue) do
    let key, chain = Queue.pop queue in
    match Callgraph.find graph key with
    | None -> ()
    | Some d ->
      List.iter
        (fun (r : Callgraph.ref_site) ->
          (match source_of graph d r with
          | Some desc ->
            let message =
              Printf.sprintf "%s; reachable as %s" desc
                (String.concat " -> " (List.rev chain))
            in
            findings :=
              Finding.v ~rule:rule_id ~severity ~loc:r.ref_loc ~message ~hint
              :: !findings
          | None -> ());
          if SMap.mem r.target graph.by_key && not (SSet.mem r.target !visited)
          then begin
            visited := SSet.add r.target !visited;
            Queue.push (r.target, r.target :: chain) queue
          end)
        d.refs
  done;
  List.rev !findings
