(** RNG stream discipline (typed, linear-use approximation).

    A stream returned by [Rng.split] is a linear resource: each child
    stream must have exactly one consumer, or draw sequences couple and
    bit-for-bit replay silently breaks. For every let-binding of a split
    result the rule computes the maximum number of uses of the bound
    variable along any execution path — branch arms are alternatives
    (max), sequencing adds, and uses under a lambda or loop body count
    double because the body may run repeatedly. Two or more uses on one
    path is a finding at the binding site, listing the use lines. *)

val rule_id : string

val severity : Finding.severity

val summary : string

val check : Callgraph.t -> Finding.t list
