(* Exception escape: every solve_status function, and everything it calls
   transitively, must be raise-free apart from Invalid_argument (the
   documented precondition contract) and exceptions that are raised and
   caught before they can escape. "Non-raising" is a headline guarantee of
   the solver API — callers branch on the returned status instead of
   wrapping calls in try — so it is checked here rather than promised in
   prose.

   The analysis computes, per definition, the set of exception constructor
   names that can escape it: its own uncaught raise sites, known raising
   stdlib helpers (failwith, Hashtbl.find, ...), and the escape sets of its
   project callees minus whatever the enclosing handlers at each call site
   catch. "*" stands for a computed exception (re-raise of a bound value),
   which only a wildcard handler removes. Stdlib functions outside the known
   list are assumed non-raising, and implicit bounds/assert failures are out
   of scope: both are documented approximations. *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

let rule_id = "exn-escape"

let severity = Finding.Error

let summary = "an exception can escape a solve_status (non-raising) entry point"

let hint =
  "catch the exception and map it onto the status result (Converged/Saturated/\
   Diverged), validate earlier with invalid_arg, or — if the raise is provably \
   unreachable — suppress with [@lint.allow \"exn-escape\" \"why\"]"

type config = {
  entry_names : string list;  (* definitions checked for the non-raising contract *)
  allowed : string list;  (* exceptions the contract permits *)
}

let default_config =
  { entry_names = [ "solve_status" ]; allowed = [ "Invalid_argument" ] }

(* Stdlib helpers that raise, by normalised key. *)
let external_raisers =
  [
    ("invalid_arg", "Invalid_argument");
    ("failwith", "Failure");
    ("Hashtbl.find", "Not_found");
    ("List.find", "Not_found");
    ("List.assoc", "Not_found");
    ("List.hd", "Failure");
    ("List.tl", "Failure");
    ("Option.get", "Invalid_argument");
    ("Queue.pop", "Empty");
    ("Queue.take", "Empty");
    ("Queue.peek", "Empty");
    ("Stack.pop", "Empty");
    ("Stack.top", "Empty");
    ("int_of_string", "Failure");
    ("float_of_string", "Failure");
  ]

let catches caught exn = List.mem "*" caught || List.mem exn caught

(* Exceptions a definition introduces by itself (before callee propagation). *)
let direct_escapes (d : Callgraph.def) =
  let from_raises =
    List.filter_map
      (fun (r : Callgraph.raise_site) ->
        if catches r.raise_caught r.exn then None else Some r.exn)
      d.raises
  in
  let from_externals =
    List.filter_map
      (fun (r : Callgraph.ref_site) ->
        match List.assoc_opt r.target external_raisers with
        | Some exn when not (catches r.caught exn) -> Some exn
        | _ -> None)
      d.refs
  in
  SSet.of_list (from_raises @ from_externals)

(* Fixpoint of escape(d) = direct(d) ∪ ⋃ (escape(callee) \ caught-at-site). *)
let escape_sets (graph : Callgraph.t) =
  let sets =
    ref
      (List.fold_left
         (fun acc (d : Callgraph.def) ->
           if SMap.mem d.key acc then acc else SMap.add d.key (direct_escapes d) acc)
         SMap.empty graph.defs)
  in
  let escape key = Option.value (SMap.find_opt key !sets) ~default:SSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Callgraph.def) ->
        let current = escape d.key in
        let propagated =
          List.fold_left
            (fun acc (r : Callgraph.ref_site) ->
              if not (SMap.mem r.target graph.by_key) then acc
              else
                SSet.fold
                  (fun exn acc ->
                    if catches r.caught exn then acc else SSet.add exn acc)
                  (escape r.target) acc)
            current d.refs
        in
        if not (SSet.equal propagated current) then begin
          sets := SMap.add d.key propagated !sets;
          changed := true
        end)
      graph.defs
  done;
  !sets

(* A witness chain from [key] to a site that lets [exn] out: first a direct
   raise or known-raising stdlib call, otherwise descend into the first
   callee whose escape set still carries [exn] past the handlers at the call
   site. Termination: escape(d) ∋ exn guarantees such a callee exists, and
   [seen] breaks cycles. *)
let witness graph sets key exn =
  let escape k = Option.value (SMap.find_opt k sets) ~default:SSet.empty in
  let rec go seen key =
    match Callgraph.find graph key with
    | None -> None
    | Some d -> (
      let direct_raise =
        List.find_opt
          (fun (r : Callgraph.raise_site) ->
            r.exn = exn && not (catches r.raise_caught exn))
          d.raises
      in
      match direct_raise with
      | Some r -> Some ([ key ], Printf.sprintf "raise %s" r.written, r.raise_loc)
      | None -> (
        let direct_external =
          List.find_opt
            (fun (r : Callgraph.ref_site) ->
              match List.assoc_opt r.target external_raisers with
              | Some e -> e = exn && not (catches r.caught exn)
              | None -> false)
            d.refs
        in
        match direct_external with
        | Some r -> Some ([ key ], r.target, r.ref_loc)
        | None ->
          d.refs
          |> List.find_map (fun (r : Callgraph.ref_site) ->
                 if
                   SMap.mem r.target graph.by_key
                   && (not (SSet.mem r.target seen))
                   && SSet.mem exn (escape r.target)
                   && not (catches r.caught exn)
                 then
                   match go (SSet.add r.target seen) r.target with
                   | Some (chain, site, loc) -> Some (key :: chain, site, loc)
                   | None -> None
                 else None)))
  in
  go (SSet.singleton key) key

let check ?(config = default_config) (graph : Callgraph.t) =
  let sets = escape_sets graph in
  graph.defs
  |> List.filter (fun (d : Callgraph.def) ->
         List.mem d.def_name config.entry_names)
  |> List.concat_map (fun (d : Callgraph.def) ->
         let escaping =
           SSet.elements (Option.value (SMap.find_opt d.key sets) ~default:SSet.empty)
           |> List.filter (fun exn -> not (List.mem exn config.allowed))
         in
         List.filter_map
           (fun exn ->
             match witness graph sets d.key exn with
             | None -> None
             | Some (chain, site, loc) ->
               let what =
                 if exn = "*" then "a computed (re-raised) exception"
                 else Printf.sprintf "`%s`" exn
               in
               let message =
                 Printf.sprintf
                   "%s can escape the non-raising entry point %s: %s at %s" what
                   d.key
                   (String.concat " -> " chain)
                   site
               in
               Some (Finding.v ~rule:rule_id ~severity ~loc ~message ~hint))
           escaping)
