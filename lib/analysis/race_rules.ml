(* Data-race rules over the effect summaries ({!Effects}).

   [domain-shared-mutation] — a task handed to Parallel.run/map writes,
   directly or through any chain of calls, a mutable location that is
   visible outside the task: a capture from the enclosing scope, a
   module-level mutable definition, or a captured mutable value passed to
   a function that writes through its parameters. Tasks execute
   concurrently on stealing domains, so such writes race and the result
   depends on scheduling — exactly what the deterministic-replay contract
   of the replication engine rules out. Atomic.* accesses are the
   sanctioned escape hatch and are not flagged here.

   [atomic-read-modify-write] — an Atomic.get and a plain Atomic.set on
   the same cell in the same definition. The get/set pair is a
   check-then-act: any update landing between the two is lost. Atomic
   cells freshly allocated in the definition are exempt (set-after-make is
   initialisation).

   [mutable-toplevel-escape] — a task reads module-level mutable state
   (directly or transitively). There is one instance of that state per
   program, shared by every task on every domain; even read-only use ties
   the task's result to whatever other code has done to it, which breaks
   --jobs replay. Reported as a warning: hoisting the state into the plan
   is the fix, but a frozen-after-init table can be legitimate (suppress
   with a justification). *)

module SMap = Callgraph.SMap
module SSet = Callgraph.SSet

let shared_id = "domain-shared-mutation"

let rmw_id = "atomic-read-modify-write"

let escape_id = "mutable-toplevel-escape"

let shared_hint =
  "give each task its own slot (a results array indexed by task, filled at \
   plan-build time) or make the shared cell an Atomic; if the sharing is provably \
   benign, suppress with [@lint.allow \"domain-shared-mutation\" \"why\"]"

let rmw_hint =
  "use Atomic.incr/Atomic.fetch_and_add for counters, or a compare_and_set retry \
   loop for general updates; reserve Atomic.set for initialisation before the cell \
   is shared, and suppress with [@lint.allow \"atomic-read-modify-write\" \"why\"] \
   when it provably is"

let escape_hint =
  "allocate the state per task at plan-build time and pass it in as an argument \
   (or through the task array); if the toplevel state is provably frozen before \
   any parallel run, suppress with [@lint.allow \"mutable-toplevel-escape\" \"why\"]"

let catalogue =
  [
    ( shared_id,
      Finding.Error,
      "a task passed to Parallel.run/map writes a mutable location visible outside \
       the task" );
    ( rmw_id,
      Finding.Error,
      "non-atomic check-then-act on an Atomic.t: Atomic.get then Atomic.set on the \
       same cell" );
    ( escape_id,
      Finding.Warning,
      "a task passed to Parallel.run/map reads module-level mutable state" );
  ]

(* ------------------------------------------------------------------ *)
(* atomic-read-modify-write                                            *)
(* ------------------------------------------------------------------ *)

let check_rmw (t : Effects.t) (d : Callgraph.def) =
  let events = Effects.events t d.key in
  let fresh = Effects.fresh_in t d.key in
  let is_fresh = function
    | Effects.Based (id, _) -> List.exists (Ident.same id) fresh
    | _ -> false
  in
  events
  |> List.filter_map (fun (w : Effects.event) ->
         if
           w.via = Effects.Atomic && w.op = Effects.Write && (not w.rmw_safe)
           && (not (is_fresh w.target))
           && List.exists
                (fun (r : Effects.event) ->
                  r.via = Effects.Atomic && r.op = Effects.Read
                  && Effects.same_target r.target w.target)
                events
         then
           let message =
             Printf.sprintf
               "check-then-act on the atomic cell `%s` in %s: Atomic.get followed \
                by Atomic.set loses any update made between the two"
               (Effects.target_name w.target) d.key
           in
           Some
             (Finding.v ~rule:rmw_id ~severity:Finding.Error ~loc:w.site ~message
                ~hint:rmw_hint)
         else None)

(* ------------------------------------------------------------------ *)
(* Parallel-site analysis                                              *)
(* ------------------------------------------------------------------ *)

(* A witness chain from [key] down to a definition whose *direct* events
   satisfy [direct], descending into callees whose summaries satisfy
   [carries]. Same shape as the exception witness: when the summary
   carries the fact, some callee chain realises it, and [seen] breaks
   cycles. *)
let witness (t : Effects.t) key ~direct ~carries =
  let rec go seen key =
    match Callgraph.find t.Effects.graph key with
    | None -> None
    | Some d -> (
      match List.find_opt direct (Effects.events t key) with
      | Some (ev : Effects.event) -> Some ([ key ], ev.site)
      | None ->
        d.refs
        |> List.find_map (fun (r : Callgraph.ref_site) ->
               if
                 SMap.mem r.target t.Effects.graph.Callgraph.by_key
                 && (not (SSet.mem r.target seen))
                 &&
                 match Effects.summary t r.target with
                 | Some s -> carries s
                 | None -> false
               then
                 match go (SSet.add r.target seen) r.target with
                 | Some (chain, loc) -> Some (key :: chain, loc)
                 | None -> None
               else None))
  in
  go (SSet.singleton key) key

let chain_text chain = String.concat " -> " chain

(* Findings for one seed: a toplevel function referenced from inside a
   task (or passed as the Parallel.map function). Its transitive global
   writes race; its transitive reads of mutable toplevels tie the task to
   shared state. *)
let seed_findings (t : Effects.t) ~runner ~seed_loc seed =
  match Effects.summary t seed with
  | None -> []
  | Some s ->
    let writes =
      SSet.elements s.global_writes
      |> List.filter_map (fun g ->
             match Effects.mutable_global_kind t g with
             | None -> None
             | Some kind ->
               let chain =
                 match
                   witness t seed
                     ~direct:(fun (ev : Effects.event) ->
                       ev.op = Effects.Write && ev.via = Effects.Plain
                       && Effects.same_target ev.target (Effects.Global g))
                     ~carries:(fun s -> SSet.mem g s.global_writes)
                 with
                 | Some (chain, _) -> chain
                 | None -> [ seed ]
               in
               let message =
                 Printf.sprintf
                   "task passed to %s calls %s, which writes the module-level %s \
                    `%s`; concurrent tasks race on it"
                   runner (chain_text chain) kind g
               in
               Some
                 (Finding.v ~rule:shared_id ~severity:Finding.Error ~loc:seed_loc
                    ~message ~hint:shared_hint))
    in
    let reads =
      SSet.elements s.global_reads
      |> List.filter_map (fun g ->
             match Effects.mutable_global_kind t g with
             | None -> None
             | Some kind ->
               let chain =
                 match
                   witness t seed
                     ~direct:(fun (ev : Effects.event) ->
                       ev.op = Effects.Read
                       && Effects.same_target ev.target (Effects.Global g))
                     ~carries:(fun s -> SSet.mem g s.global_reads)
                 with
                 | Some (chain, _) -> chain
                 | None -> [ seed ]
               in
               let message =
                 Printf.sprintf
                   "task passed to %s reaches the module-level %s `%s` through %s; \
                    one shared instance feeds every task on every domain"
                   runner kind g (chain_text chain)
               in
               Some
                 (Finding.v ~rule:escape_id ~severity:Finding.Warning ~loc:seed_loc
                    ~message ~hint:escape_hint))
    in
    writes @ reads

(* Analysis of one argument of a Parallel.run/map application. Inside any
   lambda of the argument:
   - a plain write to a capture or a module-level mutable is a race;
   - a plain read of a module-level mutable is an escape;
   - a captured mutable value handed to a function with foreign writes is
     a race (the callee writes storage the task does not own);
   - a reference to a toplevel function seeds the transitive analysis. *)
let check_arg (t : Effects.t) ~runner (arg : Typedtree.expression) =
  let graph = t.Effects.graph in
  let bound = Par_rules.bound_idents arg in
  let is_bound id = List.exists (Ident.same id) bound in
  let findings = ref [] in
  let seeds = ref [] in
  let add_seed key loc =
    if
      SMap.mem key graph.Callgraph.by_key
      && (not (SMap.mem key t.Effects.mutable_globals))
      && (not (SSet.mem key t.Effects.atomic_cells))
      && not (List.mem_assoc key !seeds)
    then seeds := (key, loc) :: !seeds
  in
  let emit f = findings := f :: !findings in
  let direct_event (ev : Effects.event) =
    match (ev.target, ev.op, ev.via) with
    | Effects.Based (id, name), Effects.Write, Effects.Plain when not (is_bound id)
      ->
      let message =
        Printf.sprintf
          "task passed to %s captures and writes `%s`; concurrent tasks race on \
           it and the outcome depends on worker scheduling"
          runner name
      in
      emit
        (Finding.v ~rule:shared_id ~severity:Finding.Error ~loc:ev.site ~message
           ~hint:shared_hint)
    | Effects.Global g, Effects.Write, Effects.Plain -> (
      match Effects.mutable_global_kind t g with
      | Some kind ->
        let message =
          Printf.sprintf
            "task passed to %s writes the module-level %s `%s` shared by every \
             task; concurrent tasks race on it"
            runner kind g
        in
        emit
          (Finding.v ~rule:shared_id ~severity:Finding.Error ~loc:ev.site ~message
             ~hint:shared_hint)
      | None -> ())
    | Effects.Global g, Effects.Read, Effects.Plain -> (
      match Effects.mutable_global_kind t g with
      | Some kind ->
        let message =
          Printf.sprintf
            "task passed to %s reads the module-level %s `%s`; one shared \
             instance feeds every task on every domain"
            runner kind g
        in
        emit
          (Finding.v ~rule:escape_id ~severity:Finding.Warning ~loc:ev.site
             ~message ~hint:escape_hint)
      | None -> ())
    | _ -> ()
  in
  (* A captured mutable argument at a call whose callee has foreign
     writes. *)
  let check_call (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let callee = Effects.path_key graph p in
      match Effects.summary t callee with
      | Some s when s.foreign_writes ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some ({ Typedtree.exp_desc = Texp_ident (ap, lid, _); _ } as ae) -> (
              let described name =
                match Type_safety.mutability graph ~owner:"" ae.exp_type with
                | Type_safety.Shared kind ->
                  let message =
                    Printf.sprintf
                      "task passed to %s hands the captured %s `%s` to %s, which \
                       writes through its parameters; concurrent tasks race on it"
                      runner kind name callee
                  in
                  emit
                    (Finding.v ~rule:shared_id ~severity:Finding.Error
                       ~loc:lid.loc ~message ~hint:shared_hint)
                | _ -> ()
              in
              match ap with
              | Path.Pident id when not (is_bound id) -> (
                match Callgraph.resolve_ident graph id with
                | Some g when SMap.mem g t.Effects.mutable_globals ->
                  described g
                | Some _ -> ()
                | None -> described (Ident.name id))
              | Path.Pident _ -> ()
              | _ ->
                let g = Callgraph.normalize_path graph ap in
                if SMap.mem g t.Effects.mutable_globals then described g)
            | _ -> ())
          args
      | _ -> ())
    | _ -> ()
  in
  let rec walk ~in_closure (e : Typedtree.expression) =
    if in_closure then begin
      List.iter direct_event (Effects.node_events graph e);
      check_call e;
      match e.exp_desc with
      | Texp_ident (path, lid, _) -> add_seed (Effects.path_key graph path) lid.loc
      | _ -> ()
    end;
    let in_closure =
      in_closure || match e.exp_desc with Texp_function _ -> true | _ -> false
    in
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _sub child -> walk ~in_closure child);
      }
    in
    Tast_iterator.default_iterator.expr it e
  in
  walk ~in_closure:false arg;
  (* The function handed to Parallel.map is itself a task body even when
     it is a bare toplevel reference (no lambda to descend into). *)
  (match arg.exp_desc with
  | Texp_ident (path, lid, _) -> add_seed (Effects.path_key graph path) lid.loc
  | _ -> ());
  List.iter
    (fun (seed, loc) ->
      List.iter emit (seed_findings t ~runner ~seed_loc:loc seed))
    (List.rev !seeds);
  List.rev !findings

let check_parallel_sites (t : Effects.t) (d : Callgraph.def) =
  match d.Callgraph.body with
  | None -> []
  | Some body ->
    let graph = t.Effects.graph in
    let findings = ref [] in
    let rec walk (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (path, _, _); _ }, args) ->
        let callee = Effects.path_key graph path in
        if Par_rules.is_parallel_runner callee then
          List.iter
            (fun (_, arg) ->
              match arg with
              | None -> ()
              | Some arg ->
                findings := List.rev_append (check_arg t ~runner:callee arg) !findings)
            args
      | _ -> ());
      let it =
        { Tast_iterator.default_iterator with expr = (fun _sub c -> walk c) }
      in
      Tast_iterator.default_iterator.expr it e
    in
    walk body;
    List.rev !findings

let check (t : Effects.t) =
  List.concat_map
    (fun (d : Callgraph.def) -> check_rmw t d @ check_parallel_sites t d)
    t.Effects.graph.Callgraph.defs
