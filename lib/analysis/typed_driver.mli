(** Stage 2 of the linter: the typed, interprocedural analyses.

    Loads [.cmt] typed trees ({!Cmt_loader}), builds the project call graph
    ({!Callgraph}), computes per-function effect summaries ({!Effects}) and
    runs the cross-module rules — {!Taint_rules} (determinism),
    {!Exn_rules} (exception escape), {!Stream_rules} (RNG stream
    discipline), {!Par_rules} (task RNG capture), {!Obs_rules} and
    {!Race_rules} (shared-mutation races). Findings are filtered against
    the [[@lint.allow]] regions of the source files they point into, then
    sorted and deduplicated. *)

(** Raised by the path-based entry points when no [.cmt] file exists under
    any of the (effective) roots — the tree has not been built, so the
    typed stage would silently analyse nothing. Carries the roots
    searched. *)
exception No_cmt_inputs of string list

(** (rule id, severity, summary) of every typed rule, for [--list-rules]. *)
val catalogue : (string * Finding.severity * string) list

(** Analyse already-loaded units. [entries] adds extra taint entry points
    (keys or key prefixes, as given to [--entry]). [stage] selects which
    typed rules run: [`All] (default) or [`Numeric] — just the
    interval-stage rules, as [--absint] requests. *)
val analyze_units :
  ?entries:string list ->
  ?stage:[ `All | `Numeric ] ->
  Cmt_loader.unit_info list ->
  Finding.t list

(** Load every unit under the given roots and analyse them. A root without
    [.cmt] files falls back to its compiled image under [_build/default], so
    plain source roots work from the repository root after a build. Raises
    {!No_cmt_inputs} when the roots yield no typed trees at all. *)
val analyze_paths :
  ?entries:string list ->
  ?stage:[ `All | `Numeric ] ->
  string list ->
  Finding.t list

(** Effect summaries for every definition under the given roots, for the
    [--effects] footprint dump. Raises {!No_cmt_inputs} like
    {!analyze_paths}. *)
val effects_of_paths : string list -> Effects.t

(** Interval analysis over every definition under the given roots, for the
    [--show-intervals] dump. Raises {!No_cmt_inputs} like
    {!analyze_paths}. *)
val absint_of_paths : string list -> Absint.t
