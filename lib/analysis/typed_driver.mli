(** Stage 2 of the linter: the typed, interprocedural analyses.

    Loads [.cmt] typed trees ({!Cmt_loader}), builds the project call graph
    ({!Callgraph}) and runs the three cross-module rules —
    {!Taint_rules} (determinism), {!Exn_rules} (exception escape) and
    {!Stream_rules} (RNG stream discipline). Findings are filtered against
    the [[@lint.allow]] regions of the source files they point into, then
    sorted and deduplicated. *)

(** (rule id, severity, summary) of every typed rule, for [--list-rules]. *)
val catalogue : (string * Finding.severity * string) list

(** Analyse already-loaded units. [entries] adds extra taint entry points
    (keys or key prefixes, as given to [--entry]). *)
val analyze_units : ?entries:string list -> Cmt_loader.unit_info list -> Finding.t list

(** Load every unit under the given roots and analyse them. A root without
    [.cmt] files falls back to its compiled image under [_build/default], so
    plain source roots work from the repository root after a build. *)
val analyze_paths : ?entries:string list -> string list -> Finding.t list
