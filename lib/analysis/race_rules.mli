(** Data-race rules over the effect summaries ({!Effects}).

    Three rules, all driven by the interprocedural read/write footprints:

    - [domain-shared-mutation] (error): a task handed to
      [Parallel.run]/[map] writes — directly, through any chain of calls,
      or by passing a captured mutable value to a function that writes
      through its parameters — a mutable location visible outside the
      task. Concurrent tasks race on it; [Atomic.*] accesses are exempt.
    - [atomic-read-modify-write] (error): [Atomic.get] and a plain
      [Atomic.set] on the same cell in the same definition — a
      check-then-act that loses concurrent updates. Cells freshly
      allocated in the definition are exempt (initialisation).
    - [mutable-toplevel-escape] (warning): a task reads module-level
      mutable state, directly or transitively; the one shared instance
      ties its result to whatever other code and other tasks have done. *)

val shared_id : string

val rmw_id : string

val escape_id : string

(** (rule id, severity, one-line summary) for the typed-rule catalogue. *)
val catalogue : (string * Finding.severity * string) list

val check : Effects.t -> Finding.t list
