(** Project-shape rules (file layout rather than expression syntax). *)

val missing_mli : Rule.t

(** All project rules, in catalogue order. *)
val rules : Rule.t list
