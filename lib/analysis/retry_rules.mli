(** Unbounded-retry detection (typed, interprocedural).

    Every [while] loop in a definition reachable from a solver or
    simulator entry point (any function named [solve]/[solve_status], or
    anything under an entry directory) must sit in a budget-aware
    definition: one that mentions a budget-ish identifier (containing
    [fuel], [budget], [cancel], [max_], [deadline] or [remaining]) or
    references [Budget.*] / [Cancel.*] directly. A retry or polling loop
    in a definition with none of these cannot be stopped by the
    supervised runtime and wedges the process when the model leaves its
    convergent regime. [for] loops are inherently bounded and exempt.
    Findings carry the call chain from the entry that reached the loop. *)

val rule_id : string

val severity : Finding.severity

val summary : string

type config = {
  entries : string list;
      (** Extra entry keys or key prefixes, as [--entry]. *)
  entry_dirs : string list;
  entry_names : string list;
}

val default_config : config

val check : ?config:config -> Callgraph.t -> Finding.t list
