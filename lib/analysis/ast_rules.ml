module SSet = Set.Make (String)
module SMap = Map.Make (String)

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let ident_parts (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (Longident.flatten txt))
  | _ -> None

(* Every identifier mentioned in an expression, both as a full dotted path
   and as its last component, so guard conditions and denominators agree on
   how a name is spelled. *)
let idents_of (e : Parsetree.expression) =
  let acc = ref SSet.empty in
  let expr sub (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
      let parts = Longident.flatten txt in
      acc := SSet.add (String.concat "." parts) !acc;
      (match List.rev parts with
      | last :: _ -> acc := SSet.add last !acc
      | [] -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !acc

(* Iterate a whole structure applying [f] to every expression. *)
let on_every_expr f structure =
  let expr sub e =
    f e;
    Ast_iterator.default_iterator.expr sub e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure

(* ------------------------------------------------------------------ *)
(* float-equality                                                      *)
(* ------------------------------------------------------------------ *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let stdlib_float_fns =
  [
    "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "cos"; "sin"; "tan"; "acos"; "asin";
    "atan"; "atan2"; "hypot"; "cosh"; "sinh"; "tanh"; "ceil"; "floor"; "abs_float";
    "mod_float"; "ldexp"; "float_of_int"; "float"; "float_of_string"; "copysign";
  ]

let float_module_fns =
  [
    "abs"; "neg"; "add"; "sub"; "mul"; "div"; "rem"; "fma"; "of_int"; "of_string"; "min";
    "max"; "min_num"; "max_num"; "sqrt"; "cbrt"; "exp"; "exp2"; "log"; "log10"; "log2";
    "expm1"; "log1p"; "pow"; "succ"; "pred"; "round"; "trunc"; "copy_sign"; "ldexp";
  ]

let float_module_consts =
  [
    "pi"; "epsilon"; "nan"; "infinity"; "neg_infinity"; "max_float"; "min_float"; "zero";
    "one"; "minus_one";
  ]

let returns_float fn_parts =
  match fn_parts with
  | [ op ] -> List.mem op float_ops || List.mem op stdlib_float_fns
  | [ "Float"; fn ] -> List.mem fn float_module_fns
  | _ -> false

let is_float_valued (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, _) -> (
    match ident_parts f with Some parts -> returns_float parts | None -> false)
  | Pexp_ident { txt; _ } -> (
    match strip_stdlib (Longident.flatten txt) with
    | [ "Float"; c ] -> List.mem c float_module_consts
    | [ c ] -> List.mem c [ "nan"; "infinity"; "neg_infinity"; "max_float"; "min_float"; "epsilon_float" ]
    | _ -> false)
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ })
    ->
    true
  | _ -> false

let float_equality =
  let rec rule =
    lazy
      (Rule.v ~id:"float-equality" ~severity:Finding.Warning
         ~summary:
           "structural =/<>/compare applied to float literals or float-returning calls"
         ~hint:
           "compare with a tolerance (Float.abs (a -. b) < eps), use a classified-zero \
            test (Float.classify_float x = FP_zero), or Float.equal if exact equality \
            is really intended"
         ~check:(fun ~path:_ structure ->
           let findings = ref [] in
           on_every_expr
             (fun e ->
               match e.pexp_desc with
               | Pexp_apply (f, [ (_, a); (_, b) ]) -> (
                 match ident_parts f with
                 | Some [ (("=" | "<>" | "compare") as op) ]
                   when is_float_valued a || is_float_valued b ->
                   findings :=
                     Rule.finding (Lazy.force rule) ~loc:e.pexp_loc
                       (Format.asprintf
                          "`%s` compares float-valued expressions; equality of computed \
                           floats misfires under rounding"
                          op)
                     :: !findings
                 | _ -> ())
               | _ -> ())
             structure;
           !findings))
  in
  Lazy.force rule

(* ------------------------------------------------------------------ *)
(* unguarded-division                                                  *)
(* ------------------------------------------------------------------ *)

(* The AMVA residence forms divide by saturation-shaped quantities
   (1 - U, 1 - U - U^2, ...). A division is flagged when the denominator
   is such a shape (directly or through a let-bound name) and no enclosing
   conditional mentions any identifier involved in it. *)

let is_float_lit_one (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, None)) -> (
    match float_of_string_opt s with Some v -> Float.equal v 1.0 | None -> false)
  | _ -> false

let rec is_one_minus (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "-."; _ }; _ }, [ (_, a); _ ]) ->
    is_float_lit_one a || is_one_minus a
  | _ -> false

type div_env = { guarded : SSet.t; one_minus : SSet.t SMap.t }

let empty_env = { guarded = SSet.empty; one_minus = SMap.empty }

let add_guards env cond = { env with guarded = SSet.union env.guarded (idents_of cond) }

let unguarded_division =
  let rec rule =
    lazy
      (Rule.v ~id:"unguarded-division" ~severity:Finding.Warning
         ~summary:
           "/. by a `1. -. u`-shaped denominator with no dominating guard in the same \
            function"
         ~hint:
           "test the utilization before dividing (if u >= limit then ... else ...), \
            clamp the denominator (Float.max eps (1. -. u)), or [@lint.allow \
            \"unguarded-division\"] when a caller provably enforces the bound"
         ~check:(fun ~path:_ structure ->
           let findings = ref [] in
           let report loc =
             findings :=
               Rule.finding (Lazy.force rule) ~loc
                 "division by a saturation-shaped denominator (1. -. u) that no \
                  enclosing guard dominates; this diverges as u -> 1"
               :: !findings
           in
           let denominator_keys env (den : Parsetree.expression) =
             match den.pexp_desc with
             | Pexp_ident { txt = Lident v; _ } -> (
               match SMap.find_opt v env.one_minus with
               | Some rhs_ids -> Some (SSet.add v rhs_ids)
               | None -> None)
             | _ -> if is_one_minus den then Some (idents_of den) else None
           in
           let rec walk env (e : Parsetree.expression) =
             match e.pexp_desc with
             | Pexp_let (_, vbs, body) ->
               List.iter (fun (vb : Parsetree.value_binding) -> walk env vb.pvb_expr) vbs;
               let env =
                 List.fold_left
                   (fun env (vb : Parsetree.value_binding) ->
                     match vb.pvb_pat.ppat_desc with
                     | Ppat_var { txt; _ } when is_one_minus vb.pvb_expr ->
                       {
                         env with
                         one_minus = SMap.add txt (idents_of vb.pvb_expr) env.one_minus;
                       }
                     | _ -> env)
                   env vbs
               in
               walk env body
             | Pexp_ifthenelse (cond, then_, else_) ->
               walk env cond;
               let env = add_guards env cond in
               walk env then_;
               Option.iter (walk env) else_
             | Pexp_sequence (a, b) ->
               walk env a;
               (* `if bad then invalid_arg ...; rest` and `assert cond; rest`
                  dominate the remainder of the sequence. *)
               let env =
                 match a.pexp_desc with
                 | Pexp_ifthenelse (cond, _, None) -> add_guards env cond
                 | Pexp_assert cond -> add_guards env cond
                 | _ -> env
               in
               walk env b
             | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
               walk env scrut;
               List.iter (walk_case env) cases
             | Pexp_function cases -> List.iter (walk_case env) cases
             | Pexp_fun (_, default, _, body) ->
               Option.iter (walk env) default;
               walk env body
             | Pexp_apply (f, args) ->
               (match (f.pexp_desc, args) with
               | Pexp_ident { txt = Lident "/."; _ }, [ _; (_, den) ] -> (
                 match denominator_keys env den with
                 | Some keys when SSet.is_empty (SSet.inter keys env.guarded) ->
                   report e.pexp_loc
                 | _ -> ())
               | _ -> ());
               walk env f;
               List.iter (fun (_, a) -> walk env a) args
             | _ ->
               (* Generic recursion into children, same environment. *)
               let it =
                 {
                   Ast_iterator.default_iterator with
                   expr = (fun _ child -> walk env child);
                 }
               in
               Ast_iterator.default_iterator.expr it e
           and walk_case env (c : Parsetree.case) =
             let env =
               match c.pc_guard with
               | Some g ->
                 walk env g;
                 add_guards env g
               | None -> env
             in
             walk env c.pc_rhs
           in
           let expr _sub e = walk empty_env e in
           let it = { Ast_iterator.default_iterator with expr } in
           it.structure it structure;
           !findings))
  in
  Lazy.force rule

(* ------------------------------------------------------------------ *)
(* global-rng                                                          *)
(* ------------------------------------------------------------------ *)

let is_random_path parts =
  match strip_stdlib parts with "Random" :: _ -> true | _ -> false

let global_rng =
  let rec rule =
    lazy
      (Rule.v ~id:"global-rng" ~severity:Finding.Error
         ~summary:"use of the global Stdlib.Random outside lib/prng"
         ~hint:
           "thread an explicit Lopc_prng.Rng.t; global Random state breaks deterministic \
            replay of experiments"
         ~check:(fun ~path structure ->
           if Rule.in_prng path then []
           else begin
             let findings = ref [] in
             let report loc what =
               findings :=
                 Rule.finding (Lazy.force rule) ~loc
                   (Format.asprintf "use of %s: global RNG state makes runs irreproducible"
                      what)
                 :: !findings
             in
             let expr sub (e : Parsetree.expression) =
               (match e.pexp_desc with
               | Pexp_ident { txt; loc } when is_random_path (Longident.flatten txt) ->
                 report loc (String.concat "." (Longident.flatten txt))
               | _ -> ());
               Ast_iterator.default_iterator.expr sub e
             in
             let module_expr sub (m : Parsetree.module_expr) =
               (match m.pmod_desc with
               | Pmod_ident { txt; loc } when is_random_path (Longident.flatten txt) ->
                 report loc (String.concat "." (Longident.flatten txt))
               | _ -> ());
               Ast_iterator.default_iterator.module_expr sub m
             in
             let it = { Ast_iterator.default_iterator with expr; module_expr } in
             it.structure it structure;
             !findings
           end))
  in
  Lazy.force rule

(* ------------------------------------------------------------------ *)
(* physical-equality                                                   *)
(* ------------------------------------------------------------------ *)

let is_unit_value (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "()"; _ }, None) -> true
  | _ -> false

let physical_equality =
  let rec rule =
    lazy
      (Rule.v ~id:"physical-equality" ~severity:Finding.Warning
         ~summary:"==/!= on non-unit values"
         ~hint:
           "use structural =/<> (or Float.equal / String.equal); physical equality on \
            immutable values is representation-dependent"
         ~check:(fun ~path:_ structure ->
           let findings = ref [] in
           on_every_expr
             (fun e ->
               match e.pexp_desc with
               | Pexp_apply (f, [ (_, a); (_, b) ]) -> (
                 match ident_parts f with
                 | Some [ (("==" | "!=") as op) ]
                   when not (is_unit_value a || is_unit_value b) ->
                   findings :=
                     Rule.finding (Lazy.force rule) ~loc:e.pexp_loc
                       (Format.asprintf
                          "`%s` is physical (pointer) equality, which is fragile on \
                           non-unit values"
                          op)
                     :: !findings
                 | _ -> ())
               | _ -> ())
             structure;
           !findings))
  in
  Lazy.force rule

(* ------------------------------------------------------------------ *)
(* banned-constructs                                                   *)
(* ------------------------------------------------------------------ *)

let banned_constructs =
  let rec rule =
    lazy
      (Rule.v ~id:"banned-constructs" ~severity:Finding.Error
         ~summary:"Obj.magic anywhere; exit or Printf.printf inside lib/"
         ~hint:
           "library code must return results or report through Format sinks; only \
            executables own the process and its stdout"
         ~check:(fun ~path structure ->
           let in_lib = Rule.in_library path in
           let findings = ref [] in
           let report loc msg =
             findings := Rule.finding (Lazy.force rule) ~loc msg :: !findings
           in
           on_every_expr
             (fun e ->
               match e.pexp_desc with
               | Pexp_ident { txt; loc } -> (
                 match strip_stdlib (Longident.flatten txt) with
                 | [ "Obj"; "magic" ] -> report loc "Obj.magic defeats the type system"
                 | [ "exit" ] when in_lib ->
                   report loc "exit in library code terminates the caller's process"
                 | [ "Printf"; "printf" ] when in_lib ->
                   report loc
                     "Printf.printf in library code writes to a global sink; return a \
                      result record or take a Format.formatter"
                 | _ -> ())
               | _ -> ())
             structure;
           !findings))
  in
  Lazy.force rule

(* ------------------------------------------------------------------ *)
(* bare-failwith                                                       *)
(* ------------------------------------------------------------------ *)

let bare_failwith =
  let rec rule =
    lazy
      (Rule.v ~id:"bare-failwith" ~severity:Finding.Warning
         ~summary:"failwith or raise (Failure _) inside lib/"
         ~hint:
           "Failure carries no structure a caller can match on; raise Invalid_argument \
            for precondition violations, declare a dedicated exception, or return a \
            Result"
         ~check:(fun ~path structure ->
           if not (Rule.in_library path) then []
           else begin
             let findings = ref [] in
             let report loc msg =
               findings := Rule.finding (Lazy.force rule) ~loc msg :: !findings
             in
             on_every_expr
               (fun e ->
                 match e.pexp_desc with
                 | Pexp_apply (f, [ (_, arg) ]) -> (
                   match (ident_parts f, arg.pexp_desc) with
                   | ( Some [ ("raise" | "raise_notrace") ],
                       Pexp_construct ({ txt = Lident "Failure"; _ }, Some _) ) ->
                     report e.pexp_loc
                       "raise (Failure _) in library code is an anonymous failure \
                        callers cannot handle precisely"
                   | _ -> ())
                 | Pexp_ident { txt; loc } -> (
                   match strip_stdlib (Longident.flatten txt) with
                   | [ "failwith" ] ->
                     report loc
                       "failwith in library code is an anonymous failure callers \
                        cannot handle precisely"
                   | _ -> ())
                 | _ -> ())
               structure;
             !findings
           end))
  in
  Lazy.force rule

let rules =
  [
    float_equality;
    unguarded_division;
    global_rng;
    physical_equality;
    banned_constructs;
    bare_failwith;
  ]
