(** Determinism taint (typed, interprocedural).

    No definition reachable from the simulator (entry directories
    [lib/activemsg], [lib/eventsim]) or from a solver entry point (any
    function named [solve] or [solve_status], plus explicit extra entries)
    may reference a nondeterminism source: the global [Stdlib.Random]
    stream, wall clocks ([Sys.time], [Unix.gettimeofday], [Unix.time]),
    [Hashtbl] iteration, or polymorphic compare/equality/hash instantiated
    at a float-bearing, abstract or polymorphic type. Findings carry the
    reachability chain from the entry that first discovered the tainted
    definition. *)

val rule_id : string

val severity : Finding.severity

val summary : string

type config = {
  entries : string list;  (** extra entry keys or key prefixes (from [--entry]) *)
  entry_dirs : string list;
  entry_names : string list;
}

val default_config : config

val check : ?config:config -> Callgraph.t -> Finding.t list
