(* Rules about the shape of the project rather than the code inside one
   expression. They still run per compilation unit so suppression via a
   floating [@@@lint.allow "..."] in the offending file works uniformly. *)

let file_start_loc path =
  let pos = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 } in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

let missing_mli =
  let rec rule =
    lazy
      (Rule.v ~id:"missing-mli" ~severity:Finding.Warning
         ~summary:"a library .ml with no sibling .mli"
         ~hint:
           "write an interface: unconstrained library modules leak internals and make \
            refactoring a breaking change"
         ~check:(fun ~path _structure ->
           if
             Rule.in_library path
             && Filename.check_suffix path ".ml"
             && not (Sys.file_exists (path ^ "i"))
           then
             [
               Rule.finding (Lazy.force rule) ~loc:(file_start_loc path)
                 (Format.asprintf "library module %s has no interface file %si"
                    (Filename.basename path) (Filename.basename path));
             ]
           else []))
  in
  Lazy.force rule

let rules = [ missing_mli ]
