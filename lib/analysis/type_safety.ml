(* Decides whether a type is safe under polymorphic structural
   compare/equality/hash, by expanding it through the project's own type
   declarations (collected from the loaded .cmt units).

   Unsafe means the comparison can be order-fragile or replay-hostile:
   floats (NaN and signed-zero semantics), type variables (the concrete
   instantiation is unknown at the site), functions (Invalid_argument at
   runtime), and abstract or foreign types whose representation we cannot
   expand (their structural order is an implementation detail — e.g. the
   internal tree shape of a Map, or a record with float fields hidden
   behind an interface). *)

let safe_atoms =
  [
    "int"; "bool"; "char"; "string"; "bytes"; "unit"; "int32"; "int64"; "nativeint";
    (* stdlib constant-constructor enums: compared by tag, no payload *)
    "fpclass"; "Float.fpclass";
  ]

(* Containers whose structural comparison is exactly the comparison of
   their elements, so safety reduces to the arguments. *)
let safe_containers = [ "list"; "array"; "option"; "ref"; "result" ]

let float_names = [ "float"; "Float.t" ]

(* The normalised head of a type path, for builtin classification. *)
let type_name segments = String.concat "." segments

let rec first_some f = function
  | [] -> None
  | x :: rest -> ( match f x with Some r -> Some r | None -> first_some f rest)

(* [params] holds the ids of type variables bound by the declaration being
   expanded (formal parameters are checked at the *use* site through the
   instantiating arguments, so they count as safe here). [visited] breaks
   recursive type cycles: on re-entry the type is assumed safe, because any
   genuinely unsafe component is found on the first pass. *)
let unsafe_reason (graph : Callgraph.t) ~owner ty =
  let rec check visited params ~owner ty =
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ ->
      if List.exists (fun id -> id = Types.get_id ty) params then None
      else Some "a type variable (the instantiation is not visible here)"
    | Tarrow _ -> Some "a function type (structural comparison raises)"
    | Ttuple tys -> first_some (check visited params ~owner) tys
    | Tpoly (t, vars) ->
      check visited (List.map Types.get_id vars @ params) ~owner t
    | Tconstr (path, args, _) -> (
      let segments = Callgraph.flatten_path path in
      let name =
        type_name
          (Callgraph.normalize ~wrappers:graph.Callgraph.wrappers
             ~aliases:Callgraph.SMap.empty segments)
      in
      if List.mem name float_names then Some "float (NaN/rounding-fragile order)"
      else if List.mem name safe_atoms then None
      else if List.mem name safe_containers then
        first_some (check visited params ~owner) args
      else if List.mem name visited then None
      else
        match first_some (check visited params ~owner) args with
        | Some r -> Some r
        | None -> (
          match Callgraph.find_type graph ~owner segments with
          | None -> Some (Printf.sprintf "abstract or foreign type %s" name)
          | Some (key, decl) ->
            let owner' =
              match String.rindex_opt key '.' with
              | Some i -> String.sub key 0 i
              | None -> owner
            in
            check_decl (name :: visited) params ~owner:owner' decl))
    | Tvariant row ->
      (* Compared by tag, then by argument — so safety is the arguments'. *)
      first_some
        (fun (_, field) ->
          match Types.row_field_repr field with
          | Types.Rpresent (Some t) -> check visited params ~owner t
          | Types.Reither (_, tys, _) -> first_some (check visited params ~owner) tys
          | _ -> None)
        (Types.row_fields row)
    | Tobject _ | Tfield _ | Tnil -> Some "an object type"
    | Tpackage _ -> Some "a first-class module"
    | Tlink _ | Tsubst _ -> None (* unreachable through get_desc *)
  and check_decl visited params ~owner (decl : Types.type_declaration) =
    let params = List.map Types.get_id decl.type_params @ params in
    match decl.type_manifest with
    | Some manifest -> check visited params ~owner manifest
    | None -> (
      match decl.type_kind with
      | Type_record (labels, _) ->
        first_some
          (fun (l : Types.label_declaration) -> check visited params ~owner l.ld_type)
          labels
      | Type_variant (constructors, _) ->
        first_some
          (fun (c : Types.constructor_declaration) ->
            match c.cd_args with
            | Cstr_tuple tys -> first_some (check visited params ~owner) tys
            | Cstr_record labels ->
              first_some
                (fun (l : Types.label_declaration) ->
                  check visited params ~owner l.ld_type)
                labels)
          constructors
      | Type_open -> Some "an open (extensible) type"
      | Type_abstract -> Some "an abstract type")
  in
  check [] [] ~owner ty

(* The domain of a comparison operator's instantiated type: the first
   argument of the arrow. *)
let comparison_domain ty =
  match Types.get_desc ty with Types.Tarrow (_, arg, _, _) -> Some arg | _ -> None

(* ------------------------------------------------------------------ *)
(* Mutability classification                                           *)
(* ------------------------------------------------------------------ *)

(* Whether a value of this type is (or contains) shared mutable storage.
   [Shared kind] names the first mutable container found — a ref cell,
   array, bytes, Hashtbl, Buffer, Queue, Stack, or a record with mutable
   fields — expanding project type declarations the same way
   [unsafe_reason] does. [Atomic_cell] means the only mutability found is
   [Atomic.t], whose operations are the sanctioned cross-domain
   primitives. Function types classify as [Frozen]: a closure may capture
   anything, but the effect analysis tracks what bodies *do*, not what
   their environments could hold. *)
type mutability = Frozen | Atomic_cell | Shared of string

let shared_heads =
  [
    ("ref", "ref cell");
    ("array", "array");
    ("Array.t", "array");
    ("bytes", "bytes");
    ("Bytes.t", "bytes");
    ("Hashtbl.t", "hash table");
    ("Buffer.t", "buffer");
    ("Queue.t", "queue");
    ("Stack.t", "stack");
  ]

let join_mutability a b =
  match (a, b) with
  | (Shared _ as m), _ | _, (Shared _ as m) -> m
  | Atomic_cell, _ | _, Atomic_cell -> Atomic_cell
  | Frozen, Frozen -> Frozen

let mutability (graph : Callgraph.t) ~owner ty =
  let rec check visited ~owner ty =
    match Types.get_desc ty with
    | Tconstr (path, args, _) -> (
      let segments = Callgraph.flatten_path path in
      let name =
        type_name
          (Callgraph.normalize ~wrappers:graph.Callgraph.wrappers
             ~aliases:Callgraph.SMap.empty segments)
      in
      match List.assoc_opt name shared_heads with
      | Some kind -> Shared kind
      | None ->
        if name = "Atomic.t" then join_mutability Atomic_cell (check_list visited ~owner args)
        else if List.mem name visited then Frozen
        else
          let from_args = check_list visited ~owner args in
          (match Callgraph.find_type graph ~owner segments with
          | None -> from_args
          | Some (key, decl) ->
            let owner' =
              match String.rindex_opt key '.' with
              | Some i -> String.sub key 0 i
              | None -> owner
            in
            join_mutability from_args (check_decl (name :: visited) ~owner:owner' decl)))
    | Ttuple tys -> check_list visited ~owner tys
    | Tpoly (t, _) -> check visited ~owner t
    | Tvariant row ->
      List.fold_left
        (fun acc (_, field) ->
          match Types.row_field_repr field with
          | Types.Rpresent (Some t) -> join_mutability acc (check visited ~owner t)
          | Types.Reither (_, tys, _) -> join_mutability acc (check_list visited ~owner tys)
          | _ -> acc)
        Frozen (Types.row_fields row)
    | _ -> Frozen
  and check_list visited ~owner tys =
    List.fold_left
      (fun acc t -> join_mutability acc (check visited ~owner t))
      Frozen tys
  and check_decl visited ~owner (decl : Types.type_declaration) =
    match decl.type_kind with
    | Type_record (labels, _)
      when List.exists
             (fun (l : Types.label_declaration) -> l.ld_mutable = Asttypes.Mutable)
             labels -> Shared "mutable record"
    | _ -> (
      match decl.type_manifest with
      | Some manifest -> check visited ~owner manifest
      | None -> (
        match decl.type_kind with
        | Type_record (labels, _) ->
          check_list visited ~owner
            (List.map (fun (l : Types.label_declaration) -> l.ld_type) labels)
        | Type_variant (constructors, _) ->
          List.fold_left
            (fun acc (c : Types.constructor_declaration) ->
              match c.cd_args with
              | Cstr_tuple tys -> join_mutability acc (check_list visited ~owner tys)
              | Cstr_record labels ->
                if
                  List.exists
                    (fun (l : Types.label_declaration) ->
                      l.ld_mutable = Asttypes.Mutable)
                    labels
                then Shared "mutable record"
                else
                  join_mutability acc
                    (check_list visited ~owner
                       (List.map
                          (fun (l : Types.label_declaration) -> l.ld_type)
                          labels)))
            Frozen constructors
        | Type_open | Type_abstract -> Frozen))
  in
  check [] ~owner ty
