(* Decides whether a type is safe under polymorphic structural
   compare/equality/hash, by expanding it through the project's own type
   declarations (collected from the loaded .cmt units).

   Unsafe means the comparison can be order-fragile or replay-hostile:
   floats (NaN and signed-zero semantics), type variables (the concrete
   instantiation is unknown at the site), functions (Invalid_argument at
   runtime), and abstract or foreign types whose representation we cannot
   expand (their structural order is an implementation detail — e.g. the
   internal tree shape of a Map, or a record with float fields hidden
   behind an interface). *)

let safe_atoms =
  [
    "int"; "bool"; "char"; "string"; "bytes"; "unit"; "int32"; "int64"; "nativeint";
    (* stdlib constant-constructor enums: compared by tag, no payload *)
    "fpclass"; "Float.fpclass";
  ]

(* Containers whose structural comparison is exactly the comparison of
   their elements, so safety reduces to the arguments. *)
let safe_containers = [ "list"; "array"; "option"; "ref"; "result" ]

let float_names = [ "float"; "Float.t" ]

(* The normalised head of a type path, for builtin classification. *)
let type_name segments = String.concat "." segments

let rec first_some f = function
  | [] -> None
  | x :: rest -> ( match f x with Some r -> Some r | None -> first_some f rest)

(* [params] holds the ids of type variables bound by the declaration being
   expanded (formal parameters are checked at the *use* site through the
   instantiating arguments, so they count as safe here). [visited] breaks
   recursive type cycles: on re-entry the type is assumed safe, because any
   genuinely unsafe component is found on the first pass. *)
let unsafe_reason (graph : Callgraph.t) ~owner ty =
  let rec check visited params ~owner ty =
    match Types.get_desc ty with
    | Tvar _ | Tunivar _ ->
      if List.exists (fun id -> id = Types.get_id ty) params then None
      else Some "a type variable (the instantiation is not visible here)"
    | Tarrow _ -> Some "a function type (structural comparison raises)"
    | Ttuple tys -> first_some (check visited params ~owner) tys
    | Tpoly (t, vars) ->
      check visited (List.map Types.get_id vars @ params) ~owner t
    | Tconstr (path, args, _) -> (
      let segments = Callgraph.flatten_path path in
      let name =
        type_name
          (Callgraph.normalize ~wrappers:graph.Callgraph.wrappers
             ~aliases:Callgraph.SMap.empty segments)
      in
      if List.mem name float_names then Some "float (NaN/rounding-fragile order)"
      else if List.mem name safe_atoms then None
      else if List.mem name safe_containers then
        first_some (check visited params ~owner) args
      else if List.mem name visited then None
      else
        match first_some (check visited params ~owner) args with
        | Some r -> Some r
        | None -> (
          match Callgraph.find_type graph ~owner segments with
          | None -> Some (Printf.sprintf "abstract or foreign type %s" name)
          | Some (key, decl) ->
            let owner' =
              match String.rindex_opt key '.' with
              | Some i -> String.sub key 0 i
              | None -> owner
            in
            check_decl (name :: visited) params ~owner:owner' decl))
    | Tvariant row ->
      (* Compared by tag, then by argument — so safety is the arguments'. *)
      first_some
        (fun (_, field) ->
          match Types.row_field_repr field with
          | Types.Rpresent (Some t) -> check visited params ~owner t
          | Types.Reither (_, tys, _) -> first_some (check visited params ~owner) tys
          | _ -> None)
        (Types.row_fields row)
    | Tobject _ | Tfield _ | Tnil -> Some "an object type"
    | Tpackage _ -> Some "a first-class module"
    | Tlink _ | Tsubst _ -> None (* unreachable through get_desc *)
  and check_decl visited params ~owner (decl : Types.type_declaration) =
    let params = List.map Types.get_id decl.type_params @ params in
    match decl.type_manifest with
    | Some manifest -> check visited params ~owner manifest
    | None -> (
      match decl.type_kind with
      | Type_record (labels, _) ->
        first_some
          (fun (l : Types.label_declaration) -> check visited params ~owner l.ld_type)
          labels
      | Type_variant (constructors, _) ->
        first_some
          (fun (c : Types.constructor_declaration) ->
            match c.cd_args with
            | Cstr_tuple tys -> first_some (check visited params ~owner) tys
            | Cstr_record labels ->
              first_some
                (fun (l : Types.label_declaration) ->
                  check visited params ~owner l.ld_type)
                labels)
          constructors
      | Type_open -> Some "an open (extensible) type"
      | Type_abstract -> Some "an abstract type")
  in
  check [] [] ~owner ty

(* The domain of a comparison operator's instantiated type: the first
   argument of the arrow. *)
let comparison_domain ty =
  match Types.get_desc ty with Types.Tarrow (_, arg, _, _) -> Some arg | _ -> None
