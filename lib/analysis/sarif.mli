(** SARIF 2.1.0 emitter for lint findings ([lopc_lint --format sarif]).

    One run, tool [lopc-lint], with the full rule catalogue from
    {!Explain.entries} in the driver's [rules] array and one [result] per
    finding. Output is deterministic byte-for-byte for a given finding
    list (two-space indentation, fixed key order, findings in the order
    given — callers pass them sorted), so CI can diff it and GitHub code
    scanning can ingest it. *)

val report : Format.formatter -> Finding.t list -> unit
