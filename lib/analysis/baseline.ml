(* The lint baseline: accepted finding counts per (severity, rule, file),
   stored as a sorted TSV so it is reviewable in diffs and parseable
   without a JSON library. [diff] is the CI gate: new error-severity
   findings (a count above the stored one, including rows the baseline
   has never seen) fail; anything else is drift, reported for the job
   summary but not fatal. *)

module M = Map.Make (struct
  type t = string * string * string (* severity, rule, file *)

  let compare (a1, a2, a3) (b1, b2, b3) =
    let c = String.compare a1 b1 in
    if c <> 0 then c
    else
      let c = String.compare a2 b2 in
      if c <> 0 then c else String.compare a3 b3
end)

let aggregate findings =
  List.fold_left
    (fun m (f : Finding.t) ->
      let key =
        (Finding.severity_to_string f.severity, f.rule, Finding.file f)
      in
      M.update key (fun n -> Some (Option.value n ~default:0 + 1)) m)
    M.empty findings

let header =
  "# lopc-lint baseline v1: severity<TAB>rule<TAB>file<TAB>count, sorted.\n\
   # Refresh with: dune exec bin/lopc_lint.exe -- baseline write <roots>\n"

let write ~path findings =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      M.iter
        (fun (sev, rule, file) n ->
          Printf.fprintf oc "%s\t%s\t%s\t%d\n" sev rule file n)
        (aggregate findings));
  Sys.rename tmp path

let read path =
  let ic = open_in_bin path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  List.fold_left
    (fun m line ->
      if String.length line = 0 || line.[0] = '#' then m
      else
        match String.split_on_char '\t' line with
        | [ sev; rule; file; n ] -> (
          match int_of_string_opt n with
          | Some n -> M.add (sev, rule, file) n m
          | None -> m)
        | _ -> m)
    M.empty lines

let diff ~path ppf findings =
  let base = read path in
  let current = aggregate findings in
  let keys =
    M.fold (fun k _ acc -> M.add k () acc) base M.empty
    |> M.fold (fun k _ acc -> M.add k () acc) current
  in
  let count m k = Option.value (M.find_opt k m) ~default:0 in
  let changed =
    M.fold
      (fun k () acc ->
        let b = count base k and c = count current k in
        if b <> c then (k, b, c) :: acc else acc)
      keys []
    |> List.rev
  in
  let regressions =
    List.filter
      (fun ((sev, _, _), b, c) -> String.equal sev "error" && c > b)
      changed
  in
  Format.fprintf ppf "## Lint findings vs baseline@.@.";
  if changed = [] then Format.fprintf ppf "No drift against %s.@." path
  else begin
    Format.fprintf ppf "| severity | rule | file | baseline | current |@.";
    Format.fprintf ppf "|---|---|---|---:|---:|@.";
    List.iter
      (fun ((sev, rule, file), b, c) ->
        Format.fprintf ppf "| %s | `%s` | `%s` | %d | %d |@." sev rule file b c)
      changed
  end;
  if regressions <> [] then
    Format.fprintf ppf "@.%d new error-severity finding(s) vs baseline.@."
      (List.length regressions);
  regressions <> []
