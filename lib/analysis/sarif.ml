(* SARIF 2.1.0 serialisation. Hand-rolled like the JSON reporter — the
   dependency set has no JSON library, and the subset of SARIF GitHub
   code scanning needs is small: schema/version, one run with the tool's
   rule metadata, and results with physical locations. Everything is
   emitted through a buffer with fixed indentation and key order so the
   bytes are a pure function of the finding list. *)

let esc = Finding.json_escape

let level_of = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let rule_ids = lazy (List.map (fun (e : Explain.entry) -> e.id) Explain.entries)

let rule_index id =
  let rec go i = function
    | [] -> None
    | r :: rest -> if String.equal r id then Some i else go (i + 1) rest
  in
  go 0 (Lazy.force rule_ids)

let add_rule buf (e : Explain.entry) =
  Printf.bprintf buf
    {|        {
          "id": "%s",
          "shortDescription": { "text": "%s" },
          "help": { "text": "%s" },
          "defaultConfiguration": { "level": "%s" }
        }|}
    (esc e.id) (esc e.summary) (esc e.fix) (level_of e.severity)

let add_result buf (f : Finding.t) =
  Printf.bprintf buf
    {|      {
        "ruleId": "%s",%s
        "level": "%s",
        "message": { "text": "%s" },
        "locations": [
          {
            "physicalLocation": {
              "artifactLocation": { "uri": "%s" },
              "region": { "startLine": %d, "startColumn": %d, "endLine": %d, "endColumn": %d }
            }
          }
        ]
      }|}
    (esc f.rule)
    (match rule_index f.rule with
    | Some i -> Printf.sprintf "\n        \"ruleIndex\": %d," i
    | None -> "")
    (level_of f.severity)
    (esc (f.message ^ " hint: " ^ f.hint))
    (esc (Finding.file f))
    (Finding.line f)
    (Finding.col f + 1)
    (Finding.end_line f)
    (* SARIF columns are 1-based; endColumn is exclusive like ours *)
    (Finding.end_col f + 1)

let sep_map buf add items =
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf ",\n";
      add buf x)
    items

let report ppf findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"lopc-lint\",\n\
    \          \"informationUri\": \"https://github.com/lopc/lopc-repro\",\n\
    \          \"rules\": [\n";
  (* the rules array nests two levels deeper than results; re-indent *)
  let rules_buf = Buffer.create 4096 in
  sep_map rules_buf add_rule Explain.entries;
  String.split_on_char '\n' (Buffer.contents rules_buf)
  |> List.iteri (fun i line ->
         if i > 0 then Buffer.add_char buf '\n';
         Buffer.add_string buf "    ";
         Buffer.add_string buf line);
  Buffer.add_string buf
    "\n\
    \          ]\n\
    \        }\n\
    \      },\n\
    \      \"results\": [\n";
  sep_map buf add_result findings;
  if findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "      ]\n    }\n  ]\n}\n";
  Format.pp_print_string ppf (Buffer.contents buf)
