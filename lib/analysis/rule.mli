(** A lint rule: identity, default severity, catalogue documentation and the
    check itself. Rules are plain values; the registry is the list assembled
    in {!Driver.default_rules} — adding a rule means writing a [t] and
    consing it there. *)

type t = {
  id : string;  (** stable identifier used in reports and [@lint.allow] *)
  severity : Finding.severity;
  summary : string;  (** one-line description for [--list-rules] *)
  hint : string;  (** short fix hint attached to every finding *)
  check : path:string -> Parsetree.structure -> Finding.t list;
}

val v :
  id:string ->
  severity:Finding.severity ->
  summary:string ->
  hint:string ->
  check:(path:string -> Parsetree.structure -> Finding.t list) ->
  t

(** Build a finding carrying this rule's id, severity and hint. *)
val finding : t -> loc:Location.t -> string -> Finding.t

(** [in_library path] is true when [path] lies under a top-level [lib/]. *)
val in_library : string -> bool

(** [in_prng path] is true for files under [lib/prng/], the only place
    allowed to touch the raw RNG machinery. *)
val in_prng : string -> bool
