(** Explicit, auditable suppression of lint findings.

    A finding is suppressed when it falls inside the span of a
    [[@lint.allow "rule-id" "justification"]] attribute naming its rule: on
    an expression, on a [let] binding ([@@lint.allow]), or floating at the
    top of a file ([@@@lint.allow], which covers the whole compilation
    unit). The first payload string may name several rules separated by
    spaces or commas; the second is a free-form justification. The bare
    one-string form still suppresses but is itself reported by the driver as
    a [bare-suppression] finding. *)

type region = {
  rules : string list;
  justification : string option;
      (** [None] for the legacy bare form [[@lint.allow "id"]]. *)
  attr_loc : Location.t;  (** location of the attribute itself *)
  start_cnum : int;
  end_cnum : int;
  whole_file : bool;
}

val attribute_name : string

(** All suppression regions declared in a structure. *)
val collect : Parsetree.structure -> region list

(** [suppressed regions f] is true when some region names [f]'s rule and
    overlaps [f]'s span (overlap rather than containment, because the parser
    may attach a trailing attribute to the last operand of an infix
    expression instead of the whole expression). *)
val suppressed : region list -> Finding.t -> bool

(** Suppression regions of a source file on disk; unreadable or unparseable
    files have none. Used by the typed pass, whose findings point into
    sources recorded in [.cmt] files. *)
val regions_of_file : string -> region list
