module Budget = Lopc_robust.Budget

type outcome = { value : float array; iterations : int; residual : float }

type status =
  | Converged of { iters : int }
  | Saturated of { station : int; utilization : float }
  | Diverged of { iters : int; residual : float }
  | Exhausted of { iters : int; reason : Budget.stop_reason }

(* The raising entry points below predate the structured [status] type and
   are kept unchanged; type-directed disambiguation separates the exception
   from the [status] constructor of the same name. *)
exception Diverged of string

let is_converged = function
  | Converged _ -> true
  | Saturated _ | Diverged _ | Exhausted _ -> false

let pp_status ppf = function
  | Converged { iters } -> Format.fprintf ppf "converged in %d iterations" iters
  | Saturated { station; utilization } ->
      Format.fprintf ppf "saturated at station %d (utilization %.4f)" station utilization
  | Diverged { iters; residual } ->
      Format.fprintf ppf "diverged after %d iterations (residual %g)" iters residual
  | Exhausted { iters; reason } ->
      Format.fprintf ppf "stopped after %d iterations: %s" iters
        (Budget.reason_to_string reason)

let status_to_string s = Format.asprintf "%a" pp_status s

(* Shared core for the scalar solvers: returns the last iterate, the
   structured status, and a human-readable reason used by the raising
   wrapper. *)
let scalar_impl ?probe ?budget ~damping ~tol ~max_iter ~f ~name x0 =
  if damping <= 0. || damping > 1. then invalid_arg (name ^ ": damping");
  let x = ref x0 in
  let answer : (float * status * string) option ref = ref None in
  (try
     for iter = 1 to max_iter do
       (match budget with
       | None -> ()
       | Some b -> (
         match Budget.check b with
         | None -> ()
         | Some reason ->
           answer :=
             Some
               ( !x,
                 Exhausted { iters = iter - 1; reason },
                 "scalar iteration stopped: " ^ Budget.reason_to_string reason );
           raise Exit));
       let fx = f !x in
       if not (Float.is_finite fx) then begin
         answer :=
           Some
             ( !x,
               Diverged { iters = iter; residual = Float.nan },
               "scalar iteration left the finite domain" );
         raise Exit
       end;
       let residual = Float.abs (fx -. !x) in
       (match probe with
       | None -> ()
       | Some p ->
         p
           {
             Solver_probe.iter;
             residual;
             damping;
             iterate = [| !x |];
             hottest = None;
           });
       if residual <= tol *. Float.max 1. (Float.abs !x) then begin
         answer := Some (fx, Converged { iters = iter }, "");
         raise Exit
       end;
       x := ((1. -. damping) *. !x) +. (damping *. fx)
     done
   with Exit -> ());
  match !answer with
  | Some r -> r
  | None ->
      let residual = Float.abs (f !x -. !x) in
      ( !x,
        Diverged { iters = max_iter; residual },
        "scalar iteration budget exhausted" )

let solve_scalar_status ?probe ?budget ?(damping = 1.) ?(tol = 1e-10)
    ?(max_iter = 10_000) ~f x0 =
  let x, status, _ =
    scalar_impl ?probe ?budget ~damping ~tol ~max_iter ~f
      ~name:"Fixed_point.solve_scalar_status" x0
  in
  (x, status)

let solve_scalar ?(damping = 1.) ?(tol = 1e-10) ?(max_iter = 10_000) ~f x0 =
  match scalar_impl ~damping ~tol ~max_iter ~f ~name:"Fixed_point.solve_scalar" x0 with
  | x, Converged _, _ -> x
  | _, _, reason -> raise (Diverged reason)

let max_norm_diff a b =
  let m = ref 0. in
  Array.iteri (fun i ai -> m := Float.max !m (Float.abs (ai -. b.(i)))) a;
  !m

(* Shared core for the vector solvers, mirroring [scalar_impl]. *)
let vector_impl ?probe ?budget ~damping ~tol ~max_iter ~f ~name x0 =
  if damping <= 0. || damping > 1. then invalid_arg (name ^ ": damping");
  let n = Array.length x0 in
  let x = ref (Array.copy x0) in
  let result : (outcome * status * string) option ref = ref None in
  (try
     for iter = 1 to max_iter do
       (match budget with
       | None -> ()
       | Some b -> (
         match Budget.check b with
         | None -> ()
         | Some reason ->
           result :=
             Some
               ( { value = !x; iterations = iter - 1; residual = Float.nan },
                 Exhausted { iters = iter - 1; reason },
                 "vector iteration stopped: " ^ Budget.reason_to_string reason );
           raise Exit));
       let fx = f !x in
       if Array.length fx <> n then begin
         result :=
           Some
             ( { value = !x; iterations = iter; residual = Float.nan },
               Diverged { iters = iter; residual = Float.nan },
               "vector map changed dimension" );
         raise Exit
       end;
       if not (Array.for_all Float.is_finite fx) then begin
         result :=
           Some
             ( { value = !x; iterations = iter; residual = Float.nan },
               Diverged { iters = iter; residual = Float.nan },
               "vector iteration left the finite domain" );
         raise Exit
       end;
       let residual = max_norm_diff fx !x in
       (match probe with
       | None -> ()
       | Some p ->
         p
           {
             Solver_probe.iter;
             residual;
             damping;
             iterate = Array.copy !x;
             hottest = None;
           });
       let scale = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1. !x in
       if residual <= tol *. scale then begin
         result :=
           Some
             ( { value = fx; iterations = iter; residual },
               Converged { iters = iter },
               "" );
         raise Exit
       end;
       let next =
         Array.mapi (fun i xi -> ((1. -. damping) *. xi) +. (damping *. fx.(i))) !x
       in
       x := next
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None ->
      let fx = f !x in
      let residual =
        if Array.length fx = n && Array.for_all Float.is_finite fx then
          max_norm_diff fx !x
        else Float.nan
      in
      ( { value = !x; iterations = max_iter; residual },
        Diverged { iters = max_iter; residual },
        "vector iteration budget exhausted" )

let solve_vector_status ?probe ?budget ?(damping = 1.) ?(tol = 1e-10)
    ?(max_iter = 10_000) ~f x0 =
  let outcome, status, _ =
    vector_impl ?probe ?budget ~damping ~tol ~max_iter ~f
      ~name:"Fixed_point.solve_vector_status" x0
  in
  (outcome, status)

let solve_vector ?(damping = 1.) ?(tol = 1e-10) ?(max_iter = 10_000) ~f x0 =
  match vector_impl ~damping ~tol ~max_iter ~f ~name:"Fixed_point.solve_vector" x0 with
  | outcome, Converged _, _ -> outcome
  | _, _, reason -> raise (Diverged reason)

let solve_scalar_aitken ?(tol = 1e-12) ?(max_iter = 200) ~f x0 =
  let x = ref x0 in
  let answer = ref None in
  (try
     for _ = 1 to max_iter do
       let x1 = f !x in
       let x2 = f x1 in
       if not (Float.is_finite x1 && Float.is_finite x2) then
         raise (Diverged "Aitken iteration left the finite domain");
       let denom = x2 -. (2. *. x1) +. !x in
       let next =
         if Float.equal denom 0. then x2
         else
           !x
           -. (((x1 -. !x) ** 2.)
              /. denom
              [@lint.allow
                "division-by-vanishing"
                  "the Float.equal guard excludes exactly zero; carving a point out \
                   of an interval is beyond the interval domain"])
       in
       if Float.abs (next -. !x) <= tol *. Float.max 1. (Float.abs next) then begin
         answer := Some next;
         raise Exit
       end;
       x := next
     done
   with Exit -> ());
  match !answer with
  | Some r -> r
  | None -> raise (Diverged "Aitken iteration budget exhausted")
