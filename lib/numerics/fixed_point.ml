type outcome = { value : float array; iterations : int; residual : float }

exception Diverged of string

let solve_scalar ?(damping = 1.) ?(tol = 1e-10) ?(max_iter = 10_000) ~f x0 =
  if damping <= 0. || damping > 1. then invalid_arg "Fixed_point.solve_scalar: damping";
  let x = ref x0 in
  let answer = ref None in
  (try
     for _ = 1 to max_iter do
       let fx = f !x in
       if not (Float.is_finite fx) then raise (Diverged "scalar iteration left the finite domain");
       if Float.abs (fx -. !x) <= tol *. Float.max 1. (Float.abs !x) then begin
         answer := Some fx;
         raise Exit
       end;
       x := ((1. -. damping) *. !x) +. (damping *. fx)
     done
   with Exit -> ());
  match !answer with
  | Some r -> r
  | None -> raise (Diverged "scalar iteration budget exhausted")

let max_norm_diff a b =
  let m = ref 0. in
  Array.iteri (fun i ai -> m := Float.max !m (Float.abs (ai -. b.(i)))) a;
  !m

let solve_vector ?(damping = 1.) ?(tol = 1e-10) ?(max_iter = 10_000) ~f x0 =
  if damping <= 0. || damping > 1. then invalid_arg "Fixed_point.solve_vector: damping";
  let n = Array.length x0 in
  let x = ref (Array.copy x0) in
  let result = ref None in
  (try
     for iter = 1 to max_iter do
       let fx = f !x in
       if Array.length fx <> n then raise (Diverged "vector map changed dimension");
       Array.iter
         (fun v ->
           if not (Float.is_finite v) then
             raise (Diverged "vector iteration left the finite domain"))
         fx;
       let residual = max_norm_diff fx !x in
       let scale = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1. !x in
       if residual <= tol *. scale then begin
         result := Some { value = fx; iterations = iter; residual };
         raise Exit
       end;
       let next =
         Array.mapi (fun i xi -> ((1. -. damping) *. xi) +. (damping *. fx.(i))) !x
       in
       x := next
     done
   with Exit -> ());
  match !result with
  | Some r -> r
  | None -> raise (Diverged "vector iteration budget exhausted")

let solve_scalar_aitken ?(tol = 1e-12) ?(max_iter = 200) ~f x0 =
  let x = ref x0 in
  let answer = ref None in
  (try
     for _ = 1 to max_iter do
       let x1 = f !x in
       let x2 = f x1 in
       if not (Float.is_finite x1 && Float.is_finite x2) then
         raise (Diverged "Aitken iteration left the finite domain");
       let denom = x2 -. (2. *. x1) +. !x in
       let next =
         if Float.equal denom 0. then x2 else !x -. (((x1 -. !x) ** 2.) /. denom)
       in
       if Float.abs (next -. !x) <= tol *. Float.max 1. (Float.abs next) then begin
         answer := Some next;
         raise Exit
       end;
       x := next
     done
   with Exit -> ());
  match !answer with
  | Some r -> r
  | None -> raise (Diverged "Aitken iteration budget exhausted")
