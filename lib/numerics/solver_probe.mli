(** Per-iteration solver telemetry.

    A probe is a callback the fixed-point solvers (and the model-level
    solvers built on them) invoke once per iteration with the residual,
    the damping in force, the current iterate, and — when the caller
    knows station semantics — the hottest station. It makes convergence
    *inspectable*: a diverging AMVA run shows which station's
    utilization is being driven past 1 long before the iteration budget
    runs out.

    Probes are passive: solvers ignore their return value and behave
    identically with or without one (same iterates, same status). *)

type event = {
  iter : int;  (** 1-based iteration (or function-evaluation) count. *)
  residual : float;
      (** Max-norm of [F x − x] at this iterate (scalar: [|f x − x|]). *)
  damping : float;  (** Under-relaxation factor in force. *)
  iterate : float array;  (** The iterate [x] (copied; safe to keep). *)
  hottest : (int * float) option;
      (** [(station, utilization)] of the most utilized queueing station
          at this iterate, when the solver knows station semantics;
          [None] from the raw fixed-point iteration. *)
}

type t = event -> unit
(** Probes must not raise: an exception thrown from a probe escapes the
    [solve_status] entry points ([exn-escape] holds only for the
    solvers' own code). *)

type log
(** An accumulating probe for tests and post-mortems. *)

val log : ?limit:int -> unit -> log * t
(** A fresh collector and the probe that feeds it; events beyond
    [limit] (default [100_000]) are counted but discarded. *)

val events : log -> event list
(** Collected events, oldest first. *)

val count : log -> int
(** Events offered, including any discarded beyond the limit. *)

val residuals : log -> float array
(** The residual sequence, oldest first. *)

val last : log -> event option

val strictly_decreasing : ?from:int -> log -> bool
(** Whether the residual sequence is finite and strictly decreasing
    from index [from] (default [0]) on. [true] when fewer than two
    events qualify. *)

val hottest : log -> (int * float) option
(** The [hottest] field of the last event that carried one. *)

val pp_event : Format.formatter -> event -> unit
(** One line: [iter residual damping [hottest station/utilization]]. *)

val pp : Format.formatter -> log -> unit
(** All collected events, one {!pp_event} line each. *)
