(** Fixed-point iteration for scalar and vector maps.

    The AMVA equation systems in this library are all of the form
    [x = F x] with [F] a contraction (or close to one) near the solution.
    These solvers iterate [F] with optional under-relaxation (damping),
    which is how MVA systems are conventionally solved. *)

type outcome = {
  value : float array;  (** The (approximate) fixed point. *)
  iterations : int;     (** Iterations actually performed. *)
  residual : float;     (** Max-norm of [F x − x] at the final iterate. *)
}

type status =
  | Converged of { iters : int }
      (** The iteration met its tolerance after [iters] steps. *)
  | Saturated of { station : int; utilization : float }
      (** A queueing station was driven to (or past) full utilization, so
          no finite fixed point exists. Produced by the model-level solvers
          ([Amva], [All_to_all], [General], [Fault_model]) which know which
          station saturated; the raw iteration itself never reports it. *)
  | Diverged of { iters : int; residual : float }
      (** The iteration left the finite domain or used up [max_iter];
          [residual] is the last max-norm of [F x − x] ([nan] when the map
          produced non-finite values). *)
  | Exhausted of { iters : int; reason : Lopc_robust.Budget.stop_reason }
      (** An explicit {!Lopc_robust.Budget.t} stopped the iteration —
          fuel ran out or the cancel token flipped — after [iters]
          complete steps. Distinct from [Diverged]: exhaustion says the
          caller-imposed allowance ended, not that the map misbehaved. *)
(** Structured solver outcome shared by every fixed-point solver in the
    repository — no solve entry point returns silently after [max_iter]. *)

val is_converged : status -> bool
(** [true] only for [Converged _]. *)

val pp_status : Format.formatter -> status -> unit
(** Human-readable rendering, e.g. ["converged in 14 iterations"]. *)

val status_to_string : status -> string
(** [status_to_string s] is {!pp_status} rendered to a string. *)

exception Diverged of string
(** Raised by the legacy raising entry points when the iteration produces
    non-finite values or exhausts its budget without meeting the
    tolerance. New code should prefer the [_status] variants. *)

val solve_scalar :
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  float ->
  float
(** [solve_scalar ~f x0] iterates [x <- (1−d)·x + d·f x] from [x0] until
    [|f x − x| <= tol ·. max 1. |x|]. [damping] [d] defaults to [1.]
    (plain iteration), [tol] to [1e-10], [max_iter] to [10_000].
    @raise Diverged if convergence fails. *)

val solve_scalar_status :
  ?probe:Solver_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  float ->
  float * status
(** Non-raising variant of {!solve_scalar}: returns the last iterate
    together with a structured {!status} instead of raising. On
    [Diverged _] the returned float is the last finite iterate (not a
    solution). [probe], when given, receives one {!Solver_probe.event}
    per iteration (before the convergence test, so the converging step
    is included); it does not alter the iteration. [budget], when given,
    is consulted once at the top of every iteration (one unit of fuel per
    iteration); when it stops the run the result is
    [Exhausted _] and the returned float is the last iterate. Only raises
    [Invalid_argument] on a bad [damping]. *)

val solve_vector :
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  f:(float array -> float array) ->
  float array ->
  outcome
(** Vector counterpart of {!solve_scalar} with the max norm. [f] must
    return an array of the same length as its input.
    @raise Diverged if convergence fails or lengths mismatch. *)

val solve_vector_status :
  ?probe:Solver_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  ?damping:float ->
  ?tol:float ->
  ?max_iter:int ->
  f:(float array -> float array) ->
  float array ->
  outcome * status
(** Non-raising variant of {!solve_vector}. On [Diverged _] the returned
    [outcome.value] is the last finite iterate, which model-level callers
    use to diagnose saturation. [probe] and [budget] are as in
    {!solve_scalar_status}, with the full iterate copied per event. Only
    raises [Invalid_argument] on a bad [damping]. *)

val solve_scalar_aitken :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float
(** [solve_scalar_aitken ~f x0] accelerates plain iteration with Aitken's
    Δ² extrapolation (Steffensen's method) — typically converging in a
    handful of steps on the smooth LoPC maps.
    @raise Diverged if convergence fails. *)
