type event = {
  iter : int;
  residual : float;
  damping : float;
  iterate : float array;
  hottest : (int * float) option;
}

type t = event -> unit

type log = {
  limit : int;
  mutable rev : event list;  (* newest first *)
  mutable kept : int;
  mutable offered : int;
}

let log ?(limit = 100_000) () =
  if limit < 1 then invalid_arg "Solver_probe.log: limit must be positive";
  let l = { limit; rev = []; kept = 0; offered = 0 } in
  let probe ev =
    l.offered <- l.offered + 1;
    if l.kept < l.limit then begin
      l.rev <- ev :: l.rev;
      l.kept <- l.kept + 1
    end
  in
  (l, probe)

let events l = List.rev l.rev

let count l = l.offered

let residuals l =
  let arr = Array.make l.kept 0. in
  let i = ref (l.kept - 1) in
  List.iter
    (fun ev ->
      arr.(!i) <- ev.residual;
      decr i)
    l.rev;
  arr

let last l = match l.rev with [] -> None | ev :: _ -> Some ev

let strictly_decreasing ?(from = 0) l =
  let r = residuals l in
  let from = max 0 from in
  let ok = ref true in
  for i = from to Array.length r - 1 do
    if not (Float.is_finite r.(i)) then ok := false;
    if i > from && r.(i) >= r.(i - 1) then ok := false
  done;
  !ok

let hottest l =
  let rec find = function
    | [] -> None
    | ev :: rest -> ( match ev.hottest with Some _ as h -> h | None -> find rest)
  in
  find l.rev

let pp_event ppf ev =
  Format.fprintf ppf "iter %4d  residual %.6e  damping %.3f" ev.iter ev.residual
    ev.damping;
  match ev.hottest with
  | None -> ()
  | Some (station, u) -> Format.fprintf ppf "  hottest station %d (u=%.4f)" station u

let pp ppf l =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events l)
