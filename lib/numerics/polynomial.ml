(* Degree bookkeeping and degenerate-case dispatch compare coefficients and
   discriminants with exact zero on purpose: a coefficient only vanishes
   structurally (never by rounding we want to hide), and treating an almost
   zero leading coefficient as zero would silently change the degree. The
   tests are spelled [Float.equal _ 0.] — monomorphic, so deterministic
   under the typed lint — rather than polymorphic [=]. *)

type t = float array
(* Coefficients lowest order first; invariant: non-empty, finite, trailing
   zeros trimmed (except the zero polynomial [|0.|]). *)

let trim a =
  let n = ref (Array.length a) in
  while !n > 1 && Float.equal a.(!n - 1) 0. do
    decr n
  done;
  Array.sub a 0 !n
[@@lint.allow
  "unbounded-retry"
    "[!n] strictly decreases from the coefficient count and the loop stops at \
     1, so it runs at most [Array.length a] times"]

let of_coeffs a =
  if Array.length a = 0 then invalid_arg "Polynomial.of_coeffs: empty coefficient array";
  Array.iter
    (fun c ->
      if not (Float.is_finite c) then
        invalid_arg "Polynomial.of_coeffs: non-finite coefficient")
    a;
  trim a

let coeffs t = Array.copy t

let degree t = Array.length t - 1

let eval t x =
  let acc = ref 0. in
  for i = Array.length t - 1 downto 0 do
    acc := (!acc *. x) +. t.(i)
  done;
  !acc

let derivative t =
  if Array.length t = 1 then [| 0. |]
  else trim (Array.init (Array.length t - 1) (fun i -> Float.of_int (i + 1) *. t.(i + 1)))

let add a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  let get p i = if i < Array.length p then p.(i) else 0. in
  trim (Array.init n (fun i -> get a i +. get b i))

let mul a b =
  let n = Array.length a + Array.length b - 1 in
  let out = Array.make n 0. in
  Array.iteri
    (fun i ai -> Array.iteri (fun j bj -> out.(i + j) <- out.(i + j) +. (ai *. bj)) b)
    a;
  trim out

let scale k t = trim (Array.map (fun c -> k *. c) t)

let of_roots roots =
  Array.fold_left (fun acc r -> mul acc [| -.r; 1. |]) [| 1. |] roots

let is_zero t = Array.length t = 1 && Float.equal t.(0) 0.

(* --- root solvers ------------------------------------------------------ *)

let polish t root =
  let dt = derivative t in
  let x = ref root in
  for _ = 1 to 3 do
    let d = eval dt !x in
    if not (Float.equal d 0.) then begin
      let next = !x -. (eval t !x /. d) in
      if Float.is_finite next && Float.abs (eval t next) <= Float.abs (eval t !x) then
        x := next
    end
  done;
  !x

let roots_linear c0 c1 = [| -.c0 /. c1 |]

(* Numerically stable quadratic formula. *)
let roots_quadratic c0 c1 c2 =
  let disc = (c1 *. c1) -. (4. *. c2 *. c0) in
  if disc < 0. then [||]
  else if Float.equal disc 0. then [| -.c1 /. (2. *. c2) |]
  else begin
    let sq = sqrt disc in
    let q = -0.5 *. (c1 +. Float.copy_sign sq c1) in
    if Float.equal q 0. then [| 0.; -.c1 /. c2 |]
    else [| q /. c2; c0 /. q |]
  end

let cbrt x = Float.copy_sign (Float.abs x ** (1. /. 3.)) x

(* Real roots of the depressed cubic t³ + p·t + q. *)
let depressed_cubic_roots p q =
  if Float.equal p 0. then [| cbrt (-.q) |]
  else begin
    let disc = ((q *. q) /. 4.) +. ((p *. p *. p) /. 27.) in
    if disc > 0. then begin
      let s = sqrt disc in
      [| cbrt ((-.q /. 2.) +. s) +. cbrt ((-.q /. 2.) -. s) |]
    end
    else begin
      (* Three real roots: trigonometric method (requires p < 0). *)
      let m = 2. *. sqrt (-.p /. 3.) in
      let arg = 3. *. q /. (p *. m) in
      let arg = Float.max (-1.) (Float.min 1. arg) in
      let theta = acos arg /. 3. in
      let pi = 4. *. atan 1. in
      Array.init 3 (fun k -> m *. cos (theta -. (2. *. pi *. Float.of_int k /. 3.)))
    end
  end

let roots_cubic c0 c1 c2 c3 =
  let b = c2 /. c3 and c = c1 /. c3 and d = c0 /. c3 in
  let p = c -. (b *. b /. 3.) in
  let q = ((2. *. b *. b *. b) -. (9. *. b *. c) +. (27. *. d)) /. 27. in
  Array.map (fun t -> t -. (b /. 3.)) (depressed_cubic_roots p q)

(* Ferrari's method on the depressed quartic y⁴ + p·y² + q·y + r. *)
let depressed_quartic_roots p q r =
  if Float.abs q < 1e-12 *. Float.max 1. (Float.max (Float.abs p) (Float.abs r)) then begin
    (* Biquadratic: z² + p·z + r = 0 with z = y². *)
    let zs = roots_quadratic r p 1. in
    let out = ref [] in
    Array.iter
      (fun z ->
        if z > 0. then begin
          let s = sqrt z in
          out := s :: -.s :: !out
        end
        else if Float.equal z 0. then out := 0. :: !out)
      zs;
    Array.of_list !out
  end
  else begin
    (* Resolvent cubic 8m³ + 8p·m² + (2p² − 8r)·m − q² = 0 has a positive
       real root when q ≠ 0. *)
    let ms = roots_cubic (-.(q *. q)) ((2. *. p *. p) -. (8. *. r)) (8. *. p) 8. in
    let m = Array.fold_left (fun acc v -> if v > acc then v else acc) neg_infinity ms in
    if m <= 0. then [||]
    else begin
      let s = sqrt (2. *. m) in
      (* (y² + p/2 + m)² = 2m (y − q/(4m))² splits into
         y² − s·y + (p/2 + m + q/(2s)) and y² + s·y + (p/2 + m − q/(2s)). *)
      let t_minus = (p /. 2.) +. m +. (q /. (2. *. s)) in
      let t_plus = (p /. 2.) +. m -. (q /. (2. *. s)) in
      Array.append (roots_quadratic t_minus (-.s) 1.) (roots_quadratic t_plus s 1.)
    end
  end

let roots_quartic c0 c1 c2 c3 c4 =
  let b = c3 /. c4 and c = c2 /. c4 and d = c1 /. c4 and e = c0 /. c4 in
  let shift = b /. 4. in
  let p = c -. (3. *. b *. b /. 8.) in
  let q = d -. (b *. c /. 2.) +. (b *. b *. b /. 8.) in
  let r =
    e -. (b *. d /. 4.) +. (b *. b *. c /. 16.) -. (3. *. b *. b *. b *. b /. 256.)
  in
  Array.map (fun y -> y -. shift) (depressed_quartic_roots p q r)

(* Fallback for degree >= 5: between consecutive critical points the
   polynomial is monotone, so each sign change brackets exactly one root. *)
let rec roots_by_subdivision t =
  let deriv_roots = real_roots_unpolished (derivative t) in
  let cauchy_bound =
    let lead = t.(Array.length t - 1) in
    1.
    +. Array.fold_left (fun acc c -> Float.max acc (Float.abs (c /. lead))) 0. t
  in
  let points =
    Array.to_list deriv_roots
    |> List.filter (fun x -> Float.abs x < cauchy_bound)
    |> List.sort Float.compare
  in
  let points = ((-.cauchy_bound) :: points) @ [ cauchy_bound ] in
  let rec scan acc = function
    | a :: (b :: _ as rest) ->
      let fa = eval t a and fb = eval t b in
      let acc =
        if Float.equal fa 0. then a :: acc
        else if fa *. fb < 0. then Roots.brent ~f:(eval t) a b :: acc
        else acc
      in
      scan acc rest
    | [ last ] -> if Float.equal (eval t last) 0. then last :: acc else acc
    | [] -> acc
  in
  Array.of_list (scan [] points)

and real_roots_unpolished t =
  if is_zero t then invalid_arg "Polynomial.real_roots: zero polynomial";
  match Array.length t - 1 with
  | 0 -> [||]
  | 1 -> roots_linear t.(0) t.(1)
  | 2 -> roots_quadratic t.(0) t.(1) t.(2)
  | 3 -> roots_cubic t.(0) t.(1) t.(2) t.(3)
  | 4 -> roots_quartic t.(0) t.(1) t.(2) t.(3) t.(4)
  | _ -> roots_by_subdivision t

let real_roots t =
  let raw = real_roots_unpolished t in
  let polished = Array.map (polish t) raw in
  Array.sort Float.compare polished;
  (* Collapse numerically identical roots. *)
  let out = ref [] in
  Array.iter
    (fun r ->
      match !out with
      | prev :: _ when Float.abs (r -. prev) <= 1e-8 *. Float.max 1. (Float.abs r) -> ()
      | _ -> out := r :: !out)
    polished;
  Array.of_list (List.rev !out)

let pp ppf t =
  let started = ref false in
  for i = Array.length t - 1 downto 0 do
    let c = t.(i) in
    if (not (Float.equal c 0.)) || (Array.length t = 1 && i = 0) then begin
      if !started then Format.fprintf ppf (if c >= 0. then " + " else " - ")
      else if c < 0. then Format.fprintf ppf "-";
      started := true;
      let a = Float.abs c in
      if i = 0 then Format.fprintf ppf "%g" a
      else if i = 1 then Format.fprintf ppf "%g x" a
      else Format.fprintf ppf "%g x^%d" a i
    end
  done;
  if not !started then Format.fprintf ppf "0"
