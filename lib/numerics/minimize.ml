let golden_section ?(tol = 1e-9) ?(max_iter = 500) ~f lo hi =
  if lo > hi then invalid_arg "Minimize.golden_section: lo > hi";
  let phi = (sqrt 5. -. 1.) /. 2. in
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  while !b -. !a > tol *. Float.max 1. (Float.abs !a +. Float.abs !b) && !iter < max_iter do
    incr iter;
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  0.5 *. (!a +. !b)

type outcome = { minimizer : float array; value : float; iterations : int }

let nelder_mead ?(tol = 1e-10) ?(max_iter = 5000) ?initial_step ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Minimize.nelder_mead: empty starting point";
  let step i =
    match initial_step with
    | Some s -> s
    | None -> 0.1 *. Float.max 1. (Float.abs x0.(i))
  in
  (* Simplex of n+1 vertices with their values. *)
  let simplex =
    Array.init (n + 1) (fun k ->
        let v = Array.copy x0 in
        if k > 0 then v.(k - 1) <- v.(k - 1) +. step (k - 1);
        (v, f v))
  in
  let order () = Array.sort (fun (_, a) (_, b) -> Float.compare a b) simplex in
  let centroid_excl_worst () =
    let c = Array.make n 0. in
    for k = 0 to n - 1 do
      let v, _ = simplex.(k) in
      Array.iteri (fun i vi -> c.(i) <- c.(i) +. (vi /. Float.of_int n)) v
    done;
    c
  in
  let combine a ca b cb = Array.init n (fun i -> (ca *. a.(i)) +. (cb *. b.(i))) in
  let iterations = ref 0 in
  order ();
  (* Converged when both the value spread and the simplex extent are
     small — the value test alone stalls on symmetric straddles of a
     kink or flat valley. *)
  let converged () =
    let bestv, best = simplex.(0) and _, worst = simplex.(n) in
    let diameter =
      Array.fold_left
        (fun acc (v, _) ->
          let d = ref 0. in
          Array.iteri (fun i vi -> d := Float.max !d (Float.abs (vi -. bestv.(i)))) v;
          Float.max acc !d)
        0. simplex
    in
    let scale =
      Array.fold_left (fun acc vi -> Float.max acc (Float.abs vi)) 1. bestv
    in
    Float.abs (worst -. best) <= tol *. Float.max 1. (Float.abs best)
    && diameter <= sqrt tol *. scale
  in
  while (not (converged ())) && !iterations < max_iter do
    incr iterations;
    let c = centroid_excl_worst () in
    let worst, fworst = simplex.(n) in
    let _, fbest = simplex.(0) in
    let _, fsecond = simplex.(n - 1) in
    (* Reflection. *)
    let xr = combine c 2. worst (-1.) in
    let fr = f xr in
    if fr < fbest then begin
      (* Expansion. *)
      let xe = combine c 3. worst (-2.) in
      let fe = f xe in
      if fe < fr then simplex.(n) <- (xe, fe) else simplex.(n) <- (xr, fr)
    end
    else if fr < fsecond then simplex.(n) <- (xr, fr)
    else begin
      (* Contraction (outside if the reflection helped, inside else). *)
      let xc, fc =
        if fr < fworst then begin
          let x = combine c 1.5 worst (-0.5) in
          (x, f x)
        end
        else begin
          let x = combine c 0.5 worst 0.5 in
          (x, f x)
        end
      in
      if fc < Float.min fr fworst then simplex.(n) <- (xc, fc)
      else begin
        (* Shrink toward the best vertex. *)
        let best, _ = simplex.(0) in
        for k = 1 to n do
          let v, _ = simplex.(k) in
          let shrunk = combine best 0.5 v 0.5 in
          simplex.(k) <- (shrunk, f shrunk)
        done
      end
    end;
    order ()
  done;
  let minimizer, value = simplex.(0) in
  { minimizer; value; iterations = !iterations }
