(* Root finders legitimately compare residuals with exact zero: an IEEE-exact
   f(x) = 0. is a root by definition and ends the search early; near-misses
   are handled by the tolerance tests alongside. The tests are spelled with
   [Float.equal] — monomorphic, so deterministic under the typed lint —
   rather than polymorphic [=]. *)

let is_zero x = Float.equal x 0.

exception No_bracket
exception Not_converged of string

let same_strict_sign a b = (a > 0. && b > 0.) || (a < 0. && b < 0.)

let bisect ?(tol = 1e-9) ?(max_iter = 200) ~f lo hi =
  let flo = f lo and fhi = f hi in
  if is_zero flo then lo
  else if is_zero fhi then hi
  else if same_strict_sign flo fhi then raise No_bracket
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let result = ref Float.nan in
    (try
       for _ = 1 to max_iter do
         let mid = 0.5 *. (!lo +. !hi) in
         let fmid = f mid in
         if is_zero fmid || !hi -. !lo < tol then begin
           result := mid;
           raise Exit
         end;
         if same_strict_sign !flo fmid then begin
           lo := mid;
           flo := fmid
         end
         else hi := mid
       done;
       result := 0.5 *. (!lo +. !hi)
     with Exit -> ());
    !result
  end

(* Brent's method, following the classical Brent (1973) formulation. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f lo) and fb = ref (f hi) in
  if is_zero !fa then !a
  else if is_zero !fb then !b
  else if same_strict_sign !fa !fb then raise No_bracket
  else begin
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let answer = ref Float.nan in
    (try
       for _ = 1 to max_iter do
         if Float.abs !fc < Float.abs !fb then begin
           a := !b;
           b := !c;
           c := !a;
           fa := !fb;
           fb := !fc;
           fc := !fa
         end;
         let tol1 = (2. *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if Float.abs xm <= tol1 || is_zero !fb then begin
           answer := !b;
           raise Exit
         end;
         if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
           (* Attempt inverse quadratic interpolation / secant. *)
           let s = !fb /. !fa in
           let p, q =
             if Float.equal !a !c then
               let p = 2. *. xm *. s in
               (p, 1. -. s)
             else begin
               let q = !fa /. !fc and r = !fb /. !fc in
               let p = s *. ((2. *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.))) in
               (p, (q -. 1.) *. (r -. 1.) *. (s -. 1.))
             end
           in
           let p, q = if p > 0. then (p, -.q) else (-.p, q) in
           let min1 = (3. *. xm *. q) -. Float.abs (tol1 *. q) in
           let min2 = Float.abs (!e *. q) in
           if 2. *. p < Float.min min1 min2 then begin
             e := !d;
             d := p /. q
           end
           else begin
             d := xm;
             e := xm
           end
         end
         else begin
           d := xm;
           e := xm
         end;
         a := !b;
         fa := !fb;
         if Float.abs !d > tol1 then b := !b +. !d
         else b := !b +. Float.copy_sign tol1 xm;
         fb := f !b;
         if same_strict_sign !fb !fc then begin
           c := !a;
           fc := !fa;
           d := !b -. !a;
           e := !d
         end
       done;
       answer := !b
     with Exit -> ());
    !answer
  end

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let x = ref x0 in
  let answer = ref None in
  (try
     for _ = 1 to max_iter do
       let fx = f !x in
       let dfx = df !x in
       if is_zero dfx then raise (Not_converged "Newton: zero derivative");
       let step = fx /. dfx in
       x := !x -. step;
       if Float.abs step <= tol *. Float.max 1. (Float.abs !x) then begin
         answer := Some !x;
         raise Exit
       end
     done
   with Exit -> ());
  match !answer with
  | Some r -> r
  | None -> raise (Not_converged "Newton: iteration budget exhausted")

let expand_bracket_upward ?(growth = 2.) ?(max_expansions = 100) ~f lo =
  let flo = f lo in
  if is_zero flo then (lo, lo)
  else begin
    let step = ref (Float.max 1. (Float.abs lo *. 0.1)) in
    let hi = ref (lo +. !step) in
    let rec search n =
      if n > max_expansions then raise No_bracket
      else begin
        let fhi = f !hi in
        if is_zero fhi || not (same_strict_sign flo fhi) then (lo, !hi)
        else begin
          step := !step *. growth;
          hi := !hi +. !step;
          search (n + 1)
        end
      end
    in
    search 0
  end
