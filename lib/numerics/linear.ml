exception Singular

let solve a b =
  let n = Array.length b in
  if Array.length a <> n then invalid_arg "Linear.solve: dimension mismatch";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Linear.solve: ragged matrix")
    a;
  (* Work on an augmented copy. *)
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  for col = 0 to n - 1 do
    (* Partial pivoting. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then raise Singular;
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if not (Float.equal factor 0.) then
        for k = col to n do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done
    done
  done;
  let x = Array.make n 0. in
  for row = n - 1 downto 0 do
    let acc = ref m.(row).(n) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let mat_vec a x =
  let n = Array.length x in
  Array.map
    (fun row ->
      if Array.length row <> n then invalid_arg "Linear.mat_vec: dimension mismatch";
      let acc = ref 0. in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let stationary_distribution ?(tol = 1e-12) p =
  let n = Array.length p in
  if n = 0 then invalid_arg "Linear.stationary_distribution: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Linear.stationary_distribution: not square";
      let sum = Array.fold_left ( +. ) 0. row in
      Array.iter
        (fun v ->
          if v < 0. then invalid_arg "Linear.stationary_distribution: negative entry")
        row;
      if Float.abs (sum -. 1.) > 1e-6 then
        invalid_arg "Linear.stationary_distribution: row does not sum to 1")
    p;
  let pi = ref (Array.make n (1. /. Float.of_int n)) in
  let next = Array.make n 0. in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 100_000 do
    incr iter;
    Array.fill next 0 n 0.;
    Array.iteri
      (fun i v -> Array.iteri (fun j pij -> next.(j) <- next.(j) +. (v *. pij)) p.(i))
      !pi;
    let diff = ref 0. in
    Array.iteri (fun j v -> diff := Float.max !diff (Float.abs (v -. !pi.(j)))) next;
    Array.blit next 0 !pi 0 n;
    if !diff <= tol then converged := true
  done;
  !pi
