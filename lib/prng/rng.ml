type t = Xoshiro256.t

let create seed = Xoshiro256.create (Int64.of_int seed)

let split t =
  let child = Xoshiro256.copy t in
  Xoshiro256.jump child;
  (* Move the parent past the child's 2^128-long stream as well, so further
     splits from either never overlap. *)
  Xoshiro256.jump t;
  Xoshiro256.jump t;
  child

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

let bits64 = Xoshiro256.next

let float = Xoshiro256.next_float

let float_range t lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo > hi then
    invalid_arg "Rng.float_range: invalid bounds";
  lo +. ((hi -. lo) *. float t)

let int_below t bound =
  if bound <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.sub (Int64.add raw (Int64.sub bound64 1L)) v < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: empty range";
  lo + int_below t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Rng.bernoulli: p outside [0,1]";
  float t < p

let exponential t mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  (* 1 - float t is in (0,1], so log never sees 0. *)
  -.mean *. log (1. -. float t)

let gaussian t =
  let rec polar () =
    let u = float_range t (-1.) 1. and v = float_range t (-1.) 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || Float.equal s 0. then polar ()
    else
      u
      *. sqrt
           (-2. *. log s
           /. s
           [@lint.allow
             "division-by-vanishing"
               "the Float.equal rejection loop excludes s = 0; carving a point out \
                of an interval is beyond the interval domain"])
  in
  polar ()

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int_below t (Array.length a))

let choose_weighted t weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0. || not (Float.is_finite w) then
          invalid_arg "Rng.choose_weighted: negative or non-finite weight";
        acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Rng.choose_weighted: weights sum to zero";
  let target = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
