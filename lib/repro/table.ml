type cell = Float of float | Int of int | Text of string | Missing

type t = { caption : string; columns : string list; rows : cell list list }

let create ~caption ~columns rows =
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table: row %d has %d cells, expected %d" i (List.length row)
             width))
    rows;
  { caption; columns; rows }

let of_row_groups ~caption ~columns groups =
  (* Ordered merge used by the parallel reproduction engine: group [i] holds
     the rows produced by task [i], whatever worker computed it and in
     whatever order the workers finished; concatenating by index makes the
     merged table a pure function of the task array. *)
  create ~caption ~columns (List.concat (Array.to_list groups))

let cell_to_string = function
  | Float f -> Printf.sprintf "%.6g" f
  | Int i -> string_of_int i
  | Text s -> s
  | Missing -> "-"

let pp ppf t =
  let rendered = List.map (List.map cell_to_string) t.rows in
  let widths =
    List.mapi
      (fun i name ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length name) rendered)
      t.columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  Format.fprintf ppf "## %s@." t.caption;
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map2 pad t.columns widths));
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter
    (fun row ->
      Format.fprintf ppf "%s@." (String.concat "  " (List.map2 pad row widths)))
    rendered

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("# " ^ t.caption ^ "\n");
  Buffer.add_string buf (String.concat "," t.columns ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map cell_to_string row) ^ "\n"))
    t.rows;
  Buffer.contents buf

let column t name =
  let index =
    match List.find_index (String.equal name) t.columns with
    | Some i -> i
    | None -> raise Not_found
  in
  t.rows
  |> List.map (fun row ->
         match List.nth row index with
         | Float f -> f
         | Int i -> Float.of_int i
         | Missing -> Float.nan
         | Text s -> invalid_arg ("Table.column: text cell '" ^ s ^ "' in " ^ name))
  |> Array.of_list
