(* Work-stealing task pool on stock OCaml 5 domains (no domainslib: the
   only primitives used are Domain, Atomic, Mutex and Condition).

   A batch is an index-ordered array of independent thunks. The index
   space is split into one contiguous range per worker; each range is a
   tiny mutex-protected deque of indices: the owner pops from the front,
   thieves remove the upper half from the back. Stolen spans are installed
   in the thief's own (empty) range, so they remain visible to further
   steals and imbalance cascades instead of serialising.

   Determinism: results are written to slot [i] for task [i] and the
   submitter re-raises the lowest-indexed task exception, so the outcome
   is a pure function of the task array — never of the schedule. *)

type range = { rm : Mutex.t; mutable lo : int; mutable hi : int }

type batch = {
  id : int;
  run_task : int -> unit;  (* must not raise; stores its own result *)
  ranges : range array;
  completed : int Atomic.t;
  total : int;
}

type t = {
  n_jobs : int;
  m : Mutex.t;
  work : Condition.t;      (* a new batch is installed, or shutdown *)
  finished : Condition.t;  (* the last task of a batch completed *)
  mutable current : batch option;
  mutable next_id : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs

(* --- per-batch work loop ------------------------------------------------- *)

let pop_own (r : range) =
  Mutex.lock r.rm;
  let res =
    if r.lo < r.hi then begin
      let i = r.lo in
      r.lo <- i + 1;
      Some i
    end
    else None
  in
  Mutex.unlock r.rm;
  res

(* Remove the upper half (at least one index) of a victim's range. *)
let steal_half (r : range) =
  Mutex.lock r.rm;
  let res =
    let avail = r.hi - r.lo in
    if avail <= 0 then None
    else begin
      let k = (avail + 1) / 2 in
      let hi = r.hi in
      r.hi <- hi - k;
      Some (hi - k, hi)
    end
  in
  Mutex.unlock r.rm;
  res

(* Only the owner ever grows its range, and only while it is empty, so
   installing a stolen span cannot clobber live indices. *)
let install (r : range) (lo, hi) =
  Mutex.lock r.rm;
  r.lo <- lo;
  r.hi <- hi;
  Mutex.unlock r.rm

let signal_finished t =
  Mutex.lock t.m;
  Condition.broadcast t.finished;
  Mutex.unlock t.m

let exec t b i =
  b.run_task i;
  (* The worker completing the final task wakes the submitter. *)
  if Atomic.fetch_and_add b.completed 1 = b.total - 1 then signal_finished t

(* Pick the victim with the most remaining work (racy size reads are only
   a heuristic; the steal itself re-checks under the victim's lock). *)
let best_victim b w =
  let best = ref (-1) and best_avail = ref 0 in
  Array.iteri
    (fun v (r : range) ->
      if v <> w then begin
        let avail = r.hi - r.lo in
        if avail > !best_avail then begin
          best := v;
          best_avail := avail
        end
      end)
    b.ranges;
  if !best < 0 then None else Some !best

let rec worker_batch t w b =
  match pop_own b.ranges.(w) with
  | Some i ->
    exec t b i;
    worker_batch t w b
  | None -> try_steal t w b 0

and try_steal t w b empty_scans =
  match best_victim b w with
  | Some v -> begin
    match steal_half b.ranges.(v) with
    | Some span ->
      install b.ranges.(w) span;
      worker_batch t w b
    | None -> try_steal t w b 0  (* victim drained under us; rescan *)
  end
  | None ->
    (* Every range looked empty. A steal in flight (removed from the victim,
       not yet installed by the thief) is invisible for a moment, so scan
       once more before parking for the rest of the batch. *)
    if empty_scans < 1 then begin
      Domain.cpu_relax ();
      try_steal t w b (empty_scans + 1)
    end

(* --- worker domains ------------------------------------------------------ *)

let rec worker_loop t w last_id =
  Mutex.lock t.m;
  let rec await () =
    if t.stop then None
    else
      match t.current with
      | Some b when b.id <> last_id -> Some b
      | Some _ | None ->
        Condition.wait t.work t.m;
        await ()
  in
  let next = await () in
  Mutex.unlock t.m;
  match next with
  | None -> ()
  | Some b ->
    worker_batch t w b;
    worker_loop t w b.id

let create ?jobs:(n = Domain.recommended_domain_count ()) () =
  if n < 1 then invalid_arg "Parallel.create: jobs must be at least 1";
  let t =
    {
      n_jobs = n;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      next_id = 1;
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (n - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1) 0));
  t

let shutdown t =
  Mutex.lock t.m;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work
  end;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.m;
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- batch submission ---------------------------------------------------- *)

let collect results =
  (* Deterministic error policy: the lowest-indexed failure wins. The
     re-raise keeps the backtrace captured at the original raise site in
     the worker, not a fresh one from this merge point. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error _) | None -> assert false (* completed = total *))
    results

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let run_task i =
      results.(i) <-
        Some
          (try Ok (tasks.(i) ())
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Error (e, bt))
    in
    if t.n_jobs = 1 then
      (* Serial reference path: inline, in index order, no domains. *)
      for i = 0 to n - 1 do
        run_task i
      done
    else begin
      let per w = w * n / t.n_jobs in
      let b =
        {
          id = 0;  (* assigned under the lock below *)
          run_task;
          ranges =
            Array.init t.n_jobs (fun w ->
                { rm = Mutex.create (); lo = per w; hi = per (w + 1) });
          completed = Atomic.make 0;
          total = n;
        }
      in
      Mutex.lock t.m;
      if t.stop then begin
        Mutex.unlock t.m;
        invalid_arg "Parallel.run: pool is shut down"
      end;
      let b = { b with id = t.next_id } in
      t.next_id <- t.next_id + 1;
      t.current <- Some b;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      (* The submitter is worker 0. *)
      worker_batch t 0 b;
      Mutex.lock t.m;
      while Atomic.get b.completed < b.total do
        Condition.wait t.finished t.m
      done;
      t.current <- None;
      Mutex.unlock t.m
    end;
    collect results
  end

let map t f xs = run t (Array.map (fun x () -> f x) xs)
