(** Tabular output shared by the reproduction harness.

    Every experiment produces a {!t}: a caption, column headers and rows
    of cells. The printer renders aligned ASCII (as the harness shows on
    stdout) and CSV (for plotting the figures externally). *)

type cell =
  | Float of float      (** Rendered with [%.6g]. *)
  | Int of int
  | Text of string
  | Missing             (** Rendered as ["-"]. *)

type t = {
  caption : string;
  columns : string list;
  rows : cell list list;
}

val create : caption:string -> columns:string list -> cell list list -> t
(** @raise Invalid_argument if any row length differs from the header
    length. *)

val of_row_groups :
  caption:string -> columns:string list -> cell list list array -> t
(** [of_row_groups ~caption ~columns groups] merges per-task row groups in
    index order — the deterministic merge step of a parallel reproduction
    run ([groups.(i)] are the rows of task [i]).
    @raise Invalid_argument as {!create}. *)

val pp : Format.formatter -> t -> unit
(** Aligned plain-text rendering with the caption on top. *)

val to_csv : t -> string
(** Comma-separated rendering (caption as a [#] comment line). *)

val column : t -> string -> float array
(** [column t name] extracts a numeric column (Float and Int cells;
    Missing becomes [nan]).
    @raise Not_found if no column has that name.
    @raise Invalid_argument if the column contains text. *)
