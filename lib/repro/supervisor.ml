(* Supervised batch execution on top of [Parallel]: per-task cancellation
   tokens, a fail-fast or collect-all error policy, and a monitor other
   domains may poll to spot stuck tasks.

   The pool layer below stays exception-free: every task body is wrapped
   so its result — value, exception with the backtrace captured at the
   raise site, or skip — is stored as an [outcome]. Policy is applied at
   the wrapper, not the scheduler: Fail_fast merely cancels the batch
   token on the first failure, so running tasks stop at their next poll
   and unstarted tasks settle as [Skipped]. Which tasks get skipped
   therefore depends on the schedule — fail-fast is a latency policy, not
   a deterministic one; deterministic artifacts use Collect_all (or no
   failures). *)

module Cancel = Lopc_robust.Cancel

type policy = Fail_fast | Collect_all

type 'a outcome =
  | Completed of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }
  | Skipped

exception Cancelled_task of int

(* Task states for the monitor: pending = 0, running = 1, settled = 2.
   Plain ints behind Atomic.t so a watchdog domain can read them while
   workers write. *)
type monitor = { states : int Atomic.t array }

let monitor n = { states = Array.init n (fun _ -> Atomic.make 0) }

let task_count m = Array.length m.states

let in_flight m =
  let running = ref [] in
  for i = Array.length m.states - 1 downto 0 do
    if Atomic.get m.states.(i) = 1 then running := i :: !running
  done;
  !running

let settled m =
  Array.fold_left (fun acc s -> if Atomic.get s = 2 then acc + 1 else acc) 0 m.states

let supervise ?pool ?(policy = Collect_all) ?cancel ?tokens ?monitor:mon tasks =
  let n = Array.length tasks in
  let batch = match cancel with Some c -> c | None -> Cancel.create () in
  let tokens =
    match tokens with
    | Some ts ->
      if Array.length ts <> n then
        invalid_arg "Supervisor.supervise: one token per task";
      ts
    | None -> Array.init n (fun _ -> Cancel.create ~parent:batch ())
  in
  (match mon with
  | Some m ->
    if Array.length m.states <> n then
      invalid_arg "Supervisor.supervise: monitor sized for a different batch"
  | None -> ());
  let mark i v =
    match mon with None -> () | Some m -> Atomic.set m.states.(i) v
  in
  let wrapped i () =
    mark i 1;
    let outcome =
      if Cancel.cancelled tokens.(i) then Skipped
      else begin
        try Completed (tasks.(i) tokens.(i))
        with e ->
          let backtrace = Printexc.get_raw_backtrace () in
          if policy = Fail_fast then Cancel.cancel batch;
          Failed { exn = e; backtrace }
      end
    in
    mark i 2;
    outcome
  in
  let thunks = Array.init n wrapped in
  match pool with
  | Some pool -> Parallel.run pool thunks
  | None -> Array.map (fun f -> f ()) thunks

let join outcomes =
  (* Deterministic merge in index order: the lowest-indexed failure wins,
     keeping its original backtrace; the lowest-indexed skip surfaces only
     when nothing failed. *)
  Array.iter
    (function
      | Failed { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
      | Completed _ | Skipped -> ())
    outcomes;
  Array.iteri
    (fun i -> function Skipped -> raise (Cancelled_task i) | Completed _ | Failed _ -> ())
    outcomes;
  Array.map
    (function Completed v -> v | Skipped | Failed _ -> assert false)
    outcomes
