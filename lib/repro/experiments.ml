module Params = Lopc.Params
module A = Lopc.All_to_all
module CS = Lopc.Client_server
module Logp = Lopc.Logp
module D = Lopc_dist.Distribution
module Pattern = Lopc_workloads.Pattern
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Welford = Lopc_stats.Welford
module Station = Lopc_mva.Station
module Amva = Lopc_mva.Amva
module Exact_mva = Lopc_mva.Exact_mva
module Solution = Lopc_mva.Solution
module Priority = Lopc_mva.Priority

type fidelity = Quick | Full

let sim_cycles = function Quick -> 8_000 | Full -> 60_000

(* Shared experiment constants (see EXPERIMENTS.md). *)
let nodes = 32
let wire_latency = 40.
let w_sweep = [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048. ]

let simulate_all_to_all ?(protocol_processor = false) ~fidelity ~seed ~w ~so ~c2 () =
  let spec =
    Pattern.to_spec ~protocol_processor ~nodes ~work:(D.of_mean_scv ~mean:w ~scv:1.)
      ~handler:(D.of_mean_scv ~mean:so ~scv:c2) ~wire:(D.Constant wire_latency)
      Pattern.All_to_all
  in
  (Machine.run ~seed ~spec ~cycles:(sim_cycles fidelity) ()).Machine.metrics

let table3_1 () =
  Table.create ~caption:"Table 3.1: architectural parameters of the LoPC model"
    ~columns:[ "LoPC"; "LogP"; "Description" ]
    (List.map
       (fun (lopc, logp, description) ->
         [ Table.Text lopc; Table.Text logp; Table.Text description ])
       Params.logp_correspondence)

let fig5_1 () =
  let handler_occupancies = [ 128.; 256.; 512.; 1024. ] in
  let c2_values = List.init 9 (fun i -> Float.of_int i *. 0.25) in
  let rows =
    List.map
      (fun c2 ->
        Table.Float c2
        :: List.map
             (fun so ->
               let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
               Table.Float (A.contention_fraction params ~w:1000.))
             handler_occupancies)
      c2_values
  in
  Table.create
    ~caption:
      "Fig 5-1: fraction of response time devoted to contention vs handler C2 \
       (W=1000, P=32, St=40)"
    ~columns:[ "C2"; "So=128"; "So=256"; "So=512"; "So=1024" ]
    rows

let fig5_2 ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun w ->
        let lb = A.lower_bound params ~w in
        let ub = A.upper_bound params ~w in
        let model = (A.solve params ~w).A.r in
        let sim = Metrics.mean_response (simulate_all_to_all ~fidelity ~seed ~w ~so ~c2 ()) in
        [ Table.Float w; Table.Float lb; Table.Float model; Table.Float ub; Table.Float sim ])
      w_sweep
  in
  Table.create
    ~caption:
      "Fig 5-2: all-to-all response time vs work (So=200, C2=0, P=32, St=40)"
    ~columns:[ "W"; "lower bound"; "LoPC"; "upper bound"; "simulator" ]
    rows

let fig5_3 ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun w ->
        let s = A.solve params ~w in
        let m = simulate_all_to_all ~fidelity ~seed ~w ~so ~c2 () in
        let sim_rw = Welford.mean m.Metrics.rw -. w in
        let sim_rq = Welford.mean m.Metrics.rq -. so in
        let sim_ry = Welford.mean m.Metrics.ry -. so in
        [
          Table.Float w;
          Table.Float (s.A.rw -. w);
          Table.Float sim_rw;
          Table.Float (s.A.rq -. so);
          Table.Float sim_rq;
          Table.Float (s.A.ry -. so);
          Table.Float sim_ry;
          Table.Float s.A.contention;
          Table.Float (sim_rw +. sim_rq +. sim_ry);
        ])
      w_sweep
  in
  Table.create
    ~caption:
      "Fig 5-3: contention components per cycle, 32-node all-to-all (So=200, C2=0); \
       columns paired model/simulator"
    ~columns:
      [
        "W"; "thread (LoPC)"; "thread (sim)"; "request (LoPC)"; "request (sim)";
        "reply (LoPC)"; "reply (sim)"; "total (LoPC)"; "total (sim)";
      ]
    rows

let table5_3 ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let sweep = 0. :: w_sweep in
  let rows =
    List.map
      (fun w ->
        let sim = Metrics.mean_response (simulate_all_to_all ~fidelity ~seed ~w ~so ~c2 ()) in
        let lopc = (A.solve params ~w).A.r in
        let logp = Logp.cycle_time params ~w in
        [
          Table.Float w;
          Table.Float sim;
          Table.Float lopc;
          Table.Float (100. *. (lopc -. sim) /. sim);
          Table.Float logp;
          Table.Float (100. *. (logp -. sim) /. sim);
          Table.Float ((sim -. logp) /. so);
        ])
      sweep
  in
  Table.create
    ~caption:
      "Section 5.3 accuracy: LoPC vs contention-free LogP against the simulator \
       (So=200, C2=0, P=32). Paper claims: LoPC <= +6%; LogP down to -37% with an \
       absolute error of about one handler at every W."
    ~columns:
      [ "W"; "simulator"; "LoPC"; "LoPC err %"; "LogP"; "LogP err %"; "LogP abs err / So" ]
    rows

let fig6_2 ?(fidelity = Full) ?(seed = 42) () =
  let so = 131. and w = 1000. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let optimum = CS.optimal_servers params ~w in
  let cycles = sim_cycles fidelity in
  let rows =
    List.init (nodes - 1) (fun i ->
        let servers = i + 1 in
        let model = (CS.throughput params ~w ~servers).CS.throughput in
        let spec =
          Pattern.to_spec ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential so)
            ~wire:(D.Constant wire_latency)
            (Pattern.Client_server { servers })
        in
        let sim =
          Metrics.throughput (Machine.run ~seed ~spec ~cycles ()).Machine.metrics
        in
        [
          Table.Int servers;
          Table.Float model;
          Table.Float sim;
          Table.Float (Logp.server_bound params ~servers);
          Table.Float (Logp.client_bound params ~w ~clients:(nodes - servers));
          (if servers = optimum then Table.Text "optimal (Eq 6.8)" else Table.Missing);
        ])
  in
  Table.create
    ~caption:
      (Printf.sprintf
         "Fig 6-2: work-pile throughput vs servers (P=32, So=131, W=1000, St=40); Eq \
          6.8 optimum Ps*=%d (real-valued %.2f)"
         optimum (CS.optimal_servers_real params ~w))
    ~columns:
      [ "servers"; "LoPC X"; "simulator X"; "server bound"; "client bound"; "marker" ]
    rows

let ablation_arrival_theorem () =
  let so = 131. and w = 1000. in
  let think = w +. (2. *. wire_latency) +. so in
  let rows =
    List.filter_map
      (fun servers ->
        if servers >= nodes then None
        else begin
          let stations =
            Array.init servers (fun _ ->
                Station.queueing ~scv:1. ~demand:(so /. Float.of_int servers) ())
          in
          let population = nodes - servers in
          let exact = Exact_mva.solve ~think_time:think ~stations ~population () in
          let solve approximation =
            (Amva.solve ~approximation ~think_time:think ~stations ~population ())
              .Solution.throughput
          in
          let xe = exact.Solution.throughput in
          let xb = solve Amva.Bard and xs = solve Amva.Schweitzer in
          Some
            [
              Table.Int servers;
              Table.Float xe;
              Table.Float xb;
              Table.Float (100. *. (xb -. xe) /. xe);
              Table.Float xs;
              Table.Float (100. *. (xs -. xe) /. xe);
            ]
        end)
      [ 1; 2; 4; 8; 16 ]
  in
  Table.create
    ~caption:
      "Ablation: Bard (paper) vs Schweitzer arrival-theorem approximation against \
       exact MVA on the Fig 6-2 network"
    ~columns:[ "servers"; "exact X"; "Bard X"; "Bard err %"; "Schweitzer X"; "Schweitzer err %" ]
    rows

let ablation_priority () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun w ->
        let s = A.solve params ~w in
        let bkt =
          Priority.bkt ~work:w ~handler_service:so ~handler_queue:s.A.qq ~handler_util:s.A.uq
        in
        let shadow = Priority.shadow_server ~work:w ~handler_util:s.A.uq in
        [ Table.Float w; Table.Float s.A.rw; Table.Float bkt; Table.Float shadow ])
      w_sweep
  in
  Table.create
    ~caption:
      "Ablation: thread residence Rw under BKT (paper) vs shadow-server priority \
       approximations (evaluated at the LoPC fixed point)"
    ~columns:[ "W"; "Rw (model)"; "BKT"; "shadow server" ]
    rows

let ablation_scv_correction ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. in
  let with_corr = Params.create ~c2:0. ~p:nodes ~st:wire_latency ~so () in
  let without_corr = Params.create ~c2:1. ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun w ->
        (* Simulator runs constant handlers; the C2=1 model is what one
           would get by ignoring Eq 5.8. *)
        let sim = Metrics.mean_response (simulate_all_to_all ~fidelity ~seed ~w ~so ~c2:0. ()) in
        let corrected = (A.solve with_corr ~w).A.r in
        let uncorrected = (A.solve without_corr ~w).A.r in
        [
          Table.Float w;
          Table.Float sim;
          Table.Float corrected;
          Table.Float (100. *. (corrected -. sim) /. sim);
          Table.Float uncorrected;
          Table.Float (100. *. (uncorrected -. sim) /. sim);
        ])
      [ 2.; 32.; 256.; 1024. ]
  in
  Table.create
    ~caption:
      "Ablation: Eq 5.8 residual-life correction on constant handlers (C2=0) — error \
       with the correction vs pretending handlers are exponential"
    ~columns:[ "W"; "simulator"; "LoPC C2=0"; "err %"; "LoPC C2=1"; "err %" ]
    rows

let ablation_solvers () =
  let grid =
    [ (16, 0., 100., 0.); (32, 40., 200., 0.); (32, 40., 200., 1000.); (64, 100., 500., 2000.) ]
  in
  let rows =
    List.map
      (fun (p, st, so, w) ->
        let params = Params.create ~c2:0. ~p ~st ~so () in
        let brent = (A.solve ~solve_method:A.Brent_on_residual params ~w).A.r in
        let iter = (A.solve ~solve_method:A.Damped_iteration params ~w).A.r in
        let poly = (A.solve ~solve_method:A.Polynomial_roots params ~w).A.r in
        [
          Table.Int p;
          Table.Float st;
          Table.Float so;
          Table.Float w;
          Table.Float brent;
          Table.Float (iter -. brent);
          Table.Float (poly -. brent);
        ])
      grid
  in
  Table.create
    ~caption:"Ablation: agreement of the three all-to-all solution methods"
    ~columns:[ "P"; "St"; "So"; "W"; "R (Brent)"; "iteration - Brent"; "poly - Brent" ]
    rows

let shared_memory_comparison ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun w ->
        let mp = (A.solve params ~w).A.r in
        let pp = (A.solve ~execution:A.Protocol_processor params ~w).A.r in
        let sim_mp =
          Metrics.mean_response (simulate_all_to_all ~fidelity ~seed ~w ~so ~c2 ())
        in
        let sim_pp =
          Metrics.mean_response
            (simulate_all_to_all ~protocol_processor:true ~fidelity ~seed ~w ~so ~c2 ())
        in
        [
          Table.Float w;
          Table.Float mp;
          Table.Float sim_mp;
          Table.Float pp;
          Table.Float sim_pp;
          Table.Float (100. *. (mp -. pp) /. pp);
        ])
      [ 2.; 32.; 256.; 1024.; 2048. ]
  in
  Table.create
    ~caption:
      "Section 5.1 shared memory: interrupt-driven vs protocol-processor cycle time \
       (model and simulator), with the message-passing penalty"
    ~columns:
      [ "W"; "msg-passing R"; "sim"; "protocol-proc R"; "sim"; "MP penalty %" ]
    rows

let windowed_speedup ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and w = 1000. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let saturation = Lopc.Windowed.saturation_rate params ~w in
  let base = (Lopc.Windowed.solve ~window:1 params ~w).Lopc.Windowed.node_rate in
  let rows =
    List.map
      (fun window ->
        let model = Lopc.Windowed.solve ~window params ~w in
        let spec =
          Lopc_activemsg.Spec.all_to_all ~window ~nodes ~work:(D.Exponential w)
            ~handler:(D.Exponential so) ~wire:(D.Constant wire_latency) ()
        in
        let sim =
          Metrics.throughput
            (Machine.run ~seed ~spec ~cycles:(sim_cycles fidelity) ()).Machine.metrics
          /. Float.of_int nodes
        in
        [
          Table.Int window;
          Table.Float model.Lopc.Windowed.node_rate;
          Table.Float sim;
          Table.Float (100. *. (model.Lopc.Windowed.node_rate -. sim) /. sim);
          Table.Float (model.Lopc.Windowed.node_rate /. base);
          Table.Float model.Lopc.Windowed.processor_util;
        ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  Table.create
    ~caption:
      (Printf.sprintf
         "Section 7 extension: non-blocking (windowed) requests, per-node rate vs \
          window (P=32, W=1000, So=200, C2=1); saturation ceiling %.6f"
         saturation)
    ~columns:[ "window"; "model X/node"; "sim X/node"; "err %"; "speedup"; "proc util" ]
    rows

let ablation_multiserver () =
  let so = 131. and w = 1000. in
  let params = Params.create ~c2:1. ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun servers ->
        let x threads =
          (CS.throughput ~threads_per_server:threads params ~w ~servers).CS.throughput
        in
        [
          Table.Int servers;
          Table.Float (x 1);
          Table.Float (x 2);
          Table.Float (x 4);
          Table.Float (100. *. ((x 2 /. x 1) -. 1.));
        ])
      [ 1; 2; 3; 4; 5; 8; 12; 16 ]
  in
  Table.create
    ~caption:
      "Extension of section 6: work-pile throughput with multithreaded servers \
       (1/2/4 handler threads per server node; P=32, So=131, W=1000)"
    ~columns:[ "servers"; "X (1 thread)"; "X (2 threads)"; "X (4 threads)"; "gain of 2nd thread %" ]
    rows

let notification_modes ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let cycles = sim_cycles fidelity in
  let simulate ~polling ~protocol_processor w =
    let spec =
      Lopc_activemsg.Spec.all_to_all ~protocol_processor ~polling ~nodes
        ~work:(D.Exponential w) ~handler:(D.of_mean_scv ~mean:so ~scv:c2)
        ~wire:(D.Constant wire_latency) ()
    in
    Metrics.mean_response (Machine.run ~seed ~spec ~cycles ()).Machine.metrics
  in
  let rows =
    List.map
      (fun w ->
        let interrupt = (A.solve params ~w).A.r in
        let polling = (A.solve ~execution:A.Polling params ~w).A.r in
        let pp = (A.solve ~execution:A.Protocol_processor params ~w).A.r in
        [
          Table.Float w;
          Table.Float interrupt;
          Table.Float (simulate ~polling:false ~protocol_processor:false w);
          Table.Float polling;
          Table.Float (simulate ~polling:true ~protocol_processor:false w);
          Table.Float pp;
          Table.Float (simulate ~polling:false ~protocol_processor:true w);
        ])
      [ 0.; 50.; 100.; 200.; 500.; 1000.; 2000.; 4000. ]
  in
  Table.create
    ~caption:
      "Section 3 contrast: handler notification mechanisms — interrupt (LoPC), \
       polling (LogP/CM-5) and protocol processor — cycle time, model beside \
       simulator (P=32, So=200, C2=1, St=40)"
    ~columns:
      [ "W"; "interrupt R"; "(sim)"; "polling R"; "(sim)"; "protocol R"; "(sim)" ]
    rows

let gap_study ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and w = 1000. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let cycles = sim_cycles fidelity in
  let rows =
    List.map
      (fun gap ->
        let model = Lopc.Gap.solve ~gap params ~w in
        let spec =
          Lopc_activemsg.Spec.all_to_all ~gap ~nodes ~work:(D.Exponential w)
            ~handler:(D.Exponential so) ~wire:(D.Constant wire_latency) ()
        in
        let sim =
          Metrics.mean_response (Machine.run ~seed ~spec ~cycles ()).Machine.metrics
        in
        [
          Table.Float gap;
          Table.Float model.Lopc.Gap.r;
          Table.Float sim;
          Table.Float (100. *. model.Lopc.Gap.penalty);
          Table.Float model.Lopc.Gap.ni_utilization;
        ])
      [ 0.; 5.; 10.; 25.; 50.; 100.; 200.; 400. ]
  in
  Table.create
    ~caption:
      (Printf.sprintf
         "Section 3's dropped parameter: effect of the LogP gap g (P=32, W=1000, \
          So=200, C2=1); largest g with <5%% slowdown: %.1f cycles"
         (Lopc.Gap.tolerable_gap params ~w))
    ~columns:[ "g"; "model R"; "simulator R"; "penalty %"; "NI utilization" ]
    rows

let assumptions_audit ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let rows =
    List.map
      (fun w ->
        let m = simulate_all_to_all ~fidelity ~seed ~w ~so ~c2 () in
        let model = A.solve params ~w in
        let arrival = Welford.mean (Metrics.arrival_backlog m) in
        let steady = Metrics.avg_request_queue m +. Metrics.avg_reply_queue m in
        [
          Table.Float w;
          Table.Int (Metrics.max_handler_backlog m);
          Table.Float arrival;
          Table.Float steady;
          Table.Float (model.A.qq +. model.A.qy);
        ])
      [ 0.; 32.; 256.; 1024.; 2048. ]
  in
  Table.create
    ~caption:
      "Assumption audit (sections 2 and 4): deepest handler backlog ever seen \
       (finite buffers hold ~8 small messages on Alewife) and the queue found by \
       arriving messages vs the steady-state queue Bard equates it with \
       (P=32, So=200, C2=0)"
    ~columns:
      [ "W"; "max backlog"; "queue at arrival (sim)"; "steady-state queue (sim)";
        "Qq+Qy (model)" ]
    rows

let network_contention ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:0. ~so () in
  let cycles = sim_cycles fidelity in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun link_time ->
            let topo =
              Lopc_topology.Topology.create ~nodes ~per_hop:10. ~link_time ()
            in
            let model = Lopc.Torus.solve params ~topology:topo ~w in
            let base =
              Lopc_activemsg.Spec.all_to_all ~nodes ~work:(D.of_mean_scv ~mean:w ~scv:1.)
                ~handler:(D.Exponential so) ~wire:(D.Constant 0.) ()
            in
            let spec = { base with Lopc_activemsg.Spec.topology = Some topo } in
            let sim =
              Metrics.mean_response (Machine.run ~seed ~spec ~cycles ()).Machine.metrics
            in
            [
              Table.Float w;
              Table.Float link_time;
              Table.Float model.Lopc.Torus.r;
              Table.Float sim;
              Table.Float model.Lopc.Torus.r_contention_free;
              Table.Float (100. *. model.Lopc.Torus.penalty);
              Table.Float model.Lopc.Torus.link_utilization;
            ])
          [ 0.; 20.; 100.; 200. ])
      [ 1000.; 0. ]
  in
  Table.create
    ~caption:
      "Section 2's first simplification: 4x8 torus with contended links vs a \
       contention-free network of equal mean path (per_hop=10, So=200, C2=1). \
       'penalty' is the modeling error of assuming no link contention."
    ~columns:
      [ "W"; "link time"; "torus model R"; "simulator R"; "contention-free R";
        "penalty %"; "link util" ]
    rows

let exact_comparison ?(fidelity = Full) ?(seed = 42) () =
  let so = 200. and st = 40. in
  let cycles = sim_cycles fidelity * 2 in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun w ->
            let exact = Lopc_markov.Exact_machine.all_to_all ~p ~w ~so ~st () in
            let spec =
              Lopc_activemsg.Spec.all_to_all ~nodes:p ~work:(D.Exponential w)
                ~handler:(D.Exponential so) ~wire:(D.Exponential st) ()
            in
            let sim =
              Metrics.mean_response (Machine.run ~seed ~spec ~cycles ()).Machine.metrics
            in
            let params = Params.create ~c2:1. ~p ~st ~so () in
            let model = (A.solve params ~w).A.r in
            let exact_r = exact.Lopc_markov.Exact_machine.cycle_time in
            [
              Table.Int p;
              Table.Float w;
              Table.Int exact.Lopc_markov.Exact_machine.states;
              Table.Float exact_r;
              Table.Float sim;
              Table.Float (100. *. (sim -. exact_r) /. exact_r);
              Table.Float model;
              Table.Float (100. *. (model -. exact_r) /. exact_r);
            ])
          [ 1.; 200.; 1000. ])
      [ 2; 3; 4 ]
  in
  Table.create
    ~caption:
      "Exact CTMC vs simulator vs LoPC on small machines (exponential W/So/St, \
       So=200, St=40): the simulator column checks the simulator, the model \
       column is LoPC's true approximation error, free of sampling noise"
    ~columns:
      [ "P"; "W"; "states"; "exact R"; "simulator R"; "sim err %"; "LoPC R";
        "LoPC err %" ]
    rows

let fault_sweep ?(fidelity = Full) ?(seed = 42) () =
  let p = 16 and w = 1000. and so = 200. and c2 = 1. in
  let st = wire_latency in
  let timeout = 20_000. and max_tries = 10 in
  let spike_mean = 10. *. st in
  let params = Params.create ~c2 ~p ~st ~so () in
  (* (drop, duplicate, delay_epsilon) scenarios: a clean baseline, a loss
     ladder through the NOW regime, then duplication and delay spikes
     stacked on 2% loss. *)
  let scenarios =
    [
      (0., 0., 0.); (0.01, 0., 0.); (0.02, 0., 0.); (0.05, 0., 0.);
      (0.02, 0.05, 0.); (0.02, 0., 0.1);
    ]
  in
  let rows =
    List.map
      (fun (drop, duplicate, delay_epsilon) ->
        let model =
          Lopc.Fault_model.solve
            (Lopc.Fault_model.config ~drop ~duplicate ~delay_epsilon
               ~spike_mean ~max_tries ~timeout ())
            params ~w
        in
        let fault =
          Lopc_activemsg.Fault.create ~drop ~duplicate ~delay_epsilon
            ~delay_spike:(D.Exponential spike_mean) ~max_tries ~timeout ()
        in
        let spec =
          Pattern.to_spec ~fault ~nodes:p ~work:(D.of_mean_scv ~mean:w ~scv:1.)
            ~handler:(D.of_mean_scv ~mean:so ~scv:c2) ~wire:(D.Constant st)
            Pattern.All_to_all
        in
        let m =
          (Machine.run ~seed ~spec ~cycles:(sim_cycles fidelity / 2) ()).Machine.metrics
        in
        let sim = Metrics.mean_response m in
        let finished = m.Metrics.cycles + m.Metrics.failed_cycles in
        [
          Table.Float drop;
          Table.Float duplicate;
          Table.Float delay_epsilon;
          Table.Float model.Lopc.Fault_model.r;
          Table.Float sim;
          Table.Float (100. *. (model.Lopc.Fault_model.r -. sim) /. sim);
          Table.Float model.Lopc.Fault_model.tries;
          Table.Float (Metrics.mean_tries m);
          Table.Float (Float.of_int m.Metrics.retransmits /. Float.of_int finished);
          Table.Float (Metrics.goodput m /. Metrics.offered_load m);
        ])
      scenarios
  in
  Table.create
    ~caption:
      "Fault sweep: faulty all-to-all cycle time, analytical fault model vs \
       simulator (P=16, W=1000, So=200, C2=1, St=40, timeout=20000, B=10; \
       spike = Exp(10 St))"
    ~columns:
      [
        "drop"; "dup"; "eps"; "model R"; "sim R"; "err %"; "model tries";
        "sim tries"; "retrans/cycle"; "goodput/offered";
      ]
    rows

let all ?(fidelity = Full) ?(seed = 42) () =
  [
    ("table3.1", table3_1 ());
    ("fig5.1", fig5_1 ());
    ("fig5.2", fig5_2 ~fidelity ~seed ());
    ("fig5.3", fig5_3 ~fidelity ~seed ());
    ("table5.3", table5_3 ~fidelity ~seed ());
    ("fig6.2", fig6_2 ~fidelity ~seed ());
    ("ablate.arrival", ablation_arrival_theorem ());
    ("ablate.priority", ablation_priority ());
    ("ablate.scv", ablation_scv_correction ~fidelity ~seed ());
    ("ablate.solvers", ablation_solvers ());
    ("shared-memory", shared_memory_comparison ~fidelity ~seed ());
    ("windowed", windowed_speedup ~fidelity ~seed ());
    ("notification", notification_modes ~fidelity ~seed ());
    ("ablate.multiserver", ablation_multiserver ());
    ("gap", gap_study ~fidelity ~seed ());
    ("assumptions", assumptions_audit ~fidelity ~seed ());
    ("network", network_contention ~fidelity ~seed ());
    ("exact", exact_comparison ~fidelity ~seed ());
    ("fault", fault_sweep ~fidelity ~seed ());
  ]
