module Params = Lopc.Params
module A = Lopc.All_to_all
module CS = Lopc.Client_server
module Logp = Lopc.Logp
module D = Lopc_dist.Distribution
module Pattern = Lopc_workloads.Pattern
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Welford = Lopc_stats.Welford
module Station = Lopc_mva.Station
module Amva = Lopc_mva.Amva
module Exact_mva = Lopc_mva.Exact_mva
module Solution = Lopc_mva.Solution
module Priority = Lopc_mva.Priority
module Rng = Lopc_prng.Rng
module Recorder = Lopc_obs.Recorder
module Sim_probe = Lopc_obs.Sim_probe

type fidelity = Quick | Full

let sim_cycles = function Quick -> 8_000 | Full -> 60_000

(* --- task plans ----------------------------------------------------------- *)

(* An artifact is reproduced as an index-ordered array of independent
   tasks (one per sweep point, usually), each returning its rows, plus an
   ordered merge. The split between the two is what makes the parallel
   run byte-identical to the serial one: tasks own pre-derived PRNG
   streams, results are merged by index, and nothing depends on which
   worker ran what when. *)
type plan = {
  tasks : (unit -> Table.cell list list) array;
  assemble : Table.cell list list array -> Table.t;
}

let task_count plan = Array.length plan.tasks

let run_plan ?pool plan =
  let groups =
    match pool with
    | Some pool -> Parallel.run pool plan.tasks
    | None -> Array.map (fun task -> task ()) plan.tasks
  in
  plan.assemble groups

(* Per-point stream derivation, keyed on (artifact, point) and never on
   scheduling order: the artifact name is folded into the experiment seed
   (FNV-1a over the bytes), the per-point streams are Rng.split children
   taken in point order at plan-build time, and each simulator replication
   inside a task splits again from its point stream in a fixed textual
   order. Streams are therefore a pure function of
   (seed, artifact, point, replication). *)
let point_streams ~seed ~artifact n =
  let key =
    String.fold_left
      (fun acc c ->
        Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001b3L)
      0xcbf29ce484222325L artifact
  in
  Rng.split_n (Rng.create (Int64.to_int (Int64.logxor key (Int64.of_int seed)))) n

(* One task per point: [row ~rng point] returns that point's rows, drawing
   any replications from split children of [rng]. *)
let point_tasks ~seed ~artifact points row =
  let points = Array.of_list points in
  let streams = point_streams ~seed ~artifact (Array.length points) in
  Array.mapi (fun i point -> fun () -> row ~rng:streams.(i) point) points

(* Model-only artifacts need no streams; their points are still one task
   each so even the analytic tables parallelise. *)
let pure_tasks points row =
  Array.map (fun point () -> row point) (Array.of_list points)

(* Shared experiment constants (see EXPERIMENTS.md). *)
let nodes = 32
let wire_latency = 40.
let w_sweep = [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048. ]

let simulate_all_to_all ?(protocol_processor = false) ?obs ~fidelity ~rng ~w ~so ~c2
    () =
  let spec =
    Pattern.to_spec ~protocol_processor ~nodes ~work:(D.of_mean_scv ~mean:w ~scv:1.)
      ~handler:(D.of_mean_scv ~mean:so ~scv:c2) ~wire:(D.Constant wire_latency)
      Pattern.All_to_all
  in
  (Machine.run ~rng ~spec ~cycles:(sim_cycles fidelity) ?obs ()).Machine.metrics

(* Per-point trace capture. Each sweep point writes its own file
   (artifact-label.trace.json) so the parallel runner never shares a
   recorder across domains, and the contents depend only on the point's
   pre-derived PRNG stream — identical at any [--jobs]. *)
let with_trace ~trace_dir ~artifact ~label ~nodes run =
  match trace_dir with
  | None -> run None
  | Some dir ->
    let recorder = Recorder.create ~limit:50_000 () in
    let obs = Sim_probe.create ~recorder ~nodes () in
    let result = run (Some obs) in
    Recorder.write_file recorder
      (Filename.concat dir (artifact ^ "-" ^ label ^ ".trace.json"));
    result

(* --- the artifacts -------------------------------------------------------- *)

let table3_1_plan () =
  {
    tasks =
      [|
        (fun () ->
          List.map
            (fun (lopc, logp, description) ->
              [ Table.Text lopc; Table.Text logp; Table.Text description ])
            Params.logp_correspondence);
      |];
    assemble =
      Table.of_row_groups
        ~caption:"Table 3.1: architectural parameters of the LoPC model"
        ~columns:[ "LoPC"; "LogP"; "Description" ];
  }

let fig5_1_plan () =
  let handler_occupancies = [ 128.; 256.; 512.; 1024. ] in
  let c2_values = List.init 9 (fun i -> Float.of_int i *. 0.25) in
  {
    tasks =
      pure_tasks c2_values (fun c2 ->
          [
            Table.Float c2
            :: List.map
                 (fun so ->
                   let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
                   Table.Float (A.contention_fraction params ~w:1000.))
                 handler_occupancies;
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Fig 5-1: fraction of response time devoted to contention vs handler C2 \
           (W=1000, P=32, St=40)"
        ~columns:[ "C2"; "So=128"; "So=256"; "So=512"; "So=1024" ];
  }

let fig5_2_plan ?trace_dir ~fidelity ~seed =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      point_tasks ~seed ~artifact:"fig5.2" w_sweep (fun ~rng w ->
          let lb = A.lower_bound params ~w in
          let ub = A.upper_bound params ~w in
          let model = (A.solve params ~w).A.r in
          let sim =
            with_trace ~trace_dir ~artifact:"fig5.2"
              ~label:(Printf.sprintf "w%g" w) ~nodes (fun obs ->
                let replication = Rng.split rng in
                Metrics.mean_response
                  (simulate_all_to_all ?obs ~fidelity ~rng:replication ~w ~so ~c2 ()))
          in
          [
            [
              Table.Float w; Table.Float lb; Table.Float model; Table.Float ub;
              Table.Float sim;
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Fig 5-2: all-to-all response time vs work (So=200, C2=0, P=32, St=40)"
        ~columns:[ "W"; "lower bound"; "LoPC"; "upper bound"; "simulator" ];
  }

let fig5_3_plan ~fidelity ~seed =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      point_tasks ~seed ~artifact:"fig5.3" w_sweep (fun ~rng w ->
          let s = A.solve params ~w in
          let replication = Rng.split rng in
          let m = simulate_all_to_all ~fidelity ~rng:replication ~w ~so ~c2 () in
          let sim_rw = Welford.mean m.Metrics.rw -. w in
          let sim_rq = Welford.mean m.Metrics.rq -. so in
          let sim_ry = Welford.mean m.Metrics.ry -. so in
          [
            [
              Table.Float w;
              Table.Float (s.A.rw -. w);
              Table.Float sim_rw;
              Table.Float (s.A.rq -. so);
              Table.Float sim_rq;
              Table.Float (s.A.ry -. so);
              Table.Float sim_ry;
              Table.Float s.A.contention;
              Table.Float (sim_rw +. sim_rq +. sim_ry);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Fig 5-3: contention components per cycle, 32-node all-to-all (So=200, C2=0); \
           columns paired model/simulator"
        ~columns:
          [
            "W"; "thread (LoPC)"; "thread (sim)"; "request (LoPC)"; "request (sim)";
            "reply (LoPC)"; "reply (sim)"; "total (LoPC)"; "total (sim)";
          ];
  }

let table5_3_plan ~fidelity ~seed =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      point_tasks ~seed ~artifact:"table5.3" (0. :: w_sweep) (fun ~rng w ->
          let replication = Rng.split rng in
          let sim =
            Metrics.mean_response
              (simulate_all_to_all ~fidelity ~rng:replication ~w ~so ~c2 ())
          in
          let lopc = (A.solve params ~w).A.r in
          let logp = Logp.cycle_time params ~w in
          [
            [
              Table.Float w;
              Table.Float sim;
              Table.Float lopc;
              Table.Float (100. *. (lopc -. sim) /. sim);
              Table.Float logp;
              Table.Float (100. *. (logp -. sim) /. sim);
              Table.Float ((sim -. logp) /. so);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Section 5.3 accuracy: LoPC vs contention-free LogP against the simulator \
           (So=200, C2=0, P=32). Paper claims: LoPC <= +6%; LogP down to -37% with an \
           absolute error of about one handler at every W."
        ~columns:
          [ "W"; "simulator"; "LoPC"; "LoPC err %"; "LogP"; "LogP err %";
            "LogP abs err / So" ];
  }

let fig6_2_plan ?trace_dir ~fidelity ~seed =
  let so = 131. and w = 1000. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let optimum = CS.optimal_servers params ~w in
  let cycles = sim_cycles fidelity in
  {
    tasks =
      point_tasks ~seed ~artifact:"fig6.2"
        (List.init (nodes - 1) (fun i -> i + 1))
        (fun ~rng servers ->
          let model = (CS.throughput params ~w ~servers).CS.throughput in
          let spec =
            Pattern.to_spec ~nodes ~work:(D.Exponential w) ~handler:(D.Exponential so)
              ~wire:(D.Constant wire_latency)
              (Pattern.Client_server { servers })
          in
          let sim =
            with_trace ~trace_dir ~artifact:"fig6.2"
              ~label:(Printf.sprintf "s%02d" servers) ~nodes (fun obs ->
                let replication = Rng.split rng in
                Metrics.throughput
                  (Machine.run ~rng:replication ~spec ~cycles ?obs ()).Machine.metrics)
          in
          [
            [
              Table.Int servers;
              Table.Float model;
              Table.Float sim;
              Table.Float (Logp.server_bound params ~servers);
              Table.Float (Logp.client_bound params ~w ~clients:(nodes - servers));
              (if servers = optimum then Table.Text "optimal (Eq 6.8)" else Table.Missing);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          (Printf.sprintf
             "Fig 6-2: work-pile throughput vs servers (P=32, So=131, W=1000, St=40); Eq \
              6.8 optimum Ps*=%d (real-valued %.2f)"
             optimum (CS.optimal_servers_real params ~w))
        ~columns:
          [ "servers"; "LoPC X"; "simulator X"; "server bound"; "client bound"; "marker" ];
  }

let ablation_arrival_theorem_plan () =
  let so = 131. and w = 1000. in
  let think = w +. (2. *. wire_latency) +. so in
  {
    tasks =
      pure_tasks [ 1; 2; 4; 8; 16 ] (fun servers ->
          if servers >= nodes then []
          else begin
            let stations =
              Array.init servers (fun _ ->
                  Station.queueing ~scv:1. ~demand:(so /. Float.of_int servers) ())
            in
            let population = nodes - servers in
            let exact = Exact_mva.solve ~think_time:think ~stations ~population () in
            let solve approximation =
              (Amva.solve ~approximation ~think_time:think ~stations ~population ())
                .Solution.throughput
            in
            let xe = exact.Solution.throughput in
            let xb = solve Amva.Bard and xs = solve Amva.Schweitzer in
            [
              [
                Table.Int servers;
                Table.Float xe;
                Table.Float xb;
                Table.Float (100. *. (xb -. xe) /. xe);
                Table.Float xs;
                Table.Float (100. *. (xs -. xe) /. xe);
              ];
            ]
          end);
    assemble =
      Table.of_row_groups
        ~caption:
          "Ablation: Bard (paper) vs Schweitzer arrival-theorem approximation against \
           exact MVA on the Fig 6-2 network"
        ~columns:
          [ "servers"; "exact X"; "Bard X"; "Bard err %"; "Schweitzer X";
            "Schweitzer err %" ];
  }

let ablation_priority_plan () =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      pure_tasks w_sweep (fun w ->
          let s = A.solve params ~w in
          let bkt =
            Priority.bkt ~work:w ~handler_service:so ~handler_queue:s.A.qq
              ~handler_util:s.A.uq
          in
          let shadow = Priority.shadow_server ~work:w ~handler_util:s.A.uq in
          [ [ Table.Float w; Table.Float s.A.rw; Table.Float bkt; Table.Float shadow ] ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Ablation: thread residence Rw under BKT (paper) vs shadow-server priority \
           approximations (evaluated at the LoPC fixed point)"
        ~columns:[ "W"; "Rw (model)"; "BKT"; "shadow server" ];
  }

let ablation_scv_correction_plan ~fidelity ~seed =
  let so = 200. in
  let with_corr = Params.create ~c2:0. ~p:nodes ~st:wire_latency ~so () in
  let without_corr = Params.create ~c2:1. ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      point_tasks ~seed ~artifact:"ablate.scv" [ 2.; 32.; 256.; 1024. ]
        (fun ~rng w ->
          (* Simulator runs constant handlers; the C2=1 model is what one
             would get by ignoring Eq 5.8. *)
          let replication = Rng.split rng in
          let sim =
            Metrics.mean_response
              (simulate_all_to_all ~fidelity ~rng:replication ~w ~so ~c2:0. ())
          in
          let corrected = (A.solve with_corr ~w).A.r in
          let uncorrected = (A.solve without_corr ~w).A.r in
          [
            [
              Table.Float w;
              Table.Float sim;
              Table.Float corrected;
              Table.Float (100. *. (corrected -. sim) /. sim);
              Table.Float uncorrected;
              Table.Float (100. *. (uncorrected -. sim) /. sim);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Ablation: Eq 5.8 residual-life correction on constant handlers (C2=0) — error \
           with the correction vs pretending handlers are exponential"
        ~columns:[ "W"; "simulator"; "LoPC C2=0"; "err %"; "LoPC C2=1"; "err %" ];
  }

let ablation_solvers_plan () =
  let grid =
    [ (16, 0., 100., 0.); (32, 40., 200., 0.); (32, 40., 200., 1000.);
      (64, 100., 500., 2000.) ]
  in
  {
    tasks =
      pure_tasks grid (fun (p, st, so, w) ->
          let params = Params.create ~c2:0. ~p ~st ~so () in
          let brent = (A.solve ~solve_method:A.Brent_on_residual params ~w).A.r in
          let iter = (A.solve ~solve_method:A.Damped_iteration params ~w).A.r in
          let poly = (A.solve ~solve_method:A.Polynomial_roots params ~w).A.r in
          [
            [
              Table.Int p;
              Table.Float st;
              Table.Float so;
              Table.Float w;
              Table.Float brent;
              Table.Float (iter -. brent);
              Table.Float (poly -. brent);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:"Ablation: agreement of the three all-to-all solution methods"
        ~columns:[ "P"; "St"; "So"; "W"; "R (Brent)"; "iteration - Brent"; "poly - Brent" ];
  }

let shared_memory_comparison_plan ~fidelity ~seed =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      point_tasks ~seed ~artifact:"shared-memory" [ 2.; 32.; 256.; 1024.; 2048. ]
        (fun ~rng w ->
          let mp = (A.solve params ~w).A.r in
          let pp = (A.solve ~execution:A.Protocol_processor params ~w).A.r in
          let rep_mp = Rng.split rng in
          let sim_mp =
            Metrics.mean_response
              (simulate_all_to_all ~fidelity ~rng:rep_mp ~w ~so ~c2 ())
          in
          let rep_pp = Rng.split rng in
          let sim_pp =
            Metrics.mean_response
              (simulate_all_to_all ~protocol_processor:true ~fidelity ~rng:rep_pp ~w
                 ~so ~c2 ())
          in
          [
            [
              Table.Float w;
              Table.Float mp;
              Table.Float sim_mp;
              Table.Float pp;
              Table.Float sim_pp;
              Table.Float (100. *. (mp -. pp) /. pp);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Section 5.1 shared memory: interrupt-driven vs protocol-processor cycle time \
           (model and simulator), with the message-passing penalty"
        ~columns:[ "W"; "msg-passing R"; "sim"; "protocol-proc R"; "sim"; "MP penalty %" ];
  }

let windowed_speedup_plan ~fidelity ~seed =
  let so = 200. and w = 1000. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let saturation = Lopc.Windowed.saturation_rate params ~w in
  let base = (Lopc.Windowed.solve ~window:1 params ~w).Lopc.Windowed.node_rate in
  {
    tasks =
      point_tasks ~seed ~artifact:"windowed" [ 1; 2; 3; 4; 6; 8 ] (fun ~rng window ->
          let model = Lopc.Windowed.solve ~window params ~w in
          let spec =
            Lopc_activemsg.Spec.all_to_all ~window ~nodes ~work:(D.Exponential w)
              ~handler:(D.Exponential so) ~wire:(D.Constant wire_latency) ()
          in
          let replication = Rng.split rng in
          let sim =
            Metrics.throughput
              (Machine.run ~rng:replication ~spec ~cycles:(sim_cycles fidelity) ())
                .Machine.metrics
            /. Float.of_int nodes
          in
          [
            [
              Table.Int window;
              Table.Float model.Lopc.Windowed.node_rate;
              Table.Float sim;
              Table.Float (100. *. (model.Lopc.Windowed.node_rate -. sim) /. sim);
              Table.Float (model.Lopc.Windowed.node_rate /. base);
              Table.Float model.Lopc.Windowed.processor_util;
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          (Printf.sprintf
             "Section 7 extension: non-blocking (windowed) requests, per-node rate vs \
              window (P=32, W=1000, So=200, C2=1); saturation ceiling %.6f"
             saturation)
        ~columns:[ "window"; "model X/node"; "sim X/node"; "err %"; "speedup"; "proc util" ];
  }

let ablation_multiserver_plan () =
  let so = 131. and w = 1000. in
  let params = Params.create ~c2:1. ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      pure_tasks [ 1; 2; 3; 4; 5; 8; 12; 16 ] (fun servers ->
          let x threads =
            (CS.throughput ~threads_per_server:threads params ~w ~servers).CS.throughput
          in
          [
            [
              Table.Int servers;
              Table.Float (x 1);
              Table.Float (x 2);
              Table.Float (x 4);
              Table.Float (100. *. ((x 2 /. x 1) -. 1.));
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Extension of section 6: work-pile throughput with multithreaded servers \
           (1/2/4 handler threads per server node; P=32, So=131, W=1000)"
        ~columns:
          [ "servers"; "X (1 thread)"; "X (2 threads)"; "X (4 threads)";
            "gain of 2nd thread %" ];
  }

let notification_modes_plan ~fidelity ~seed =
  let so = 200. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let cycles = sim_cycles fidelity in
  let simulate ~rng ~polling ~protocol_processor w =
    let spec =
      Lopc_activemsg.Spec.all_to_all ~protocol_processor ~polling ~nodes
        ~work:(D.Exponential w) ~handler:(D.of_mean_scv ~mean:so ~scv:c2)
        ~wire:(D.Constant wire_latency) ()
    in
    Metrics.mean_response (Machine.run ~rng ~spec ~cycles ()).Machine.metrics
  in
  {
    tasks =
      point_tasks ~seed ~artifact:"notification"
        [ 0.; 50.; 100.; 200.; 500.; 1000.; 2000.; 4000. ]
        (fun ~rng w ->
          let interrupt = (A.solve params ~w).A.r in
          let polling = (A.solve ~execution:A.Polling params ~w).A.r in
          let pp = (A.solve ~execution:A.Protocol_processor params ~w).A.r in
          let rep_interrupt = Rng.split rng in
          let rep_polling = Rng.split rng in
          let rep_pp = Rng.split rng in
          [
            [
              Table.Float w;
              Table.Float interrupt;
              Table.Float
                (simulate ~rng:rep_interrupt ~polling:false ~protocol_processor:false w);
              Table.Float polling;
              Table.Float
                (simulate ~rng:rep_polling ~polling:true ~protocol_processor:false w);
              Table.Float pp;
              Table.Float
                (simulate ~rng:rep_pp ~polling:false ~protocol_processor:true w);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Section 3 contrast: handler notification mechanisms — interrupt (LoPC), \
           polling (LogP/CM-5) and protocol processor — cycle time, model beside \
           simulator (P=32, So=200, C2=1, St=40)"
        ~columns:
          [ "W"; "interrupt R"; "(sim)"; "polling R"; "(sim)"; "protocol R"; "(sim)" ];
  }

let gap_study_plan ~fidelity ~seed =
  let so = 200. and w = 1000. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  let cycles = sim_cycles fidelity in
  {
    tasks =
      point_tasks ~seed ~artifact:"gap" [ 0.; 5.; 10.; 25.; 50.; 100.; 200.; 400. ]
        (fun ~rng gap ->
          let model = Lopc.Gap.solve ~gap params ~w in
          let spec =
            Lopc_activemsg.Spec.all_to_all ~gap ~nodes ~work:(D.Exponential w)
              ~handler:(D.Exponential so) ~wire:(D.Constant wire_latency) ()
          in
          let replication = Rng.split rng in
          let sim =
            Metrics.mean_response
              (Machine.run ~rng:replication ~spec ~cycles ()).Machine.metrics
          in
          [
            [
              Table.Float gap;
              Table.Float model.Lopc.Gap.r;
              Table.Float sim;
              Table.Float (100. *. model.Lopc.Gap.penalty);
              Table.Float model.Lopc.Gap.ni_utilization;
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          (Printf.sprintf
             "Section 3's dropped parameter: effect of the LogP gap g (P=32, W=1000, \
              So=200, C2=1); largest g with <5%% slowdown: %.1f cycles"
             (Lopc.Gap.tolerable_gap params ~w))
        ~columns:[ "g"; "model R"; "simulator R"; "penalty %"; "NI utilization" ];
  }

let assumptions_audit_plan ~fidelity ~seed =
  let so = 200. and c2 = 0. in
  let params = Params.create ~c2 ~p:nodes ~st:wire_latency ~so () in
  {
    tasks =
      point_tasks ~seed ~artifact:"assumptions" [ 0.; 32.; 256.; 1024.; 2048. ]
        (fun ~rng w ->
          let replication = Rng.split rng in
          let m = simulate_all_to_all ~fidelity ~rng:replication ~w ~so ~c2 () in
          let model = A.solve params ~w in
          let arrival = Welford.mean (Metrics.arrival_backlog m) in
          let steady = Metrics.avg_request_queue m +. Metrics.avg_reply_queue m in
          [
            [
              Table.Float w;
              Table.Int (Metrics.max_handler_backlog m);
              Table.Float arrival;
              Table.Float steady;
              Table.Float (model.A.qq +. model.A.qy);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Assumption audit (sections 2 and 4): deepest handler backlog ever seen \
           (finite buffers hold ~8 small messages on Alewife) and the queue found by \
           arriving messages vs the steady-state queue Bard equates it with \
           (P=32, So=200, C2=0)"
        ~columns:
          [ "W"; "max backlog"; "queue at arrival (sim)"; "steady-state queue (sim)";
            "Qq+Qy (model)" ];
  }

let network_contention_plan ~fidelity ~seed =
  let so = 200. and c2 = 1. in
  let params = Params.create ~c2 ~p:nodes ~st:0. ~so () in
  let cycles = sim_cycles fidelity in
  let points =
    List.concat_map
      (fun w -> List.map (fun link_time -> (w, link_time)) [ 0.; 20.; 100.; 200. ])
      [ 1000.; 0. ]
  in
  {
    tasks =
      point_tasks ~seed ~artifact:"network" points (fun ~rng (w, link_time) ->
          let topo = Lopc_topology.Topology.create ~nodes ~per_hop:10. ~link_time () in
          let model = Lopc.Torus.solve params ~topology:topo ~w in
          let base =
            Lopc_activemsg.Spec.all_to_all ~nodes ~work:(D.of_mean_scv ~mean:w ~scv:1.)
              ~handler:(D.Exponential so) ~wire:(D.Constant 0.) ()
          in
          let spec = { base with Lopc_activemsg.Spec.topology = Some topo } in
          let replication = Rng.split rng in
          let sim =
            Metrics.mean_response
              (Machine.run ~rng:replication ~spec ~cycles ()).Machine.metrics
          in
          [
            [
              Table.Float w;
              Table.Float link_time;
              Table.Float model.Lopc.Torus.r;
              Table.Float sim;
              Table.Float model.Lopc.Torus.r_contention_free;
              Table.Float (100. *. model.Lopc.Torus.penalty);
              Table.Float model.Lopc.Torus.link_utilization;
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Section 2's first simplification: 4x8 torus with contended links vs a \
           contention-free network of equal mean path (per_hop=10, So=200, C2=1). \
           'penalty' is the modeling error of assuming no link contention."
        ~columns:
          [ "W"; "link time"; "torus model R"; "simulator R"; "contention-free R";
            "penalty %"; "link util" ];
  }

let exact_comparison_plan ~fidelity ~seed =
  let so = 200. and st = 40. in
  let cycles = sim_cycles fidelity * 2 in
  (* P = 5 enumerates ~246k states — cheap for the sparse Gauss–Seidel
     solver at full fidelity, but kept out of the quick tier so CI and the
     bench artifact stay fast. Quick rows are unchanged from the seed. *)
  let machine_sizes = match fidelity with Quick -> [ 2; 3; 4 ] | Full -> [ 2; 3; 4; 5 ] in
  let points =
    List.concat_map
      (fun p -> List.map (fun w -> (p, w)) [ 1.; 200.; 1000. ])
      machine_sizes
  in
  {
    tasks =
      point_tasks ~seed ~artifact:"exact" points (fun ~rng (p, w) ->
          let exact = Lopc_markov.Exact_machine.all_to_all ~p ~w ~so ~st () in
          let spec =
            Lopc_activemsg.Spec.all_to_all ~nodes:p ~work:(D.Exponential w)
              ~handler:(D.Exponential so) ~wire:(D.Exponential st) ()
          in
          let replication = Rng.split rng in
          let sim =
            Metrics.mean_response
              (Machine.run ~rng:replication ~spec ~cycles ()).Machine.metrics
          in
          let params = Params.create ~c2:1. ~p ~st ~so () in
          let model = (A.solve params ~w).A.r in
          let exact_r = exact.Lopc_markov.Exact_machine.cycle_time in
          [
            [
              Table.Int p;
              Table.Float w;
              Table.Int exact.Lopc_markov.Exact_machine.states;
              Table.Float exact_r;
              Table.Float sim;
              Table.Float (100. *. (sim -. exact_r) /. exact_r);
              Table.Float model;
              Table.Float (100. *. (model -. exact_r) /. exact_r);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Exact CTMC vs simulator vs LoPC on small machines (exponential W/So/St, \
           So=200, St=40): the simulator column checks the simulator, the model \
           column is LoPC's true approximation error, free of sampling noise"
        ~columns:
          [ "P"; "W"; "states"; "exact R"; "simulator R"; "sim err %"; "LoPC R";
            "LoPC err %" ];
  }

(* Short space-free reason tokens for provenance cells. *)
let ctmc_reason = function
  | Lopc_markov.Ctmc.Converged _ -> "converged"
  | Lopc_markov.Ctmc.Not_converged _ -> "not-converged"
  | Lopc_markov.Ctmc.Exhausted { reason } ->
    (match reason with
    | Lopc_robust.Budget.Cancelled -> "cancelled"
    | Lopc_robust.Budget.Fuel_exhausted _ -> "exhausted")
  | Lopc_markov.Ctmc.Too_large _ -> "state-space"

let fixed_point_reason = function
  | Lopc_numerics.Fixed_point.Converged _ -> "converged"
  | Lopc_numerics.Fixed_point.Saturated _ -> "saturated"
  | Lopc_numerics.Fixed_point.Diverged _ -> "diverged"
  | Lopc_numerics.Fixed_point.Exhausted { reason; _ } ->
    (match reason with
    | Lopc_robust.Budget.Cancelled -> "cancelled"
    | Lopc_robust.Budget.Fuel_exhausted _ -> "exhausted")

(* Degradation cascade demo artifact: the same cycle time asked of three
   tiers — exact CTMC, the approximate LoPC model, the contention-free
   bound — each under a deterministic fuel budget, falling back on
   failure instead of failing the row. Budgets are fuel-based and created
   per point, so the table (including every provenance cell) is
   byte-identical at any [--jobs]. The sweep is built to exercise each
   path in CI: small machines solve exactly, [p = 4] deterministically
   overflows the capped state space and degrades to the model, and one
   adversarial point starves the model stage too, landing on the bound. *)
let degradation_cascade_plan () =
  let so = 200. and st = 40. in
  (* Below p = 4's ~9k reachable states, above p = 3's ~400: the cap is
     what makes the [state-space] degradation fire deterministically. *)
  let max_states = 2_000 in
  (* Each point carries the model stage's fuel: ample everywhere except
     the last (p = 4) point, which is deliberately starved — two residual
     evaluations are never enough for Brent — so the cascade must fall
     through to the bound, exercising the [exhausted] path in CI. *)
  let model_fuel = 20_000 in
  let points =
    List.concat_map
      (fun p -> List.map (fun w -> (p, w, model_fuel)) [ 200.; 1000. ])
      [ 2; 3 ]
    @ [ (4, 200., model_fuel); (4, 1000., 2) ]
  in
  let counters = Lopc_obs.Counters.global in
  let on_event = function
    | Lopc_robust.Cascade.Degraded { reason; _ } ->
      Lopc_obs.Counters.record_degradation counters;
      if reason = "exhausted" || reason = "cancelled" then
        Lopc_obs.Counters.record_exhaustion counters
    | Lopc_robust.Cascade.Exhausted_all _ ->
      Lopc_obs.Counters.record_cascade_failure counters
  in
  {
    tasks =
      pure_tasks points (fun (p, w, model_fuel) ->
          let params = Params.create ~c2:1. ~p ~st ~so () in
          let exact () =
            let budget = Lopc_robust.Budget.create ~fuel:400_000 () in
            match
              Lopc_markov.Exact_machine.all_to_all_status ~budget ~max_states ~p ~w
                ~so ~st ()
            with
            | Some r, _ -> Ok r.Lopc_markov.Exact_machine.cycle_time
            | None, status -> Error (ctmc_reason status)
          in
          let model () =
            let budget = Lopc_robust.Budget.create ~fuel:model_fuel () in
            match A.solve_status ~budget params ~w with
            | Some s, _ -> Ok s.A.r
            | None, status -> Error (fixed_point_reason status)
          in
          let bound () = Ok (A.lower_bound params ~w) in
          let outcome =
            Lopc_robust.Cascade.run ~on_event
              [
                Lopc_robust.Cascade.attempt "exact" exact;
                Lopc_robust.Cascade.attempt "amva" model;
                Lopc_robust.Cascade.attempt "bound" bound;
              ]
          in
          let r = match outcome.Lopc_robust.Cascade.value with
            | Some r -> r
            | None -> Float.nan
          in
          let trail =
            match outcome.Lopc_robust.Cascade.trail with
            | [] -> "-"
            | trail ->
              String.concat ","
                (List.map (fun (stage, reason) -> stage ^ "=" ^ reason) trail)
          in
          [
            [
              Table.Int p;
              Table.Float w;
              Table.Float r;
              Table.Text outcome.Lopc_robust.Cascade.provenance;
              Table.Text trail;
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Graceful degradation: cycle time from the best tier whose budget \
           allows it (exact CTMC, capped at 2k states -> LoPC model -> \
           contention-free bound). 'source' is the provenance of each row; \
           'trail' the stages that fell through and why. So=200, St=40, C2=1."
        ~columns:[ "P"; "W"; "R"; "source"; "trail" ];
  }

let fault_sweep_plan ?trace_dir ~fidelity ~seed =
  let p = 16 and w = 1000. and so = 200. and c2 = 1. in
  let st = wire_latency in
  let timeout = 20_000. and max_tries = 10 in
  let spike_mean = 10. *. st in
  let params = Params.create ~c2 ~p ~st ~so () in
  (* (drop, duplicate, delay_epsilon) scenarios: a clean baseline, a loss
     ladder through the NOW regime, then duplication and delay spikes
     stacked on 2% loss. *)
  let scenarios =
    [
      (0., 0., 0.); (0.01, 0., 0.); (0.02, 0., 0.); (0.05, 0., 0.);
      (0.02, 0.05, 0.); (0.02, 0., 0.1);
    ]
  in
  {
    tasks =
      point_tasks ~seed ~artifact:"fault" scenarios
        (fun ~rng (drop, duplicate, delay_epsilon) ->
          let model =
            Lopc.Fault_model.solve
              (Lopc.Fault_model.config ~drop ~duplicate ~delay_epsilon ~spike_mean
                 ~max_tries ~timeout ())
              params ~w
          in
          let fault =
            Lopc_activemsg.Fault.create ~drop ~duplicate ~delay_epsilon
              ~delay_spike:(D.Exponential spike_mean) ~max_tries ~timeout ()
          in
          let spec =
            Pattern.to_spec ~fault ~nodes:p ~work:(D.of_mean_scv ~mean:w ~scv:1.)
              ~handler:(D.of_mean_scv ~mean:so ~scv:c2) ~wire:(D.Constant st)
              Pattern.All_to_all
          in
          let m =
            with_trace ~trace_dir ~artifact:"fault"
              ~label:
                (Printf.sprintf "d%g-u%g-e%g" drop duplicate delay_epsilon)
              ~nodes:p
              (fun obs ->
                let replication = Rng.split rng in
                (Machine.run ~rng:replication ~spec
                   ~cycles:(sim_cycles fidelity / 2) ?obs ())
                  .Machine.metrics)
          in
          let sim = Metrics.mean_response m in
          let finished = m.Metrics.cycles + m.Metrics.failed_cycles in
          [
            [
              Table.Float drop;
              Table.Float duplicate;
              Table.Float delay_epsilon;
              Table.Float model.Lopc.Fault_model.r;
              Table.Float sim;
              Table.Float (100. *. (model.Lopc.Fault_model.r -. sim) /. sim);
              Table.Float model.Lopc.Fault_model.tries;
              Table.Float (Metrics.mean_tries m);
              Table.Float (Float.of_int m.Metrics.retransmits /. Float.of_int finished);
              Table.Float (Metrics.goodput m /. Metrics.offered_load m);
            ];
          ]);
    assemble =
      Table.of_row_groups
        ~caption:
          "Fault sweep: faulty all-to-all cycle time, analytical fault model vs \
           simulator (P=16, W=1000, So=200, C2=1, St=40, timeout=20000, B=10; \
           spike = Exp(10 St))"
        ~columns:
          [
            "drop"; "dup"; "eps"; "model R"; "sim R"; "err %"; "model tries";
            "sim tries"; "retrans/cycle"; "goodput/offered";
          ];
  }

(* --- public API ----------------------------------------------------------- *)

let plans ?(fidelity = Full) ?(seed = 42) ?trace_dir () =
  [
    ("table3.1", table3_1_plan ());
    ("fig5.1", fig5_1_plan ());
    ("fig5.2", fig5_2_plan ?trace_dir ~fidelity ~seed);
    ("fig5.3", fig5_3_plan ~fidelity ~seed);
    ("table5.3", table5_3_plan ~fidelity ~seed);
    ("fig6.2", fig6_2_plan ?trace_dir ~fidelity ~seed);
    ("ablate.arrival", ablation_arrival_theorem_plan ());
    ("ablate.priority", ablation_priority_plan ());
    ("ablate.scv", ablation_scv_correction_plan ~fidelity ~seed);
    ("ablate.solvers", ablation_solvers_plan ());
    ("shared-memory", shared_memory_comparison_plan ~fidelity ~seed);
    ("windowed", windowed_speedup_plan ~fidelity ~seed);
    ("notification", notification_modes_plan ~fidelity ~seed);
    ("ablate.multiserver", ablation_multiserver_plan ());
    ("gap", gap_study_plan ~fidelity ~seed);
    ("assumptions", assumptions_audit_plan ~fidelity ~seed);
    ("network", network_contention_plan ~fidelity ~seed);
    ("exact", exact_comparison_plan ~fidelity ~seed);
    ("cascade", degradation_cascade_plan ());
    ("fault", fault_sweep_plan ?trace_dir ~fidelity ~seed);
  ]

let table3_1 () = run_plan (table3_1_plan ())
let fig5_1 () = run_plan (fig5_1_plan ())
let fig5_2 ?(fidelity = Full) ?(seed = 42) () =
  run_plan (fig5_2_plan ?trace_dir:None ~fidelity ~seed)
let fig5_3 ?(fidelity = Full) ?(seed = 42) () = run_plan (fig5_3_plan ~fidelity ~seed)

let table5_3 ?(fidelity = Full) ?(seed = 42) () =
  run_plan (table5_3_plan ~fidelity ~seed)

let fig6_2 ?(fidelity = Full) ?(seed = 42) () =
  run_plan (fig6_2_plan ?trace_dir:None ~fidelity ~seed)
let ablation_arrival_theorem () = run_plan (ablation_arrival_theorem_plan ())
let ablation_priority () = run_plan (ablation_priority_plan ())

let ablation_scv_correction ?(fidelity = Full) ?(seed = 42) () =
  run_plan (ablation_scv_correction_plan ~fidelity ~seed)

let ablation_solvers () = run_plan (ablation_solvers_plan ())

let shared_memory_comparison ?(fidelity = Full) ?(seed = 42) () =
  run_plan (shared_memory_comparison_plan ~fidelity ~seed)

let windowed_speedup ?(fidelity = Full) ?(seed = 42) () =
  run_plan (windowed_speedup_plan ~fidelity ~seed)

let ablation_multiserver () = run_plan (ablation_multiserver_plan ())

let notification_modes ?(fidelity = Full) ?(seed = 42) () =
  run_plan (notification_modes_plan ~fidelity ~seed)

let gap_study ?(fidelity = Full) ?(seed = 42) () =
  run_plan (gap_study_plan ~fidelity ~seed)

let assumptions_audit ?(fidelity = Full) ?(seed = 42) () =
  run_plan (assumptions_audit_plan ~fidelity ~seed)

let network_contention ?(fidelity = Full) ?(seed = 42) () =
  run_plan (network_contention_plan ~fidelity ~seed)

let exact_comparison ?(fidelity = Full) ?(seed = 42) () =
  run_plan (exact_comparison_plan ~fidelity ~seed)

let degradation_cascade () = run_plan (degradation_cascade_plan ())

let fault_sweep ?(fidelity = Full) ?(seed = 42) () =
  run_plan (fault_sweep_plan ?trace_dir:None ~fidelity ~seed)

let all ?(fidelity = Full) ?(seed = 42) ?pool () =
  List.map (fun (name, plan) -> (name, run_plan ?pool plan)) (plans ~fidelity ~seed ())
