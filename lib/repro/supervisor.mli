(** Supervised batch execution: per-task cancellation, error policies,
    and a pollable monitor for stuck-task detection.

    A supervised task takes its own {!Lopc_robust.Cancel.t} (typically
    wired into a solver or simulator budget) and the supervisor settles
    every task into an {!outcome} instead of letting exceptions tear
    through the pool. Built on {!Parallel}, which stays exception-free
    underneath. *)

type policy =
  | Fail_fast
      (** Cancel the whole batch at the first failure. Running tasks stop
          at their next cancellation poll; unstarted ones settle as
          [Skipped]. A latency policy: {e which} tasks end up skipped
          depends on the schedule, so deterministic artifacts should not
          rely on the completion set — only on the structural guarantees
          (every task settles, the first failure is preserved). *)
  | Collect_all
      (** Run every task to its own conclusion; failures accumulate in
          the outcome array. Deterministic: the outcome of each task is a
          function of the task alone. *)

type 'a outcome =
  | Completed of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }
      (** The task raised; [backtrace] was captured at the raise site in
          the worker. *)
  | Skipped  (** Cancelled before the task body started. *)

exception Cancelled_task of int
(** Raised by {!join} for the lowest-indexed [Skipped] outcome when no
    task failed. *)

type monitor
(** Shared task-state table: pending / running / settled per task, each
    an atomic a watchdog domain may read while workers write. *)

val monitor : int -> monitor
(** [monitor n] is a fresh monitor for a batch of [n] tasks. *)

val task_count : monitor -> int

val in_flight : monitor -> int list
(** Indices currently running, ascending — a racy snapshot, exact only
    once the batch has settled. A task index that stays in this list
    across successive polls is the stuck-task signal: the poller (a
    wall-clock watchdog, confined to [bin/]) can then cancel its token
    and report which task wedged. *)

val settled : monitor -> int
(** How many tasks have settled (completed, failed, or skipped). *)

val supervise :
  ?pool:Parallel.t ->
  ?policy:policy ->
  ?cancel:Lopc_robust.Cancel.t ->
  ?tokens:Lopc_robust.Cancel.t array ->
  ?monitor:monitor ->
  (Lopc_robust.Cancel.t -> 'a) array ->
  'a outcome array
(** [supervise tasks] runs every task — on [pool] when given, inline in
    index order otherwise — and settles each into an outcome; it never
    raises from a task. [cancel] is the batch token (fresh by default);
    [tokens], when given, supplies each task's own token (defaults to
    fresh children of the batch token, so cancelling the batch cancels
    every task). [policy] defaults to [Collect_all]. [monitor] must have
    been created for the same task count.
    @raise Invalid_argument on a mis-sized [tokens] or [monitor]. *)

val join : 'a outcome array -> 'a array
(** Unwrap an all-[Completed] batch. Otherwise re-raises the
    lowest-indexed failure with its original backtrace
    ([Printexc.raise_with_backtrace]); if nothing failed but tasks were
    skipped, raises {!Cancelled_task} with the lowest skipped index. *)
