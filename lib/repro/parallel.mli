(** Work-stealing replication pool on OCaml 5 domains.

    The reproduction driver's workload is embarrassingly parallel: every
    figure point is an independent simulator replication whose PRNG stream
    is derived ahead of time (see {!Experiments}), never from scheduling
    order. This pool fans an index-ordered array of such tasks out across
    [jobs] domains and merges the results back {e by task index}, so the
    output of a parallel run is byte-identical to the serial run.

    Scheduling: the task index space is partitioned into one contiguous
    range per worker; a worker drains its own range from the front and,
    when empty, steals the upper half of the largest remaining range of
    another worker. Stolen ranges land in the thief's own deque and can be
    stolen again, so imbalance (e.g. one slow simulated point) cascades
    across the pool instead of serialising it.

    Determinism contract: the pool guarantees result order, not execution
    order. Tasks must therefore be independent — in particular they must
    not draw from a shared {!Lopc_prng.Rng.t} (the typed lint rule
    [parallel-rng-capture] enforces this statically). *)

type t
(** A pool of worker domains. The creating domain participates in every
    batch as worker 0, so [jobs = 1] spawns no domains at all and runs
    tasks inline, in index order — the serial reference path. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts a pool of [jobs] workers ([jobs - 1] spawned
    domains plus the caller). Default {!Domain.recommended_domain_count}.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Number of workers (including the submitting domain). *)

val run : t -> (unit -> 'a) array -> 'a array
(** [run pool tasks] executes every task and returns their results in task
    order: [(run pool tasks).(i)] is the value of [tasks.(i) ()], whatever
    worker ran it and in whatever order. If tasks raise, the exception of
    the lowest-indexed failing task is re-raised (deterministically) after
    all tasks have settled, with the backtrace captured at the original
    raise site in the worker ([Printexc.raise_with_backtrace]), not a
    fresh one from the merge point. Batches are serialised per pool: concurrent
    [run] calls on one pool from several domains are not supported.
    @raise Invalid_argument when called on a shut-down pool. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] is [run pool] over [fun () -> f xs.(i)]. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent. After shutdown the
    pool rejects new batches. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, even when [f] raises. *)
