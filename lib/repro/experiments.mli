(** The paper's evaluation artifacts, one function per table/figure.

    Parameter choices (documented in EXPERIMENTS.md):
    - Figures 5-1/5-2/5-3 use the paper's stated values: [P = 32],
      handler [So = 200] (Fig 5-2/5-3) or [So ∈ {128, 256, 512, 1024}]
      (Fig 5-1, with [W = 1000]), [C² = 0] where stated.
    - The paper does not state the wire latency; we use [St = 40]
      (Alewife-like, small relative to the handlers) everywhere.
    - Figure 6-2 states [P = 32] and [So = 131]; the unstated work per
      chunk is [W = 1000] and handlers are exponential.

    Simulated series use [sim_cycles] measured compute/request cycles per
    point after warm-up; [`Quick] mode shrinks this for fast smoke runs.

    {1 Parallel execution}

    Each artifact is internally a {!plan}: an index-ordered array of
    independent point tasks plus an ordered merge
    ({!Table.of_row_groups}). PRNG streams are derived at plan-build
    time, keyed on (seed, artifact name, point index, replication index)
    — never on scheduling order — so running the tasks on a
    {!Parallel.t} pool produces tables byte-identical to the serial
    run. *)

type fidelity = Quick | Full

val sim_cycles : fidelity -> int
(** Measured cycles per simulated point: 8_000 for [Quick], 60_000 for
    [Full]. *)

type plan = {
  tasks : (unit -> Table.cell list list) array;
      (** One closure per sweep point, each owning its pre-split PRNG
          streams. Independent: safe to run on separate domains. *)
  assemble : Table.cell list list array -> Table.t;
      (** Ordered merge: element [i] must be the rows of [tasks.(i)]. *)
}
(** A single-shot recipe for one artifact. Plans capture mutable PRNG
    streams, so each plan value must be executed at most once; build a
    fresh plan (via {!plans}) for every run. *)

val task_count : plan -> int

val run_plan : ?pool:Parallel.t -> plan -> Table.t
(** Runs the plan's tasks — serially in index order without [pool], on
    the pool's domains otherwise — and assembles the table. Both paths
    return byte-identical tables. *)

val plans :
  ?fidelity:fidelity -> ?seed:int -> ?trace_dir:string -> unit -> (string * plan) list
(** A fresh plan per artifact, keyed by harness name, in the canonical
    reproduction order (the same keys as {!all}).

    With [trace_dir], the simulated artifacts that exercise the machine
    directly (["fig5.2"], ["fig6.2"], ["fault"]) additionally write one
    Chrome-trace JSON file per sweep point into the directory (which must
    exist), named [artifact-label.trace.json]. Each point owns its own
    recorder, so tracing is safe under {!run_plan}'s parallel pools, and
    trace contents — timestamped in simulated cycles only — are
    byte-identical at any job count and do not perturb the tables. *)

val table3_1 : unit -> Table.t
(** Table 3.1: the LoPC ↔ LogP parameter correspondence. *)

val fig5_1 : unit -> Table.t
(** Fig 5-1: fraction of response time devoted to contention as the
    handler [C²] sweeps 0..2, for [So ∈ {128, 256, 512, 1024}],
    [W = 1000], [P = 32]. Model only (as in the paper). *)

val fig5_2 : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Fig 5-2: all-to-all response time vs [W ∈ {2, 4, ..., 2048}] with
    [So = 200], [C² = 0], [P = 32]: contention-free lower bound, LoPC
    numerical solution, Eq 5.12 upper bound, and the simulator. *)

val fig5_3 : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Fig 5-3: per-cycle contention components (thread, request handler,
    reply handler, total) vs [W] on 32 nodes, [So = 200], [C² = 0]:
    LoPC prediction next to simulator measurement. *)

val table5_3 : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** §5.3 accuracy table: signed percent error of LoPC and of the
    contention-free LogP analysis against the simulator across the
    Fig 5-2 sweep, plus the absolute LogP error in handler units
    (the paper's "+6% worst case / −37% worst case / error stays ≈ one
    handler" claims). *)

val fig6_2 : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Fig 6-2: work-pile throughput vs number of servers [Ps = 1..31] on
    [P = 32], [So = 131]: LoPC curve, simulator, the two LogP bounds
    (dotted lines) and the Eq 6.8 optimum marker. *)

val ablation_arrival_theorem : unit -> Table.t
(** Bard vs Schweitzer arrival approximation on the Fig 6-2 network,
    against exact MVA — quantifies the cost of the paper's simpler
    choice. *)

val ablation_priority : unit -> Table.t
(** BKT preempt-resume vs naive shadow-server thread inflation on the
    all-to-all model vs the simulator's measured [Rw]. *)

val ablation_scv_correction : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Effect of dropping the Eq 5.8 residual-life correction when handlers
    are constant ([C² = 0]): model error against the simulator with and
    without the correction. *)

val ablation_solvers : unit -> Table.t
(** Agreement of the three all-to-all solution methods (Brent, damped
    iteration, polynomial roots) across a parameter grid. *)

val shared_memory_comparison : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** §5.1 "Modeling Shared Memory" / §7 future work: interrupt-driven
    message passing vs protocol-processor (shared memory) cycle times,
    model and simulator, across [W]. *)

val windowed_speedup : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** §7 future work: non-blocking (windowed) requests. Per-node completion
    rate for window ∈ 1..8 on the Fig 5-2 machine at [W = 1000],
    model ({!Lopc.Windowed}) vs the simulator's windowed mode, with the
    saturation ceiling [1/(W + 2·So)]. *)

val ablation_multiserver : unit -> Table.t
(** Extension of §6: work-pile throughput when each server node can run
    1, 2 or 4 handler threads concurrently (multi-server stations via the
    Seidmann approximation). Model only. *)

val notification_modes : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** §3 architectural contrast: interrupt-driven (LoPC's assumption) vs
    polling (LogP's CM-5 assumption) vs protocol-processor handler
    execution, model and simulator, across the work grain. Polling wins
    at fine grain (no preemption churn at saturated handlers) and loses
    badly at coarse grain (handlers wait out whole work quanta). *)

val gap_study : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** §3's dropped parameter: cycle-time penalty of a non-zero LogP gap [g]
    (NI bandwidth limit) in model and simulator, plus the largest [g]
    with under 5% slowdown — quantifying when the paper's "balanced
    bandwidth" assumption is safe. *)

val assumptions_audit : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Audits the paper's two tractability simplifications (§2) and Bard's
    approximation (§4) against the simulator: the deepest handler backlog
    ever observed (finite hardware buffers hold ~8 small messages on
    Alewife), and the queue length seen by arriving messages next to the
    steady-state queue Bard equates it with. *)

val network_contention : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** §2's first simplification: replace the contention-free interconnect
    by a 4×8 torus with contended links (model {!Lopc.Torus} and the
    simulator's topology mode) and measure how far link queueing moves
    the cycle time from a contention-free network of equal mean path
    length — at both coarse ([W = 1000]) and extreme fine grain
    ([W = 0]). *)

val exact_comparison : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Monte-Carlo-free validation: the exact CTMC solution of small
    machines (P = 2..4, exponential everything) next to the simulator and
    the LoPC model — the model's true approximation error without
    sampling noise. *)

val degradation_cascade : unit -> Table.t
(** Graceful degradation demo: the cycle time of small machines from the
    best tier whose (deterministic, fuel-based) budget allows it — exact
    CTMC, then the approximate LoPC model, then the contention-free bound
    — with a provenance column naming each row's source and a trail
    column listing the stages that fell through and why. Degradation
    events are counted in {!Lopc_obs.Counters.global}. Budgets are
    per-point fuel, so the table is byte-identical at any [--jobs]. *)

val fault_sweep : ?fidelity:fidelity -> ?seed:int -> unit -> Table.t
(** Fault tolerance: faulty all-to-all cycle time across a loss ladder
    ([ℓ ∈ {0, 1, 2, 5}%]) plus duplication and delay-spike scenarios
    stacked on 2% loss, analytical model ({!Lopc.Fault_model}) vs the
    fault-injecting simulator ([P = 16], [W = 1000], [So = 200],
    [C² = 1], timeout 20000, retry budget 10). Also reports the retry
    inflation (model vs measured tries), retransmissions per cycle, and
    the goodput/offered-load ratio. *)

val all :
  ?fidelity:fidelity -> ?seed:int -> ?pool:Parallel.t -> unit -> (string * Table.t) list
(** Every artifact above, keyed by its harness name (["fig5.1"], ...).
    With [pool], each artifact's point tasks are fanned across the
    pool's domains; the output is byte-identical either way. *)
