let relative ~predicted ~measured =
  (* Classified test: only a true zero is rejected; tiny measured values are
     legitimate baselines and divide through normally. *)
  if Float.classify_float measured = FP_zero then
    invalid_arg "Error.relative: measured value is zero";
  (predicted -. measured) /. measured

let percent ~predicted ~measured = 100. *. relative ~predicted ~measured

let absolute ~predicted ~measured = predicted -. measured

type summary = {
  max_abs_percent : float;
  mean_abs_percent : float;
  worst_index : int;
  bias_percent : float;
}

let summarize ~predicted ~measured =
  let n = Array.length predicted in
  if n = 0 then invalid_arg "Error.summarize: empty series";
  if Array.length measured <> n then invalid_arg "Error.summarize: length mismatch";
  let max_abs = ref 0. and worst = ref 0 and abs_sum = ref 0. and signed_sum = ref 0. in
  for i = 0 to n - 1 do
    let e = percent ~predicted:predicted.(i) ~measured:measured.(i) in
    let a = Float.abs e in
    if a > !max_abs then begin
      max_abs := a;
      worst := i
    end;
    abs_sum := !abs_sum +. a;
    signed_sum := !signed_sum +. e
  done;
  let nf = Float.of_int n in
  {
    max_abs_percent = !max_abs;
    mean_abs_percent = !abs_sum /. nf;
    worst_index = !worst;
    bias_percent = !signed_sum /. nf;
  }

let pp_summary ppf s =
  Format.fprintf ppf "max |err| %.1f%% (at index %d), MAPE %.1f%%, bias %+.1f%%"
    s.max_abs_percent s.worst_index s.mean_abs_percent s.bias_percent
