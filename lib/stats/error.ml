(* A zero measured value yields ±infinity (or nan at 0/0), following IEEE
   division, so one degenerate measurement flags itself instead of tearing
   down a whole validation table with an exception. *)
let relative ~predicted ~measured = (predicted -. measured) /. measured
[@@lint.allow
  "unguarded-division"
    "IEEE division is the contract: a zero measured value yields +/-infinity (or nan \
     at 0/0) so one degenerate measurement flags itself instead of raising"]

let percent ~predicted ~measured = 100. *. relative ~predicted ~measured

let absolute ~predicted ~measured = predicted -. measured

type summary = {
  max_abs_percent : float;
  mean_abs_percent : float;
  worst_index : int;
  bias_percent : float;
  skipped : int;
}

let summarize ~predicted ~measured =
  let n = Array.length predicted in
  if n = 0 then invalid_arg "Error.summarize: empty series";
  if Array.length measured <> n then invalid_arg "Error.summarize: length mismatch";
  let max_abs = ref 0. and worst = ref (-1) in
  let abs_sum = ref 0. and signed_sum = ref 0. in
  let used = ref 0 in
  for i = 0 to n - 1 do
    let e = percent ~predicted:predicted.(i) ~measured:measured.(i) in
    if Float.is_finite e then begin
      incr used;
      let a = Float.abs e in
      if a > !max_abs || !worst < 0 then begin
        max_abs := a;
        worst := i
      end;
      abs_sum := !abs_sum +. a;
      signed_sum := !signed_sum +. e
    end
  done;
  if !used = 0 then
    {
      max_abs_percent = Float.nan;
      mean_abs_percent = Float.nan;
      worst_index = -1;
      bias_percent = Float.nan;
      skipped = n;
    }
  else begin
    let nf = Float.of_int !used in
    {
      max_abs_percent = !max_abs;
      mean_abs_percent = !abs_sum /. nf;
      worst_index = !worst;
      bias_percent = !signed_sum /. nf;
      skipped = n - !used;
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf "max |err| %.1f%% (at index %d), MAPE %.1f%%, bias %+.1f%%"
    s.max_abs_percent s.worst_index s.mean_abs_percent s.bias_percent;
  if s.skipped > 0 then Format.fprintf ppf " [%d pair(s) skipped]" s.skipped
