type t = { data : float array; mean : float; variance : float }

let of_array a =
  if Array.length a = 0 then invalid_arg "Sample.of_array: empty sample";
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then invalid_arg "Sample.of_array: non-finite value")
    a;
  let data = Array.copy a in
  (* Monomorphic sort: IEEE total order on finite values (of_array rejects
     non-finite input above), identical on every platform. *)
  Array.sort Float.compare data;
  let n = Float.of_int (Array.length data) in
  let mean = Array.fold_left ( +. ) 0. data /. n in
  let variance =
    if Array.length data < 2 then 0.
    else
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. data
      /. Float.of_int (Array.length data - 1)
  in
  { data; mean; variance }

let of_list l = of_array (Array.of_list l)

let size t = Array.length t.data

let mean t = t.mean

let variance t = t.variance

let stddev t = sqrt t.variance

let quantile t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Sample.quantile: q outside [0,1]";
  let n = Array.length t.data in
  if n = 1 then t.data.(0)
  else begin
    let h = q *. Float.of_int (n - 1) in
    let i = int_of_float (Float.floor h) in
    let frac = h -. Float.of_int i in
    if i >= n - 1 then t.data.(n - 1)
    else t.data.(i) +. (frac *. (t.data.(i + 1) -. t.data.(i)))
  end

let median t = quantile t 0.5

let min t = t.data.(0)

let max t = t.data.(Array.length t.data - 1)

let iqr t = quantile t 0.75 -. quantile t 0.25
