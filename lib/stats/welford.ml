(* All-float record on purpose: OCaml stores a record whose fields are all
   floats flat (no per-field box), so every [add] is five plain stores. A
   mixed record (int count + float moments) boxes each float field and
   every mutable store allocates — measurable on the simulator's per-event
   accumulation path. The count therefore lives in a float; it is an exact
   integer up to 2^53, far beyond any observation stream here. *)
type t = {
  mutable n : float;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0.; mean = 0.; m2 = 0.; min = Float.nan; max = Float.nan }

let copy t = { t with n = t.n }

let add t x =
  if not (Float.is_finite x) then invalid_arg "Welford.add: non-finite observation";
  t.n <- t.n +. 1.;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if Float.equal t.n 1. then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = Float.to_int t.n

let mean t = if Float.equal t.n 0. then Float.nan else t.mean

let variance t =
  if t.n < 2. then 0.
  else
    (t.m2 /. (t.n -. 1.)
    [@lint.allow
      "division-by-vanishing"
        "the count is an exact float integer and this branch holds only for \
         n >= 2, so the denominator is at least 1"])

let population_variance t = if Float.equal t.n 0. then 0. else t.m2 /. t.n

let stddev t = sqrt (variance t)

(* Below this magnitude mean*.mean underflows and scv's division is
   meaningless; exact zeros are also caught by the same test. *)
let tiny_mean = Float.sqrt Float.min_float

let scv t =
  if Float.equal t.n 0. || Float.abs t.mean < tiny_mean then 0.
  else population_variance t /. (t.mean *. t.mean)

let min t = t.min

let max t = t.max

let total t = t.mean *. t.n

let merge a b =
  if Float.equal a.n 0. then copy b
  else if Float.equal b.n 0. then copy a
  else begin
    let n = a.n +. b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. b.n /. n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. a.n *. b.n /. n) in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let confidence_interval t =
  if t.n < 2. then Float.nan else 1.96 *. stddev t /. sqrt t.n
