type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = Float.nan; max = Float.nan }

let copy t = { t with n = t.n }

let add t x =
  if not (Float.is_finite x) then invalid_arg "Welford.add: non-finite observation";
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = t.n

let mean t = if t.n = 0 then Float.nan else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. Float.of_int (t.n - 1)

let population_variance t = if t.n = 0 then 0. else t.m2 /. Float.of_int t.n

let stddev t = sqrt (variance t)

(* Below this magnitude mean*.mean underflows and scv's division is
   meaningless; exact zeros are also caught by the same test. *)
let tiny_mean = Float.sqrt Float.min_float

let scv t =
  if t.n = 0 || Float.abs t.mean < tiny_mean then 0.
  else population_variance t /. (t.mean *. t.mean)

let min t = t.min

let max t = t.max

let total t = t.mean *. Float.of_int t.n

let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = Float.of_int n in
    let mean = a.mean +. (delta *. Float.of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. Float.of_int a.n *. Float.of_int b.n /. nf)
    in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let confidence_interval t =
  if t.n < 2 then Float.nan else 1.96 *. stddev t /. sqrt (Float.of_int t.n)
