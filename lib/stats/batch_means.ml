type t = {
  batch_size : int;
  batch_stats : Welford.t; (* one observation per completed batch *)
  mutable in_batch : int;
  mutable batch_sum : float;
  mutable total : int;
}

let create ~batch_size =
  if batch_size <= 0 then invalid_arg "Batch_means.create: batch_size <= 0";
  { batch_size; batch_stats = Welford.create (); in_batch = 0; batch_sum = 0.; total = 0 }

let add t x =
  t.total <- t.total + 1;
  t.batch_sum <- t.batch_sum +. x;
  t.in_batch <- t.in_batch + 1;
  if t.in_batch = t.batch_size then begin
    Welford.add t.batch_stats (t.batch_sum /. Float.of_int t.batch_size);
    t.in_batch <- 0;
    t.batch_sum <- 0.
  end

let count t = t.total

let completed_batches t = Welford.count t.batch_stats

let mean t = Welford.mean t.batch_stats

let half_width t = Welford.confidence_interval t.batch_stats

(* Width relative to a mean this small is numerically meaningless (and the
   division by m below would overflow); exact zeros hit the same test. *)
let tiny_mean = Float.sqrt Float.min_float

let relative_half_width t =
  let m = mean t in
  if Float.is_nan m || Float.abs m < tiny_mean then Float.nan
  else Float.abs (half_width t /. m)
