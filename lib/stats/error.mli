(** Error metrics for model-versus-measurement validation.

    The paper's accuracy claims are phrased as signed relative errors
    ("LoPC overestimates total runtime by 6% in the worst case", "the
    contention-free model under predicts total run time by 37%"). These
    helpers compute exactly those quantities for single points and sweeps. *)

val relative : predicted:float -> measured:float -> float
(** Signed relative error [(predicted − measured) / measured]. Positive
    means the model is pessimistic (over-predicts). Never raises: a zero
    measured value propagates as [±infinity] ([nan] when [predicted] is
    also zero), so one degenerate measurement does not tear down a whole
    validation table — {!summarize} skips such pairs and counts them. *)

val percent : predicted:float -> measured:float -> float
(** [100 ×. relative]. *)

val absolute : predicted:float -> measured:float -> float
(** [predicted − measured]. *)

type summary = {
  max_abs_percent : float;  (** Largest magnitude of signed percent error. *)
  mean_abs_percent : float; (** Mean of |percent error| (MAPE). *)
  worst_index : int;        (** Index attaining [max_abs_percent];
                                [-1] when every pair was skipped. *)
  bias_percent : float;     (** Mean signed percent error. *)
  skipped : int;            (** Pairs with non-finite percent error (zero
                                or non-finite measurements), excluded from
                                the aggregates. *)
}
(** Aggregate error over a parameter sweep. *)

val summarize : predicted:float array -> measured:float array -> summary
(** [summarize ~predicted ~measured] pairs up the two series. Pairs whose
    percent error is non-finite (a zero or non-finite measurement, or a
    non-finite prediction) are skipped and counted in [skipped]; when
    every pair is skipped the float aggregates are [nan] and
    [worst_index = -1].
    @raise Invalid_argument if lengths differ or the arrays are empty. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render e.g. ["max |err| 5.8% (at index 0), MAPE 2.1%, bias +1.9%"],
    with a skipped-pair count appended when nonzero. *)
