(** Whole-sample descriptive statistics and quantiles.

    Complements {!Welford} when the full sample fits in memory and exact
    order statistics are needed (confidence checks on simulator output). *)

type t
(** An immutable, sorted sample. *)

val of_array : float array -> t
(** [of_array a] copies and sorts [a] with [Float.compare] — the IEEE
    total order, which on the finite values accepted here coincides with
    numeric [<=] and is identical on every platform.
    @raise Invalid_argument if [a] is empty or contains non-finite
    values. *)

val of_list : float list -> t
(** List counterpart of {!of_array}. *)

val size : t -> int
(** Number of observations. *)

val mean : t -> float
(** Arithmetic mean. *)

val variance : t -> float
(** Unbiased sample variance; [0.] for singleton samples. *)

val stddev : t -> float
(** [sqrt variance]. *)

val quantile : t -> float -> float
(** [quantile t q] is the [q]-th quantile, [0. <= q <= 1.], by linear
    interpolation between order statistics (type-7, the R default).
    @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

val median : t -> float
(** [quantile t 0.5]. *)

val min : t -> float
(** Smallest observation. *)

val max : t -> float
(** Largest observation. *)

val iqr : t -> float
(** Interquartile range, [quantile 0.75 − quantile 0.25]. *)
