type t = {
  q : float;
  heights : float array;      (* marker heights, 5 entries once primed *)
  positions : float array;    (* actual marker positions (1-based) *)
  desired : float array;      (* desired marker positions *)
  increments : float array;   (* desired position increments per sample *)
  mutable n : int;
}

let create ~q =
  if not (q > 0. && q < 1.) then invalid_arg "P2_quantile.create: q outside (0,1)";
  {
    q;
    heights = Array.make 5 0.;
    positions = [| 1.; 2.; 3.; 4.; 5. |];
    desired = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
    increments = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
    n = 0;
  }

let count t = t.n

(* Piecewise-parabolic (P²) height adjustment for marker i moved by d. *)
let parabolic t i d =
  let h = t.heights and p = t.positions in
  h.(i)
  +. (d
      /. (p.(i + 1) -. p.(i - 1))
      *. (((p.(i) -. p.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (p.(i + 1) -. p.(i)))
         +. ((p.(i + 1) -. p.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (p.(i) -. p.(i - 1)))))
[@@lint.allow
  "division-by-vanishing"
    "[add] only adjusts marker i when both neighbour gaps exceed 1 (the P^2 \
     precondition), so every position difference here is >= 1"]

let linear t i d =
  let h = t.heights and p = t.positions in
  let j = i + int_of_float d in
  h.(i) +. (d *. (h.(j) -. h.(i)) /. (p.(j) -. p.(i)))
[@@lint.allow
  "division-by-vanishing"
    "positions are strictly increasing integers stored as floats, so adjacent \
     marker positions differ by at least 1"]

let add t x =
  if not (Float.is_finite x) then invalid_arg "P2_quantile.add: non-finite observation";
  if t.n < 5 then begin
    t.heights.(t.n) <- x;
    t.n <- t.n + 1;
    if t.n = 5 then Array.sort Float.compare t.heights
  end
  else begin
    t.n <- t.n + 1;
    let h = t.heights and p = t.positions in
    (* Find the cell containing x and bump endpoint markers. *)
    let k =
      if x < h.(0) then begin
        h.(0) <- x;
        0
      end
      else if x >= h.(4) then begin
        h.(4) <- x;
        3
      end
      else begin
        let rec locate i = if x < h.(i + 1) then i else locate (i + 1) in
        locate 0
      end
    in
    for i = k + 1 to 4 do
      p.(i) <- p.(i) +. 1.
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust the three interior markers if they drifted off target. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. p.(i) in
      if
        (d >= 1. && p.(i + 1) -. p.(i) > 1.)
        || (d <= -1. && p.(i - 1) -. p.(i) < -1.)
      then begin
        let d = Float.copy_sign 1. d in
        let candidate = parabolic t i d in
        let new_height =
          if h.(i - 1) < candidate && candidate < h.(i + 1) then candidate
          else linear t i d
        in
        h.(i) <- new_height;
        p.(i) <- p.(i) +. d
      end
    done
  end

let estimate t =
  if t.n = 0 then Float.nan
  else if t.n < 5 then begin
    (* Exact small-sample quantile (nearest-rank interpolation). *)
    let sample = Array.sub t.heights 0 t.n in
    Array.sort Float.compare sample;
    let h = t.q *. Float.of_int (t.n - 1) in
    let i = int_of_float (Float.floor h) in
    if i >= t.n - 1 then sample.(t.n - 1)
    else sample.(i) +. ((h -. Float.of_int i) *. (sample.(i + 1) -. sample.(i)))
  end
  else t.heights.(2)
