(** Discrete-event simulation engine.

    Wraps {!Event_heap} with a simulation clock, callback scheduling and
    O(1) lazy cancellation. Time never moves backwards; scheduling into
    the past is a programming error and raises. Handlers receive the
    engine so they can schedule further events. *)

type t
(** A simulation run. *)

type handle
(** Names a scheduled event so it can be cancelled (e.g. a thread's
    work-completion event that must be withdrawn when a message preempts
    the thread). *)

type queue_kind =
  | Heap      (** Binary min-heap ({!Event_heap}): O(log n), the default. *)
  | Calendar
      (** Calendar queue ({!Calendar_queue}): O(1) amortized at high
          event rates. Pops in exactly the same [(time, seq)] order as
          [Heap], so results are identical — only the constant factors
          differ. *)

val create : ?queue:queue_kind -> unit -> t
(** A fresh engine with the clock at [0.]. [queue] selects the pending
    event structure (default [Heap]); both orders events identically, so
    the choice is purely a performance knob. *)

val now : t -> float
(** Current simulation time. *)

val events_processed : t -> int
(** Number of events executed so far. *)

val pending : t -> int
(** Events scheduled but not yet executed (including cancelled ones not
    yet reaped). *)

val schedule : t -> delay:float -> (t -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0.] or not finite. *)

val schedule_at : t -> time:float -> (t -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time] precedes [now t]. *)

val cancel : handle -> unit
(** Cancel the event; a no-op if it already ran or was already
    cancelled. *)

val is_cancelled : handle -> bool
(** Whether {!cancel} was called on this handle. *)

val set_observer : t -> (t -> unit) -> unit
(** [set_observer t f] calls [f t] after every executed event — after
    the event's action ran and the clock advanced, so [f] sees the
    post-event state. At most one observer is installed; a second call
    replaces the first. Observers must not schedule or execute events;
    they exist for instrumentation (heap size / dispatch-rate probes). *)

val clear_observer : t -> unit
(** Remove the installed observer, if any. *)

val step : t -> bool
(** Execute the earliest pending event. Returns [false] when no events
    remain (cancelled events are skipped silently). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** [run t] executes events until none remain, the clock passes [until],
    or [max_events] have executed. When stopping on [until], the clock is
    advanced to exactly [until] and remaining events stay pending. *)
