(** Binary min-heap of timestamped items with stable FIFO tie-breaking.

    The core data structure of the event engine: [pop] always returns the
    item with the smallest timestamp, and among equal timestamps the one
    inserted first. This determinism matters — the simulator's results
    must be a pure function of its seed, and the paper's constant-service
    configurations produce many simultaneous events.

    The entry order is the explicit monomorphic comparison
    [time ascending, then seq ascending] — a total order defined in one
    place, with no dependence on the polymorphic compare runtime. [push]
    rejects non-finite timestamps, so NaN never enters the order.

    Internally the heap is struct-of-arrays: timestamps and sequence
    numbers live in flat unboxed arrays, so sift comparisons touch no
    heap blocks, and {!pop_payload} returns the stored payload cell
    without allocating. *)

type 'a t
(** Mutable heap of items of type ['a]. *)

val create : unit -> 'a t
(** An empty heap. *)

val size : 'a t -> int
(** Number of items currently stored. *)

val is_empty : 'a t -> bool
(** [size t = 0]. *)

val push : 'a t -> time:float -> 'a -> unit
(** [push t ~time x] inserts [x] with the given timestamp.
    @raise Invalid_argument if [time] is not finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest item, or [None] when empty. The vacated
    slot is nulled, so a popped payload — typically a closure over node
    state — is released immediately rather than retained until the slot is
    overwritten. A drain keeps a small backing array (repeatedly popping
    to empty must not re-allocate per cycle) but drops anything larger, so
    a burst does not pin its high-water mark. *)

val pop_payload : 'a t -> 'a option
(** Allocation-free variant of {!pop} for the dispatch hot path: removes
    the earliest item and returns the payload cell as stored, without
    building a tuple or boxing the timestamp. Read the timestamp first
    with {!peek_time_exn} if it is needed. Same slot-nulling guarantees
    as {!pop}. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest item without removing it. *)

val peek_time_exn : 'a t -> float
(** Unboxed {!peek_time} for the dispatch hot path.
    @raise Invalid_argument when the heap is empty. *)

val clear : 'a t -> unit
(** Remove everything, nulling every payload slot (releasing every
    payload, not just resetting the size); large backing arrays are
    dropped, small ones retained like after a drain. *)
