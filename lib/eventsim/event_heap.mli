(** Binary min-heap of timestamped items with stable FIFO tie-breaking.

    The core data structure of the event engine: [pop] always returns the
    item with the smallest timestamp, and among equal timestamps the one
    inserted first. This determinism matters — the simulator's results
    must be a pure function of its seed, and the paper's constant-service
    configurations produce many simultaneous events.

    The entry order is the explicit monomorphic comparator
    [Float.compare time, then Int.compare seq] — a total order defined in
    one place, with no dependence on the polymorphic compare runtime.
    [push] rejects non-finite timestamps, so NaN never enters the order. *)

type 'a t
(** Mutable heap of items of type ['a]. *)

val create : unit -> 'a t
(** An empty heap. *)

val size : 'a t -> int
(** Number of items currently stored. *)

val is_empty : 'a t -> bool
(** [size t = 0]. *)

val push : 'a t -> time:float -> 'a -> unit
(** [push t ~time x] inserts [x] with the given timestamp.
    @raise Invalid_argument if [time] is not finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest item, or [None] when empty. The vacated
    slot is nulled (and the backing array dropped once the heap drains), so
    a popped payload — typically a closure over node state — is released
    immediately rather than retained until the slot is overwritten. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest item without removing it. *)

val clear : 'a t -> unit
(** Remove everything and drop the backing array (releasing every payload,
    not just resetting the size). *)
