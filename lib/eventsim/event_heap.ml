(* Struct-of-arrays binary min-heap: timestamps and sequence numbers live
   in flat unboxed arrays ([float array] / [int array]), payloads in a
   parallel ['a option array]. Sift compares never chase a pointer and
   neither [push] nor [pop_payload] allocates beyond the payload's own
   [Some] cell (which is handed back verbatim by [pop_payload]).

   Slots at or above [size] hold [None]: a popped entry must not linger in
   the backing array, because event payloads are closures over node state
   and long simulations would otherwise retain one dead closure per pop
   (the vacated slot aliases live entries only transitively, so the leak
   shows up as popped-but-reachable payloads, not as a monotonic
   counter). *)
type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable data : 'a option array;
  mutable size : int;
  mutable next_seq : int;
}

(* Capacity kept through a drain: ping-pong workloads pop the heap to
   empty once per event, and re-allocating a fresh backing array per pop
   costs more than the handful of nulled slots retained here. Above this
   the arrays are dropped so a burst does not pin its high-water mark. *)
let retained_capacity = 64

let create () = { times = [||]; seqs = [||]; data = [||]; size = 0; next_seq = 0 }

let size t = t.size

let is_empty t = t.size = 0

(* Entry ordering: earlier time first; insertion order breaks ties. Spelled
   as an explicit monomorphic comparison — Float time then int seq — so
   the total order (including NaN placement, which push rejects anyway)
   is defined here and not by the polymorphic compare runtime. Sequence
   numbers are unique, so the order is total and strict. *)
let before t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  if ti < tj then true
  else if ti > tj then false
  else t.seqs.(i) < t.seqs.(j)

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let times = Array.make new_cap 0. in
  let seqs = Array.make new_cap 0 in
  let data = Array.make new_cap None in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.data <- data

let push t ~time x =
  if not (Float.is_finite time) then invalid_arg "Event_heap.push: non-finite time";
  if t.size = Array.length t.data then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.times.(!i) <- time;
  t.seqs.(!i) <- t.next_seq;
  t.data.(!i) <- Some x;
  t.next_seq <- t.next_seq + 1;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t !i parent then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done
[@@lint.allow
  "unbounded-retry"
    "the sift-up loop strictly decreases the index toward the root each \
     iteration, so it is bounded by the heap depth (log of size); no budget \
     can be threaded below the simulator's per-event granularity"]

(* Remove the root, restore the heap, and hand back the root's payload
   cell as stored — the caller receives the existing [Some] block, so the
   dispatch path allocates nothing. *)
let pop_payload t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size = 0 then begin
      (* Heap drained: null the vacated root but keep a small backing
         array so drain-per-event workloads do not re-allocate on every
         push; anything larger is dropped wholesale. *)
      if Array.length t.data > retained_capacity then begin
        t.times <- [||];
        t.seqs <- [||];
        t.data <- [||]
      end
      else t.data.(0) <- None
    end
    else begin
      let last = t.size in
      t.times.(0) <- t.times.(last);
      t.seqs.(0) <- t.seqs.(last);
      t.data.(0) <- t.data.(last);
      (* Null the vacated slot so the entry moved to the root is the only
         reference the array keeps. *)
      t.data.(last) <- None;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t l !smallest then smallest := l;
        if r < t.size && before t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    top
  end
[@@lint.allow
  "unbounded-retry"
    "the sift-down loop strictly descends the heap (the index at least \
     doubles each iteration), so it is bounded by the heap depth; no budget \
     can be threaded below the simulator's per-event granularity"]

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    match pop_payload t with
    | Some x -> Some (time, x)
    | None -> assert false (* slots below [size] are always populated *)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let peek_time_exn t =
  if t.size = 0 then invalid_arg "Event_heap.peek_time_exn: empty heap"
  else t.times.(0)

let clear t =
  (* Null every live payload slot (releasing the closures) but keep small
     arrays, mirroring the drain policy above. *)
  if Array.length t.data > retained_capacity then begin
    t.times <- [||];
    t.seqs <- [||];
    t.data <- [||]
  end
  else Array.fill t.data 0 t.size None;
  t.size <- 0;
  t.next_seq <- 0
