type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let size t = t.size

let is_empty t = t.size = 0

(* Entry ordering: earlier time first; insertion order breaks ties. Spelled
   as an explicit monomorphic comparator — Float.compare then Int.compare —
   so the total order (including NaN placement, which push rejects anyway)
   is defined by this line and not by the polymorphic compare runtime. *)
let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let before a b = compare_entry a b < 0

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* Placeholder slots are overwritten before being read. *)
  let fresh = Array.make new_cap t.data.(0) in
  Array.blit t.data 0 fresh 0 t.size;
  t.data <- fresh

let push t ~time x =
  if not (Float.is_finite time) then invalid_arg "Event_heap.push: non-finite time";
  let entry = { time; seq = t.next_seq; payload = x } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 entry
  else if t.size = Array.length t.data then grow t;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry t.data.(parent) then begin
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.data.(t.size) in
      t.data.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).time

let clear t =
  t.size <- 0;
  t.next_seq <- 0
