type 'a entry = { time : float; seq : int; payload : 'a }

(* Slots above [size] are [None]: a popped entry must not linger in the
   backing array, because event payloads are closures over node state and
   long simulations would otherwise retain one dead closure per pop (the
   vacated slot aliases live entries only transitively, so the leak shows
   up as popped-but-reachable payloads, not as a monotonic counter). *)
type 'a t = {
  mutable data : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let size t = t.size

let is_empty t = t.size = 0

(* Entry ordering: earlier time first; insertion order breaks ties. Spelled
   as an explicit monomorphic comparator — Float.compare then Int.compare —
   so the total order (including NaN placement, which push rejects anyway)
   is defined by this line and not by the polymorphic compare runtime. *)
let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let before a b = compare_entry a b < 0

let get t i =
  match t.data.(i) with
  | Some e -> e
  | None -> assert false (* slots below [size] are always populated *)

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let fresh = Array.make new_cap None in
  Array.blit t.data 0 fresh 0 t.size;
  t.data <- fresh

let push t ~time x =
  if not (Float.is_finite time) then invalid_arg "Event_heap.push: non-finite time";
  let entry = { time; seq = t.next_seq; payload = x } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.data then grow t;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- Some entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry (get t parent) then begin
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- Some entry;
      i := parent
    end
    else continue := false
  done
[@@lint.allow
  "unbounded-retry"
    "the sift-up loop strictly decreases the index toward the root each \
     iteration, so it is bounded by the heap depth (log of size); no budget \
     can be threaded below the simulator's per-event granularity"]

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    if t.size = 0 then
      (* Heap drained: drop the whole backing array. *)
      t.data <- [||]
    else begin
      let last = get t t.size in
      t.data.(0) <- Some last;
      (* Null the vacated slot so the entry moved to the root is the only
         reference the array keeps. *)
      t.data.(t.size) <- None;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before (get t l) (get t !smallest) then smallest := l;
        if r < t.size && before (get t r) (get t !smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end
[@@lint.allow
  "unbounded-retry"
    "the sift-down loop strictly descends the heap (the index at least \
     doubles each iteration), so it is bounded by the heap depth; no budget \
     can be threaded below the simulator's per-event granularity"]

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let clear t =
  t.size <- 0;
  t.next_seq <- 0;
  t.data <- [||]
