(* Calendar queue (Brown 1988): a circular array of day buckets, each
   covering [width] of simulated time; an event at time [t] lives in
   bucket [floor (t / width) mod nbuckets] and is popped when the scan
   cursor reaches its year. With the bucket count resized to track the
   queue size and the width to track the mean event spacing, push and pop
   are O(1) amortized — no log factor at high event rates, which is where
   the binary heap spends its time.

   The pop order is exactly the (time, seq) total order of {!Event_heap}:
   buckets keep their entries sorted by (time, seq), sequence numbers are
   unique, and the year scan only ever skips buckets with no event in the
   current year — so the bucket layout is invisible in the output, which
   the differential tests pin down.

   Buckets are struct-of-arrays like the heap: times and sequence numbers
   in flat unboxed arrays, payloads in a parallel ['a option array] whose
   [Some] cells are handed back verbatim by [pop_payload]. Vacated slots
   are nulled for the same payload-retention reason as in {!Event_heap}. *)

type 'a bucket = {
  mutable btimes : float array;
  mutable bseqs : int array;
  mutable bdata : 'a option array;
  mutable bcount : int;
}

type 'a t = {
  mutable buckets : 'a bucket array;  (* length is a power of two *)
  mutable width : float;              (* day length, strictly positive *)
  mutable cur_k : float;              (* virtual (un-wrapped) bucket index of the scan *)
  mutable cur_idx : int;              (* cur_k mod nbuckets *)
  mutable size : int;
  mutable next_seq : int;
}

let min_buckets = 4

let fresh_bucket () =
  { btimes = [||]; bseqs = [||]; bdata = [||]; bcount = 0 }

let create () =
  {
    buckets = Array.init min_buckets (fun _ -> fresh_bucket ());
    width = 1.;
    cur_k = 0.;
    cur_idx = 0;
    size = 0;
    next_seq = 0;
  }

let size t = t.size

let is_empty t = t.size = 0

(* Virtual bucket index of [time] — kept in float so enormous [t / width]
   ratios cannot overflow an int before the modulo brings them down. *)
let vbucket t time = Float.floor (time /. t.width)

let idx_of_vbucket t k =
  let nf = Float.of_int (Array.length t.buckets) in
  let r = Float.rem k nf in
  let r = if r < 0. then r +. nf else r in
  Float.to_int r

let bucket_grow b =
  let cap = Array.length b.bdata in
  let new_cap = if cap = 0 then 4 else cap * 2 in
  let times = Array.make new_cap 0. in
  let seqs = Array.make new_cap 0 in
  let data = Array.make new_cap None in
  Array.blit b.btimes 0 times 0 b.bcount;
  Array.blit b.bseqs 0 seqs 0 b.bcount;
  Array.blit b.bdata 0 data 0 b.bcount;
  b.btimes <- times;
  b.bseqs <- seqs;
  b.bdata <- data

(* Insert keeping the bucket sorted ascending by (time, seq). Scanning
   from the back is the common case: fresh events carry the largest seq,
   so equal-time pushes land at the end without shifting. *)
let bucket_insert b ~time ~seq payload =
  if b.bcount = Array.length b.bdata then bucket_grow b;
  let pos = ref b.bcount in
  while
    !pos > 0
    && (b.btimes.(!pos - 1) > time
       || (Float.equal b.btimes.(!pos - 1) time && b.bseqs.(!pos - 1) > seq))
  do
    b.btimes.(!pos) <- b.btimes.(!pos - 1);
    b.bseqs.(!pos) <- b.bseqs.(!pos - 1);
    b.bdata.(!pos) <- b.bdata.(!pos - 1);
    decr pos
  done;
  b.btimes.(!pos) <- time;
  b.bseqs.(!pos) <- seq;
  b.bdata.(!pos) <- payload;
  b.bcount <- b.bcount + 1
[@@lint.allow
  "unbounded-retry"
    "the insertion scan strictly decrements [pos] from [bcount] toward 0, so \
     it is bounded by the bucket occupancy; no budget can be threaded below \
     the simulator's per-event granularity"]

(* Remove the head (the bucket minimum) and return its payload cell. *)
let bucket_pop_head b =
  let payload = b.bdata.(0) in
  let last = b.bcount - 1 in
  for i = 0 to last - 1 do
    b.btimes.(i) <- b.btimes.(i + 1);
    b.bseqs.(i) <- b.bseqs.(i + 1);
    b.bdata.(i) <- b.bdata.(i + 1)
  done;
  (* Null the vacated tail slot: payloads must die with their pop. *)
  b.bdata.(last) <- None;
  b.bcount <- last;
  payload

(* Re-bucket every entry into [new_n] buckets with a width recalibrated
   from the current time span: width ~ 2x the mean inter-event spacing,
   floored so that [time / width] stays well inside float integer range.
   Deterministic — a pure function of the queue contents. *)
let resize t new_n =
  let entries_t = Array.make t.size 0. in
  let entries_s = Array.make t.size 0 in
  let entries_p = Array.make t.size None in
  let fill = ref 0 in
  Array.iter
    (fun b ->
      for i = 0 to b.bcount - 1 do
        entries_t.(!fill) <- b.btimes.(i);
        entries_s.(!fill) <- b.bseqs.(i);
        entries_p.(!fill) <- b.bdata.(i);
        incr fill
      done)
    t.buckets;
  let min_t = ref Float.infinity and max_t = ref Float.neg_infinity in
  Array.iter
    (fun x ->
      if x < !min_t then min_t := x;
      if x > !max_t then max_t := x)
    entries_t;
  let span = !max_t -. !min_t in
  let width =
    if t.size <= 1 || span <= 0. then 1.
    else 2. *. span /. Float.of_int t.size
  in
  (* Keep |time| / width <= 2^40 so the virtual bucket index is exact. *)
  let magnitude = Float.max (Float.abs !max_t) (Float.abs !min_t) in
  let width = Float.max width (Float.ldexp (Float.max magnitude 1.) (-40)) in
  t.width <- width;
  t.buckets <- Array.init new_n (fun _ -> fresh_bucket ());
  for i = 0 to t.size - 1 do
    let k = vbucket t entries_t.(i) in
    bucket_insert t.buckets.(idx_of_vbucket t k) ~time:entries_t.(i)
      ~seq:entries_s.(i) entries_p.(i)
  done;
  if t.size = 0 then begin
    t.cur_k <- 0.;
    t.cur_idx <- 0
  end
  else begin
    t.cur_k <- vbucket t !min_t;
    t.cur_idx <- idx_of_vbucket t t.cur_k
  end

let push t ~time x =
  if not (Float.is_finite time) then
    invalid_arg "Calendar_queue.push: non-finite time";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let k = vbucket t time in
  bucket_insert t.buckets.(idx_of_vbucket t k) ~time ~seq (Some x);
  (* An event before the scan cursor (or the very first event) re-anchors
     the scan, otherwise the year sweep would walk right past it. *)
  if t.size = 0 || k < t.cur_k then begin
    t.cur_k <- k;
    t.cur_idx <- idx_of_vbucket t k
  end;
  t.size <- t.size + 1;
  if t.size > 2 * Array.length t.buckets then resize t (2 * Array.length t.buckets)

(* Advance the cursor to the bucket holding the global minimum (which is
   then that bucket's head). Scans at most one full revolution of days;
   if a whole year is empty (events far in the future), falls back to a
   direct search over the bucket heads and re-anchors the cursor there. *)
let seek_min t =
  let n = Array.length t.buckets in
  let found = ref false in
  let scanned = ref 0 in
  while (not !found) && !scanned < n do
    let b = t.buckets.(t.cur_idx) in
    if b.bcount > 0 && b.btimes.(0) < (t.cur_k +. 1.) *. t.width then found := true
    else begin
      t.cur_k <- t.cur_k +. 1.;
      t.cur_idx <- (t.cur_idx + 1) land (n - 1);
      incr scanned
    end
  done;
  if not !found then begin
    (* Direct search: every bucket is sorted, so its head is its minimum;
       the global minimum is the least head by (time, seq). *)
    let best = ref (-1) in
    let best_time = ref Float.infinity and best_seq = ref max_int in
    Array.iteri
      (fun i b ->
        if
          b.bcount > 0
          && (b.btimes.(0) < !best_time
             || (Float.equal b.btimes.(0) !best_time && b.bseqs.(0) < !best_seq))
        then begin
          best := i;
          best_time := b.btimes.(0);
          best_seq := b.bseqs.(0)
        end)
      t.buckets;
    t.cur_k <- vbucket t !best_time;
    t.cur_idx <- !best
  end
[@@lint.allow
  "unbounded-retry"
    "the day scan is bounded by one revolution of the bucket array (the \
     loop counter reaches nbuckets) and then falls through to a direct \
     search; no budget can be threaded below the simulator's per-event \
     granularity"]

let pop_payload t =
  if t.size = 0 then None
  else begin
    seek_min t;
    let payload = bucket_pop_head t.buckets.(t.cur_idx) in
    t.size <- t.size - 1;
    let n = Array.length t.buckets in
    if n > min_buckets && t.size < n / 2 then resize t (n / 2);
    payload
  end

let pop t =
  if t.size = 0 then None
  else begin
    seek_min t;
    let time = t.buckets.(t.cur_idx).btimes.(0) in
    match pop_payload t with
    | Some x -> Some (time, x)
    | None -> assert false (* counted slots are always populated *)
  end

let peek_time t =
  if t.size = 0 then None
  else begin
    seek_min t;
    Some t.buckets.(t.cur_idx).btimes.(0)
  end

let peek_time_exn t =
  if t.size = 0 then invalid_arg "Calendar_queue.peek_time_exn: empty queue"
  else begin
    seek_min t;
    t.buckets.(t.cur_idx).btimes.(0)
  end

let clear t =
  t.buckets <- Array.init min_buckets (fun _ -> fresh_bucket ());
  t.width <- 1.;
  t.cur_k <- 0.;
  t.cur_idx <- 0;
  t.size <- 0;
  t.next_seq <- 0
