(** Calendar queue of timestamped items — same contract as {!Event_heap}.

    A circular array of day buckets (Brown 1988): an event at time [t]
    lives in bucket [floor (t / width) mod nbuckets]; [pop] scans the
    calendar from the current day forward. The bucket count tracks the
    queue size and the bucket width the mean event spacing, making push
    and pop O(1) amortized where the binary heap pays a log factor.

    The pop order is exactly the heap's [(time, seq)] total order —
    earlier time first, insertion order breaking ties — so the two
    structures are interchangeable behind {!Engine}. [push] rejects
    non-finite timestamps, resizing is a deterministic function of the
    queue contents, and vacated payload slots are nulled with the same
    retention guarantees as {!Event_heap}. *)

type 'a t
(** Mutable calendar queue of items of type ['a]. *)

val create : unit -> 'a t
(** An empty queue. *)

val size : 'a t -> int
(** Number of items currently stored. *)

val is_empty : 'a t -> bool
(** [size t = 0]. *)

val push : 'a t -> time:float -> 'a -> unit
(** [push t ~time x] inserts [x] with the given timestamp.
    @raise Invalid_argument if [time] is not finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest item, or [None] when empty. The
    vacated slot is nulled so the popped payload is released
    immediately. *)

val pop_payload : 'a t -> 'a option
(** Allocation-free variant of {!pop}: removes the earliest item and
    returns the payload cell as stored. Read the timestamp first with
    {!peek_time_exn} if it is needed. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest item without removing it. *)

val peek_time_exn : 'a t -> float
(** Unboxed {!peek_time}.
    @raise Invalid_argument when the queue is empty. *)

val clear : 'a t -> unit
(** Remove everything, releasing every payload and resetting the
    calendar to its initial geometry. *)
