(* The clock lives in a one-element [float array] rather than a mutable
   float field: in a mixed record a mutable float is boxed, so every
   [t.now <- time] on the old layout allocated. A float array stores the
   value flat, making the per-event clock update a plain store.

   [step] dispatches without allocating: the timestamp is read unboxed
   via [peek_time_exn] and the payload comes back as the queue's stored
   [Some] cell via [pop_payload] — no [(time, event)] tuple per event. *)

type queue_kind = Heap | Calendar

type t = {
  queue : queue;
  now : float array;  (* one element; see above *)
  mutable executed : int;
  mutable observer : (t -> unit) option;
}

and queue =
  | Q_heap of event Event_heap.t
  | Q_calendar of event Calendar_queue.t

and event = { action : t -> unit; mutable cancelled : bool }

type handle = event

let create ?(queue = Heap) () =
  let queue =
    match queue with
    | Heap -> Q_heap (Event_heap.create ())
    | Calendar -> Q_calendar (Calendar_queue.create ())
  in
  { queue; now = [| 0. |]; executed = 0; observer = None }

let q_size = function
  | Q_heap h -> Event_heap.size h
  | Q_calendar c -> Calendar_queue.size c

let q_push q ~time ev =
  match q with
  | Q_heap h -> Event_heap.push h ~time ev
  | Q_calendar c -> Calendar_queue.push c ~time ev

let q_pop_payload = function
  | Q_heap h -> Event_heap.pop_payload h
  | Q_calendar c -> Calendar_queue.pop_payload c

let q_peek_time = function
  | Q_heap h -> Event_heap.peek_time h
  | Q_calendar c -> Calendar_queue.peek_time c

let q_peek_time_exn = function
  | Q_heap h -> Event_heap.peek_time_exn h
  | Q_calendar c -> Calendar_queue.peek_time_exn c

let set_observer t f = t.observer <- Some f

let clear_observer t = t.observer <- None

let now t = t.now.(0)

let events_processed t = t.executed

let pending t = q_size t.queue

let schedule_at t ~time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.now.(0) then invalid_arg "Engine.schedule_at: scheduling into the past";
  let ev = { action = f; cancelled = false } in
  q_push t.queue ~time ev;
  ev

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  schedule_at t ~time:(t.now.(0) +. delay) f

let cancel ev = ev.cancelled <- true

let is_cancelled ev = ev.cancelled

let rec step t =
  if q_size t.queue = 0 then false
  else begin
    let time = q_peek_time_exn t.queue in
    match q_pop_payload t.queue with
    | None -> false
    | Some ev ->
      if ev.cancelled then step t
      else begin
        t.now.(0) <- time;
        t.executed <- t.executed + 1;
        ev.action t;
        (match t.observer with None -> () | Some f -> f t);
        true
      end
  end

let run ?until ?max_events t =
  let budget_left () =
    match max_events with None -> true | Some m -> t.executed < m
  in
  let within_horizon () =
    match until with
    | None -> true
    | Some horizon -> (
      match q_peek_time t.queue with
      | None -> false
      | Some next -> next <= horizon)
  in
  let continue = ref true in
  while !continue do
    if budget_left () && within_horizon () then begin
      if not (step t) then continue := false
    end
    else continue := false
  done;
  match until with
  | Some horizon when t.now.(0) < horizon && budget_left () -> t.now.(0) <- horizon
  | Some _ | None -> ()
