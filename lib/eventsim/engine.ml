type t = {
  heap : event Event_heap.t;
  mutable now : float;
  mutable executed : int;
  mutable observer : (t -> unit) option;
}

and event = { action : t -> unit; mutable cancelled : bool }

type handle = event

let create () = { heap = Event_heap.create (); now = 0.; executed = 0; observer = None }

let set_observer t f = t.observer <- Some f

let clear_observer t = t.observer <- None

let now t = t.now

let events_processed t = t.executed

let pending t = Event_heap.size t.heap

let schedule_at t ~time f =
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  if time < t.now then invalid_arg "Engine.schedule_at: scheduling into the past";
  let ev = { action = f; cancelled = false } in
  Event_heap.push t.heap ~time ev;
  ev

let schedule t ~delay f =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Engine.schedule: negative or non-finite delay";
  schedule_at t ~time:(t.now +. delay) f

let cancel ev = ev.cancelled <- true

let is_cancelled ev = ev.cancelled

let rec step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, ev) ->
    if ev.cancelled then step t
    else begin
      t.now <- time;
      t.executed <- t.executed + 1;
      ev.action t;
      (match t.observer with None -> () | Some f -> f t);
      true
    end

let run ?until ?max_events t =
  let budget_left () =
    match max_events with None -> true | Some m -> t.executed < m
  in
  let within_horizon () =
    match until with
    | None -> true
    | Some horizon -> (
      match Event_heap.peek_time t.heap with
      | None -> false
      | Some next -> next <= horizon)
  in
  let continue = ref true in
  while !continue do
    if budget_left () && within_horizon () then begin
      if not (step t) then continue := false
    end
    else continue := false
  done;
  match until with
  | Some horizon when t.now < horizon && budget_left () -> t.now <- horizon
  | Some _ | None -> ()
