(** Service stations of a closed queueing network.

    A station is described by its scheduling kind and the per-cycle
    service demand [D = V ·. S] (visit ratio times mean service time), the
    standard MVA parameterization. The optional squared coefficient of
    variation feeds the residual-life correction of approximate MVA
    (paper Eq 5.8); exact MVA ignores it. *)

type kind =
  | Queueing  (** Single-server FCFS queue — customers wait. *)
  | Delay     (** Infinite-server "think" station — no waiting. *)

type t = {
  kind : kind;
  demand : float [@lopc.cost] [@lopc.unit "cycles"];
      (** Per-cycle service demand [V ·. S], [>= 0.]. *)
  scv : float [@lopc.cost];
      (** Squared coefficient of variation of service time. *)
  servers : int;   (** Parallel servers at the station ([1] = classic
                       FCFS). Multi-server stations are handled by the
                       approximate solvers with the Seidmann
                       transformation: a queueing stage of demand [D/c]
                       plus a pure delay of [D·(c−1)/c]. *)
}

val queueing : ?scv:float -> ?servers:int -> demand:float -> unit -> t
(** FCFS station; [scv] defaults to [1.] (exponential), [servers] to [1].
    @raise Invalid_argument if [demand < 0.], [scv < 0.] or
    [servers < 1]. *)

val delay : demand:float -> t
(** Infinite-server station. @raise Invalid_argument if [demand < 0.]. *)

val validate : t -> (t, string) result
(** Check the invariants stated above. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering. *)
