module Fixed_point = Lopc_numerics.Fixed_point

type network = {
  think_times : float array;
  populations : int array;
  demands : float array array;
  station_kinds : Station.kind array;
  station_scv : float array;
}

type solution = {
  throughput : float array;
  cycle_time : float array;
  residence : float array array;
  queue_length : float array array;
  utilization : float array;
}

let validate net =
  let c = Array.length net.populations in
  let k = Array.length net.station_kinds in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if Array.length net.think_times <> c then err "think_times length %d <> classes %d" (Array.length net.think_times) c
  else if Array.length net.demands <> c then err "demands rows %d <> classes %d" (Array.length net.demands) c
  else if Array.length net.station_scv <> k then err "station_scv length %d <> stations %d" (Array.length net.station_scv) k
  else begin
    let problem = ref None in
    Array.iteri
      (fun ci row ->
        if Array.length row <> k then problem := Some (Printf.sprintf "demands row %d has %d entries, expected %d" ci (Array.length row) k)
        else
          Array.iter
            (fun d -> if d < 0. || not (Float.is_finite d) then problem := Some "negative or non-finite demand")
            row)
      net.demands;
    Array.iter
      (fun z -> if z < 0. || not (Float.is_finite z) then problem := Some "negative or non-finite think time")
      net.think_times;
    Array.iter
      (fun n -> if n < 0 then problem := Some "negative population")
      net.populations;
    Array.iter
      (fun v -> if v < 0. || not (Float.is_finite v) then problem := Some "negative or non-finite scv")
      net.station_scv;
    match !problem with Some reason -> Error reason | None -> Ok net
  end

let solve ?(approximation = Amva.Bard) ?(use_scv = true) ?(tol = 1e-12)
    ?(max_iter = 200_000) net =
  (match validate net with
  | Ok _ -> ()
  | Error reason -> invalid_arg ("Multiclass: " ^ reason));
  let nclass = Array.length net.populations in
  let nstat = Array.length net.station_kinds in
  (* State: queue lengths Q_ck flattened, then throughputs X_c. *)
  let idx c k = (c * nstat) + k in
  let xidx c = (nclass * nstat) + c in
  let dim = (nclass * nstat) + nclass in
  let residence_of state =
    (* Station utilizations from current throughput estimates. *)
    let util =
      Array.init nstat (fun k ->
          let acc = ref 0. in
          for c = 0 to nclass - 1 do
            acc := !acc +. (state.(xidx c) *. net.demands.(c).(k))
          done;
          !acc)
    in
    Array.init nclass (fun c ->
        Array.init nstat (fun k ->
            let d = net.demands.(c).(k) in
            match net.station_kinds.(k) with
            | Station.Delay -> d
            | Station.Queueing ->
              if Float.equal d 0. then 0.
              else begin
                let total_queue = ref 0. in
                for j = 0 to nclass - 1 do
                  total_queue := !total_queue +. state.(idx j k)
                done;
                let arrival_queue =
                  match approximation with
                  | Amva.Bard -> !total_queue
                  | Amva.Schweitzer ->
                    let pop = Float.of_int net.populations.(c) in
                    if pop <= 0. then !total_queue
                    else !total_queue -. (state.(idx c k) /. pop)
                in
                let correction =
                  if use_scv then (net.station_scv.(k) -. 1.) /. 2. *. util.(k) else 0.
                in
                d *. (1. +. arrival_queue +. correction)
              end))
  in
  let step state =
    let residence = residence_of state in
    let next = Array.make dim 0. in
    for c = 0 to nclass - 1 do
      let cycle =
        net.think_times.(c) +. Array.fold_left ( +. ) 0. residence.(c)
      in
      let x =
        if net.populations.(c) = 0 || cycle <= 0. then 0.
        else Float.of_int net.populations.(c) /. cycle
      in
      next.(xidx c) <- x;
      for k = 0 to nstat - 1 do
        next.(idx c k) <- x *. residence.(c).(k)
      done
    done;
    next
  in
  (* Initial state: spread each class's population over its demands. *)
  let init = Array.make dim 0. in
  for c = 0 to nclass - 1 do
    let total =
      net.think_times.(c) +. Array.fold_left ( +. ) 0. net.demands.(c)
    in
    let pop = Float.of_int net.populations.(c) in
    if total > 0. then begin
      init.(xidx c) <- pop /. total;
      for k = 0 to nstat - 1 do
        init.(idx c k) <- pop *. net.demands.(c).(k) /. total
      done
    end
  done;
  let { Fixed_point.value = state; _ } =
    Fixed_point.solve_vector ~damping:0.25 ~tol ~max_iter ~f:step init
  in
  let residence = residence_of state in
  let throughput = Array.init nclass (fun c -> state.(xidx c)) in
  let queue_length =
    Array.init nclass (fun c -> Array.init nstat (fun k -> state.(idx c k)))
  in
  let utilization =
    Array.init nstat (fun k ->
        let acc = ref 0. in
        for c = 0 to nclass - 1 do
          acc := !acc +. (throughput.(c) *. net.demands.(c).(k))
        done;
        !acc)
  in
  {
    throughput;
    cycle_time =
      Array.mapi
        (fun c x ->
          if Float.equal x 0. then Float.nan
          else Float.of_int net.populations.(c) /. x)
        throughput;
    residence;
    queue_length;
    utilization;
  }
