module Fixed_point = Lopc_numerics.Fixed_point
module Solver_probe = Lopc_numerics.Solver_probe

type approximation = Bard | Schweitzer

(* Residence times given per-station queue lengths and a throughput
   estimate (the scv residual-life correction term is the per-server
   utilization U_k = x·D_k/c). Multi-server stations use the Seidmann
   transformation: a queueing stage of demand D/c plus a fixed delay
   D·(c−1)/c — exact for c = 1. *)
let residence_of ~stations ~arrival_factor ~use_scv queues x =
  Array.mapi
    (fun i (s : Station.t) ->
      match s.kind with
      | Station.Delay -> s.demand
      | Station.Queueing ->
        let c = Float.of_int s.servers in
        let queue_demand = s.demand /. c in
        let fixed_delay = s.demand *. (c -. 1.) /. c in
        let arrival_queue = arrival_factor *. queues.(i) in
        let correction =
          if use_scv then (s.scv -. 1.) /. 2. *. (x *. queue_demand) else 0.
        in
        fixed_delay +. (queue_demand *. (1. +. arrival_queue +. correction)))
    stations

(* Little's law X = n / (Z + Σ R_k(X)) with R linear in X:
   Σ R = a + X·b, so X solves X²·b + X·a − n = 0. *)
let consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time ~n queues =
  let base = residence_of ~stations ~arrival_factor ~use_scv queues 0. in
  let a = think_time +. Array.fold_left ( +. ) 0. base in
  let b =
    if not use_scv then 0.
    else
      Array.fold_left
        (fun acc (s : Station.t) ->
          match s.kind with
          | Station.Delay -> acc
          | Station.Queueing ->
            let d = s.demand /. Float.of_int s.servers in
            acc +. ((s.scv -. 1.) /. 2. *. d *. d))
        0. stations
  in
  if Float.equal b 0. then n /. a
  else begin
    let disc = (a *. a) +. (4. *. n *. b) in
    if disc < 0. then n /. a
    else begin
      let x = ((-.a) +. sqrt disc) /. (2. *. b) in
      if x > 0. then x else n /. a
    end
  end

(* Collect every input problem before rejecting, so a caller assembling a
   station array from data sees all bad stations (with their indices) in
   one message instead of fixing them one invalid_arg at a time. *)
let validate_inputs ~think_time ~stations ~population =
  let problems = ref [] in
  let add p = problems := p :: !problems in
  if population < 0 then add "negative population";
  if think_time < 0. then add "negative think time";
  Array.iteri
    (fun i s ->
      match Station.validate s with
      | Ok _ -> ()
      | Error reason -> add (Printf.sprintf "station %d: %s" i reason))
    stations;
  match List.rev !problems with
  | [] -> ()
  | problems -> invalid_arg ("Amva: " ^ String.concat "; " problems)

(* The most utilized queueing station at the throughput implied by a
   queue-length iterate — what the probe reports as [hottest]. *)
let hottest_station ~stations x =
  let best = ref None in
  Array.iteri
    (fun i (s : Station.t) ->
      match s.kind with
      | Station.Delay -> ()
      | Station.Queueing ->
        let u = x *. s.demand /. Float.of_int s.servers in
        (match !best with Some (_, u') when u' >= u -> () | _ -> best := Some (i, u)))
    stations;
  !best

let solve_status ?probe ?budget ?(approximation = Bard) ?(use_scv = true)
    ?(think_time = 0.) ?(tol = 1e-12) ?(max_iter = 100_000) ~stations ~population () =
  validate_inputs ~think_time ~stations ~population;
  let k = Array.length stations in
  let n = Float.of_int population in
  if population = 0 then
    ( Some
        {
          Solution.throughput = 0.;
          cycle_time = Float.nan;
          residence = Array.map (fun (s : Station.t) -> s.demand) stations;
          queue_length = Array.make k 0.;
          utilization = Array.make k 0.;
        },
      Fixed_point.Converged { iters = 0 } )
  else begin
    let arrival_factor =
      match approximation with Bard -> 1. | Schweitzer -> (n -. 1.) /. n
    in
    let total_demand =
      Array.fold_left (fun acc (s : Station.t) -> acc +. s.demand) 0. stations
    in
    if think_time +. total_demand <= 0. then
      invalid_arg "Amva: zero total demand with positive population";
    let step queues =
      let x = consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time ~n queues in
      let residence = residence_of ~stations ~arrival_factor ~use_scv queues x in
      Array.map (fun r -> x *. r) residence
    in
    let q0 =
      Array.map
        (fun (s : Station.t) -> n *. s.demand /. (think_time +. total_demand))
        stations
    in
    (* Enrich the raw fixed-point events with station semantics: the
       hottest queueing station at each iterate's implied throughput. *)
    let fp_probe =
      match probe with
      | None -> None
      | Some p ->
        Some
          (fun (ev : Solver_probe.event) ->
            let x =
              consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time
                ~n ev.Solver_probe.iterate
            in
            p { ev with Solver_probe.hottest = hottest_station ~stations x })
    in
    let outcome, status =
      Fixed_point.solve_vector_status ?probe:fp_probe ?budget ~damping:0.5 ~tol
        ~max_iter ~f:step q0
    in
    let queues = outcome.Fixed_point.value in
    let x = consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time ~n queues in
    match status with
    | Fixed_point.Converged _ ->
      let residence = residence_of ~stations ~arrival_factor ~use_scv queues x in
      let cycle = think_time +. Array.fold_left ( +. ) 0. residence in
      ( Some
          {
            Solution.throughput = x;
            cycle_time = cycle;
            residence;
            queue_length = Array.map (fun r -> x *. r) residence;
            utilization =
              Array.map
                (fun (s : Station.t) -> x *. s.demand /. Float.of_int s.servers)
                stations;
          },
        status )
    (* A budget stop means the caller's allowance ended, not that the
       iterate says anything about the model — keep it verbatim. *)
    | Fixed_point.Exhausted _ -> (None, status)
    | _ ->
      (* Diagnose the stall from the last iterate: a queueing station
         pinned at (or past) full per-server utilization is saturation —
         the demand admits no finite closed-network solution at this
         population — which is far more actionable than a bare
         iteration-budget report. *)
      (match hottest_station ~stations x with
      | Some (station, utilization) when utilization >= 1. -. 1e-9 ->
        (None, Fixed_point.Saturated { station; utilization })
      | Some _ | None -> (None, status))
  end

let solve ?probe ?approximation ?use_scv ?think_time ?tol ?max_iter ~stations
    ~population () =
  match
    solve_status ?probe ?approximation ?use_scv ?think_time ?tol ?max_iter ~stations
      ~population ()
  with
  | Some s, _ -> s
  | None, status ->
    raise (Fixed_point.Diverged ("Amva: " ^ Fixed_point.status_to_string status))
