module Fixed_point = Lopc_numerics.Fixed_point

type approximation = Bard | Schweitzer

(* Residence times given per-station queue lengths and a throughput
   estimate (the scv residual-life correction term is the per-server
   utilization U_k = x·D_k/c). Multi-server stations use the Seidmann
   transformation: a queueing stage of demand D/c plus a fixed delay
   D·(c−1)/c — exact for c = 1. *)
let residence_of ~stations ~arrival_factor ~use_scv queues x =
  Array.mapi
    (fun i (s : Station.t) ->
      match s.kind with
      | Station.Delay -> s.demand
      | Station.Queueing ->
        let c = Float.of_int s.servers in
        let queue_demand = s.demand /. c in
        let fixed_delay = s.demand *. (c -. 1.) /. c in
        let arrival_queue = arrival_factor *. queues.(i) in
        let correction =
          if use_scv then (s.scv -. 1.) /. 2. *. (x *. queue_demand) else 0.
        in
        fixed_delay +. (queue_demand *. (1. +. arrival_queue +. correction)))
    stations

(* Little's law X = n / (Z + Σ R_k(X)) with R linear in X:
   Σ R = a + X·b, so X solves X²·b + X·a − n = 0. *)
let consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time ~n queues =
  let base = residence_of ~stations ~arrival_factor ~use_scv queues 0. in
  let a = think_time +. Array.fold_left ( +. ) 0. base in
  let b =
    if not use_scv then 0.
    else
      Array.fold_left
        (fun acc (s : Station.t) ->
          match s.kind with
          | Station.Delay -> acc
          | Station.Queueing ->
            let d = s.demand /. Float.of_int s.servers in
            acc +. ((s.scv -. 1.) /. 2. *. d *. d))
        0. stations
  in
  if Float.equal b 0. then n /. a
  else begin
    let disc = (a *. a) +. (4. *. n *. b) in
    if disc < 0. then n /. a
    else begin
      let x = ((-.a) +. sqrt disc) /. (2. *. b) in
      if x > 0. then x else n /. a
    end
  end

let solve ?(approximation = Bard) ?(use_scv = true) ?(think_time = 0.) ?(tol = 1e-12)
    ?(max_iter = 100_000) ~stations ~population () =
  if population < 0 then invalid_arg "Amva: negative population";
  if think_time < 0. then invalid_arg "Amva: negative think time";
  Array.iter
    (fun s ->
      match Station.validate s with
      | Ok _ -> ()
      | Error reason -> invalid_arg ("Amva: " ^ reason))
    stations;
  let k = Array.length stations in
  let n = Float.of_int population in
  if population = 0 then
    {
      Solution.throughput = 0.;
      cycle_time = Float.nan;
      residence = Array.map (fun (s : Station.t) -> s.demand) stations;
      queue_length = Array.make k 0.;
      utilization = Array.make k 0.;
    }
  else begin
    let arrival_factor =
      match approximation with Bard -> 1. | Schweitzer -> (n -. 1.) /. n
    in
    let total_demand =
      Array.fold_left (fun acc (s : Station.t) -> acc +. s.demand) 0. stations
    in
    if think_time +. total_demand <= 0. then
      invalid_arg "Amva: zero total demand with positive population";
    let step queues =
      let x = consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time ~n queues in
      let residence = residence_of ~stations ~arrival_factor ~use_scv queues x in
      Array.map (fun r -> x *. r) residence
    in
    let q0 =
      Array.map
        (fun (s : Station.t) -> n *. s.demand /. (think_time +. total_demand))
        stations
    in
    let { Fixed_point.value = queues; _ } =
      Fixed_point.solve_vector ~damping:0.5 ~tol ~max_iter ~f:step q0
    in
    let x = consistent_throughput ~stations ~arrival_factor ~use_scv ~think_time ~n queues in
    let residence = residence_of ~stations ~arrival_factor ~use_scv queues x in
    let cycle = think_time +. Array.fold_left ( +. ) 0. residence in
    {
      Solution.throughput = x;
      cycle_time = cycle;
      residence;
      queue_length = Array.map (fun r -> x *. r) residence;
      utilization =
        Array.map
          (fun (s : Station.t) -> x *. s.demand /. Float.of_int s.servers)
          stations;
    }
  end
