let validate ?(think_time = 0.) ~stations ~population () =
  if population < 0 then invalid_arg "Exact_mva: negative population";
  if think_time < 0. then invalid_arg "Exact_mva: negative think time";
  Array.iter
    (fun s ->
      (match Station.validate s with
      | Ok _ -> ()
      | Error reason -> invalid_arg ("Exact_mva: " ^ reason));
      if s.Station.kind = Station.Queueing && s.Station.servers <> 1 then
        invalid_arg "Exact_mva: multi-server stations need the approximate solver")
    stations;
  let total_demand =
    think_time +. Array.fold_left (fun acc (s : Station.t) -> acc +. s.demand) 0. stations
  in
  if population > 0 && total_demand <= 0. then
    invalid_arg "Exact_mva: zero total demand with positive population"

(* One pass of the exact recursion, calling [report n x residence queues]
   after each population step. *)
let recurse ?(think_time = 0.) ~stations ~population ~report () =
  let k = Array.length stations in
  let queues = Array.make k 0. in
  let residence = Array.make k 0. in
  for n = 1 to population do
    for i = 0 to k - 1 do
      let s = stations.(i) in
      residence.(i) <-
        (match s.Station.kind with
        | Station.Delay -> s.demand
        | Station.Queueing -> s.demand *. (1. +. queues.(i)))
    done;
    let cycle = think_time +. Array.fold_left ( +. ) 0. residence in
    let x = Float.of_int n /. cycle in
    for i = 0 to k - 1 do
      queues.(i) <- x *. residence.(i)
    done;
    report n x residence queues
  done

let solve ?(think_time = 0.) ~stations ~population () =
  validate ~think_time ~stations ~population ();
  let k = Array.length stations in
  let final_x = ref 0. in
  let final_res = Array.make k 0. in
  let final_q = Array.make k 0. in
  recurse ~think_time ~stations ~population
    ~report:(fun n x residence queues ->
      if n = population then begin
        final_x := x;
        Array.blit residence 0 final_res 0 k;
        Array.blit queues 0 final_q 0 k
      end)
    ();
  let x = !final_x in
  {
    Solution.throughput = x;
    cycle_time = (if Float.equal x 0. then Float.nan else Float.of_int population /. x);
    residence = final_res;
    queue_length = final_q;
    utilization = Array.map (fun (s : Station.t) -> x *. s.demand) stations;
  }

let throughput_curve ?(think_time = 0.) ~stations ~max_population () =
  validate ~think_time ~stations ~population:max_population ();
  let out = Array.make max_population 0. in
  recurse ~think_time ~stations ~population:max_population
    ~report:(fun n x _ _ -> out.(n - 1) <- x)
    ();
  out
