let check_common ~work ~handler_util:(handler_util [@lopc.prob]) =
  if not (Float.is_finite work) || work < 0. then
    invalid_arg "Priority: work must be finite and >= 0";
  if not (Float.is_finite handler_util) || handler_util < 0. then
    invalid_arg "Priority: handler_util must be finite and >= 0";
  if handler_util >= 1. then
    invalid_arg "Priority: handler utilization >= 1 leaves no capacity for the thread"

let bkt ~work ~handler_service ~handler_queue ~handler_util:(handler_util [@lopc.prob]) =
  check_common ~work ~handler_util;
  if handler_service < 0. || handler_queue < 0. then
    invalid_arg "Priority.bkt: negative handler service or queue";
  (work +. (handler_service *. handler_queue)) /. (1. -. handler_util)
[@@lint.allow
  "unguarded-division division-by-vanishing"
    "dominated by check_common, which rejects handler_util >= 1 before any division \
     runs; the guard is interprocedural, out of the rule's sight"]

let shadow_server ~work ~handler_util:(handler_util [@lopc.prob]) =
  check_common ~work ~handler_util;
  work /. (1. -. handler_util)
[@@lint.allow
  "unguarded-division division-by-vanishing"
    "dominated by check_common, which rejects handler_util >= 1 before any division \
     runs; the guard is interprocedural, out of the rule's sight"]
