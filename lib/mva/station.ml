type kind = Queueing | Delay

type t = {
  kind : kind;
  demand : float [@lopc.cost] [@lopc.unit "cycles"];
  scv : float [@lopc.cost];
  servers : int;
}

let validate t =
  if t.demand < 0. || not (Float.is_finite t.demand) then
    Error (Printf.sprintf "station demand must be finite and >= 0, got %g" t.demand)
  else if t.scv < 0. || not (Float.is_finite t.scv) then
    Error (Printf.sprintf "station scv must be finite and >= 0, got %g" t.scv)
  else if t.servers < 1 then
    Error (Printf.sprintf "station needs at least one server, got %d" t.servers)
  else Ok t

let check t =
  match validate t with Ok t -> t | Error reason -> invalid_arg ("Station: " ^ reason)

let queueing ?(scv = 1.) ?(servers = 1) ~demand () =
  check
    ({ kind = Queueing; demand; scv; servers }
    [@lint.allow
      "negative-cost"
        "raw constructor arguments: [check] rejects any out-of-range field before \
         the record escapes"])

let delay ~demand =
  check
    ({ kind = Delay; demand; scv = 0.; servers = 1 }
    [@lint.allow
      "negative-cost"
        "raw constructor argument: [check] rejects a negative demand before the \
         record escapes"])

let pp ppf t =
  match t.kind with
  | Queueing ->
    if t.servers = 1 then Format.fprintf ppf "Queueing(D=%g, C2=%g)" t.demand t.scv
    else Format.fprintf ppf "Queueing(D=%g, C2=%g, c=%d)" t.demand t.scv t.servers
  | Delay -> Format.fprintf ppf "Delay(D=%g)" t.demand
