(** Approximate Mean Value Analysis for single-class closed networks.

    Replaces the exact Arrival Theorem recursion with an estimate of the
    queue length seen at arrival instants, turning the O(N·K) recursion
    into a fixed point independent of N:

    - {b Bard} (paper's choice, [2]): arrival queue ≈ steady-state queue
      [Q_k(N)]. Slightly pessimistic — it counts the arriving customer's
      own contribution — with the error vanishing as N grows (§4).
    - {b Schweitzer}: arrival queue ≈ [(N−1)/N ·. Q_k(N)], the standard
      refinement, more accurate at small N.

    When a station has non-exponential service ([scv ≠ 1]) the residual
    life correction of paper Eq 5.8 replaces the full first-in-service
    time by [(1 + C²)/2] of it:
    [R_k = D_k ·. (1 + Q_k^arr + (C²−1)/2 ·. U_k)]. *)

type approximation =
  | Bard        (** Arrival queue = steady-state queue. *)
  | Schweitzer  (** Arrival queue = (N−1)/N × steady-state queue. *)

val solve_status :
  ?probe:Lopc_numerics.Solver_probe.t ->
  ?budget:Lopc_robust.Budget.t ->
  ?approximation:approximation ->
  ?use_scv:bool ->
  ?think_time:float ->
  ?tol:float ->
  ?max_iter:int ->
  stations:Station.t array ->
  population:int ->
  unit ->
  Solution.t option * Lopc_numerics.Fixed_point.status
(** [solve_status ~stations ~population ()] iterates the AMVA equations to
    a fixed point and reports a structured outcome. [approximation]
    defaults to [Bard] (the paper's), [use_scv] to [true], [think_time]
    to [0.].

    [Converged] carries the solution; when the iteration stalls the last
    iterate is inspected and a queueing station at (or past) full
    per-server utilization is reported as [Saturated] (station index and
    utilization), anything else as [Diverged]. Non-converged outcomes
    return no solution.

    [probe] receives one event per fixed-point iteration, with [hottest]
    set to the most utilized queueing station at that iterate's implied
    throughput — on a [Saturated] outcome the probe's last [hottest]
    names the same station the status reports.

    [budget] is consulted once per fixed-point iteration; a budget stop
    is reported as [Exhausted] verbatim, never re-diagnosed as
    saturation.

    @raise Invalid_argument on invalid inputs. Unlike {!Exact_mva.solve},
    every invalid station is reported at once, with its index — e.g.
    ["Amva: station 0: non-positive demand; station 2: negative scv"]. *)

val solve :
  ?probe:Lopc_numerics.Solver_probe.t ->
  ?approximation:approximation ->
  ?use_scv:bool ->
  ?think_time:float ->
  ?tol:float ->
  ?max_iter:int ->
  stations:Station.t array ->
  population:int ->
  unit ->
  Solution.t
(** Raising variant of {!solve_status}.
    @raise Invalid_argument on invalid inputs (as {!solve_status}).
    @raise Lopc_numerics.Fixed_point.Diverged on any non-converged
    outcome, with the rendered status as message. *)
