(* Scripted fault plans for the robustness tests. A plan is data — "cancel
   task 3 at iteration 40", "task 1 raises", "task 5 gets 17 units of
   fuel" — interpreted by the test harness when it builds each task's
   budget and body. Keeping the plan first-order makes qcheck shrinking
   meaningful (a failing plan prints and shrinks like any value) and the
   injected faults deterministic: the same plan always fails at the same
   program point, on any domain count. *)

type fault =
  | Cancel_at_iteration of { task : int; iteration : int }
      (* flip the task's cancel token once its iteration counter reaches
         [iteration] *)
  | Raise_at_task of int (* the task body raises [Injected_failure] *)
  | Exhaust_fuel_at_point of { task : int; fuel : int }
      (* the task's budget carries only [fuel] units *)

type plan = fault list

exception Injected_failure of int

let raises plan i =
  List.exists (function Raise_at_task j -> j = i | _ -> false) plan

let fuel_for plan i =
  List.find_map
    (function
      | Exhaust_fuel_at_point { task; fuel } when task = i -> Some fuel
      | _ -> None)
    plan

let cancel_iteration plan i =
  List.find_map
    (function
      | Cancel_at_iteration { task; iteration } when task = i -> Some iteration
      | _ -> None)
    plan

let fault_to_string = function
  | Cancel_at_iteration { task; iteration } ->
    Printf.sprintf "cancel(task=%d,iter=%d)" task iteration
  | Raise_at_task i -> Printf.sprintf "raise(task=%d)" i
  | Exhaust_fuel_at_point { task; fuel } ->
    Printf.sprintf "exhaust(task=%d,fuel=%d)" task fuel

let plan_to_string plan =
  "[" ^ String.concat "; " (List.map fault_to_string plan) ^ "]"
