(** Cooperative cancellation tokens.

    A token is an atomic flag with an optional parent. Cancellation is
    cooperative: flipping the flag does nothing by itself — the running
    computation must poll {!cancelled} (solvers do so once per iteration,
    the event engine once per event) and stop gracefully. Tokens are
    write-once: there is no way to un-cancel. *)

type t
(** A cancellation token. Safe to share across domains: the flag is an
    [Atomic.t] and cancellation only ever sets it. *)

val create : ?parent:t -> unit -> t
(** [create ()] is a fresh, un-cancelled token. With [~parent], the new
    token also reports cancelled whenever any ancestor does — this is how
    a pool supervisor cancels a whole batch while retaining the ability to
    cancel individual tasks. *)

val cancel : t -> unit
(** Request cancellation. Idempotent; may be called from any domain. *)

val cancelled : t -> bool
(** [cancelled t] is [true] once [t] or any ancestor has been cancelled. *)
