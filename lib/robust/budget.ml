(* Deterministic computation budgets. Fuel is a count of solver iterations,
   simulator events, or root-finder evaluations — program progress, not wall
   time — so exhausting it is a pure function of the inputs and the result
   of a budgeted run is byte-identical at any --jobs setting. Wall-clock
   supervision belongs in bin/ (a watchdog flipping a Cancel.t), never
   here: the obs-no-wallclock lint fences lib/ for exactly this reason.

   The fuel counter is an Atomic.t so one budget may be shared by tasks on
   different domains (a global event budget for a whole sweep); determinism
   then only holds per run shape, so the deterministic artifacts hand each
   task its own budget instead. *)

type stop_reason =
  | Cancelled
  | Fuel_exhausted of { fuel : int }

let reason_to_string = function
  | Cancelled -> "cancelled"
  | Fuel_exhausted { fuel } -> Printf.sprintf "fuel exhausted (budget %d)" fuel

type t = {
  fuel : int Atomic.t option;  (* [None]: unlimited fuel, cancellation only *)
  initial : int;
  cancel : Cancel.t option;
}

let create ?fuel ?cancel () =
  (match fuel with
  | Some f when f < 0 -> invalid_arg "Budget.create: negative fuel"
  | _ -> ());
  { fuel = Option.map Atomic.make fuel; initial = Option.value fuel ~default:0; cancel }

let unlimited () = create ()

let remaining t = Option.map Atomic.get t.fuel

let exhausted t =
  match t.fuel with None -> false | Some f -> Atomic.get f <= 0

let peek t =
  match t.cancel with
  | Some c when Cancel.cancelled c -> Some Cancelled
  | _ -> if exhausted t then Some (Fuel_exhausted { fuel = t.initial }) else None

let check t =
  match t.cancel with
  | Some c when Cancel.cancelled c -> Some Cancelled
  | _ -> (
    match t.fuel with
    | None -> None
    | Some fuel ->
      (* fetch_and_add returns the pre-decrement value; restore the floor so
         repeated checks after exhaustion stay at zero and keep reporting
         [Fuel_exhausted] instead of wrapping. *)
      if Atomic.fetch_and_add fuel (-1) <= 0 then begin
        Atomic.incr fuel;
        Some (Fuel_exhausted { fuel = t.initial })
      end
      else None)
