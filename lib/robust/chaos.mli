(** Scripted fault plans for deterministic chaos testing.

    A plan is plain data describing which tasks of a batch misbehave and
    how; the test harness interprets it when building each task's budget,
    cancel token, and body. Because the faults key on iteration counts and
    task indices — never time — a plan reproduces the same failure at the
    same program point on every run and domain count, and shrinks cleanly
    under qcheck. *)

type fault =
  | Cancel_at_iteration of { task : int; iteration : int }
      (** Flip the task's cancel token when its iteration counter reaches
          [iteration]. *)
  | Raise_at_task of int
      (** The task body raises {!Injected_failure} with its own index. *)
  | Exhaust_fuel_at_point of { task : int; fuel : int }
      (** The task's budget carries only [fuel] units of fuel. *)

type plan = fault list

exception Injected_failure of int
(** The distinguished exception injected by [Raise_at_task]. *)

val raises : plan -> int -> bool
(** Does the plan make task [i] raise? *)

val fuel_for : plan -> int -> int option
(** The (first) fuel limit the plan assigns to task [i], if any. *)

val cancel_iteration : plan -> int -> int option
(** The (first) iteration at which the plan cancels task [i], if any. *)

val fault_to_string : fault -> string

val plan_to_string : plan -> string
(** Render a plan for qcheck counterexample reports. *)
