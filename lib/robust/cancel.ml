(* Cooperative cancellation tokens. A token is a single atomic flag plus an
   optional parent, so cancelling a batch token cancels every per-task child
   without the batch having to know its children. Tokens are write-once
   (never un-cancelled), which keeps the cross-domain protocol trivial: any
   domain may flip the flag, every reader eventually observes it, and there
   is no ABA window to reason about. *)

type t = { flag : bool Atomic.t; parent : t option }

let create ?parent () = { flag = Atomic.make false; parent }

let cancel t = Atomic.set t.flag true

let rec cancelled t =
  Atomic.get t.flag
  || (match t.parent with Some p -> cancelled p | None -> false)
