(** Deterministic computation budgets: fuel plus optional cancellation.

    Fuel counts units of program progress — solver iterations, simulator
    events, root-finder evaluations — never wall time, so whether a
    budgeted computation exhausts is a pure function of its inputs and
    results stay byte-identical at any [--jobs] setting. A wall-clock
    watchdog, where wanted, lives in [bin/] and acts by flipping the
    attached {!Cancel.t}; the [obs-no-wallclock] lint keeps clocks out of
    [lib/]. *)

type stop_reason =
  | Cancelled  (** The attached {!Cancel.t} (or an ancestor) was cancelled. *)
  | Fuel_exhausted of { fuel : int }
      (** The fuel allowance ran out; [fuel] is the original allowance. *)

val reason_to_string : stop_reason -> string

type t
(** A budget. Sharable across domains (the fuel counter is atomic), but
    deterministic artifacts give each task its own budget so exhaustion
    points do not depend on scheduling. *)

val create : ?fuel:int -> ?cancel:Cancel.t -> unit -> t
(** [create ~fuel ~cancel ()] allows [fuel] calls to {!check} before
    reporting exhaustion. Omitting [fuel] means unlimited fuel
    (cancellation only); omitting [cancel] means fuel only. Raises
    [Invalid_argument] on negative fuel; [~fuel:0] exhausts on the first
    check. *)

val unlimited : unit -> t
(** A budget that never stops anything: no fuel bound, no token. *)

val check : t -> stop_reason option
(** Consume one unit of fuel. [None] means keep going; [Some reason] means
    stop now and surface [reason] (as an [Exhausted] solver status or an
    interrupted simulation). Cancellation is checked first and does not
    consume fuel. Once exhausted, every later call keeps returning
    [Some (Fuel_exhausted _)]. *)

val peek : t -> stop_reason option
(** Like {!check} but without consuming fuel — for reporting. *)

val remaining : t -> int option
(** Fuel left, or [None] for unlimited. Never negative. *)

val exhausted : t -> bool
(** [true] once the fuel counter has reached zero ([false] for unlimited
    budgets, whatever the cancellation state). *)
