(** Graceful-degradation cascade.

    A cascade is an ordered list of attempts at the same quantity, from
    most faithful to cheapest (exact CTMC → AMVA → asymptotic bound).
    When an attempt fails — diverged, saturated, budget exhausted, state
    space too large — the cascade records a short reason token and falls
    through to the next attempt instead of failing the whole row. The
    result carries a provenance string destined for a [Table] column. *)

type 'a attempt = { name : string; run : unit -> ('a, string) result }
(** One stage. [name] should be a short token ([exact], [amva],
    [bound]); the [Error] payload a short reason token ([exhausted],
    [saturated], [diverged], [state-space]). Both end up verbatim in
    provenance cells, so keep them free of spaces. *)

type event =
  | Degraded of { from_ : string; to_ : string; reason : string }
      (** A stage failed and the cascade is falling back. *)
  | Exhausted_all of { trail : (string * string) list }
      (** Every stage failed; [trail] pairs each stage with its reason. *)

type 'a outcome = {
  value : 'a option;  (** The first success, or [None] if all failed. *)
  provenance : string;
      (** The winning stage's [name] when the first stage succeeded,
          ["approx:<stage>:<reason>"] for a fallback success (with
          [<reason>] the immediately preceding failure), or ["failed"]
          when nothing succeeded. *)
  trail : (string * string) list;
      (** Failed stages before the success, in attempt order. *)
}

val attempt : string -> (unit -> ('a, string) result) -> 'a attempt

val failed_provenance : string
(** The provenance string used when every stage fails (["failed"]). *)

val run : ?on_event:(event -> unit) -> 'a attempt list -> 'a outcome
(** Try each attempt in order, stopping at the first [Ok]. [on_event]
    observes each degradation step (for obs counters); it must not
    influence the computation. Raises [Invalid_argument] on an empty
    attempt list; exceptions raised by an attempt are not caught — budget
    exhaustion must arrive as [Error _], not as an exception. *)
