(* Graceful-degradation cascade: an ordered list of attempts at the same
   answer, from most faithful to cheapest. Each attempt either produces a
   value or a short machine-readable reason token ("exhausted",
   "saturated", "state-space", ...); on failure the cascade falls through
   to the next attempt and remembers why. The winning stage's name becomes
   the row's provenance — verbatim for the first stage (conventionally
   "exact"), or "approx:<stage>:<reason>" for any fallback, where <reason>
   is why the previous stage gave up. Control flow is pure and sequential,
   so a cascade embedded in a deterministic artifact stays byte-identical
   at any --jobs setting. *)

type 'a attempt = { name : string; run : unit -> ('a, string) result }

type event =
  | Degraded of { from_ : string; to_ : string; reason : string }
  | Exhausted_all of { trail : (string * string) list }

type 'a outcome = {
  value : 'a option;
  provenance : string;
  trail : (string * string) list;
}

let attempt name run = { name; run }

let failed_provenance = "failed"

let run ?on_event attempts =
  if attempts = [] then invalid_arg "Cascade.run: no attempts";
  let emit ev = match on_event with None -> () | Some f -> f ev in
  let rec go trail = function
    | [] ->
      let trail = List.rev trail in
      emit (Exhausted_all { trail });
      { value = None; provenance = failed_provenance; trail }
    | a :: rest -> (
      match a.run () with
      | Ok v ->
        let provenance =
          match trail with
          | [] -> a.name
          | (_, reason) :: _ -> Printf.sprintf "approx:%s:%s" a.name reason
        in
        { value = Some v; provenance; trail = List.rev trail }
      | Error reason ->
        (match rest with
        | next :: _ ->
          emit (Degraded { from_ = a.name; to_ = next.name; reason })
        | [] -> ());
        go ((a.name, reason) :: trail) rest)
  in
  go [] attempts
