module Rng = Lopc_prng.Rng

type t =
  | Constant of float
  | Exponential of float
  | Uniform of float * float
  | Erlang of int * float
  | Hyperexponential of float * float * float
  | Shifted_exponential of float * float
  | Empirical of float array

let validate t =
  let ok = Ok t in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  match t with
  | Constant c -> if c >= 0. then ok else err "Constant: negative value %g" c
  | Exponential m -> if m >= 0. then ok else err "Exponential: negative mean %g" m
  | Uniform (lo, hi) ->
    if 0. <= lo && lo <= hi then ok else err "Uniform: invalid bounds [%g, %g]" lo hi
  | Erlang (k, m) ->
    if k >= 1 && m >= 0. then ok else err "Erlang: need k >= 1 and mean >= 0, got k=%d mean=%g" k m
  | Hyperexponential (p, m1, m2) ->
    if 0. <= p && p <= 1. && m1 >= 0. && m2 >= 0. then ok
    else err "Hyperexponential: invalid (p=%g, mean1=%g, mean2=%g)" p m1 m2
  | Shifted_exponential (offset, m) ->
    if 0. <= offset && offset <= m then ok
    else err "Shifted_exponential: need 0 <= offset <= mean, got offset=%g mean=%g" offset m
  | Empirical samples ->
    if Array.length samples = 0 then err "Empirical: empty sample array"
    else if Array.exists (fun x -> x < 0. || not (Float.is_finite x)) samples then
      err "Empirical: samples must be finite and non-negative"
    else ok

let check t =
  match validate t with Ok t -> t | Error reason -> invalid_arg ("Distribution: " ^ reason)

let empirical_mean samples =
  Array.fold_left ( +. ) 0. samples /. Float.of_int (Array.length samples)

(* Exact-zero test for degenerate-case dispatch: sampling and moment guards
   must only special-case true zeros; tiny positive means are legitimate
   scales and take the general path. *)
let exactly_zero x = Float.classify_float x = FP_zero

(* Below this magnitude mu*.mu underflows, so scv's division is meaningless. *)
let tiny_mean = Float.sqrt Float.min_float

let mean = function
  | Constant c -> c
  | Exponential m -> m
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Erlang (_, m) -> m
  | Hyperexponential (p, m1, m2) -> (p *. m1) +. ((1. -. p) *. m2)
  | Shifted_exponential (_, m) -> m
  | Empirical samples -> empirical_mean samples

let variance = function
  | Constant _ -> 0.
  | Exponential m -> m *. m
  | Uniform (lo, hi) ->
    let w = hi -. lo in
    w *. w /. 12.
  | Erlang (k, m) -> m *. m /. Float.of_int k
  | Hyperexponential (p, m1, m2) ->
    (* E[X²] of a mixture of exponentials: sum p_i · 2·m_i². *)
    let second = (p *. 2. *. m1 *. m1) +. ((1. -. p) *. 2. *. m2 *. m2) in
    let mu = (p *. m1) +. ((1. -. p) *. m2) in
    second -. (mu *. mu)
  | Shifted_exponential (offset, m) ->
    let tail = m -. offset in
    tail *. tail
  | Empirical samples ->
    let mu = empirical_mean samples in
    Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. samples
    /. Float.of_int (Array.length samples)

let scv t =
  let mu = mean t in
  if Float.abs mu < tiny_mean then 0. else variance t /. (mu *. mu)

let residual_mean t = (1. +. scv t) /. 2. *. mean t

let sample t rng =
  match check t with
  | Constant c -> c
  | Exponential m -> if exactly_zero m then 0. else Rng.exponential rng m
  | Uniform (lo, hi) -> if Float.equal lo hi then lo else Rng.float_range rng lo hi
  | Erlang (k, m) ->
    if exactly_zero m then 0.
    else begin
      let phase_mean = m /. Float.of_int k in
      let acc = ref 0. in
      for _ = 1 to k do
        acc := !acc +. Rng.exponential rng phase_mean
      done;
      !acc
    end
  | Hyperexponential (p, m1, m2) ->
    let m = if Rng.bernoulli rng p then m1 else m2 in
    if exactly_zero m then 0. else Rng.exponential rng m
  | Shifted_exponential (offset, m) ->
    let tail = m -. offset in
    offset +. (if exactly_zero tail then 0. else Rng.exponential rng tail)
  | Empirical samples -> samples.(Rng.int_below rng (Array.length samples))

let of_mean_scv ~mean:m ~scv:c2 =
  if m < 0. then invalid_arg "Distribution.of_mean_scv: negative mean";
  if c2 < 0. then invalid_arg "Distribution.of_mean_scv: negative scv";
  if exactly_zero m || exactly_zero c2 then Constant m
  else if c2 < 1. then
    (* Shifted exponential: C² = (1 − offset/mean)², so
       offset = mean·(1 − sqrt C²). *)
    Shifted_exponential (m *. (1. -. sqrt c2), m)
  else if exactly_zero (c2 -. 1.) then Exponential m
  else begin
    (* Balanced-means two-phase hyperexponential (Allen 1990):
       p = (1 + sqrt((C²−1)/(C²+1))) / 2, branch means chosen so each
       branch contributes half the total mean. *)
    let p = (1. +. sqrt ((c2 -. 1.) /. (c2 +. 1.))) /. 2. in
    let m1 = m /. (2. *. p)
    and m2 =
      (m
      /. (2. *. (1. -. p))
      [@lint.allow
        "division-by-vanishing"
          "this branch has finite c2 > 1, so sqrt((c2-1)/(c2+1)) < 1 strictly and \
           p < 1, keeping 1 - p positive"])
    in
    Hyperexponential (p, m1, m2)
  end

let pp ppf = function
  | Constant c -> Format.fprintf ppf "Const(%g)" c
  | Exponential m -> Format.fprintf ppf "Exp(mean=%g)" m
  | Uniform (lo, hi) -> Format.fprintf ppf "Uniform[%g, %g]" lo hi
  | Erlang (k, m) -> Format.fprintf ppf "Erlang(k=%d, mean=%g)" k m
  | Hyperexponential (p, m1, m2) -> Format.fprintf ppf "Hyperexp(p=%g, %g, %g)" p m1 m2
  | Shifted_exponential (offset, m) -> Format.fprintf ppf "ShiftedExp(offset=%g, mean=%g)" offset m
  | Empirical samples -> Format.fprintf ppf "Empirical(n=%d, mean=%g)" (Array.length samples) (empirical_mean samples)

let to_string t = Format.asprintf "%a" pp t
