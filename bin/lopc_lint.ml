(* lopc-lint: repo-specific static analysis for model-safety and
   reproducibility invariants, in three stages: syntactic rules over the
   parse tree, (with --typed) interprocedural rules over the .cmt typed
   trees dune writes during the build, and (within --typed, or alone
   with --absint) the interval abstract-interpretation rules.

   Also a subcommand:

     lopc_lint baseline write [--baseline FILE] [PATH ...]
     lopc_lint baseline diff  [--baseline FILE] [PATH ...]

   `write` stores the current findings (both stages) as the accepted
   baseline; `diff` renders the drift as markdown and exits 1 on any new
   error-severity finding — the CI gate.

   Exit codes: 0 clean, 1 error-severity findings (any findings with
   --warn-as-error; baseline regressions for `baseline diff`), 2 usage. *)

module Driver = Lopc_analysis.Driver
module Typed_driver = Lopc_analysis.Typed_driver
module Explain = Lopc_analysis.Explain
module Finding = Lopc_analysis.Finding
module Baseline = Lopc_analysis.Baseline
module Parallel = Lopc_repro.Parallel

let usage =
  "lopc_lint [OPTIONS] [PATH ...]\n\
   lopc_lint baseline (write|diff) [--baseline FILE] [PATH ...]\n\
   Lint .ml/.mli sources under the given files or directories\n\
   (default: lib bin bench examples test).\n\n\
   --typed additionally runs the cross-module analyses over the .cmt files\n\
   of the same roots (falling back to _build/default/<root>), so run it\n\
   after `dune build`."

let list_rules ppf =
  List.iter
    (fun (e : Explain.entry) ->
      Format.fprintf ppf "%-24s %-7s %-9s %s@." e.id
        (Finding.severity_to_string e.severity)
        e.stage e.summary)
    Explain.entries

let no_cmt searched =
  Format.eprintf
    "lopc_lint: no .cmt inputs under %s — run `dune build` first so the typed \
     stage has trees to analyse@."
    (String.concat " " searched);
  exit 2

let resolve_roots paths =
  match paths with
  | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples"; "test" ]
  | roots ->
    List.iter
      (fun r ->
        if not (Sys.file_exists r) then begin
          Format.eprintf "lopc_lint: no such file or directory: %s@." r;
          exit 2
        end)
      roots;
    roots

(* The per-file syntactic stage, fanned over a worker pool when --jobs
   asks for more than one. Findings are re-sorted globally, so the output
   is byte-identical whatever the job count. *)
let syntactic_findings ~jobs roots =
  if jobs <= 1 then Driver.lint_paths roots
  else
    let map_tasks tasks =
      Parallel.with_pool ~jobs (fun pool -> Parallel.run pool tasks)
    in
    Driver.lint_paths ~map_tasks roots

let typed_findings ~stage ~entries roots =
  match Typed_driver.analyze_paths ~entries ~stage roots with
  | exception Typed_driver.No_cmt_inputs searched -> no_cmt searched
  | findings -> findings

(* --------------------------------------------------------------- *)
(* baseline subcommand                                              *)
(* --------------------------------------------------------------- *)

let baseline_main args =
  let mode = ref None in
  let file = ref "lint-baseline.tsv" in
  let jobs = ref 1 in
  let paths = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.Set_string file,
        "FILE Baseline file (default lint-baseline.tsv)" );
      ("--jobs", Arg.Set_int jobs, "N Worker domains for the syntactic stage");
    ]
  in
  let anon p =
    match (!mode, p) with
    | None, ("write" | "diff") -> mode := Some p
    | None, other ->
      Format.eprintf "lopc_lint: unknown baseline action %S (write or diff)@." other;
      exit 2
    | Some _, p -> paths := p :: !paths
  in
  (try Arg.parse_argv ~current:(ref 0) (Array.of_list ("lopc_lint baseline" :: args)) spec anon usage
   with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  let mode =
    match !mode with
    | Some m -> m
    | None ->
      Format.eprintf "lopc_lint: baseline needs an action: write or diff@.";
      exit 2
  in
  let roots = resolve_roots (List.rev !paths) in
  (* The baseline always covers both stages: it is the CI gate over the
     same findings `--typed --warn-as-error` sees. *)
  let findings =
    List.sort_uniq Finding.compare
      (syntactic_findings ~jobs:!jobs roots
      @ typed_findings ~stage:`All ~entries:[] roots)
  in
  match mode with
  | "write" ->
    Baseline.write ~path:!file findings;
    Format.printf "wrote %s (%d finding%s)@." !file (List.length findings)
      (if List.length findings = 1 then "" else "s");
    exit 0
  | _ -> (
    match Baseline.diff ~path:!file Format.std_formatter findings with
    | exception Sys_error msg ->
      Format.eprintf "lopc_lint: cannot read baseline: %s@." msg;
      exit 2
    | regressed -> exit (if regressed then 1 else 0))

(* --------------------------------------------------------------- *)
(* main mode                                                        *)
(* --------------------------------------------------------------- *)

let () =
  (match Array.to_list Sys.argv with
  | _ :: "baseline" :: rest -> baseline_main rest
  | _ -> ());
  let format = ref Driver.Human in
  let want_list = ref false in
  let want_catalogue_md = ref false in
  let typed = ref false in
  let absint = ref false in
  let warn_as_error = ref false in
  let jobs = ref 1 in
  let entries = ref [] in
  let explain = ref None in
  let effects_key = ref None in
  let intervals_key = ref None in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := Driver.Human
    | "json" -> format := Driver.Json
    | "sarif" -> format := Driver.Sarif
    | other ->
      Format.eprintf
        "lopc_lint: unknown format %S (expected human, json or sarif)@." other;
      exit 2
  in
  let spec =
    [
      ( "--format",
        Arg.String set_format,
        "FMT Output format: human (default), json or sarif" );
      ("--list-rules", Arg.Set want_list, " Print the rule catalogue and exit");
      ("--typed", Arg.Set typed, " Also run the typed cross-module analyses");
      ( "--absint",
        Arg.Set absint,
        " Also run just the interval abstract-interpretation rules (a subset \
         of --typed, for fast iteration)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N Fan the per-file syntactic stage over N worker domains (default 1); \
         output is byte-identical to --jobs 1" );
      ( "--entry",
        Arg.String (fun e -> entries := e :: !entries),
        "KEY Extra determinism-taint entry point (key or key prefix, e.g. \
         Amva.solve_status or Amva); repeatable" );
      ( "--explain",
        Arg.String (fun id -> explain := Some id),
        "ID Print the rationale and a minimal violating example for a rule" );
      ( "--effects",
        Arg.String (fun k -> effects_key := Some k),
        "KEY Print the transitive effect footprint of a definition (normalised \
         key, e.g. Amva.solve) and exit" );
      ( "--show-intervals",
        Arg.String (fun k -> intervals_key := Some k),
        "KEY Print the interval summary of a definition (params and return; \
         normalised key, e.g. Amva.solve) and exit" );
      ( "--catalogue-md",
        Arg.Set want_catalogue_md,
        " Print the whole rule catalogue as markdown (the generated RULES.md) \
         and exit" );
      ( "--warn-as-error",
        Arg.Set warn_as_error,
        " Exit nonzero on warnings too, not just errors" );
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  (match !explain with
  | Some id -> (
    match Explain.find id with
    | Some entry ->
      Explain.pp_entry Format.std_formatter entry;
      exit 0
    | None ->
      Format.eprintf "lopc_lint: unknown rule %S; --list-rules shows the catalogue@." id;
      exit 2)
  | None -> ());
  if !want_list then begin
    list_rules Format.std_formatter;
    exit 0
  end;
  if !want_catalogue_md then begin
    Explain.pp_markdown Format.std_formatter ();
    exit 0
  end;
  let roots = resolve_roots (List.rev !paths) in
  (match !effects_key with
  | Some key -> (
    match Typed_driver.effects_of_paths roots with
    | exception Typed_driver.No_cmt_inputs searched -> no_cmt searched
    | effects ->
      if Lopc_analysis.Effects.print_footprint Format.std_formatter effects key then
        exit 0
      else begin
        Format.eprintf
          "lopc_lint: unknown definition %S (use the normalised key, e.g. \
           Amva.solve)@."
          key;
        exit 2
      end)
  | None -> ());
  (match !intervals_key with
  | Some key -> (
    match Typed_driver.absint_of_paths roots with
    | exception Typed_driver.No_cmt_inputs searched -> no_cmt searched
    | absint ->
      if Lopc_analysis.Absint.print_summary Format.std_formatter absint key then
        exit 0
      else begin
        Format.eprintf
          "lopc_lint: unknown definition %S (use the normalised key, e.g. \
           Amva.solve)@."
          key;
        exit 2
      end)
  | None -> ());
  let syntactic = syntactic_findings ~jobs:!jobs roots in
  let typed_findings =
    if !typed || !absint then
      let stage = if !typed then `All else `Numeric in
      typed_findings ~stage ~entries:(List.rev !entries) roots
    else []
  in
  let findings = List.sort_uniq Finding.compare (syntactic @ typed_findings) in
  Driver.report Format.std_formatter ~format:!format findings;
  let failing =
    if !warn_as_error then findings
    else List.filter (fun (f : Finding.t) -> f.severity = Finding.Error) findings
  in
  exit (if failing = [] then 0 else 1)
