(* lopc-lint: repo-specific static analysis for model-safety and
   reproducibility invariants, in two stages: syntactic rules over the
   parse tree, and (with --typed) interprocedural rules over the .cmt
   typed trees dune writes during the build.

   Exit codes: 0 clean, 1 error-severity findings (any findings with
   --warn-as-error), 2 usage. *)

module Driver = Lopc_analysis.Driver
module Typed_driver = Lopc_analysis.Typed_driver
module Explain = Lopc_analysis.Explain
module Finding = Lopc_analysis.Finding

let usage =
  "lopc_lint [OPTIONS] [PATH ...]\n\
   Lint .ml/.mli sources under the given files or directories\n\
   (default: lib bin bench examples test).\n\n\
   --typed additionally runs the cross-module analyses over the .cmt files\n\
   of the same roots (falling back to _build/default/<root>), so run it\n\
   after `dune build`."

let list_rules ppf =
  List.iter
    (fun (e : Explain.entry) ->
      Format.fprintf ppf "%-24s %-7s %-9s %s@." e.id
        (Finding.severity_to_string e.severity)
        e.stage e.summary)
    Explain.entries

let () =
  let format = ref Driver.Human in
  let want_list = ref false in
  let want_catalogue_md = ref false in
  let typed = ref false in
  let warn_as_error = ref false in
  let entries = ref [] in
  let explain = ref None in
  let effects_key = ref None in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := Driver.Human
    | "json" -> format := Driver.Json
    | other ->
      Format.eprintf "lopc_lint: unknown format %S (expected human or json)@." other;
      exit 2
  in
  let spec =
    [
      ("--format", Arg.String set_format, "FMT Output format: human (default) or json");
      ("--list-rules", Arg.Set want_list, " Print the rule catalogue and exit");
      ("--typed", Arg.Set typed, " Also run the typed cross-module analyses");
      ( "--entry",
        Arg.String (fun e -> entries := e :: !entries),
        "KEY Extra determinism-taint entry point (key or key prefix, e.g. \
         Amva.solve_status or Amva); repeatable" );
      ( "--explain",
        Arg.String (fun id -> explain := Some id),
        "ID Print the rationale and a minimal violating example for a rule" );
      ( "--effects",
        Arg.String (fun k -> effects_key := Some k),
        "KEY Print the transitive effect footprint of a definition (normalised \
         key, e.g. Amva.solve) and exit" );
      ( "--catalogue-md",
        Arg.Set want_catalogue_md,
        " Print the whole rule catalogue as markdown (the generated RULES.md) \
         and exit" );
      ( "--warn-as-error",
        Arg.Set warn_as_error,
        " Exit nonzero on warnings too, not just errors" );
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  (match !explain with
  | Some id -> (
    match Explain.find id with
    | Some entry ->
      Explain.pp_entry Format.std_formatter entry;
      exit 0
    | None ->
      Format.eprintf "lopc_lint: unknown rule %S; --list-rules shows the catalogue@." id;
      exit 2)
  | None -> ());
  if !want_list then begin
    list_rules Format.std_formatter;
    exit 0
  end;
  if !want_catalogue_md then begin
    Explain.pp_markdown Format.std_formatter ();
    exit 0
  end;
  let roots =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples"; "test" ]
    | roots ->
      List.iter
        (fun r ->
          if not (Sys.file_exists r) then begin
            Format.eprintf "lopc_lint: no such file or directory: %s@." r;
            exit 2
          end)
        roots;
      roots
  in
  let no_cmt searched =
    Format.eprintf
      "lopc_lint: no .cmt inputs under %s — run `dune build` first so the typed \
       stage has trees to analyse@."
      (String.concat " " searched);
    exit 2
  in
  (match !effects_key with
  | Some key -> (
    match Typed_driver.effects_of_paths roots with
    | exception Typed_driver.No_cmt_inputs searched -> no_cmt searched
    | effects ->
      if Lopc_analysis.Effects.print_footprint Format.std_formatter effects key then
        exit 0
      else begin
        Format.eprintf
          "lopc_lint: unknown definition %S (use the normalised key, e.g. \
           Amva.solve)@."
          key;
        exit 2
      end)
  | None -> ());
  let syntactic = Driver.lint_paths roots in
  let typed_findings =
    if !typed then (
      match Typed_driver.analyze_paths ~entries:(List.rev !entries) roots with
      | exception Typed_driver.No_cmt_inputs searched -> no_cmt searched
      | findings -> findings)
    else []
  in
  let findings = List.sort_uniq Finding.compare (syntactic @ typed_findings) in
  Driver.report Format.std_formatter ~format:!format findings;
  let failing =
    if !warn_as_error then findings
    else List.filter (fun (f : Finding.t) -> f.severity = Finding.Error) findings
  in
  exit (if failing = [] then 0 else 1)
