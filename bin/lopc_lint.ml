(* lopc-lint: repo-specific static analysis for model-safety and
   reproducibility invariants. Exit codes: 0 clean, 1 findings, 2 usage. *)

module Driver = Lopc_analysis.Driver

let usage =
  "lopc_lint [--format=human|json] [--list-rules] [PATH ...]\n\
   Lint .ml/.mli sources under the given files or directories\n\
   (default: lib bin bench examples)."

let () =
  let format = ref Driver.Human in
  let list_rules = ref false in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := Driver.Human
    | "json" -> format := Driver.Json
    | other ->
      Format.eprintf "lopc_lint: unknown format %S (expected human or json)@." other;
      exit 2
  in
  let spec =
    [
      ("--format", Arg.String set_format, "FMT Output format: human (default) or json");
      ("--list-rules", Arg.Set list_rules, " Print the rule catalogue and exit");
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage with
  | Arg.Bad msg ->
    prerr_string msg;
    exit 2
  | Arg.Help msg ->
    print_string msg;
    exit 0);
  if !list_rules then begin
    Driver.list_rules Format.std_formatter ();
    exit 0
  end;
  let roots =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples" ]
    | roots ->
      List.iter
        (fun r ->
          if not (Sys.file_exists r) then begin
            Format.eprintf "lopc_lint: no such file or directory: %s@." r;
            exit 2
          end)
        roots;
      roots
  in
  let findings = Driver.lint_paths roots in
  Driver.report Format.std_formatter ~format:!format findings;
  exit (if findings = [] then 0 else 1)
