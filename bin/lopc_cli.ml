(* Command-line interface to the LoPC model and simulator.

   Subcommands:
     predict    solve the analytical model for a workload
     simulate   run the event-driven simulator on the same workload
     validate   model vs simulator across a workload grid
     sweep      regenerate a paper artifact (same names as bench/main.exe)

   Examples:
     lopc_cli predict -p 32 --st 40 --so 200 --c2 0 -w 1000
     lopc_cli predict --pattern client-server=5 -p 32 --so 131 -w 1000
     lopc_cli predict --pattern client-server --optimal-servers -p 32 --so 131 -w 1000
     lopc_cli simulate --pattern hotspot=0:0.3 -p 16 -w 1000 --cycles 50000
     lopc_cli validate -p 16
     lopc_cli sweep fig6.2 --csv out/

   Exit codes distinguish why a run produced no answer (scripts and CI
   route on them): 0 success, 2 usage or parameter error, 3 solver
   diverged, 4 model saturated (no steady state), 5 a budget (--fuel or
   --max-seconds) stopped the run. *)

open Cmdliner

module A = Lopc.All_to_all
module CS = Lopc.Client_server
module G = Lopc.General
module FM = Lopc.Fault_model
module Fixed_point = Lopc_numerics.Fixed_point
module D = Lopc_dist.Distribution
module Pattern = Lopc_workloads.Pattern
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Fault = Lopc_activemsg.Fault
module Welford = Lopc_stats.Welford
module Recorder = Lopc_obs.Recorder
module Sim_probe = Lopc_obs.Sim_probe
module Budget = Lopc_robust.Budget
module Cancel = Lopc_robust.Cancel

(* --- exit-code taxonomy ---------------------------------------------------- *)

let exit_usage = 2
let exit_diverged = 3
let exit_saturated = 4
let exit_exhausted = 5

let status_exit_code = function
  | Fixed_point.Converged _ -> 0
  | Fixed_point.Diverged _ -> exit_diverged
  | Fixed_point.Saturated _ -> exit_saturated
  | Fixed_point.Exhausted _ -> exit_exhausted

(* Solver failure: the structured status plus an actionable hint, to
   stderr, mapped onto the exit taxonomy. *)
let solver_failure ~what status =
  let hint =
    match status with
    | Fixed_point.Saturated { station; utilization } ->
      Printf.sprintf
        "station %d is saturated (utilization %.3f): the offered load exceeds its \
         capacity, so no steady state exists; increase W or reduce the per-request \
         service demand"
        station utilization
    | Fixed_point.Diverged { iters; residual } ->
      Printf.sprintf
        "no fixed point after %d iterations (last residual %.3g); the parameters \
         may sit outside the model's regime"
        iters residual
    | Fixed_point.Exhausted { iters; reason } ->
      Printf.sprintf "the budget stopped the solver after %d iterations (%s); \
                      raise --fuel or --max-seconds"
        iters (Budget.reason_to_string reason)
    | Fixed_point.Converged { iters } ->
      Printf.sprintf "converged after %d iterations" iters
  in
  Format.eprintf "%s: %s@.  %s@." what (Fixed_point.status_to_string status) hint;
  `Ok (status_exit_code status)

(* --- budgets and the wall-clock watchdog ----------------------------------- *)

let fuel_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Deterministic computation budget: solver iterations (predict) or \
           simulated events (simulate). Exhaustion stops the run gracefully \
           with exit code 5. Unlike --max-seconds, the outcome for a given \
           fuel is reproducible.")

let max_seconds_arg =
  Arg.(
    value & opt (some float) None
    & info [ "max-seconds" ] ~docv:"T"
        ~doc:
          "Wall-clock watchdog: cancel the run after $(docv) seconds (exit \
           code 5). Where the run stops depends on machine speed — for \
           reproducible cutoffs use --fuel.")

(* The wall-clock side lives here in bin/, not in the libraries: a spawned
   domain polls the deadline and flips the cancellation token the solver's
   budget polls, so library results never depend on timing. *)
let with_watchdog ?max_seconds cancel f =
  match max_seconds with
  | None -> f ()
  | Some limit ->
    let stop = Atomic.make false in
    let watchdog =
      Domain.spawn (fun () ->
          let deadline = Unix.gettimeofday () +. limit in
          let rec poll () =
            if Atomic.get stop then ()
            else if Unix.gettimeofday () >= deadline then Cancel.cancel cancel
            else begin
              Unix.sleepf 0.05;
              poll ()
            end
          in
          poll ())
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join watchdog)
      f

(* A budget exists as soon as either limit is requested; with only
   --max-seconds it is pure cancellation (unlimited fuel). *)
let budget_of ~fuel ~max_seconds ~cancel =
  match (fuel, max_seconds) with
  | None, None -> None
  | Some fuel, _ -> Some (Budget.create ~fuel ~cancel ())
  | None, Some _ -> Some (Budget.create ~cancel ())

(* --- shared argument definitions ------------------------------------------ *)

let p_arg =
  Arg.(value & opt int 32 & info [ "p"; "processors" ] ~docv:"P" ~doc:"Number of processors.")

let st_arg =
  Arg.(value & opt float 40. & info [ "st"; "latency" ] ~docv:"ST" ~doc:"Wire latency (LogP L).")

let so_arg =
  Arg.(
    value & opt float 200.
    & info [ "so"; "handler" ] ~docv:"SO" ~doc:"Handler occupancy (LogP o).")

let c2_arg =
  Arg.(
    value & opt float 1.
    & info [ "c2" ] ~docv:"C2" ~doc:"Squared coefficient of variation of handler time.")

let w_arg =
  Arg.(
    value & opt float 1000.
    & info [ "w"; "work" ] ~docv:"W" ~doc:"Average local work between requests.")

let pp_arg =
  Arg.(
    value & flag
    & info [ "protocol-processor" ]
        ~doc:"Model a shared-memory machine with per-node protocol processors.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let cycles_arg =
  Arg.(value & opt int 50_000 & info [ "cycles" ] ~doc:"Measured simulation cycles.")

let pattern_arg =
  Arg.(
    value
    & opt string "all-to-all"
    & info [ "pattern" ] ~docv:"PATTERN"
        ~doc:
          "Workload: $(b,all-to-all), $(b,staggered), $(b,client-server=K), \
           $(b,hotspot=NODE:FRACTION) or $(b,multi-hop=H).")

let parse_pattern ~nodes s =
  let fail msg = `Error (false, msg) in
  let split_eq s =
    match String.index_opt s '=' with
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> (s, None)
  in
  match split_eq s with
  | "all-to-all", None -> `Ok Pattern.All_to_all
  | "staggered", None -> `Ok Pattern.All_to_all_staggered
  | "client-server", Some k -> (
    match int_of_string_opt k with
    | Some servers -> `Ok (Pattern.Client_server { servers })
    | None -> fail "client-server=K needs an integer K")
  | "client-server", None ->
    (* A placeholder; callers that support --optimal-servers replace it. *)
    `Ok (Pattern.Client_server { servers = max 1 (nodes / 4) })
  | "hotspot", Some spec -> (
    match String.split_on_char ':' spec with
    | [ node; fraction ] -> (
      match (int_of_string_opt node, float_of_string_opt fraction) with
      | Some hot, Some fraction -> `Ok (Pattern.Hotspot { hot; fraction })
      | _ -> fail "hotspot=NODE:FRACTION needs an int and a float")
    | _ -> fail "hotspot=NODE:FRACTION needs both fields")
  | "multi-hop", Some h -> (
    match int_of_string_opt h with
    | Some hops -> `Ok (Pattern.Multi_hop { hops })
    | None -> fail "multi-hop=H needs an integer H")
  | other, _ -> fail (Printf.sprintf "unknown pattern %S" other)

let params_of ~p ~st ~so ~c2 =
  try `Ok (Lopc.Params.create ~c2 ~p ~st ~so ())
  with Invalid_argument msg -> `Error (false, msg)

(* --- fault flags ----------------------------------------------------------- *)

let drop_arg =
  Arg.(
    value & opt float 0.
    & info [ "drop" ] ~docv:"L" ~doc:"Per-traversal message loss probability.")

let duplicate_arg =
  Arg.(
    value & opt float 0.
    & info [ "duplicate" ] ~docv:"D" ~doc:"Per-traversal message duplication probability.")

let delay_epsilon_arg =
  Arg.(
    value & opt float 0.
    & info [ "delay-epsilon" ] ~docv:"EPS"
        ~doc:"Probability a traversal samples the delay-spike wire distribution.")

let spike_mean_arg =
  Arg.(
    value & opt (some float) None
    & info [ "spike-mean" ] ~docv:"MEAN"
        ~doc:"Mean of the exponential delay-spike distribution (default 10 St).")

let timeout_arg =
  Arg.(
    value & opt (some float) None
    & info [ "timeout" ] ~docv:"T"
        ~doc:
          "Base retransmission timeout. Setting it enables the fault layer even \
           with zero fault probabilities; default when other fault flags are set \
           is 8(W + 2 St + 4 So).")

let backoff_arg =
  Arg.(
    value & opt string "fixed"
    & info [ "backoff" ] ~docv:"SCHEDULE"
        ~doc:"Retry schedule: $(b,fixed), $(b,exp:FACTOR:CAP) or $(b,jitter:SPREAD).")

let retries_arg =
  Arg.(
    value & opt int 8
    & info [ "retries" ] ~docv:"B" ~doc:"Retry budget per request (max tries).")

let parse_backoff s =
  match String.split_on_char ':' s with
  | [ "fixed" ] -> Ok Fault.Fixed
  | [ "exp"; f; c ] -> (
    match (float_of_string_opt f, float_of_string_opt c) with
    | Some factor, Some cap -> Ok (Fault.Exponential { factor; cap })
    | _ -> Error "--backoff exp:FACTOR:CAP needs two floats")
  | [ "jitter"; spread ] -> (
    match float_of_string_opt spread with
    | Some spread -> Ok (Fault.Jittered { spread })
    | None -> Error "--backoff jitter:SPREAD needs a float")
  | _ -> Error (Printf.sprintf "unknown --backoff %S (want fixed, exp:F:C or jitter:S)" s)

(* [Ok None] when every fault flag is at its no-fault default: the fault layer
   engages when any probability is positive or --timeout is given explicitly. *)
let fault_of ~st ~so ~w ~drop ~duplicate ~delay_epsilon ~spike_mean ~timeout ~backoff
    ~retries =
  if drop <= 0. && duplicate <= 0. && delay_epsilon <= 0. && timeout = None then Ok None
  else
    match parse_backoff backoff with
    | Error _ as e -> e
    | Ok backoff ->
      let timeout =
        match timeout with
        | Some t -> t
        | None -> 8. *. (w +. (2. *. st) +. (4. *. so))
      in
      let spike_mean = Option.value spike_mean ~default:(10. *. st) in
      Ok
        (Some
           (Fault.create ~drop ~duplicate ~delay_epsilon
              ~delay_spike:(D.Exponential spike_mean) ~backoff ~max_tries:retries
              ~timeout ()))

(* --- predict --------------------------------------------------------------- *)

let print_all_to_all ?budget params ~w ~execution =
  match A.solve_status ?budget ~execution params ~w with
  | None, status -> solver_failure ~what:"all-to-all solver" status
  | Some s, status ->
    let mode =
      match execution with
      | A.Interrupt -> ""
      | A.Polling -> ", polling"
      | A.Protocol_processor -> ", protocol processor"
    in
    Format.printf "LoPC all-to-all prediction (%a, W=%g%s)@." Lopc.Params.pp params w mode;
    Format.printf "  solver outcome      = %s@." (Fixed_point.status_to_string status);
    Format.printf "  cycle time R        = %.2f cycles@." s.A.r;
    Format.printf "    thread Rw         = %.2f@." s.A.rw;
    Format.printf "    network 2 St      = %.2f@." (2. *. params.Lopc.Params.st);
    Format.printf "    request Rq        = %.2f@." s.A.rq;
    Format.printf "    reply Ry          = %.2f@." s.A.ry;
    Format.printf "  contention C        = %.2f (%.1f%% of R, ~%.2f handlers)@."
      s.A.contention
      (100. *. s.A.contention /. s.A.r)
      (s.A.contention /. params.Lopc.Params.so);
    Format.printf "  bounds (Eq 5.12)    = (%.2f, %.2f)@." (A.lower_bound params ~w)
      (A.upper_bound params ~w);
    Format.printf "  LogP (naive)        = %.2f@." (Lopc.Logp.cycle_time params ~w);
    Format.printf "  throughput X        = %.6f requests/cycle@." s.A.throughput;
    Format.printf "  Qq=%.4f Qy=%.4f Uq=%.4f Uy=%.4f@." s.A.qq s.A.qy s.A.uq s.A.uy;
    `Ok 0

let print_fault_model ?budget fault params ~w =
  let config =
    FM.config ~drop:fault.Fault.drop ~duplicate:fault.Fault.duplicate
      ~delay_epsilon:fault.Fault.delay_epsilon
      ~spike_mean:(D.mean fault.Fault.delay_spike)
      ~backoff:(fun try_ -> Fault.timeout_multiplier fault ~try_)
      ~max_tries:fault.Fault.max_tries ~timeout:fault.Fault.timeout ()
  in
  match FM.solve_status ?budget config params ~w with
  | None, status -> solver_failure ~what:"fault model solver" status
  | Some s, status ->
    Format.printf "LoPC faulty all-to-all prediction (%a, W=%g)@." Lopc.Params.pp params w;
    Format.printf "  fault: drop=%g dup=%g eps=%g timeout=%g retries=%d@."
      fault.Fault.drop fault.Fault.duplicate fault.Fault.delay_epsilon
      fault.Fault.timeout fault.Fault.max_tries;
    Format.printf "  solver outcome      = %s@." (Fixed_point.status_to_string status);
    Format.printf "  cycle time R        = %.2f cycles@." s.FM.r;
    Format.printf "    thread Rw         = %.2f@." s.FM.rw;
    Format.printf "    timeout wait      = %.2f@." s.FM.timeout_wait;
    Format.printf "    request Rq        = %.2f@." s.FM.rq;
    Format.printf "    reply Ry          = %.2f@." s.FM.ry;
    Format.printf "  tries per cycle     = %.4f (handler load %.4f)@." s.FM.tries s.FM.load;
    Format.printf "  failure rate q^B    = %.3e@." s.FM.failure_rate;
    Format.printf "  goodput X           = %.6f requests/cycle@." s.FM.throughput;
    Format.printf "  Qq=%.4f Qy=%.4f Uq=%.4f Uy=%.4f@." s.FM.qq s.FM.qy s.FM.uq s.FM.uy;
    `Ok 0

let print_client_server params ~w ~servers =
  let s = CS.throughput params ~w ~servers in
  Format.printf "LoPC client-server prediction (%a, W=%g, Ps=%d)@." Lopc.Params.pp params
    w servers;
  Format.printf "  throughput X        = %.6f chunks/cycle@." s.CS.throughput;
  Format.printf "  client cycle R      = %.2f cycles@." s.CS.cycle_time;
  Format.printf "  server residence Rs = %.2f (queue %.3f, utilization %.3f)@."
    s.CS.server_residence s.CS.server_queue s.CS.server_util;
  let best = CS.optimal_servers params ~w in
  Format.printf "  optimal allocation  = %d servers (Eq 6.8 real %.2f)@." best
    (CS.optimal_servers_real params ~w);
  Format.printf "  LogP bounds         = server %.6f, client %.6f@."
    (Lopc.Logp.server_bound params ~servers)
    (Lopc.Logp.client_bound params ~w ~clients:(params.Lopc.Params.p - servers))

let print_general params ~w ~protocol_processor pattern =
  let net = Pattern.to_general ~protocol_processor params ~w pattern in
  let s = G.solve net in
  Format.printf "LoPC general (Appendix A) prediction: %s@." (Pattern.description pattern);
  Format.printf "  system throughput   = %.6f requests/cycle@." s.G.system_throughput;
  Array.iteri
    (fun k (ns : G.node_solution) ->
      let cycle = s.G.cycle_times.(k) in
      if Float.is_nan cycle then
        Format.printf "  node %2d (server): Qq=%.3f Uq=%.3f@." k ns.G.qq ns.G.uq
      else
        Format.printf "  node %2d: R=%.1f Qq=%.3f Uq=%.3f@." k cycle ns.G.qq ns.G.uq)
    s.G.node_solutions

let polling_arg =
  Arg.(
    value & flag
    & info [ "polling" ]
        ~doc:"Model polling-based message notification (LogP's CM-5 assumption).")

let predict_cmd =
  let run p st so c2 w pp polling pattern optimal drop duplicate delay_epsilon
      spike_mean timeout backoff retries fuel max_seconds =
    match params_of ~p ~st ~so ~c2 with
    | `Error _ as e -> e
    | `Ok params -> (
      match parse_pattern ~nodes:p pattern with
      | `Error _ as e -> e
      | `Ok pat -> (
        match
          fault_of ~st ~so ~w ~drop ~duplicate ~delay_epsilon ~spike_mean ~timeout
            ~backoff ~retries
        with
        | Error msg -> `Error (false, msg)
        | Ok fault -> (
          let cancel = Cancel.create () in
          let budget = budget_of ~fuel ~max_seconds ~cancel in
          try
            with_watchdog ?max_seconds cancel (fun () ->
                match (fault, pat) with
                | Some fault, Pattern.All_to_all when not (pp || polling) ->
                  print_fault_model ?budget fault params ~w
                | Some _, _ ->
                  `Error
                    ( false,
                      "fault prediction models the interrupt-driven all-to-all \
                       workload only" )
                | None, (Pattern.All_to_all | Pattern.All_to_all_staggered) ->
                  let execution =
                    if pp then A.Protocol_processor
                    else if polling then A.Polling
                    else A.Interrupt
                  in
                  print_all_to_all ?budget params ~w ~execution
                | None, Pattern.Client_server { servers } ->
                  let servers =
                    if optimal then CS.optimal_servers params ~w else servers
                  in
                  print_client_server params ~w ~servers;
                  `Ok 0
                | None, (Pattern.Hotspot _ | Pattern.Multi_hop _) ->
                  print_general params ~w ~protocol_processor:pp pat;
                  `Ok 0)
          with
          | Invalid_argument msg -> `Error (false, msg)
          | Fixed_point.Diverged msg ->
            Format.eprintf "solver outcome: %s@." msg;
            `Ok exit_diverged)))
  in
  let optimal_arg =
    Arg.(
      value & flag
      & info [ "optimal-servers" ]
          ~doc:"For client-server: use the Eq 6.8 optimal allocation.")
  in
  Cmd.v
    (Cmd.info "predict" ~doc:"Solve the LoPC model analytically")
    Term.(
      ret
        (const run $ p_arg $ st_arg $ so_arg $ c2_arg $ w_arg $ pp_arg $ polling_arg
        $ pattern_arg $ optimal_arg $ drop_arg $ duplicate_arg $ delay_epsilon_arg
        $ spike_mean_arg $ timeout_arg $ backoff_arg $ retries_arg $ fuel_arg
        $ max_seconds_arg))

(* --- simulate --------------------------------------------------------------- *)

let simulate_cmd =
  let run p st so c2 w pp polling pattern seed cycles trace drop duplicate
      delay_epsilon spike_mean timeout backoff retries fuel max_seconds =
    match parse_pattern ~nodes:p pattern with
    | `Error _ as e -> e
    | `Ok pat -> (
      match
        fault_of ~st ~so ~w ~drop ~duplicate ~delay_epsilon ~spike_mean ~timeout
          ~backoff ~retries
      with
      | Error msg -> `Error (false, msg)
      | Ok fault -> (
      try
        let cancel = Cancel.create () in
        let budget = budget_of ~fuel ~max_seconds ~cancel in
        let spec =
          Pattern.to_spec ~protocol_processor:pp ~polling ?fault ~nodes:p
            ~work:(D.of_mean_scv ~mean:w ~scv:1.)
            ~handler:(D.of_mean_scv ~mean:so ~scv:c2)
            ~wire:(D.Constant st) pat
        in
        let recorder, obs =
          match trace with
          | None -> (None, None)
          | Some _ ->
            let recorder = Recorder.create () in
            (Some recorder, Some (Sim_probe.create ~recorder ~nodes:p ()))
        in
        let r =
          with_watchdog ?max_seconds cancel (fun () ->
              Machine.run ~seed ~spec ~cycles ?obs ?budget ())
        in
        let m = r.Machine.metrics in
        (match (trace, recorder) with
        | Some path, Some recorder ->
          Recorder.write_file recorder path;
          Format.printf "trace written to %s (%d events, %d dropped)@." path
            (Recorder.length recorder) (Recorder.dropped recorder)
        | _ -> ());
        Format.printf "simulated %s: P=%d W=%g So=%g St=%g C2=%g seed=%d@."
          (Pattern.description pat) p w so st c2 seed;
        Format.printf "  measured cycles     = %d (%d events, final time %.0f)@."
          m.Metrics.cycles r.Machine.events r.Machine.final_time;
        Format.printf "  mean cycle time R   = %.2f +- %.2f (95%%)@."
          (Metrics.mean_response m)
          (Welford.confidence_interval m.Metrics.response);
        Format.printf "    Rw=%.2f Rq=%.2f Ry=%.2f wire=%.2f@."
          (Welford.mean m.Metrics.rw) (Welford.mean m.Metrics.rq)
          (Welford.mean m.Metrics.ry)
          (Welford.mean m.Metrics.wire_time);
        Format.printf "  throughput X        = %.6f cycles/cycle@." (Metrics.throughput m);
        Format.printf "  Qq=%.4f Qy=%.4f Uq=%.4f Uy=%.4f Uthread=%.4f@."
          (Metrics.avg_request_queue m) (Metrics.avg_reply_queue m)
          (Metrics.avg_request_util m) (Metrics.avg_reply_util m)
          (Metrics.avg_thread_util m);
        Format.printf "  R percentiles       = p50 %.1f, p90 %.1f, p95 %.1f, p99 %.1f@."
          (Metrics.response_percentile m 0.5)
          (Metrics.response_percentile m 0.9)
          (Metrics.response_percentile m 0.95)
          (Metrics.response_percentile m 0.99);
        (match fault with
        | None -> ()
        | Some _ ->
          Format.printf
            "  fault: tries=%.4f failed=%d retrans=%d dropped=%d dup=%d stale=%d@."
            (Metrics.mean_tries m) m.Metrics.failed_cycles m.Metrics.retransmits
            m.Metrics.dropped_messages m.Metrics.duplicate_deliveries
            m.Metrics.stale_replies;
          Format.printf "  goodput/offered     = %.4f (goodput %.6f, offered %.6f)@."
            (Metrics.goodput m /. Metrics.offered_load m)
            (Metrics.goodput m) (Metrics.offered_load m));
        (match r.Machine.interrupted with
        | None -> `Ok 0
        | Some reason ->
          (* Metrics above are whatever accumulated before the stop. *)
          Format.eprintf "simulation interrupted: %s@."
            (Budget.reason_to_string reason);
          `Ok exit_exhausted)
      with Invalid_argument msg -> `Error (false, msg)))
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace of the run to $(docv): Chrome trace_event \
             JSON when $(docv) ends in .json (load in chrome://tracing or \
             Perfetto), a compact text format otherwise. Timestamps are \
             simulated cycles; tracing never perturbs the simulation.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the event-driven simulator")
    Term.(
      ret
        (const run $ p_arg $ st_arg $ so_arg $ c2_arg $ w_arg $ pp_arg $ polling_arg
        $ pattern_arg $ seed_arg $ cycles_arg $ trace_arg $ drop_arg $ duplicate_arg
        $ delay_epsilon_arg $ spike_mean_arg $ timeout_arg $ backoff_arg $ retries_arg
        $ fuel_arg $ max_seconds_arg))

(* --- validate ---------------------------------------------------------------- *)

let validate_cmd =
  let run p seed cycles =
    let cases =
      [
        ("all-to-all W=0 C2=0", Pattern.All_to_all, 0., 0.);
        ("all-to-all W=1000 C2=0", Pattern.All_to_all, 1000., 0.);
        ("all-to-all W=1000 C2=1", Pattern.All_to_all, 1000., 1.);
        ("client-server Ps=P/8", Pattern.Client_server { servers = max 1 (p / 8) }, 1000., 1.);
        ("hotspot 30%", Pattern.Hotspot { hot = 0; fraction = 0.3 }, 1000., 1.);
        ("multi-hop 2", Pattern.Multi_hop { hops = 2 }, 1000., 1.);
      ]
    in
    Format.printf "model vs simulator, P=%d, So=200, St=40, %d cycles/case@.@." p cycles;
    Format.printf "%-28s %12s %12s %8s@." "case" "model X" "sim X" "error";
    List.iter
      (fun (name, pat, w, c2) ->
        let params = Lopc.Params.create ~c2 ~p ~st:40. ~so:200. () in
        let model = (G.solve (Pattern.to_general params ~w pat)).G.system_throughput in
        let spec =
          Pattern.to_spec ~nodes:p ~work:(D.of_mean_scv ~mean:w ~scv:1.)
            ~handler:(D.of_mean_scv ~mean:200. ~scv:c2) ~wire:(D.Constant 40.) pat
        in
        let sim =
          Metrics.throughput (Machine.run ~seed ~spec ~cycles ()).Machine.metrics
        in
        Format.printf "%-28s %12.6f %12.6f %+7.2f%%@." name model sim
          (100. *. (model -. sim) /. sim))
      cases;
    `Ok 0
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check the model against the simulator on a workload grid")
    Term.(ret (const run $ p_arg $ seed_arg $ cycles_arg))

(* --- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let count_arg =
    Arg.(value & opt int 16 & info [ "count" ] ~doc:"Cycles to trace.")
  in
  let run p st so c2 w pp polling pattern seed count =
    match parse_pattern ~nodes:p pattern with
    | `Error _ as e -> e
    | `Ok pat -> (
      try
        let spec =
          Pattern.to_spec ~protocol_processor:pp ~polling ~nodes:p
            ~work:(D.of_mean_scv ~mean:w ~scv:1.)
            ~handler:(D.of_mean_scv ~mean:so ~scv:c2)
            ~wire:(D.Constant st) pat
        in
        let collector, observe = Lopc_activemsg.Trace.collector ~limit:count () in
        ignore
          (Machine.run ~seed ~warmup_cycles:(max 100 (count * 4)) ~on_cycle:observe
             ~spec ~cycles:count ());
        Format.printf "%a@." (Lopc_activemsg.Trace.pp_timeline ~width:60)
          (Lopc_activemsg.Trace.reports collector);
        `Ok 0
      with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print ASCII timelines of simulated cycles")
    Term.(
      ret
        (const run $ p_arg $ st_arg $ so_arg $ c2_arg $ w_arg $ pp_arg $ polling_arg
        $ pattern_arg $ seed_arg $ count_arg))

(* --- calibrate ----------------------------------------------------------------- *)

let calibrate_cmd =
  let points_arg =
    Arg.(
      non_empty
      & opt_all string []
      & info [ "point" ] ~docv:"W:R"
          ~doc:"A measurement: work per request and measured cycle time. Repeatable.")
  in
  let fixed_st_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "fixed-st" ] ~docv:"ST"
          ~doc:"Pin the wire latency (e.g. measured by ping-pong) and fit only So.")
  in
  let run p c2 points fixed_st =
    let parse s =
      match String.split_on_char ':' s with
      | [ w; r ] -> (
        match (float_of_string_opt w, float_of_string_opt r) with
        | Some w, Some r -> Ok (w, r)
        | _ -> Error s)
      | _ -> Error s
    in
    let parsed = List.map parse points in
    match List.find_opt Result.is_error parsed with
    | Some (Error bad) -> `Error (false, Printf.sprintf "malformed --point %S (want W:R)" bad)
    | Some (Ok _) | None -> (
      let observations = List.filter_map Result.to_option parsed in
      try
        let f = Lopc.Calibrate.fit ~c2 ?fixed_st ~p ~observations () in
        Format.printf "fitted parameters: %a@." Lopc.Params.pp f.Lopc.Calibrate.params;
        Format.printf "  rms residual %.2f cycles (%.2f%% of signal)@."
          f.Lopc.Calibrate.residual
          (100. *. f.Lopc.Calibrate.relative_residual);
        Format.printf "  %10s %12s %12s@." "W" "measured" "fitted";
        List.iter
          (fun (w, measured, fitted) ->
            Format.printf "  %10g %12.1f %12.1f@." w measured fitted)
          (Lopc.Calibrate.predictions f ~observations);
        (match fixed_st with
        | Some _ -> ()
        | None ->
          Format.printf
            "  note: St and So are nearly degenerate from R(W) alone; pass
            \  --fixed-st with a ping-pong-measured latency to identify So.@.");
        `Ok 0
      with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Fit St and So to measured all-to-all cycle times")
    Term.(ret (const run $ p_arg $ c2_arg $ points_arg $ fixed_st_arg))

(* --- sweep ------------------------------------------------------------------- *)

let sweep_cmd =
  let artifact_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT" ~doc:"Artifact name, e.g. fig5.2 (see bench --list).")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Shorter simulations.") in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc:"Write CSV here.")
  in
  let run artifact quick csv =
    let fidelity = if quick then Lopc_repro.Experiments.Quick else Lopc_repro.Experiments.Full in
    let all = Lopc_repro.Experiments.all ~fidelity () in
    match List.assoc_opt artifact all with
    | None -> `Error (false, Printf.sprintf "unknown artifact %S" artifact)
    | Some table ->
      Format.printf "%a@." Lopc_repro.Table.pp table;
      (match csv with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = Filename.concat dir (artifact ^ ".csv") in
        let oc = open_out path in
        output_string oc (Lopc_repro.Table.to_csv table);
        close_out oc;
        Format.printf "(csv written to %s)@." path);
      let counters = Lopc_obs.Counters.global in
      if
        Lopc_obs.Counters.degradations counters > 0
        || Lopc_obs.Counters.cascade_failures counters > 0
        || Lopc_obs.Counters.exhaustions counters > 0
      then Format.eprintf "(robustness: %s)@." (Lopc_obs.Counters.summary counters);
      `Ok 0
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Regenerate a paper table or figure")
    Term.(ret (const run $ artifact_arg $ quick_arg $ csv_arg))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let exits =
    Cmd.Exit.info ~doc:"on usage or parameter errors." exit_usage
    :: Cmd.Exit.info ~doc:"when a solver diverges (no fixed point found)." exit_diverged
    :: Cmd.Exit.info ~doc:"when the model is saturated (no steady state exists)."
         exit_saturated
    :: Cmd.Exit.info
         ~doc:"when a budget ($(b,--fuel) or $(b,--max-seconds)) stopped the run."
         exit_exhausted
    :: Cmd.Exit.defaults
  in
  let info =
    Cmd.info "lopc_cli" ~version:"1.0.0" ~exits
      ~doc:"LoPC: contention-aware cost modeling of parallel algorithms"
  in
  exit
    (Cmd.eval' ~term_err:exit_usage
       (Cmd.group ~default info
          [ predict_cmd; simulate_cmd; validate_cmd; sweep_cmd; trace_cmd; calibrate_cmd ]))
