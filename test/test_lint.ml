(* Tests for lopc_analysis: each seeded rule fires on a violating fixture
   with the right rule id and line number, stays silent on a clean fixture,
   and [@lint.allow] suppressions are honoured. *)

module Finding = Lopc_analysis.Finding
module Rule = Lopc_analysis.Rule
module Driver = Lopc_analysis.Driver
module Ast_rules = Lopc_analysis.Ast_rules
module Project_rules = Lopc_analysis.Project_rules

(* (rule id, line) pairs, in report order, from linting [src] as [path] with
   only [rule] active (so fixtures stay focused on the rule under test). *)
let lint_one rule ~path src =
  Driver.lint_source ~rules:[ rule ] ~path src
  |> List.map (fun (f : Finding.t) -> (f.rule, Finding.line f))

let lint_all ~path src =
  Driver.lint_source ~path src
  |> List.map (fun (f : Finding.t) -> (f.rule, Finding.line f))

let hits = Alcotest.(check (list (pair string int)))

(* --- float-equality ----------------------------------------------------- *)

let test_float_equality_fires () =
  let src =
    "let f x = x = 1.0\n" ^ "let g y = y <> sqrt 2.\n"
    ^ "let h a b = compare (Float.abs a) b"
  in
  hits "three float comparisons"
    [ ("float-equality", 1); ("float-equality", 2); ("float-equality", 3) ]
    (lint_one Ast_rules.float_equality ~path:"bin/fixture.ml" src)

let test_float_equality_silent () =
  let src =
    "let f x y = Float.equal x y\n" ^ "let g x = x = 1\n" ^ "let h s = s = \"a\"\n"
    ^ "let i x = Float.abs (x -. 1.) < 1e-9\n"
    ^ "let j x = Float.classify_float x = FP_zero"
  in
  hits "int/string equality, tolerance and classified tests are clean" []
    (lint_one Ast_rules.float_equality ~path:"bin/fixture.ml" src)

(* --- unguarded-division ------------------------------------------------- *)

let test_unguarded_division_fires () =
  let src =
    "let f w u = w /. (1. -. u)\n" ^ "let g w u =\n"
    ^ "  let denom = 1. -. u -. (u *. u) in\n" ^ "  w /. denom"
  in
  hits "direct and let-bound saturation denominators"
    [ ("unguarded-division", 1); ("unguarded-division", 4) ]
    (lint_one Ast_rules.unguarded_division ~path:"bin/fixture.ml" src)

let test_unguarded_division_silent () =
  let src =
    "let f w u = if u >= 1. then infinity else w /. (1. -. u)\n" ^ "let g w u =\n"
    ^ "  if u >= 1. then invalid_arg \"saturated\";\n" ^ "  w /. (1. -. u)\n"
    ^ "let h w u = w /. Float.max 1e-9 (1. -. u)\n" ^ "let i w u = w /. u"
  in
  hits "guarded, sequence-guarded, clamped and plain divisions are clean" []
    (lint_one Ast_rules.unguarded_division ~path:"bin/fixture.ml" src)

(* --- global-rng --------------------------------------------------------- *)

let test_global_rng_fires () =
  let src = "let () = Random.self_init ()\n" ^ "let x = Stdlib.Random.float 1.0" in
  hits "global Random use outside lib/prng"
    [ ("global-rng", 1); ("global-rng", 2) ]
    (lint_one Ast_rules.global_rng ~path:"lib/core/fixture.ml" src)

let test_global_rng_exempt_in_prng () =
  let src = "let x = Random.bits ()" in
  hits "lib/prng may touch the raw RNG" []
    (lint_one Ast_rules.global_rng ~path:"lib/prng/fixture.ml" src);
  hits "explicit rng threading is clean" []
    (lint_one Ast_rules.global_rng ~path:"lib/core/fixture.ml"
       "let f rng = Lopc_prng.Rng.float rng 1.0")

(* --- physical-equality -------------------------------------------------- *)

let test_physical_equality_fires () =
  let src = "let f a b = a == b\n" ^ "let g a b = a != b" in
  hits "== and != on non-unit values"
    [ ("physical-equality", 1); ("physical-equality", 2) ]
    (lint_one Ast_rules.physical_equality ~path:"bin/fixture.ml" src)

let test_physical_equality_silent () =
  let src = "let f r = r == ()\n" ^ "let g a b = a = b" in
  hits "unit sentinel and structural equality are clean" []
    (lint_one Ast_rules.physical_equality ~path:"bin/fixture.ml" src)

(* --- banned-constructs -------------------------------------------------- *)

let test_banned_constructs_fires () =
  let src =
    "let f x = Obj.magic x\n" ^ "let g () = exit 1\n"
    ^ "let h () = Printf.printf \"boom\""
  in
  hits "Obj.magic, exit and printf inside lib/"
    [ ("banned-constructs", 1); ("banned-constructs", 2); ("banned-constructs", 3) ]
    (lint_one Ast_rules.banned_constructs ~path:"lib/core/fixture.ml" src)

let test_banned_constructs_executables_may_exit () =
  let src = "let g () = exit 1\n" ^ "let h () = Printf.printf \"ok\"" in
  hits "exit and printf are fine in executables" []
    (lint_one Ast_rules.banned_constructs ~path:"bin/fixture.ml" src)

(* --- bare-failwith ------------------------------------------------------ *)

let test_bare_failwith_fires () =
  let src =
    "let f () = failwith \"boom\"\n" ^ "let g () = raise (Failure \"boom\")\n"
    ^ "let h msg = raise_notrace (Failure msg)"
  in
  hits "failwith and raised Failure inside lib/"
    [ ("bare-failwith", 1); ("bare-failwith", 2); ("bare-failwith", 3) ]
    (lint_one Ast_rules.bare_failwith ~path:"lib/core/fixture.ml" src)

let test_bare_failwith_silent () =
  let src =
    "let f () = invalid_arg \"bad input\"\n"
    ^ "let g x = match x with Some v -> v | None -> raise Not_found\n"
    ^ "let h x = try x () with Failure _ -> 0"
  in
  hits "invalid_arg, other exceptions and Failure handlers are clean" []
    (lint_one Ast_rules.bare_failwith ~path:"lib/core/fixture.ml" src);
  hits "executables may failwith" []
    (lint_one Ast_rules.bare_failwith ~path:"bin/fixture.ml"
       "let f () = failwith \"boom\"")

(* --- missing-mli -------------------------------------------------------- *)

(* Runs [f] from inside a fresh temporary directory containing lib/with.ml,
   lib/with.mli and lib/without.ml, so the sibling-interface lookup sees a
   real file system. *)
let in_fixture_tree f =
  let tmp = Filename.temp_file "lopc_lint_test" "" in
  Sys.remove tmp;
  Sys.mkdir tmp 0o755;
  Sys.mkdir (Filename.concat tmp "lib") 0o755;
  let write name contents =
    let oc = open_out (Filename.concat tmp name) in
    output_string oc contents;
    close_out oc
  in
  write "lib/with.ml" "let x = 1\n";
  write "lib/with.mli" "val x : int\n";
  write "lib/without.ml" "let x = 1\n";
  let old = Sys.getcwd () in
  Sys.chdir tmp;
  Fun.protect ~finally:(fun () -> Sys.chdir old) f

let test_missing_mli_fires () =
  in_fixture_tree (fun () ->
      hits "library module with no interface"
        [ ("missing-mli", 1) ]
        (lint_one Project_rules.missing_mli ~path:"lib/without.ml" "let x = 1");
      hits "sibling interface present" []
        (lint_one Project_rules.missing_mli ~path:"lib/with.ml" "let x = 1"))

let test_missing_mli_ignores_executables () =
  hits "executables need no interface" []
    (lint_one Project_rules.missing_mli ~path:"bin/fixture.ml" "let x = 1")

(* --- suppression -------------------------------------------------------- *)

let test_suppression () =
  hits "expression-level justified [@lint.allow]" []
    (lint_all ~path:"bin/fixture.ml"
       {|let f x = (x = 1.0 [@lint.allow "float-equality" "fixture"])|});
  hits "binding-level justified [@@lint.allow]" []
    (lint_all ~path:"bin/fixture.ml"
       "let f w u = w /. (1. -. u)\n[@@lint.allow \"unguarded-division\" \"fixture\"]");
  hits "file-level justified [@@@lint.allow]" []
    (lint_all ~path:"bin/fixture.ml"
       "[@@@lint.allow \"float-equality\" \"fixture\"]\n\
        let f x = x = 1.0\n\
        let g y = y <> 2.");
  (* A suppression only silences the rule it names. *)
  hits "unrelated suppression does not mask"
    [ ("float-equality", 1) ]
    (lint_all ~path:"bin/fixture.ml"
       {|let f x = (x = 1.0 [@lint.allow "unguarded-division" "fixture"])|})

let test_bare_suppression () =
  (* The legacy one-string form still suppresses its rule, but is itself
     reported — an unjustified exemption is a finding. *)
  hits "bare form suppresses but is flagged"
    [ ("bare-suppression", 1) ]
    (lint_all ~path:"bin/fixture.ml"
       {|let f x = (x = 1.0 [@lint.allow "float-equality"])|});
  (* An empty justification does not count as one. *)
  hits "whitespace justification is still bare"
    [ ("bare-suppression", 1) ]
    (lint_all ~path:"bin/fixture.ml"
       {|let f x = (x = 1.0 [@lint.allow "float-equality" "  "])|});
  (* bare-suppression findings cannot excuse themselves: only a justified
     region may suppress them. *)
  hits "bare region cannot self-suppress"
    [ ("bare-suppression", 1); ("bare-suppression", 2) ]
    (lint_all ~path:"bin/fixture.ml"
       "[@@@lint.allow \"bare-suppression\"]\n\
        let f x = (x = 1.0 [@lint.allow \"float-equality\"])");
  hits "justified region may suppress bare-suppression" []
    (lint_all ~path:"bin/fixture.ml"
       "[@@@lint.allow \"bare-suppression\" \"legacy sites migrate next release\"]\n\
        let f x = (x = 1.0 [@lint.allow \"float-equality\"])")

(* --- driver ------------------------------------------------------------- *)

let test_catalogue () =
  let ids = List.map (fun (r : Rule.t) -> r.id) Driver.default_rules in
  Alcotest.(check (list string))
    "the seven seeded rules, in catalogue order"
    [
      "float-equality";
      "unguarded-division";
      "global-rng";
      "physical-equality";
      "banned-constructs";
      "bare-failwith";
      "missing-mli";
    ]
    ids

let test_parse_error () =
  match Driver.lint_source ~path:"bin/fixture.ml" "let let let" with
  | [ f ] -> Alcotest.(check string) "parse-error finding" "parse-error" f.Finding.rule
  | fs -> Alcotest.failf "expected one parse-error finding, got %d" (List.length fs)

let test_json_report () =
  let findings = Driver.lint_source ~path:"bin/fixture.ml" "let f x = x = 1.0" in
  let json = Format.asprintf "%a" (fun ppf -> Driver.report ppf ~format:Driver.Json) findings in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json names the rule" true (contains {|"rule":"float-equality"|});
  Alcotest.(check bool) "json carries the line" true (contains {|"line":1|});
  Alcotest.(check bool) "json counts findings" true (contains {|"count": 1|})

let test_sarif_report () =
  let findings =
    Driver.lint_source ~path:"bin/fixture.ml"
      "let f x = x = 1.0\nlet g w u = w /. (1. -. u)"
  in
  let render () =
    Format.asprintf "%a" (fun ppf -> Driver.report ppf ~format:Driver.Sarif) findings
  in
  let sarif = render () in
  Alcotest.(check string) "sarif rendering is byte-stable" sarif (render ());
  let contains needle =
    let nl = String.length needle and jl = String.length sarif in
    let rec go i = i + nl <= jl && (String.sub sarif i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "sarif version" true (contains {|"version": "2.1.0"|});
  Alcotest.(check bool) "rule id" true (contains {|"ruleId": "float-equality"|});
  Alcotest.(check bool) "rule metadata is present" true
    (contains {|"id": "unguarded-division"|});
  Alcotest.(check bool) "columns are 1-based" true
    (contains {|"startLine": 1, "startColumn": 11|})

(* --- deterministic merge of the parallel syntactic stage ----------------- *)

(* A hermetic source tree seeded with findings in every file, so the merge
   actually has something to order. The comments and string literals are
   load-bearing: they drive the compiler-libs lexer through its global
   string/comment buffers, which is exactly the state a non-serialised
   parallel parse races on (lexer.mll assertion failures). Keep the files
   big enough that 8 domains genuinely overlap. *)
let with_seeded_tree f =
  let dir = Filename.temp_file "lopc_lint_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      for i = 0 to 23 do
        let path = Filename.concat dir (Printf.sprintf "f%02d.ml" i) in
        Out_channel.with_open_bin path (fun oc ->
            Printf.fprintf oc "let eq%d x = x = %d.0\nlet div%d w u = w /. (1. -. u)\n"
              i i i;
            for j = 0 to 199 do
              Printf.fprintf oc
                "(* comment %d.%d with (* nesting *) and \"quotes\" *)\n\
                 let s%d_%d = \"literal \\\"%d\\\" with escapes\\n\"\n"
                i j i j j
            done)
      done;
      f dir)

let render_json findings =
  Format.asprintf "%a" (fun ppf -> Driver.report ppf ~format:Driver.Json) findings

let test_parallel_merge_identical () =
  with_seeded_tree (fun dir ->
      let sequential = Driver.lint_paths [ dir ] in
      Alcotest.(check bool) "the seeded tree has findings" true (sequential <> []);
      (* Reverse-index execution: proves the merge does not depend on task
         completion order. *)
      let reversed =
        Driver.lint_paths
          ~map_tasks:(fun tasks ->
            let n = Array.length tasks in
            let out = Array.make n [] in
            for i = n - 1 downto 0 do
              out.(i) <- tasks.(i) ()
            done;
            out)
          [ dir ]
      in
      Alcotest.(check string) "reverse-order execution is byte-identical"
        (render_json sequential) (render_json reversed);
      (* And the real worker pool, as wired by [lopc_lint --jobs 8] —
         repeated, because a racy parallel parse (compiler-libs' lexer
         state is global) fails intermittently, not every run. *)
      for round = 1 to 5 do
        let pooled =
          Driver.lint_paths
            ~map_tasks:(fun tasks ->
              Lopc_repro.Parallel.with_pool ~jobs:8 (fun pool ->
                  Lopc_repro.Parallel.run pool tasks))
            [ dir ]
        in
        Alcotest.(check string)
          (Printf.sprintf "8-domain pool is byte-identical (round %d)" round)
          (render_json sequential) (render_json pooled)
      done)

(* Regression for the serial-prefix fix: [lint_paths] used to read and
   parse every file before the first rule check ran, so extra workers
   only ever added pool overhead and [--jobs 4] benchmarked slower than
   [--jobs 1]. With the parse inside each task, worker domains overlap
   parsing with checking and 4 workers must not lose to 1. Wall-clock
   comparison is only meaningful with real parallelism, so single-core
   machines skip the assertion (the byte-identity test above still
   runs). *)
let test_parallel_jobs_speedup () =
  if Domain.recommended_domain_count () >= 2 then
    with_seeded_tree (fun dir ->
        let time_of jobs =
          let best = ref Float.infinity in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            ignore
              (if jobs = 1 then Driver.lint_paths [ dir ]
               else
                 Driver.lint_paths
                   ~map_tasks:(fun tasks ->
                     Lopc_repro.Parallel.with_pool ~jobs (fun pool ->
                         Lopc_repro.Parallel.run pool tasks))
                   [ dir ]);
            best := Float.min !best (Unix.gettimeofday () -. t0)
          done;
          !best
        in
        let serial = time_of 1 in
        let parallel = time_of 4 in
        if parallel >= serial then
          Alcotest.failf "lint with 4 workers (%.1f ms) not faster than 1 (%.1f ms)"
            (1000. *. parallel) (1000. *. serial))

let suite =
  [
    Alcotest.test_case "float-equality fires" `Quick test_float_equality_fires;
    Alcotest.test_case "float-equality silent" `Quick test_float_equality_silent;
    Alcotest.test_case "unguarded-division fires" `Quick test_unguarded_division_fires;
    Alcotest.test_case "unguarded-division silent" `Quick test_unguarded_division_silent;
    Alcotest.test_case "global-rng fires" `Quick test_global_rng_fires;
    Alcotest.test_case "global-rng exempt in prng" `Quick test_global_rng_exempt_in_prng;
    Alcotest.test_case "physical-equality fires" `Quick test_physical_equality_fires;
    Alcotest.test_case "physical-equality silent" `Quick test_physical_equality_silent;
    Alcotest.test_case "banned-constructs fires" `Quick test_banned_constructs_fires;
    Alcotest.test_case "banned-constructs executables" `Quick
      test_banned_constructs_executables_may_exit;
    Alcotest.test_case "bare-failwith fires" `Quick test_bare_failwith_fires;
    Alcotest.test_case "bare-failwith silent" `Quick test_bare_failwith_silent;
    Alcotest.test_case "missing-mli fires" `Quick test_missing_mli_fires;
    Alcotest.test_case "missing-mli ignores executables" `Quick
      test_missing_mli_ignores_executables;
    Alcotest.test_case "suppression" `Quick test_suppression;
    Alcotest.test_case "bare suppression" `Quick test_bare_suppression;
    Alcotest.test_case "rule catalogue" `Quick test_catalogue;
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "json report" `Quick test_json_report;
    Alcotest.test_case "sarif report" `Quick test_sarif_report;
    Alcotest.test_case "parallel merge identical" `Quick test_parallel_merge_identical;
    Alcotest.test_case "parallel jobs speedup" `Quick test_parallel_jobs_speedup;
  ]
