(* Tests for lopc_topology and the torus extensions (model + simulator). *)

module T = Lopc_topology.Topology
module D = Lopc_dist.Distribution
module Spec = Lopc_activemsg.Spec
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Torus = Lopc.Torus

let feq tol = Alcotest.(check (float tol))

let topo ?(per_hop = 5.) ?(link_time = 0.) ?rows nodes =
  T.create ?rows ~nodes ~per_hop ~link_time ()

let test_factorization () =
  let t = topo 32 in
  Alcotest.(check (pair int int)) "near-square 32" (4, 8) (t.T.rows, t.T.cols);
  let t16 = topo 16 in
  Alcotest.(check (pair int int)) "square 16" (4, 4) (t16.T.rows, t16.T.cols);
  let t6 = topo 6 in
  Alcotest.(check (pair int int)) "6 = 2x3" (2, 3) (t6.T.rows, t6.T.cols)

let test_coords_roundtrip () =
  let t = topo ~rows:4 32 in
  for node = 0 to 31 do
    let row, col = T.coords t node in
    Alcotest.(check int) "roundtrip" node (T.node_of t ~row ~col)
  done

let test_wraparound () =
  let t = topo ~rows:4 32 in
  Alcotest.(check int) "negative wraps" (T.node_of t ~row:3 ~col:7)
    (T.node_of t ~row:(-1) ~col:(-1))

let test_distance_symmetric () =
  let t = topo ~rows:4 32 in
  for src = 0 to 31 do
    for dst = 0 to 31 do
      Alcotest.(check int) "symmetric"
        (T.distance t ~src ~dst)
        (T.distance t ~src:dst ~dst:src)
    done
  done

let test_distance_wraps_minimally () =
  (* On an 8-ring, column 0 to column 7 is one hop backwards. *)
  let t = topo ~rows:4 32 in
  Alcotest.(check int) "wrap distance" 1
    (T.distance t ~src:(T.node_of t ~row:0 ~col:0) ~dst:(T.node_of t ~row:0 ~col:7))

let test_route_length_equals_distance () =
  let t = topo ~rows:4 32 in
  for src = 0 to 31 do
    for dst = 0 to 31 do
      Alcotest.(check int) "route length"
        (T.distance t ~src ~dst)
        (List.length (T.route t ~src ~dst))
    done
  done

let test_route_reaches_destination () =
  (* Follow the links and verify we land on dst. *)
  let t = topo ~rows:4 32 in
  let step node = function
    | T.X_plus ->
      let r, c = T.coords t node in
      T.node_of t ~row:r ~col:(c + 1)
    | T.X_minus ->
      let r, c = T.coords t node in
      T.node_of t ~row:r ~col:(c - 1)
    | T.Y_plus ->
      let r, c = T.coords t node in
      T.node_of t ~row:(r + 1) ~col:c
    | T.Y_minus ->
      let r, c = T.coords t node in
      T.node_of t ~row:(r - 1) ~col:c
  in
  for src = 0 to 31 do
    for dst = 0 to 31 do
      let final =
        List.fold_left
          (fun here (from, dir) ->
            Alcotest.(check int) "link leaves current node" here from;
            step here dir)
          src
          (T.route t ~src ~dst)
      in
      Alcotest.(check int) "route ends at destination" dst final
    done
  done

let test_mean_distance_matches_offsets () =
  let t = topo ~rows:4 32 in
  let dx, dy = T.mean_offsets t in
  feq 1e-9 "offsets sum to distance" (T.mean_distance t) (dx +. dy)

let test_mean_distance_ring () =
  (* A 1xN torus is a ring; for N=8 the mean distance to another node is
     (1+2+3+4+3+2+1)/7 = 16/7. *)
  let t = topo ~rows:1 8 in
  feq 1e-9 "ring mean" (16. /. 7.) (T.mean_distance t)

let test_validation () =
  List.iter
    (fun thunk ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> T.create ~nodes:1 ~per_hop:1. ~link_time:0. ());
      (fun () -> T.create ~rows:5 ~nodes:32 ~per_hop:1. ~link_time:0. ());
      (fun () -> T.create ~nodes:8 ~per_hop:(-1.) ~link_time:0. ());
    ]

(* --- simulator integration ------------------------------------------------ *)

let test_sim_single_message_latency () =
  (* One client on an uncontended torus: wire time is exactly
     distance · (per_hop + link_time) each way. *)
  let t = T.create ~rows:2 ~nodes:4 ~per_hop:7. ~link_time:3. () in
  (* Node 3 is at (1,1): distance from 0 is 2. *)
  let base =
    {
      Spec.nodes = 4;
      threads =
        [| Some { Spec.work = D.Constant 100.; route = (fun _ -> [ 3 ]); window = 1 };
           None; None; None |];
      handler = D.Constant 10.;
      reply_handler = D.Constant 10.;
      wire = D.Constant 999.;  (* must be ignored in topology mode *)
      protocol_processor = false;
      gap = 0.;
      polling = false;
      initial_delay = None;
      barrier = None;
      topology = Some t;
      fault = None;
    }
  in
  let r = Machine.run ~spec:base ~cycles:200 () in
  (* R = W + 2·2·(7+3) + 2·So = 100 + 40 + 20. *)
  feq 1e-9 "torus latency" 160. (Metrics.mean_response r.Machine.metrics)

let test_sim_topology_size_mismatch () =
  let t = T.create ~nodes:8 ~per_hop:1. ~link_time:0. () in
  let base =
    Spec.all_to_all ~nodes:4 ~work:(D.Constant 1.) ~handler:(D.Constant 1.)
      ~wire:(D.Constant 1.) ()
  in
  match Spec.validate { base with Spec.topology = Some t } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched topology accepted"

let test_model_zero_links_matches_base () =
  (* With link_time 0 the torus model equals plain LoPC with
     St = mean distance · per_hop. *)
  let t = T.create ~nodes:32 ~per_hop:10. ~link_time:0. () in
  let params = Lopc.Params.create ~c2:1. ~p:32 ~st:0. ~so:200. () in
  let s = Torus.solve params ~topology:t ~w:1000. in
  let st = T.mean_distance t *. 10. in
  let direct = Lopc.All_to_all.solve (Lopc.Params.create ~c2:1. ~p:32 ~st ~so:200. ()) ~w:1000. in
  feq 1e-6 "matches contention-free" direct.Lopc.All_to_all.r s.Torus.r;
  feq 0. "penalty zero" 0. s.Torus.penalty

let test_model_vs_simulator () =
  let params = Lopc.Params.create ~c2:1. ~p:16 ~st:0. ~so:200. () in
  List.iter
    (fun link_time ->
      let t = T.create ~nodes:16 ~per_hop:10. ~link_time () in
      let model = (Torus.solve params ~topology:t ~w:1000.).Torus.r in
      let base =
        Spec.all_to_all ~nodes:16 ~work:(D.Exponential 1000.)
          ~handler:(D.Exponential 200.) ~wire:(D.Constant 0.) ()
      in
      let spec = { base with Spec.topology = Some t } in
      let sim =
        Metrics.mean_response (Machine.run ~spec ~cycles:40_000 ()).Machine.metrics
      in
      let err = Float.abs ((model -. sim) /. sim) in
      if err > 0.05 then
        Alcotest.failf "link=%g: model %g vs sim %g (err %.1f%%)" link_time model sim
          (100. *. err))
    [ 0.; 50.; 200. ]

let test_model_penalty_grows_with_load () =
  let params = Lopc.Params.create ~c2:1. ~p:32 ~st:0. ~so:200. () in
  let t = T.create ~nodes:32 ~per_hop:10. ~link_time:100. () in
  let p_fine = (Torus.solve params ~topology:t ~w:0.).Torus.penalty in
  let p_coarse = (Torus.solve params ~topology:t ~w:4000.).Torus.penalty in
  Alcotest.(check bool) "finer grain, more link contention" true (p_fine > p_coarse)

let test_tolerable_link_time () =
  let params = Lopc.Params.create ~c2:1. ~p:32 ~st:0. ~so:200. () in
  let t = T.create ~nodes:32 ~per_hop:10. ~link_time:0. () in
  let lt = Torus.tolerable_link_time params ~topology:t ~w:0. in
  Alcotest.(check bool) "positive threshold" true (lt > 0.);
  let s = Torus.solve params ~topology:{ t with T.link_time = lt } ~w:0. in
  Alcotest.(check bool) "penalty ~ 5% at threshold" true
    (Float.abs (s.Torus.penalty -. 0.05) < 2e-3)

let suite =
  [
    Alcotest.test_case "factorization" `Quick test_factorization;
    Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
    Alcotest.test_case "wraparound addressing" `Quick test_wraparound;
    Alcotest.test_case "distance symmetric" `Quick test_distance_symmetric;
    Alcotest.test_case "distance wraps minimally" `Quick test_distance_wraps_minimally;
    Alcotest.test_case "route length = distance" `Quick test_route_length_equals_distance;
    Alcotest.test_case "routes reach destinations" `Quick test_route_reaches_destination;
    Alcotest.test_case "mean distance = offsets" `Quick test_mean_distance_matches_offsets;
    Alcotest.test_case "ring mean distance" `Quick test_mean_distance_ring;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "sim: deterministic torus latency" `Quick test_sim_single_message_latency;
    Alcotest.test_case "sim: size mismatch rejected" `Quick test_sim_topology_size_mismatch;
    Alcotest.test_case "model: zero links = plain LoPC" `Quick test_model_zero_links_matches_base;
    Alcotest.test_case "model vs simulator" `Slow test_model_vs_simulator;
    Alcotest.test_case "model: penalty grows with load" `Quick test_model_penalty_grows_with_load;
    Alcotest.test_case "model: tolerable link time" `Quick test_tolerable_link_time;
  ]
