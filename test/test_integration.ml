(* End-to-end validation: the LoPC model against the event-driven
   simulator, reproducing the paper's accuracy claims (§5.3, §6). *)

module D = Lopc_dist.Distribution
module Pattern = Lopc_workloads.Pattern
module Machine = Lopc_activemsg.Machine
module Metrics = Lopc_activemsg.Metrics
module Welford = Lopc_stats.Welford
module A = Lopc.All_to_all
module CS = Lopc.Client_server
module G = Lopc.General
module Params = Lopc.Params
module Sim_probe = Lopc_obs.Sim_probe

let simulate ?(nodes = 16) ?(seed = 42) ?(cycles = 50_000) ~w ~so ~st ~c2 pattern =
  let spec =
    Pattern.to_spec ~nodes ~work:(D.of_mean_scv ~mean:w ~scv:1.)
      ~handler:(D.of_mean_scv ~mean:so ~scv:c2) ~wire:(D.Constant st) pattern
  in
  Machine.run ~seed ~spec ~cycles ()

(* §5.3 headline: LoPC within ~6% (pessimistic) of the simulator. *)
let test_all_to_all_accuracy () =
  List.iter
    (fun (w, c2) ->
      let params = Params.create ~c2 ~p:16 ~st:40. ~so:200. () in
      let model = (A.solve params ~w).A.r in
      let sim = simulate ~w ~so:200. ~st:40. ~c2 Pattern.All_to_all in
      let measured = Metrics.mean_response sim.Machine.metrics in
      let err = (model -. measured) /. measured in
      if Float.abs err > 0.08 then
        Alcotest.failf "W=%g C2=%g: model %g vs sim %g (err %.1f%%)" w c2 model measured
          (100. *. err))
    [ (0., 0.); (200., 0.); (1000., 0.); (1000., 1.); (2048., 0.) ]

(* §5.3: a naive LogP analysis under-predicts substantially at small W and
   its absolute error persists at large W. *)
let test_logp_underprediction () =
  let c2 = 0. in
  let params = Params.create ~c2 ~p:16 ~st:40. ~so:200. () in
  let check_w w expect_below =
    let sim = simulate ~w ~so:200. ~st:40. ~c2 Pattern.All_to_all in
    let measured = Metrics.mean_response sim.Machine.metrics in
    let logp = Lopc.Logp.cycle_time params ~w in
    let err = (logp -. measured) /. measured in
    if err > expect_below then
      Alcotest.failf "W=%g: LogP err %.1f%% not below %.1f%%" w (100. *. err)
        (100. *. expect_below)
  in
  (* At W=0 the under-prediction is large (paper: −37%). *)
  check_w 0. (-0.25);
  (* Even at W=1024 the error is still noticeable (paper: −13%). *)
  check_w 1024. (-0.05)

let test_logp_absolute_error_constant () =
  (* The contention-free model's absolute error stays ~ one handler as W
     grows (paper §5.3). *)
  let c2 = 0. in
  let params = Params.create ~c2 ~p:16 ~st:40. ~so:200. () in
  let abs_err w =
    let sim = simulate ~w ~so:200. ~st:40. ~c2 Pattern.All_to_all in
    Metrics.mean_response sim.Machine.metrics -. Lopc.Logp.cycle_time params ~w
  in
  let e_small = abs_err 256. and e_large = abs_err 2048. in
  Alcotest.(check bool) "error ~ one handler at W=256" true
    (e_small > 100. && e_small < 320.);
  Alcotest.(check bool) "error ~ one handler at W=2048" true
    (e_large > 100. && e_large < 320.)

let test_model_pessimistic_at_zero_work () =
  (* Bard's approximation overestimates queueing, so at W=0 the model is
     above the simulator (paper: +6% worst case). *)
  let params = Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
  let model = (A.solve params ~w:0.).A.r in
  let sim = simulate ~w:0. ~so:200. ~st:40. ~c2:0. Pattern.All_to_all in
  let measured = Metrics.mean_response sim.Machine.metrics in
  Alcotest.(check bool) "model >= sim at W=0" true (model >= measured *. 0.995)

let test_breakdown_components_match () =
  (* Fig 5-3: per-component residencies agree with the simulator. *)
  let params = Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
  let model = A.solve params ~w:1000. in
  let sim = simulate ~w:1000. ~so:200. ~st:40. ~c2:0. Pattern.All_to_all in
  let m = sim.Machine.metrics in
  let check name modeled measured tol =
    let err = Float.abs (modeled -. measured) /. measured in
    if err > tol then
      Alcotest.failf "%s: model %g vs sim %g (err %.1f%%)" name modeled measured
        (100. *. err)
  in
  check "Rw" model.A.rw (Welford.mean m.Metrics.rw) 0.08;
  check "Rq" model.A.rq (Welford.mean m.Metrics.rq) 0.12;
  check "Ry" model.A.ry (Welford.mean m.Metrics.ry) 0.15;
  check "R" model.A.r (Metrics.mean_response m) 0.06

let test_queue_lengths_match () =
  let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  let model = A.solve params ~w:1000. in
  let sim = simulate ~w:1000. ~so:200. ~st:40. ~c2:1. Pattern.All_to_all in
  let m = sim.Machine.metrics in
  let rel a b = Float.abs (a -. b) /. Float.max 1e-9 b in
  Alcotest.(check bool) "Qq within 15%" true (rel model.A.qq (Metrics.avg_request_queue m) < 0.15);
  Alcotest.(check bool) "Uq within 10%" true (rel model.A.uq (Metrics.avg_request_util m) < 0.10)

let test_client_server_accuracy () =
  (* Fig 6-2: model conservative within a few % across the curve. Bard's
     approximation is known to be most pessimistic when a station
     saturates, so the deeply overloaded Ps=1 point gets a wider band. *)
  let so = 131. and st = 40. and w = 1000. in
  let params = Params.create ~c2:1. ~p:16 ~st ~so () in
  List.iter
    (fun (servers, tolerance) ->
      let model = (CS.throughput params ~w ~servers).CS.throughput in
      let sim =
        simulate ~cycles:40_000 ~w ~so ~st ~c2:1. (Pattern.Client_server { servers })
      in
      let measured = Metrics.throughput sim.Machine.metrics in
      let err = (model -. measured) /. measured in
      if Float.abs err > tolerance then
        Alcotest.failf "Ps=%d: model %g vs sim %g (err %.1f%%)" servers model measured
          (100. *. err))
    [ (1, 0.15); (2, 0.08); (3, 0.06); (5, 0.06); (8, 0.06) ]

let test_client_server_sim_peak_matches_eq68 () =
  let so = 131. and st = 40. and w = 500. in
  let params = Params.create ~c2:1. ~p:16 ~st ~so () in
  let best_sim = ref 1 and best_x = ref 0. in
  for servers = 1 to 15 do
    let sim =
      simulate ~cycles:20_000 ~w ~so ~st ~c2:1. (Pattern.Client_server { servers })
    in
    let x = Metrics.throughput sim.Machine.metrics in
    if x > !best_x then begin
      best_x := x;
      best_sim := servers
    end
  done;
  let predicted = CS.optimal_servers params ~w in
  if abs (!best_sim - predicted) > 1 then
    Alcotest.failf "simulated peak at Ps=%d, Eq 6.8 predicts %d" !best_sim predicted

let test_protocol_processor_validation () =
  (* Shared-memory mode: model vs simulator with protocol processors. *)
  let params = Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
  let model = (A.solve ~execution:A.Protocol_processor params ~w:500.).A.r in
  let spec =
    Pattern.to_spec ~protocol_processor:true ~nodes:16 ~work:(D.Exponential 500.)
      ~handler:(D.Constant 200.) ~wire:(D.Constant 40.) Pattern.All_to_all
  in
  let sim = Machine.run ~spec ~cycles:50_000 () in
  let measured = Metrics.mean_response sim.Machine.metrics in
  let err = (model -. measured) /. measured in
  if Float.abs err > 0.08 then
    Alcotest.failf "PP mode: model %g vs sim %g (err %.1f%%)" model measured (100. *. err)

let test_hotspot_validation () =
  let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  let pat = Pattern.Hotspot { hot = 0; fraction = 0.3 } in
  let model = (G.solve (Pattern.to_general params ~w:1000. pat)).G.system_throughput in
  let sim = simulate ~w:1000. ~so:200. ~st:40. ~c2:1. pat in
  let measured = Metrics.throughput sim.Machine.metrics in
  let err = (model -. measured) /. measured in
  if Float.abs err > 0.06 then
    Alcotest.failf "hotspot: model %g vs sim %g (err %.1f%%)" model measured (100. *. err)

let test_multihop_validation () =
  let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  let pat = Pattern.Multi_hop { hops = 2 } in
  let model = (G.solve (Pattern.to_general params ~w:1000. pat)).G.system_throughput in
  let sim = simulate ~w:1000. ~so:200. ~st:40. ~c2:1. pat in
  let measured = Metrics.throughput sim.Machine.metrics in
  let err = (model -. measured) /. measured in
  if Float.abs err > 0.06 then
    Alcotest.failf "multi-hop: model %g vs sim %g (err %.1f%%)" model measured (100. *. err)

let test_seed_stability_of_validation () =
  (* The validation conclusion must not depend on the seed: three seeds,
     all within tolerance. *)
  let params = Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
  let model = (A.solve params ~w:1000.).A.r in
  List.iter
    (fun seed ->
      let sim = simulate ~seed ~w:1000. ~so:200. ~st:40. ~c2:0. Pattern.All_to_all in
      let measured = Metrics.mean_response sim.Machine.metrics in
      let err = Float.abs ((model -. measured) /. measured) in
      if err > 0.08 then Alcotest.failf "seed %d: err %.1f%%" seed (100. *. err))
    [ 1; 7; 1234 ]

let test_windowed_model_accuracy () =
  (* The §7 windowed extension against the simulator's windowed mode. *)
  let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  List.iter
    (fun window ->
      let model = (Lopc.Windowed.solve ~window params ~w:1000.).Lopc.Windowed.node_rate in
      let spec =
        Lopc_activemsg.Spec.all_to_all ~window ~nodes:16 ~work:(D.Exponential 1000.)
          ~handler:(D.Exponential 200.) ~wire:(D.Constant 40.) ()
      in
      let sim =
        Metrics.throughput (Machine.run ~spec ~cycles:50_000 ()).Machine.metrics /. 16.
      in
      let err = (model -. sim) /. sim in
      if Float.abs err > 0.12 then
        Alcotest.failf "window %d: model %g vs sim %g (err %.1f%%)" window model sim
          (100. *. err);
      (* The extension is conservative: it never over-predicts by much. *)
      if err > 0.03 then
        Alcotest.failf "window %d: model optimistic by %.1f%%" window (100. *. err))
    [ 1; 2; 4; 8 ]

let test_polling_model_accuracy () =
  let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  List.iter
    (fun w ->
      let model = (A.solve ~execution:A.Polling params ~w).A.r in
      let spec =
        Lopc_activemsg.Spec.all_to_all ~polling:true ~nodes:16 ~work:(D.Exponential w)
          ~handler:(D.Exponential 200.) ~wire:(D.Constant 40.) ()
      in
      let sim =
        Metrics.mean_response (Machine.run ~spec ~cycles:50_000 ()).Machine.metrics
      in
      let err = (model -. sim) /. sim in
      if Float.abs err > 0.05 then
        Alcotest.failf "polling W=%g: model %g vs sim %g (err %.1f%%)" w model sim
          (100. *. err))
    [ 0.; 100.; 500.; 1000.; 4000. ]

let test_fault_model_accuracy () =
  (* The analytical fault companion against the fault-injecting simulator
     across the NOW loss regime (timeout well above the round trip, ample
     retry budget — the model's validity envelope). *)
  let params = Params.create ~c2:1. ~p:16 ~st:40. ~so:200. () in
  List.iter
    (fun drop ->
      let timeout = 20_000. and max_tries = 10 in
      let model =
        Lopc.Fault_model.solve
          (Lopc.Fault_model.config ~drop ~max_tries ~timeout ())
          params ~w:1000.
      in
      let fault = Lopc_activemsg.Fault.create ~drop ~max_tries ~timeout () in
      let spec =
        Lopc_workloads.Pattern.to_spec ~fault ~nodes:16 ~work:(D.Exponential 1000.)
          ~handler:(D.Exponential 200.) ~wire:(D.Constant 40.)
          Lopc_workloads.Pattern.All_to_all
      in
      let m = (Machine.run ~spec ~cycles:50_000 ()).Machine.metrics in
      let sim = Metrics.mean_response m in
      let err = (model.Lopc.Fault_model.r -. sim) /. sim in
      if Float.abs err > 0.08 then
        Alcotest.failf "drop %g: model %g vs sim %g (err %.1f%%)" drop
          model.Lopc.Fault_model.r sim (100. *. err);
      let tries_err = model.Lopc.Fault_model.tries -. Metrics.mean_tries m in
      if Float.abs tries_err > 0.02 then
        Alcotest.failf "drop %g: retry inflation %g vs measured %g" drop
          model.Lopc.Fault_model.tries (Metrics.mean_tries m))
    [ 0.01; 0.05 ]

(* Differential check of the observability layer: the probe's per-node
   time-series integrate to exactly the utilizations Metrics reports (both
   sides see the same update stream when there is no warm-up reset), and
   the measured request utilization lands on the AMVA-predicted [Uq]. *)
let test_probe_utilization_matches_metrics () =
  let nodes = 16 in
  let spec =
    Pattern.to_spec ~nodes ~work:(D.of_mean_scv ~mean:1000. ~scv:1.)
      ~handler:(D.of_mean_scv ~mean:200. ~scv:0.) ~wire:(D.Constant 40.)
      Pattern.All_to_all
  in
  let obs = Sim_probe.create ~nodes () in
  let r = Machine.run ~warmup_cycles:0 ~obs ~spec ~cycles:20_000 () in
  let m = r.Machine.metrics in
  let now = r.Machine.final_time in
  let mean_over_nodes f =
    let acc = ref 0. in
    for node = 0 to nodes - 1 do
      acc := !acc +. f obs ~node ~now
    done;
    !acc /. float_of_int nodes
  in
  let close name probe metrics =
    if Float.abs (probe -. metrics) > 1e-9 then
      Alcotest.failf "%s: probe %.12g vs metrics %.12g" name probe metrics
  in
  close "thread utilization"
    (mean_over_nodes Sim_probe.thread_utilization)
    (Metrics.avg_thread_util m);
  close "request utilization"
    (mean_over_nodes Sim_probe.request_utilization)
    (Metrics.avg_request_util m);
  close "reply utilization"
    (mean_over_nodes Sim_probe.reply_utilization)
    (Metrics.avg_reply_util m)

let test_probe_utilization_matches_amva () =
  (* Fig 5-2 operating points: the probe-integrated request-handler
     utilization should land on the model's Uq, not just on the
     simulator's own bookkeeping. *)
  List.iter
    (fun w ->
      let params = Params.create ~c2:0. ~p:16 ~st:40. ~so:200. () in
      let model = A.solve params ~w in
      let nodes = 16 in
      let spec =
        Pattern.to_spec ~nodes ~work:(D.of_mean_scv ~mean:w ~scv:1.)
          ~handler:(D.Constant 200.) ~wire:(D.Constant 40.)
          Pattern.All_to_all
      in
      let obs = Sim_probe.create ~nodes () in
      let r = Machine.run ~obs ~spec ~cycles:50_000 () in
      let now = r.Machine.final_time in
      let acc = ref 0. in
      for node = 0 to nodes - 1 do
        acc := !acc +. Sim_probe.request_utilization obs ~node ~now
      done;
      let measured = !acc /. float_of_int nodes in
      let err = Float.abs (measured -. model.A.uq) /. model.A.uq in
      if err > 0.05 then
        Alcotest.failf "W=%g: probe Uq %g vs model %g (err %.1f%%)" w measured
          model.A.uq (100. *. err))
    [ 1000.; 2048. ]

let suite =
  [
    Alcotest.test_case "all-to-all within paper accuracy" `Slow test_all_to_all_accuracy;
    Alcotest.test_case "LogP underpredicts (37% at W=0)" `Slow test_logp_underprediction;
    Alcotest.test_case "LogP absolute error ~ one handler" `Slow test_logp_absolute_error_constant;
    Alcotest.test_case "LoPC pessimistic at W=0" `Slow test_model_pessimistic_at_zero_work;
    Alcotest.test_case "Fig 5-3 component breakdown" `Slow test_breakdown_components_match;
    Alcotest.test_case "queue lengths and utilizations" `Slow test_queue_lengths_match;
    Alcotest.test_case "client-server curve accuracy" `Slow test_client_server_accuracy;
    Alcotest.test_case "simulated peak matches Eq 6.8" `Slow test_client_server_sim_peak_matches_eq68;
    Alcotest.test_case "protocol processor mode" `Slow test_protocol_processor_validation;
    Alcotest.test_case "hotspot pattern" `Slow test_hotspot_validation;
    Alcotest.test_case "multi-hop pattern" `Slow test_multihop_validation;
    Alcotest.test_case "seed stability" `Slow test_seed_stability_of_validation;
    Alcotest.test_case "windowed extension accuracy" `Slow test_windowed_model_accuracy;
    Alcotest.test_case "polling extension accuracy" `Slow test_polling_model_accuracy;
    Alcotest.test_case "fault model accuracy" `Slow test_fault_model_accuracy;
    Alcotest.test_case "probe utilization matches Metrics" `Slow
      test_probe_utilization_matches_metrics;
    Alcotest.test_case "probe utilization matches AMVA Uq" `Slow
      test_probe_utilization_matches_amva;
  ]
