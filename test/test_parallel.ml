(* The work-stealing replication pool and the determinism contract it
   carries: results land by task index whatever the stealing order, pools
   are reusable across batches, the lowest-indexed exception wins, and —
   the property the whole PR hangs on — reproduction tables are
   byte-identical between --jobs 1 and --jobs 8. *)

module Parallel = Lopc_repro.Parallel
module Experiments = Lopc_repro.Experiments
module Table = Lopc_repro.Table

let test_create_rejects_bad_jobs () =
  Alcotest.check_raises "jobs = 0"
    (Invalid_argument "Parallel.create: jobs must be at least 1") (fun () ->
      ignore (Parallel.create ~jobs:0 ()))

let test_empty_batch () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "empty batch" 0 (Array.length (Parallel.run pool [||])))

let test_reuse_across_batches () =
  Parallel.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 5 do
        let n = round * 7 in
        let got = Parallel.run pool (Array.init n (fun i () -> i + round)) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init n (fun i -> i + round))
          got
      done)

let test_lowest_index_exception_wins () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      for _ = 1 to 10 do
        let tasks =
          Array.init 32 (fun i () ->
              if i = 7 || i = 23 then failwith (string_of_int i) else i)
        in
        (match Parallel.run pool tasks with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg ->
          Alcotest.(check string) "lowest failing index" "7" msg);
        (* The pool survives a failed batch. *)
        Alcotest.(check (array int)) "pool still works" [| 41 |]
          (Parallel.run pool [| (fun () -> 41) |])
      done)

let test_map_preserves_order () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      Alcotest.(check (array int))
        "map is index-ordered"
        (Array.map (fun i -> i * i) input)
        (Parallel.map pool (fun i -> i * i) input))

let prop_run_is_index_ordered =
  QCheck.Test.make ~name:"run returns results by task index" ~count:50
    QCheck.(pair (int_range 0 96) (int_range 1 8))
    (fun (n, jobs) ->
      Parallel.with_pool ~jobs (fun pool ->
          let got = Parallel.run pool (Array.init n (fun i () -> (i * 31) lxor n)) in
          got = Array.init n (fun i -> (i * 31) lxor n)))

(* --- the reproduction determinism contract ------------------------------- *)

let csv_of ~name ~seed ~jobs =
  (* Fresh plan per run: plans capture mutable streams and are single-shot. *)
  let plan = List.assoc name (Experiments.plans ~fidelity:Experiments.Quick ~seed ()) in
  Parallel.with_pool ~jobs (fun pool ->
      Table.to_csv (Experiments.run_plan ~pool plan))

let prop_jobs_invariant name count =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: --jobs 1 and --jobs 8 byte-identical" name)
    ~count
    QCheck.(int_range 0 1000)
    (fun seed ->
      String.equal (csv_of ~name ~seed ~jobs:1) (csv_of ~name ~seed ~jobs:8))

let test_serial_equals_pooled () =
  (* No pool at all (the pure serial path in run_plan) against 8 domains. *)
  let table ~pool =
    let plan =
      List.assoc "fault" (Experiments.plans ~fidelity:Experiments.Quick ~seed:42 ())
    in
    Table.to_csv (Experiments.run_plan ?pool plan)
  in
  let serial = table ~pool:None in
  Parallel.with_pool ~jobs:8 (fun pool ->
      Alcotest.(check string)
        "serial run_plan = pooled run_plan" serial
        (table ~pool:(Some pool)))

let suite =
  [
    Alcotest.test_case "create rejects jobs < 1" `Quick test_create_rejects_bad_jobs;
    Alcotest.test_case "empty batch" `Quick test_empty_batch;
    Alcotest.test_case "reuse across batches" `Quick test_reuse_across_batches;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_lowest_index_exception_wins;
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    QCheck_alcotest.to_alcotest prop_run_is_index_ordered;
    Alcotest.test_case "serial = pooled (fault)" `Quick test_serial_equals_pooled;
    QCheck_alcotest.to_alcotest (prop_jobs_invariant "fig5.2" 3);
    QCheck_alcotest.to_alcotest (prop_jobs_invariant "fig6.2" 2);
    QCheck_alcotest.to_alcotest (prop_jobs_invariant "fault" 3);
  ]
