(* Tests for lopc_eventsim: heap ordering, engine semantics, and an M/M/1
   queue simulated on the engine against theory. *)

module Heap = Lopc_eventsim.Event_heap
module Engine = Lopc_eventsim.Engine
module Rng = Lopc_prng.Rng

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun (t, v) -> Heap.push h ~time:t v) [ (3., "c"); (1., "a"); (2., "b") ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> Alcotest.fail "empty" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~time:5. i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, v) -> Alcotest.(check int) "insertion order" i v
    | None -> Alcotest.fail "empty"
  done

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h ~time:10. 10;
  Heap.push h ~time:5. 5;
  (match Heap.pop h with
  | Some (t, v) ->
    Alcotest.(check (float 0.)) "time" 5. t;
    Alcotest.(check int) "value" 5 v
  | None -> Alcotest.fail "empty");
  Heap.push h ~time:1. 1;
  (match Heap.pop h with
  | Some (_, v) -> Alcotest.(check int) "later insert wins" 1 v
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "one left" 1 (Heap.size h)

let test_heap_many_random () =
  let h = Heap.create () in
  let g = Rng.create 5 in
  let times = Array.init 1000 (fun _ -> Rng.float g) in
  Array.iter (fun t -> Heap.push h ~time:t t) times;
  let last = ref neg_infinity in
  for _ = 1 to 1000 do
    match Heap.pop h with
    | Some (t, _) ->
      if t < !last then Alcotest.fail "heap order violated";
      last := t
    | None -> Alcotest.fail "unexpected empty"
  done

let test_heap_rejects_nan () =
  let h = Heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: non-finite time")
    (fun () -> Heap.push h ~time:Float.nan ())

(* Regression: a popped entry must be collectable immediately. Before the
   fix, [pop] left entries reachable through vacated slots above [size] and
   [clear] kept the whole backing array, so long simulations retained dead
   payload closures. Probed through a weak array so the test sees exactly
   what the GC sees. *)
let test_heap_releases_popped_payloads () =
  let h = Heap.create () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Heap.push h ~time:(Float.of_int i) payload
  done;
  (* Pop half: those payloads must die while the rest stay reachable. *)
  for _ = 1 to n / 2 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to (n / 2) - 1 do
    if Weak.check weak i then
      Alcotest.failf "popped payload %d still reachable from the heap" i
  done;
  for i = n / 2 to n - 1 do
    if not (Weak.check weak i) then Alcotest.failf "live payload %d was lost" i
  done;
  (* Pop the rest: the backing array must not keep anything alive. *)
  for _ = 1 to n / 2 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to n - 1 do
    if Weak.check weak i then
      Alcotest.failf "payload %d survived a full drain" i
  done

let test_heap_clear_releases_payloads () =
  let h = Heap.create () in
  let weak = Weak.create 8 in
  for i = 0 to 7 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Heap.push h ~time:(Float.of_int i) payload
  done;
  Heap.clear h;
  Gc.full_major ();
  for i = 0 to 7 do
    if Weak.check weak i then
      Alcotest.failf "payload %d survived clear" i
  done;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_engine_order_and_clock () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2. (fun e -> log := (Engine.now e, "b") :: !log));
  ignore (Engine.schedule e ~delay:1. (fun e -> log := (Engine.now e, "a") :: !log));
  Engine.run e;
  Alcotest.(check (list (pair (float 0.) string))) "ordered with clock"
    [ (1., "a"); (2., "b") ]
    (List.rev !log)

let test_engine_cascading () =
  let e = Engine.create () in
  let finished = ref 0. in
  ignore
    (Engine.schedule e ~delay:1. (fun e ->
         ignore (Engine.schedule e ~delay:1. (fun e -> finished := Engine.now e))));
  Engine.run e;
  Alcotest.(check (float 0.)) "nested schedule" 2. !finished

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1. (fun _ -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check bool) "is_cancelled" true (Engine.is_cancelled h)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(Float.of_int i) (fun _ -> incr count))
  done;
  Engine.run ~until:5.5 e;
  Alcotest.(check int) "only events before horizon" 5 !count;
  Alcotest.(check (float 0.)) "clock advanced to horizon" 5.5 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest run later" 10 !count

let test_engine_max_events () =
  let e = Engine.create () in
  let rec reschedule e = ignore (Engine.schedule e ~delay:1. reschedule) in
  reschedule e;
  Engine.run ~max_events:100 e;
  Alcotest.(check int) "stopped at budget" 100 (Engine.events_processed e)

let test_engine_no_past_scheduling () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5. (fun _ -> ()));
  Engine.run e;
  Alcotest.(check bool) "negative absolute time rejected" true
    (try
       ignore (Engine.schedule_at e ~time:1. (fun _ -> ()));
       false
     with Invalid_argument _ -> true)

(* M/M/1 queue built directly on the engine: arrivals Poisson(lambda),
   service exp(mu). Mean customers in system must match rho/(1-rho). *)
let test_mm1_against_theory () =
  let lambda = 0.7 and mu = 1.0 in
  let e = Engine.create () in
  let g = Rng.create 99 in
  let in_system = ref 0 in
  let area = ref 0. and last = ref 0. in
  let advance now =
    area := !area +. (Float.of_int !in_system *. (now -. !last));
    last := now
  in
  let rec depart e =
    advance (Engine.now e);
    in_system := !in_system - 1;
    if !in_system > 0 then
      ignore (Engine.schedule e ~delay:(Rng.exponential g (1. /. mu)) depart)
  in
  let rec arrive e =
    advance (Engine.now e);
    in_system := !in_system + 1;
    if !in_system = 1 then
      ignore (Engine.schedule e ~delay:(Rng.exponential g (1. /. mu)) depart);
    ignore (Engine.schedule e ~delay:(Rng.exponential g (1. /. lambda)) arrive)
  in
  ignore (Engine.schedule e ~delay:(Rng.exponential g (1. /. lambda)) arrive);
  Engine.run ~until:200_000. e;
  advance (Engine.now e);
  let mean_n = !area /. Engine.now e in
  let rho = lambda /. mu in
  let expected =
    (rho /. (1. -. rho)
    [@lint.allow
      "unguarded-division"
        "closed-form M/M/1 reference with fixed test parameters lambda < mu, so rho \
         is a constant strictly below 1"])
  in
  if Float.abs (mean_n -. expected) > 0.12 *. expected then
    Alcotest.failf "M/M/1 mean customers %g, theory %g" mean_n expected

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h ~time:t ()) times;
      let out = ref [] in
      let rec drain () =
        match Heap.pop h with
        | Some (t, ()) ->
          out := t :: !out;
          drain ()
        | None -> ()
      in
      drain ();
      let popped = List.rev !out in
      popped = List.sort compare times)

module Calendar = Lopc_eventsim.Calendar_queue

(* Repeated drains (the push/pop-to-empty churn the retention policy is
   for) must stay correct across recycled backing arrays, ties included. *)
let test_heap_drain_churn () =
  let h = Heap.create () in
  for round = 0 to 99 do
    for i = 0 to 31 do
      Heap.push h ~time:(Float.of_int (i mod 4)) ((round * 32) + i)
    done;
    let popped = ref 0 in
    let last_time = ref neg_infinity in
    let last_id = ref (-1) in
    let continue = ref true in
    while !continue do
      match Heap.pop h with
      | None -> continue := false
      | Some (t, id) ->
        incr popped;
        if t < !last_time then Alcotest.fail "order violated across churn";
        (* Equal times must come back in insertion order even after the
           arrays have been dropped and re-grown between rounds. *)
        if Float.equal t !last_time && id <= !last_id then
          Alcotest.fail "tie order violated across churn";
        last_time := t;
        last_id := id
    done;
    Alcotest.(check int) "drained the round" 32 !popped
  done;
  Alcotest.(check bool) "empty after churn" true (Heap.is_empty h)

let test_calendar_rejects_nonfinite () =
  let c = Calendar.create () in
  Alcotest.check_raises "nan"
    (Invalid_argument "Calendar_queue.push: non-finite time") (fun () ->
      Calendar.push c ~time:Float.nan ());
  Alcotest.check_raises "inf"
    (Invalid_argument "Calendar_queue.push: non-finite time") (fun () ->
      Calendar.push c ~time:Float.infinity ());
  Alcotest.(check bool) "nothing entered" true (Calendar.is_empty c)

(* Same weak-array probe as the heap: popped payloads must be collectable
   immediately, through resizes included. *)
let test_calendar_releases_popped_payloads () =
  let c = Calendar.create () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Calendar.push c ~time:(Float.of_int i *. 3.7) payload
  done;
  for _ = 1 to n / 2 do
    ignore (Calendar.pop c)
  done;
  Gc.full_major ();
  for i = 0 to (n / 2) - 1 do
    if Weak.check weak i then
      Alcotest.failf "popped payload %d still reachable from the calendar" i
  done;
  Calendar.clear c;
  Gc.full_major ();
  for i = 0 to n - 1 do
    if Weak.check weak i then Alcotest.failf "payload %d survived clear" i
  done

(* Differential law: on any interleaving of pushes and pops — times drawn
   to force ties, sub-bucket clusters and wide spans — the calendar queue
   pops exactly the heap's (time, seq) sequence. *)
let arb_queue_workload =
  let open QCheck in
  let time_gen =
    Gen.oneof
      [
        Gen.map Float.of_int (Gen.int_range 0 20) (* heavy ties *);
        Gen.float_range 0. 1000.;
        Gen.float_range 0. 0.001 (* clusters inside one bucket *);
        Gen.float_range 0. 1e6 (* spans forcing empty-year scans *);
      ]
  in
  let op_gen =
    Gen.frequency
      [ (3, Gen.map (fun t -> `Push t) time_gen); (2, Gen.return `Pop) ]
  in
  let print ops =
    String.concat ";"
      (List.map
         (function `Push t -> Printf.sprintf "push %h" t | `Pop -> "pop")
         ops)
  in
  make ~print Gen.(list_size (int_range 0 400) op_gen)

let prop_calendar_matches_heap =
  QCheck.Test.make ~name:"calendar queue matches heap pop-for-pop" ~count:300
    arb_queue_workload (fun ops ->
      let h = Heap.create () and c = Calendar.create () in
      let id = ref 0 in
      let same_pop () =
        match (Heap.pop h, Calendar.pop c) with
        | None, None -> true
        | Some (th, vh), Some (tc, vc) -> Float.equal th tc && vh = vc
        | Some _, None | None, Some _ -> false
      in
      List.for_all
        (function
          | `Push t ->
            incr id;
            Heap.push h ~time:t !id;
            Calendar.push c ~time:t !id;
            true
          | `Pop -> same_pop ())
        ops
      &&
      (* Drain what is left, still pop-for-pop. *)
      let rec drain () = if Heap.is_empty h then same_pop () else same_pop () && drain () in
      drain ())

(* The engine must execute the same schedule identically on either queue:
   cascading events, ties, cancellations and the observer hook. *)
let test_engine_calendar_matches_heap () =
  let run queue =
    let e = Engine.create ~queue () in
    let log = Buffer.create 512 in
    let g = Rng.create 11 in
    let observed = ref 0 in
    Engine.set_observer e (fun _ -> incr observed);
    for i = 0 to 49 do
      let t = Rng.float g *. 100. in
      let h =
        Engine.schedule_at e ~time:t (fun e ->
            Buffer.add_string log (Printf.sprintf "%d@%h;" i (Engine.now e));
            if i mod 5 = 0 then
              ignore
                (Engine.schedule e ~delay:1. (fun e ->
                     Buffer.add_string log
                       (Printf.sprintf "f%d@%h;" i (Engine.now e)))))
      in
      if i mod 7 = 3 then Engine.cancel h
    done;
    Engine.run e;
    (Buffer.contents log, !observed, Engine.events_processed e)
  in
  let log_h, obs_h, n_h = run Engine.Heap in
  let log_c, obs_c, n_c = run Engine.Calendar in
  Alcotest.(check string) "identical execution trace" log_h log_c;
  Alcotest.(check int) "identical observer count" obs_h obs_c;
  Alcotest.(check int) "identical event count" n_h n_c

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap FIFO tie-breaking" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap interleaved push/pop" `Quick test_heap_interleaved;
    Alcotest.test_case "heap random stress" `Quick test_heap_many_random;
    Alcotest.test_case "heap rejects non-finite time" `Quick test_heap_rejects_nan;
    Alcotest.test_case "heap releases popped payloads" `Quick
      test_heap_releases_popped_payloads;
    Alcotest.test_case "heap clear releases payloads" `Quick
      test_heap_clear_releases_payloads;
    Alcotest.test_case "engine ordering and clock" `Quick test_engine_order_and_clock;
    Alcotest.test_case "engine cascading events" `Quick test_engine_cascading;
    Alcotest.test_case "engine cancellation" `Quick test_engine_cancel;
    Alcotest.test_case "engine run until horizon" `Quick test_engine_until;
    Alcotest.test_case "engine event budget" `Quick test_engine_max_events;
    Alcotest.test_case "engine rejects past scheduling" `Quick test_engine_no_past_scheduling;
    Alcotest.test_case "M/M/1 against theory" `Slow test_mm1_against_theory;
    Alcotest.test_case "heap drain churn" `Quick test_heap_drain_churn;
    Alcotest.test_case "calendar rejects non-finite time" `Quick
      test_calendar_rejects_nonfinite;
    Alcotest.test_case "calendar releases popped payloads" `Quick
      test_calendar_releases_popped_payloads;
    Alcotest.test_case "engine: calendar matches heap" `Quick
      test_engine_calendar_matches_heap;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_calendar_matches_heap;
  ]
